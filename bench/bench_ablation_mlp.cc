/**
 * @file
 * Reproduces the §3.2 analysis: bandwidth utilization of one vault as a
 * function of the compute unit's memory-level parallelism, for
 * fine-grained random accesses vs. sequential streams.
 *
 * Paper reference points: an OoO core sustaining ~20 outstanding accesses
 * reaches at most ~5.3 GB/s of the vault's 8 GB/s on random accesses;
 * streams saturate with just a handful of outstanding fetches (which is
 * why eight stream buffers suffice).
 */

#include "bench_common.hh"
#include "common/intmath.hh"
#include "common/random.hh"
#include "core/core_model.hh"
#include "system/machine.hh"

using namespace mondrian;
using namespace mondrian::bench;

namespace {

double
measure(unsigned window, bool random, std::uint64_t accesses)
{
    SystemConfig sys = makeSystem(SystemKind::kNmp);
    sys.hasL1 = false; // raw MLP vs DRAM, no cache help
    sys.exec.numUnits = sys.geo.totalVaults();
    sys.core.maxOutstandingLoads = window;
    sys.core.streamDepth = window;

    MemoryPool pool(sys.geo);
    Random rng(7);
    PhaseExec phase;
    phase.name = "mlp";
    phase.traces.resize(sys.exec.numUnits);
    // One active unit keeps the measurement clean.
    KernelTrace &t = phase.traces[0];
    std::uint64_t bytes = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        if (random) {
            Addr a = roundDown(rng.nextBounded(sys.geo.vaultBytes - 64), 8);
            t.add(TraceOp::load(a, 8));
            bytes += 8;
        } else {
            t.add(TraceOp::streamRead((i * 256) % sys.geo.vaultBytes, 256));
            bytes += 256;
        }
    }
    Machine m(sys, pool);
    auto res = m.runPhase(phase);
    return bytesPerTickToGBps(static_cast<double>(bytes), res.time);
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv, 12);
    banner("Ablation (§3.2): vault bandwidth vs memory-level parallelism",
           wl);

    std::vector<std::vector<std::string>> table;
    table.push_back({"outstanding", "random 8 B GB/s", "stream 256 B GB/s"});
    for (unsigned w : {1u, 2u, 4u, 8u, 16u, 20u, 32u, 64u}) {
        table.push_back({std::to_string(w),
                         fmt(measure(w, true, 4096)),
                         fmt(measure(w, false, 1024))});
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper reference: ~20 outstanding random accesses "
                "approach ~5.3 GB/s; streams saturate 8 GB/s with ~8\n");
    return 0;
}
