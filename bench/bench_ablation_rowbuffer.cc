/**
 * @file
 * Reproduces the §3.1 claim: the row-activation share of HMC access
 * energy is ~14% when a whole 256 B row is consumed and climbs to ~80%
 * for 8 B accesses. Swept analytically from the Table 4 coefficients and
 * cross-checked against the simulated vault's activation counts.
 */

#include "bench_common.hh"
#include "common/intmath.hh"
#include "common/random.hh"
#include "dram/vault.hh"
#include "sim/event_queue.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv, 12);
    banner("Ablation (§3.1): row-activation share of DRAM access energy",
           wl);

    const DramEnergy e{};
    std::vector<std::vector<std::string>> table;
    table.push_back({"access bytes", "activation share", "paper"});
    for (std::uint64_t bytes : {8u, 16u, 32u, 64u, 128u, 256u}) {
        // One activation serves `bytes` of useful transfer.
        double act = e.activationNanojoule * 1e-9;
        double xfer = static_cast<double>(bytes) * 8 *
                      e.accessPicojoulePerBit * 1e-12;
        double share = act / (act + xfer);
        const char *ref = bytes == 8 ? "~80%" : bytes == 256 ? "~14%" : "";
        table.push_back({std::to_string(bytes),
                         fmt(100 * share, 1) + "%", ref});
    }
    std::printf("%s\n", renderTable(table).c_str());

    // Cross-check with the simulated vault: random 8 B reads vs 256 B
    // streams over the same volume.
    MemGeometry geo = defaultGeometry();
    AddressMap map(geo);
    for (bool sequential : {true, false}) {
        EventQueue eq;
        VaultController vault(eq, map, 0, DramTiming{}, 16);
        Random rng(1);
        const unsigned n = 512;
        for (unsigned i = 0; i < n; ++i) {
            MemRequest r;
            if (sequential) {
                r.addr = Addr{i} * 256;
                r.size = 256;
            } else {
                r.addr = roundDown(rng.nextBounded(geo.vaultBytes - 8), 8);
                r.size = 8;
            }
            vault.enqueue(std::move(r));
        }
        eq.run();
        double act_nj = static_cast<double>(vault.stats().rowActivations) *
                        e.activationNanojoule;
        double xfer_nj =
            static_cast<double>(vault.stats().bytesRead) * 8 *
            e.accessPicojoulePerBit * 1e-3;
        std::printf("simulated %s: activations=%llu, activation share of "
                    "dynamic energy = %s%%\n",
                    sequential ? "256 B streams" : "random 8 B reads",
                    static_cast<unsigned long long>(
                        vault.stats().rowActivations),
                    fmt(100 * act_nj / (act_nj + xfer_nj), 1).c_str());
    }
    return 0;
}
