/**
 * @file
 * Design-choice ablation: SIMD width of the Mondrian tile. The paper
 * sizes the unit at 1024 bits (8 tuples) to process a tuple every ~4
 * cycles at the vault's bandwidth (§5.2). The sweep scales the
 * data-parallel kernel costs with width and reports the Join runtime.
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Ablation (§5.2): SIMD width sweep (Mondrian join)", wl);

    Runner runner(wl);
    const KernelCosts base = mondrianKernelCosts();

    std::vector<std::vector<std::string>> table;
    table.push_back({"SIMD bits", "tuples/op", "join ms", "vs 1024-bit"});
    double t1024 = 0.0;
    std::vector<std::vector<std::string>> rows;
    for (unsigned bits : {128u, 256u, 512u, 1024u, 2048u}) {
        // Data-parallel kernel costs scale inversely with width relative
        // to the 1024-bit (8-tuple) baseline; scalar paths don't move.
        double scale = 1024.0 / bits;
        SystemConfig sys = makeSystem(SystemKind::kMondrian);
        sys.exec.costs.histogram = base.histogram * scale;
        sys.exec.costs.scatterCopy = base.scatterCopy * scale;
        sys.exec.costs.permutableAppend = base.permutableAppend * scale;
        sys.exec.costs.scan = base.scan * scale;
        sys.exec.costs.mergePass = base.mergePass * scale;
        sys.exec.costs.bitonicPass = base.bitonicPass * scale;
        sys.exec.costs.joinMerge = base.joinMerge * scale;
        sys.exec.costs.aggregate = base.aggregate * scale;
        sys.name = "mondrian-" + std::to_string(bits) + "b";
        RunResult r = runner.run(sys, OpKind::kJoin);
        double ms = ticksToSeconds(r.totalTime) * 1e3;
        if (bits == 1024)
            t1024 = ms;
        rows.push_back({std::to_string(bits),
                        std::to_string(bits / 128),
                        fmt(ms, 3), ""});
    }
    for (auto &row : rows) {
        double ms = std::stod(row[2]);
        row[3] = fmt(t1024 / ms, 2) + "x";
        table.push_back(row);
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper choice: 1024 bits -- wider SIMD shows diminishing "
                "returns once memory binds\n");
    return 0;
}
