/**
 * @file
 * Reproduces the §5.2 claim: the bitonic intra-stream first pass removes
 * four merge passes (~20% of the total at the paper's 32M-tuple vault
 * fill), and quantifies its runtime effect on the Sort probe phase.
 */

#include "bench_common.hh"
#include "engine/sort_algos.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Ablation (§5.2): bitonic first pass vs merge pass count", wl);

    std::vector<std::vector<std::string>> table;
    table.push_back({"tuples/vault", "passes (scalar)", "passes (bitonic)",
                     "saved", "saved %"});
    for (unsigned log2n : {12u, 16u, 20u, 25u}) {
        std::uint64_t n = 1ull << log2n;
        unsigned scalar = LocalSorter::mergePassCount(n, 1);
        unsigned simd = LocalSorter::mergePassCount(n, kBitonicGroup) + 1;
        table.push_back({std::to_string(n), std::to_string(scalar),
                         std::to_string(simd) + " (incl. bitonic)",
                         std::to_string(scalar - simd),
                         fmt(100.0 * (scalar - simd) / scalar, 0) + "%"});
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper reference: ~20%% fewer passes at 32M tuples "
                "(512 MB vault of 16 B tuples)\n\n");

    // Runtime effect: Mondrian sort probe with and without the bitonic
    // pass at the configured workload size.
    Runner runner(wl);
    RunResult with_bitonic = runner.run(SystemKind::kMondrian, OpKind::kSort);
    SystemConfig no_bitonic = makeSystem(SystemKind::kMondrian);
    no_bitonic.exec.simd = false; // scalar run generation + merges
    no_bitonic.name = "mondrian-nobitonic";
    RunResult without = runner.run(no_bitonic, OpKind::kSort);
    std::printf("sort probe: %s ms with bitonic+SIMD, %s ms scalar "
                "(%sx)\n",
                fmt(ticksToSeconds(with_bitonic.probeTime) * 1e3, 3).c_str(),
                fmt(ticksToSeconds(without.probeTime) * 1e3, 3).c_str(),
                fmt(probeSpeedup(without, with_bitonic), 2).c_str());
    return 0;
}
