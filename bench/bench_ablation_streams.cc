/**
 * @file
 * Design-choice ablation: how many stream buffers does the Mondrian tile
 * need? The paper provisions eight 384 B buffers (§5.2); this sweep shows
 * scan throughput saturating around that point.
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Ablation (§5.2): stream-buffer count sweep (Mondrian scan)",
           wl);

    Runner runner(wl);
    std::vector<std::vector<std::string>> table;
    table.push_back({"stream buffers", "scan ms", "GB/s/vault"});
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        SystemConfig sys = makeSystem(SystemKind::kMondrian);
        sys.core.streamDepth = depth;
        sys.name = "mondrian-sb" + std::to_string(depth);
        RunResult r = runner.run(sys, OpKind::kScan);
        table.push_back({std::to_string(depth),
                         fmt(ticksToSeconds(r.totalTime) * 1e3, 3),
                         fmt(r.probeVaultBWGBps)});
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper choice: 8 buffers (saturation point under "
                "row-miss latency)\n");
    return 0;
}
