/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures.
 *
 * Every bench accepts:
 *   argv[1] (optional): log2 of |S| tuples (default 16)
 *   argv[2] (optional): random seed (default 42)
 *   argv[3] (optional): path to dump the raw RunResults as JSON
 *
 * Benches print the paper-shaped table plus the measured raw numbers so
 * EXPERIMENTS.md can record paper-vs-measured side by side. The JSON dump
 * uses the campaign serializer (system/report.hh), so figure data and CI
 * campaign artifacts share one schema.
 */

#ifndef MONDRIAN_BENCH_BENCH_COMMON_HH
#define MONDRIAN_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "system/report.hh"
#include "system/runner.hh"

namespace mondrian::bench {

/** Parse the standard bench command line. */
inline WorkloadConfig
parseArgs(int argc, char **argv, unsigned default_log2 = 16)
{
    setVerbose(false);
    WorkloadConfig wl;
    unsigned log2_tuples = default_log2;
    if (argc > 1)
        log2_tuples = static_cast<unsigned>(std::atoi(argv[1]));
    if (argc > 2)
        wl.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    wl.tuples = 1ull << log2_tuples;
    return wl;
}

/** Print a standard bench banner. */
inline void
banner(const char *what, const WorkloadConfig &wl)
{
    std::printf("=== %s ===\n", what);
    std::printf("workload: %llu tuples (16 B each), seed %llu, "
                "scaled 64-vault system (see DESIGN.md section 5)\n\n",
                static_cast<unsigned long long>(wl.tuples),
                static_cast<unsigned long long>(wl.seed));
}

/** Dump raw run results as JSON when the bench got a path in argv[3]. */
inline void
maybeWriteJson(int argc, char **argv, const std::vector<RunResult> &runs)
{
    if (argc <= 3)
        return;
    std::ofstream out(argv[3], std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", argv[3]);
        std::exit(2);
    }
    out << runResultsJson(runs) << '\n';
    std::fprintf(stderr, "raw run data written to %s\n", argv[3]);
}

} // namespace mondrian::bench

#endif // MONDRIAN_BENCH_BENCH_COMMON_HH
