/**
 * @file
 * Regenerates Fig. 6: probe-phase speedup over the CPU baseline (log
 * scale) for Scan, Sort, Group-by and Join on NMP-rand, NMP-seq and
 * Mondrian.
 *
 * Paper shape: Scan ~2.4x for both NMP variants (identical code) and
 * ~2.6x more for Mondrian; Sort widens both gaps; for Group-by and Join,
 * NMP-rand beats NMP-seq (the sequential algorithm's extra log n passes
 * outweigh its access pattern without SIMD), and Mondrian absorbs the
 * algorithmic complexity (up to 22x vs CPU).
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Fig. 6: probe-phase speedup vs CPU (log scale in the paper)",
           wl);

    Runner runner(wl);
    const OpKind ops[] = {OpKind::kScan, OpKind::kSort, OpKind::kGroupBy,
                          OpKind::kJoin};
    const SystemKind systems[] = {SystemKind::kNmpRand, SystemKind::kNmpSeq,
                                  SystemKind::kMondrian};

    std::vector<RunResult> all;
    std::vector<std::vector<std::string>> table;
    table.push_back({"operator", "nmp-rand", "nmp-seq", "mondrian",
                     "cpu probe ms", "mondrian GB/s/vault"});
    for (OpKind op : ops) {
        RunResult cpu = runner.run(SystemKind::kCpu, op);
        all.push_back(cpu);
        std::vector<std::string> row{opKindName(op)};
        double mon_bw = 0.0;
        for (SystemKind k : systems) {
            if (op == OpKind::kScan && k == SystemKind::kNmpSeq) {
                // Scan has no sort/hash choice: NMP-seq == NMP-rand (§7.1).
                row.push_back(row.back());
                continue;
            }
            RunResult r = runner.run(k, op);
            all.push_back(r);
            row.push_back(fmt(probeSpeedup(cpu, r), 1) + "x");
            if (k == SystemKind::kMondrian)
                mon_bw = r.probeVaultBWGBps;
        }
        row.push_back(fmt(ticksToSeconds(cpu.probeTime) * 1e3, 3));
        row.push_back(fmt(mon_bw));
        table.push_back(row);
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper reference: Scan 2.4/2.4/~6x; Group-by & Join: "
                "NMP-rand > NMP-seq, Mondrian up to 22x\n");
    maybeWriteJson(argc, argv, all);
    return 0;
}
