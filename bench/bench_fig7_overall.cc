/**
 * @file
 * Regenerates Fig. 7: overall (partition + probe) speedup over the CPU
 * baseline for NMP, NMP-perm and Mondrian, plus the Table 2 phase split.
 *
 * Paper shape: Mondrian peaks at 49x over CPU and 5x over the best NMP
 * baseline (NMP-perm partitioning + NMP-rand probe).
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Fig. 7: overall speedup vs CPU (log scale in the paper)", wl);

    Runner runner(wl);
    const OpKind ops[] = {OpKind::kScan, OpKind::kSort, OpKind::kGroupBy,
                          OpKind::kJoin};

    std::vector<RunResult> all;
    std::vector<std::vector<std::string>> table;
    table.push_back({"operator", "nmp", "nmp-perm", "mondrian",
                     "mondrian/best-nmp", "cpu part ms", "cpu probe ms"});
    for (OpKind op : ops) {
        RunResult cpu = runner.run(SystemKind::kCpu, op);
        RunResult nmp = runner.run(SystemKind::kNmp, op);
        RunResult perm = runner.run(SystemKind::kNmpPerm, op);
        RunResult mon = runner.run(SystemKind::kMondrian, op);
        for (const RunResult &r : {cpu, nmp, perm, mon})
            all.push_back(r);
        double best_nmp = std::max(overallSpeedup(cpu, nmp),
                                   overallSpeedup(cpu, perm));
        table.push_back(
            {opKindName(op), fmt(overallSpeedup(cpu, nmp), 1) + "x",
             fmt(overallSpeedup(cpu, perm), 1) + "x",
             fmt(overallSpeedup(cpu, mon), 1) + "x",
             fmt(overallSpeedup(cpu, mon) / best_nmp, 1) + "x",
             fmt(ticksToSeconds(cpu.partitionTime) * 1e3, 3),
             fmt(ticksToSeconds(cpu.probeTime) * 1e3, 3)});
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper reference: Mondrian up to 49x vs CPU and 5x vs "
                "the best NMP baseline\n");
    maybeWriteJson(argc, argv, all);
    return 0;
}
