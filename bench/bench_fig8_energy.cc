/**
 * @file
 * Regenerates Fig. 8: energy breakdown (DRAM dynamic / DRAM static /
 * cores / SerDes+NOC) for CPU, NMP, NMP-perm and Mondrian across the four
 * operators.
 *
 * Paper shape: core energy dominates the CPU system; on the NMP systems
 * the probe phase dominates so NMP and NMP-perm look near-identical; and
 * Mondrian's aggressive bandwidth utilization shrinks the static-
 * dominated shares (DRAM static, SerDes idle).
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Fig. 8: energy breakdown (% of total)", wl);

    Runner runner(wl);
    const OpKind ops[] = {OpKind::kScan, OpKind::kSort, OpKind::kGroupBy,
                          OpKind::kJoin};
    const SystemKind systems[] = {SystemKind::kCpu, SystemKind::kNmp,
                                  SystemKind::kNmpPerm,
                                  SystemKind::kMondrian};

    std::vector<RunResult> all;
    std::vector<std::vector<std::string>> table;
    table.push_back({"operator", "system", "DRAM dyn", "DRAM static",
                     "cores", "SerDes+NOC", "total mJ"});
    for (OpKind op : ops) {
        for (SystemKind k : systems) {
            RunResult r = runner.run(k, op);
            all.push_back(r);
            EnergyShares s = energyShares(r);
            table.push_back({opKindName(op), r.system,
                             fmt(100 * s.dramDynamic, 1) + "%",
                             fmt(100 * s.dramStatic, 1) + "%",
                             fmt(100 * s.cores, 1) + "%",
                             fmt(100 * s.network, 1) + "%",
                             fmt(r.energy.total() * 1e3, 3)});
        }
    }
    std::printf("%s", renderTable(table).c_str());
    maybeWriteJson(argc, argv, all);
    return 0;
}
