/**
 * @file
 * Regenerates Fig. 9: efficiency (performance per watt) improvement over
 * the CPU baseline for NMP, NMP-perm and Mondrian.
 *
 * Paper shape: efficiency follows the performance trends with smaller
 * gains (Mondrian draws more dynamic power for its bandwidth), peaking
 * at 28x over CPU and 5x over the best NMP baseline.
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Fig. 9: efficiency (perf/W) improvement vs CPU", wl);

    Runner runner(wl);
    const OpKind ops[] = {OpKind::kScan, OpKind::kSort, OpKind::kGroupBy,
                          OpKind::kJoin};

    std::vector<RunResult> all;
    std::vector<std::vector<std::string>> table;
    table.push_back({"operator", "nmp", "nmp-perm", "mondrian",
                     "mondrian speedup", "note"});
    for (OpKind op : ops) {
        RunResult cpu = runner.run(SystemKind::kCpu, op);
        RunResult nmp = runner.run(SystemKind::kNmp, op);
        RunResult perm = runner.run(SystemKind::kNmpPerm, op);
        RunResult mon = runner.run(SystemKind::kMondrian, op);
        for (const RunResult &r : {cpu, nmp, perm, mon})
            all.push_back(r);
        double eff = efficiencyImprovement(cpu, mon);
        double spd = overallSpeedup(cpu, mon);
        table.push_back(
            {opKindName(op), fmt(efficiencyImprovement(cpu, nmp), 1) + "x",
             fmt(efficiencyImprovement(cpu, perm), 1) + "x",
             fmt(eff, 1) + "x", fmt(spd, 1) + "x",
             eff < spd ? "gains < speedup (as in paper)" : ""});
    }
    std::printf("%s", renderTable(table).c_str());
    std::printf("\npaper reference: Mondrian up to 28x vs CPU, 5x vs the "
                "best NMP baseline\n");
    maybeWriteJson(argc, argv, all);
    return 0;
}
