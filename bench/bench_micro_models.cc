/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates themselves:
 * event-queue throughput, DRAM bank/vault model, mesh routing, cache
 * lookups. These guard the simulator's own performance (a slow model
 * makes the paper-scale sweeps impractical).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/cache.hh"
#include "dram/vault.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "system/config.hh"

using namespace mondrian;

static void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>((i * 37) % 911), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueue);

static void
BM_BankAccess(benchmark::State &state)
{
    DramTiming t;
    Bank bank(t);
    std::uint64_t row = 0;
    Tick now = 0;
    for (auto _ : state) {
        auto r = bank.access(row++ % 64, now, false, 2000);
        now = r.readyAt;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankAccess);

static void
BM_VaultStream(benchmark::State &state)
{
    MemGeometry geo = defaultGeometry();
    AddressMap map(geo);
    for (auto _ : state) {
        EventQueue eq;
        VaultController vault(eq, map, 0, DramTiming{}, 16);
        for (unsigned i = 0; i < 256; ++i)
            vault.enqueue(MemRequest{Addr{i} * 256, 256, false, 0, 0, nullptr});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_VaultStream);

static void
BM_MeshRoute(benchmark::State &state)
{
    Mesh mesh((MeshConfig()));
    Random rng(3);
    Tick now = 0;
    for (auto _ : state) {
        unsigned s = static_cast<unsigned>(rng.nextBounded(16));
        unsigned d = static_cast<unsigned>(rng.nextBounded(16));
        now += 10;
        benchmark::DoNotOptimize(mesh.route(s, d, 32, now));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshRoute);

static void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 64 * kKiB;
    cfg.associativity = 16;
    Cache cache(cfg);
    Random rng(4);
    for (auto _ : state) {
        Addr a = rng.nextBounded(1 * kMiB);
        benchmark::DoNotOptimize(cache.access(a, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

BENCHMARK_MAIN();
