/**
 * @file
 * bench_sim_hotpath: wall-clock benchmark of the simulator's two hottest
 * layers — the event kernel and trace replay — plus the end-to-end
 * 2^20-tuple smoke campaign. Emits BENCH_sim_hotpath.json so the perf
 * trajectory is tracked from PR 2 onward.
 *
 * Usage: bench_sim_hotpath [log2_tuples] [seed] [out.json]
 *   defaults: 20 42 BENCH_sim_hotpath.json
 *
 * The recorded baseline block holds the same measurements taken on the
 * pre-overhaul tree (PR 1, std::function event queue + unencoded traces),
 * Release -O3, on the machine that produced this file's reference run.
 * speedup_vs_baseline therefore only means something on comparable
 * hardware at the default scale; within one machine the trend is what
 * matters. All numbers are wall clock: simulated results are byte-
 * identical before and after the overhaul by design (the determinism
 * contract), so time is the only thing this bench measures.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/core_model.hh"
#include "engine/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "system/campaign.hh"

using namespace mondrian;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Reference numbers from the seed tree (see file comment). */
struct Baseline
{
    double eventsPerSec = 1.21e7;
    double campaignWallSeconds = 26.99; // smoke grid @ 2^20, --jobs 1
    unsigned campaignLog2 = 20;
};

/**
 * Event-kernel throughput: 64 self-rescheduling chains with pseudo-random
 * near-now deltas — the scheduling pattern the calendar queue serves.
 */
double
benchEventKernel(std::uint64_t &executed)
{
    EventQueue eq;
    constexpr int kChains = 64;
    constexpr std::uint64_t kPerChain = 100000;

    struct Chain
    {
        EventQueue *eq;
        std::uint64_t left;
        std::uint64_t seed;

        static void
        step(Chain *ch)
        {
            if (--ch->left == 0)
                return;
            ch->seed = ch->seed * 6364136223846793005ull +
                       1442695040888963407ull;
            Tick d = 1 + ((ch->seed >> 40) & 4095);
            ch->eq->scheduleIn(d, [ch]() { step(ch); });
        }
    };

    std::vector<Chain> chains(kChains);
    for (int c = 0; c < kChains; ++c) {
        chains[c] = Chain{&eq, kPerChain,
                          static_cast<std::uint64_t>(c) * 2654435761u};
        Chain *ch = &chains[c];
        eq.schedule(static_cast<Tick>(c), [ch]() { Chain::step(ch); });
    }
    auto t0 = Clock::now();
    eq.run();
    double dt = secondsSince(t0);
    executed = eq.executed();
    return static_cast<double>(executed) / dt;
}

/** Fixed-latency local memory path for the replay microbench. */
class FixedPath : public MemoryPath
{
  public:
    FixedPath(EventQueue &eq, Tick latency) : eq_(eq), latency_(latency) {}

    Result
    request(Tick when, Addr, std::uint32_t, bool, bool, bool,
            DoneFn done) override
    {
        Tick t = when + latency_;
        eq_.schedule(t, [done = std::move(done), t]() { done(t); });
        return Result{false, 0};
    }

  private:
    EventQueue &eq_;
    Tick latency_;
};

struct ReplayResult
{
    std::uint64_t traceOps = 0;     ///< materialized (RLE) ops
    std::uint64_t expandedOps = 0;  ///< ops after run expansion
    double rleSeconds = 0.0;
    double expandedSeconds = 0.0;
    double opsPerSec = 0.0;         ///< expanded ops / rle wall second
};

double
replayOnce(const KernelTrace &trace)
{
    EventQueue eq;
    FixedPath path(eq, 50000);
    CoreConfig cfg;
    cfg.period = 1000;
    cfg.streamDepth = 8;
    TraceCore core(eq, cfg, path, 0);
    core.setTrace(&trace);
    auto t0 = Clock::now();
    core.start();
    eq.run();
    double dt = secondsSince(t0);
    if (!core.finished())
        fatal("replay microbench deadlocked");
    return dt;
}

/**
 * Trace replay: a 2^22-tuple streaming scan recorded RLE and replayed,
 * against the same trace expanded to per-chunk ops. Identical timing is
 * asserted (the RLE determinism contract); the wall-clock gap is the
 * encoding's win.
 */
ReplayResult
benchTraceReplay()
{
    TraceRecorder rec;
    const std::uint64_t tuples = std::uint64_t{1} << 22;
    rec.scanFixed(0, tuples, 16, 256, true, 1.25);
    rec.fence();
    KernelTrace rle = rec.take();

    KernelTrace expanded;
    for (const TraceOp &op : rle.expanded())
        expanded.add(op);

    ReplayResult r;
    r.traceOps = rle.size();
    r.expandedOps = rle.expandedSize();
    r.rleSeconds = replayOnce(rle);
    r.expandedSeconds = replayOnce(expanded);
    r.opsPerSec = static_cast<double>(r.expandedOps) / r.rleSeconds;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    unsigned log2_tuples = 20;
    std::uint64_t seed = 42;
    std::string out_path = "BENCH_sim_hotpath.json";
    if (argc > 1)
        log2_tuples = static_cast<unsigned>(std::atoi(argv[1]));
    if (argc > 2)
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    if (argc > 3)
        out_path = argv[3];

    const Baseline base;

    std::printf("=== sim hot-path benchmark ===\n");

    std::uint64_t executed = 0;
    double events_per_sec = benchEventKernel(executed);
    std::printf("event kernel: %.3g events/s (%llu events)\n",
                events_per_sec, static_cast<unsigned long long>(executed));

    ReplayResult replay = benchTraceReplay();
    std::printf("trace replay: %.3g expanded-ops/s; RLE %.2fs vs expanded "
                "%.2fs (%llu ops encode %llu)\n",
                replay.opsPerSec, replay.rleSeconds, replay.expandedSeconds,
                static_cast<unsigned long long>(replay.traceOps),
                static_cast<unsigned long long>(replay.expandedOps));

    // End-to-end: the smoke grid (cpu, nmp, mondrian x scan, join) at the
    // requested scale, serial so the number is a pure hot-path measure.
    CampaignGrid grid = smokeGrid();
    grid.log2Tuples = {log2_tuples};
    grid.seeds = {seed};
    CampaignRunner campaign(grid);
    auto t0 = Clock::now();
    CampaignReport report = campaign.run(1);
    double campaign_seconds = secondsSince(t0);
    std::printf("smoke campaign @ 2^%u: %.2fs wall (%zu runs)\n",
                log2_tuples, campaign_seconds, report.runs.size());

    const bool comparable =
        log2_tuples == base.campaignLog2 && seed == 42;
    double speedup =
        comparable ? base.campaignWallSeconds / campaign_seconds : 0.0;
    if (comparable) {
        std::printf("speedup vs pre-overhaul baseline (same machine "
                    "class): %.2fx campaign, %.2fx events/s\n",
                    speedup, events_per_sec / base.eventsPerSec);
    }

    JsonWriter w;
    w.beginObject();
    w.member("schema", "mondrian-bench-sim-hotpath-v1");
    w.member("paper", "conf_isca_DrumondDMUPFGP17");
    w.key("event_kernel").beginObject();
    w.member("events_per_sec", events_per_sec);
    w.member("events", executed);
    w.endObject();
    w.key("trace_replay").beginObject();
    w.member("trace_ops_per_sec", replay.opsPerSec);
    w.member("rle_ops", replay.traceOps);
    w.member("expanded_ops", replay.expandedOps);
    w.member("rle_trace_bytes", replay.traceOps * sizeof(TraceOp));
    w.member("expanded_trace_bytes",
             replay.expandedOps * sizeof(TraceOp));
    w.member("rle_seconds", replay.rleSeconds);
    w.member("expanded_seconds", replay.expandedSeconds);
    w.endObject();
    w.key("campaign").beginObject();
    w.member("grid", "smoke");
    w.member("log2_tuples", std::uint64_t{log2_tuples});
    w.member("seed", seed);
    w.member("runs", std::uint64_t{report.runs.size()});
    w.member("jobs", std::uint64_t{1});
    w.member("wall_seconds", campaign_seconds);
    w.endObject();
    w.key("baseline").beginObject();
    w.member("description",
             "seed tree (PR 1): std::function event queue, unencoded "
             "traces; Release -O3, same harness, reference dev machine");
    w.member("events_per_sec", base.eventsPerSec);
    w.member("campaign_wall_seconds", base.campaignWallSeconds);
    w.member("campaign_log2_tuples", std::uint64_t{base.campaignLog2});
    w.endObject();
    w.member("speedup_vs_baseline", speedup);
    w.endObject();

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 2;
    }
    out << w.str() << '\n';
    std::fprintf(stderr, "results written to %s\n", out_path.c_str());
    return 0;
}
