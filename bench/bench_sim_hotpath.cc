/**
 * @file
 * bench_sim_hotpath: wall-clock benchmark of the simulator's two hottest
 * layers — the event kernel and trace replay — plus the end-to-end
 * smoke campaign. Emits BENCH_sim_hotpath.json with an append-only
 * `history` trajectory so events-per-wall-second is tracked PR over PR.
 *
 * Usage: bench_sim_hotpath [log2_tuples] [seed] [out.json]
 *                          [--label NAME] [--append]
 *   defaults: 20 42 BENCH_sim_hotpath.json --label dev
 *
 * The event kernel sweeps 64 / 256 / 1024 concurrent self-rescheduling
 * chains: 64 matches a lightly loaded machine, 256 and 1024 match the
 * in-flight event population of a 16-core campaign replay (cores x
 * outstanding windows x DRAM/NoC hops). The trajectory metric
 * `events_per_sec` is the aggregate throughput over the whole sweep, so
 * a queue that only wins when buckets hold one event cannot game it.
 *
 * The campaign section reports simulated-event counts (RunResult::
 * simEvents summed over the grid) and events per wall second — the
 * end-to-end number the event-count-reduction work moves.
 *
 * `--append` preserves the history array of an existing out.json and
 * adds this run as a new point; without it the file starts fresh with
 * the recorded seed-tree entry plus this run. Top-level
 * events_per_sec / campaign_wall_seconds always mirror the latest
 * history point.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/core_model.hh"
#include "engine/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "system/campaign.hh"

using namespace mondrian;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Seed-tree reference numbers (PR 1: std::function event queue,
 * unencoded traces; Release -O3, reference dev machine). They anchor the
 * history trajectory when a fresh file is written.
 */
struct SeedBaseline
{
    double eventsPerSec = 1.21e7;
    double campaignWallSeconds = 26.99; // smoke grid @ 2^20, --jobs 1
    unsigned campaignLog2 = 20;
};

/** One scale of the event-kernel sweep. */
struct KernelPoint
{
    unsigned chains = 0;
    std::uint64_t events = 0;
    double seconds = 0.0;
    double eventsPerSec = 0.0;
};

/**
 * Event-kernel throughput at one load level: @p chains self-rescheduling
 * chains with pseudo-random near-now deltas — the scheduling pattern the
 * calendar queue serves. Every scale runs the same total event count so
 * the aggregate weighs each load level equally.
 */
KernelPoint
benchEventKernel(unsigned chains)
{
    EventQueue eq;
    const std::uint64_t per_chain = std::uint64_t{6400000} / chains;

    struct Chain
    {
        EventQueue *eq;
        std::uint64_t left;
        std::uint64_t seed;

        static void
        step(Chain *ch)
        {
            if (--ch->left == 0)
                return;
            ch->seed = ch->seed * 6364136223846793005ull +
                       1442695040888963407ull;
            Tick d = 1 + ((ch->seed >> 40) & 4095);
            ch->eq->scheduleIn(d, [ch]() { step(ch); });
        }
    };

    std::vector<Chain> chain_state(chains);
    for (unsigned c = 0; c < chains; ++c) {
        chain_state[c] = Chain{&eq, per_chain,
                               static_cast<std::uint64_t>(c) * 2654435761u};
        Chain *ch = &chain_state[c];
        eq.schedule(static_cast<Tick>(c), [ch]() { Chain::step(ch); });
    }
    auto t0 = Clock::now();
    eq.run();

    KernelPoint p;
    p.chains = chains;
    p.seconds = secondsSince(t0);
    p.events = eq.executed();
    p.eventsPerSec = static_cast<double>(p.events) / p.seconds;
    return p;
}

/** Fixed-latency local memory path for the replay microbench. */
class FixedPath : public MemoryPath
{
  public:
    FixedPath(EventQueue &eq, Tick latency) : eq_(eq), latency_(latency) {}

    Result
    request(Tick when, Addr, std::uint32_t, bool, bool, bool,
            DoneFn done) override
    {
        Tick t = when + latency_;
        eq_.schedule(t, [done = std::move(done), t]() { done(t); });
        return Result{false, 0};
    }

  private:
    EventQueue &eq_;
    Tick latency_;
};

struct ReplayResult
{
    std::uint64_t traceOps = 0;     ///< materialized (RLE) ops
    std::uint64_t expandedOps = 0;  ///< ops after run expansion
    double rleSeconds = 0.0;
    double expandedSeconds = 0.0;
    double opsPerSec = 0.0;         ///< expanded ops / rle wall second
};

double
replayOnce(const KernelTrace &trace)
{
    EventQueue eq;
    FixedPath path(eq, 50000);
    CoreConfig cfg;
    cfg.period = 1000;
    cfg.streamDepth = 8;
    TraceCore core(eq, cfg, path, 0);
    core.setTrace(&trace);
    auto t0 = Clock::now();
    core.start();
    eq.run();
    double dt = secondsSince(t0);
    if (!core.finished())
        fatal("replay microbench deadlocked");
    return dt;
}

/**
 * Trace replay: a 2^22-tuple streaming scan recorded RLE and replayed,
 * against the same trace expanded to per-chunk ops. Identical timing is
 * asserted (the RLE determinism contract); the wall-clock gap is the
 * encoding's win.
 */
ReplayResult
benchTraceReplay()
{
    TraceRecorder rec;
    const std::uint64_t tuples = std::uint64_t{1} << 22;
    rec.scanFixed(0, tuples, 16, 256, true, 1.25);
    rec.fence();
    KernelTrace rle = rec.take();

    KernelTrace expanded;
    for (const TraceOp &op : rle.expanded())
        expanded.add(op);

    ReplayResult r;
    r.traceOps = rle.size();
    r.expandedOps = rle.expandedSize();
    r.rleSeconds = replayOnce(rle);
    r.expandedSeconds = replayOnce(expanded);
    r.opsPerSec = static_cast<double>(r.expandedOps) / r.rleSeconds;
    return r;
}

/**
 * Extract the verbatim entry list of the "history" array from a report
 * this bench wrote earlier (between the opening '[' and its matching
 * ']'). Returns false when the file or the array is absent — the caller
 * then starts a fresh trajectory.
 */
bool
readHistoryEntries(const std::string &path, std::string &entries)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string key = "\"history\": [";
    const std::size_t at = text.find(key);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + key.size();
    int depth = 1;
    const std::size_t begin = i;
    for (; i < text.size() && depth > 0; ++i) {
        if (text[i] == '[')
            ++depth;
        else if (text[i] == ']')
            --depth;
    }
    if (depth != 0)
        return false;
    entries = text.substr(begin, i - 1 - begin);
    // Trim whitespace so the splice re-indents cleanly.
    while (!entries.empty() && std::isspace(
               static_cast<unsigned char>(entries.back())))
        entries.pop_back();
    while (!entries.empty() && std::isspace(
               static_cast<unsigned char>(entries.front())))
        entries.erase(entries.begin());
    return entries.size() > 0;
}

void
writeHistoryEntry(JsonWriter &w, const std::string &pr, double events_per_sec,
                  double campaign_wall, const std::string &notes)
{
    w.beginObject();
    w.member("pr", pr);
    w.member("events_per_sec", events_per_sec);
    w.member("campaign_wall_seconds", campaign_wall);
    w.member("notes", notes);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    unsigned log2_tuples = 20;
    std::uint64_t seed = 42;
    std::string out_path = "BENCH_sim_hotpath.json";
    std::string label = "dev";
    bool append = false;

    int positional = 0;
    for (int a = 1; a < argc; ++a) {
        if (!std::strcmp(argv[a], "--append")) {
            append = true;
        } else if (!std::strcmp(argv[a], "--label") && a + 1 < argc) {
            label = argv[++a];
        } else if (positional == 0) {
            log2_tuples = static_cast<unsigned>(std::atoi(argv[a]));
            ++positional;
        } else if (positional == 1) {
            seed = static_cast<std::uint64_t>(std::atoll(argv[a]));
            ++positional;
        } else {
            out_path = argv[a];
            ++positional;
        }
    }

    const SeedBaseline base;

    std::printf("=== sim hot-path benchmark ===\n");

    const unsigned kSweep[] = {64, 256, 1024};
    std::vector<KernelPoint> kernel;
    std::uint64_t kernel_events = 0;
    double kernel_seconds = 0.0;
    for (unsigned chains : kSweep) {
        KernelPoint p = benchEventKernel(chains);
        std::printf("event kernel %4u chains: %.3g events/s "
                    "(%llu events, %.2fs)\n",
                    p.chains, p.eventsPerSec,
                    static_cast<unsigned long long>(p.events), p.seconds);
        kernel_events += p.events;
        kernel_seconds += p.seconds;
        kernel.push_back(p);
    }
    const double events_per_sec =
        static_cast<double>(kernel_events) / kernel_seconds;
    std::printf("event kernel aggregate: %.3g events/s\n", events_per_sec);

    ReplayResult replay = benchTraceReplay();
    std::printf("trace replay: %.3g expanded-ops/s; RLE %.2fs vs expanded "
                "%.2fs (%llu ops encode %llu)\n",
                replay.opsPerSec, replay.rleSeconds, replay.expandedSeconds,
                static_cast<unsigned long long>(replay.traceOps),
                static_cast<unsigned long long>(replay.expandedOps));

    // End-to-end: the smoke grid (cpu, nmp, mondrian x scan, join) at the
    // requested scale, serial so the number is a pure hot-path measure.
    CampaignGrid grid = smokeGrid();
    grid.log2Tuples = {log2_tuples};
    grid.seeds = {seed};
    CampaignRunner campaign(grid);
    auto t0 = Clock::now();
    CampaignReport report = campaign.run(1);
    double campaign_seconds = secondsSince(t0);
    std::uint64_t sim_events = 0;
    for (const CampaignRun &run : report.runs)
        sim_events += run.result.simEvents;
    const double campaign_events_per_sec =
        static_cast<double>(sim_events) / campaign_seconds;
    std::printf("smoke campaign @ 2^%u: %.2fs wall, %llu simulated events, "
                "%.3g events/s (%zu runs)\n",
                log2_tuples, campaign_seconds,
                static_cast<unsigned long long>(sim_events),
                campaign_events_per_sec, report.runs.size());

    std::string prior_history;
    const bool have_prior =
        append && readHistoryEntries(out_path, prior_history);
    if (append && !have_prior)
        std::fprintf(stderr,
                     "--append: no usable history in %s; starting fresh\n",
                     out_path.c_str());

    JsonWriter w;
    w.beginObject();
    w.member("schema", "mondrian-bench-sim-hotpath-v2");
    w.member("paper", "conf_isca_DrumondDMUPFGP17");
    // Latest trajectory point, mirrored for cheap consumption (CI floor).
    w.member("events_per_sec", events_per_sec);
    w.member("campaign_wall_seconds", campaign_seconds);
    w.key("event_kernel").beginObject();
    w.member("aggregate_events_per_sec", events_per_sec);
    w.member("events", kernel_events);
    w.key("sweep").beginArray();
    for (const KernelPoint &p : kernel) {
        w.beginObject();
        w.member("chains", std::uint64_t{p.chains});
        w.member("events_per_sec", p.eventsPerSec);
        w.member("events", p.events);
        w.member("seconds", p.seconds);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.key("trace_replay").beginObject();
    w.member("trace_ops_per_sec", replay.opsPerSec);
    w.member("rle_ops", replay.traceOps);
    w.member("expanded_ops", replay.expandedOps);
    w.member("rle_trace_bytes", replay.traceOps * sizeof(TraceOp));
    w.member("expanded_trace_bytes",
             replay.expandedOps * sizeof(TraceOp));
    w.member("rle_seconds", replay.rleSeconds);
    w.member("expanded_seconds", replay.expandedSeconds);
    w.endObject();
    w.key("campaign").beginObject();
    w.member("grid", "smoke");
    w.member("log2_tuples", std::uint64_t{log2_tuples});
    w.member("seed", seed);
    w.member("runs", std::uint64_t{report.runs.size()});
    w.member("jobs", std::uint64_t{1});
    w.member("wall_seconds", campaign_seconds);
    w.member("sim_events", sim_events);
    w.member("events_per_sec", campaign_events_per_sec);
    w.endObject();
    w.key("history").beginArray();
    if (have_prior) {
        w.rawValue(prior_history);
    } else {
        writeHistoryEntry(
            w, "seed", base.eventsPerSec, base.campaignWallSeconds,
            "committed numbers from the reference machine (PR 1 tree: "
            "std::function event queue, unencoded traces)");
    }
    writeHistoryEntry(w, label, events_per_sec, campaign_seconds,
                      "kernel-sweep aggregate events/s; smoke campaign @ "
                      "2^" + std::to_string(log2_tuples) + ", jobs=1");
    w.endArray();
    w.endObject();

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 2;
    }
    out << w.str() << '\n';
    std::fprintf(stderr, "results written to %s\n", out_path.c_str());
    return 0;
}
