/**
 * @file
 * Regenerates Table 1: the Spark operator -> basic operator mapping,
 * executably -- every Spark operator is lowered and run on the Mondrian
 * system to show the mapping is real, not just a table.
 */

#include "bench_common.hh"
#include "engine/spark.hh"
#include "engine/workload.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv, /*default_log2=*/12);
    banner("Table 1: Spark operators lowered onto basic data operators",
           wl);

    SystemConfig sys = makeSystem(SystemKind::kMondrian);
    MemoryPool pool(sys.geo);
    WorkloadGenerator gen(wl);
    auto pair = gen.makeJoinPair(pool);
    SparkContext ctx(pool, sys.exec);

    std::vector<std::vector<std::string>> table;
    table.push_back({"Spark operator", "basic operator", "phases",
                     "functional result"});
    for (const auto &[name, basic] : sparkOperatorTable()) {
        auto lowered = ctx.lower(name, pair.s, &pair.r);
        std::string result;
        switch (basic) {
          case BasicOp::kScan:
            result = "matches=" + std::to_string(lowered.exec.scanMatches);
            break;
          case BasicOp::kGroupBy:
            result = "groups=" + std::to_string(lowered.exec.groupCount);
            break;
          case BasicOp::kJoin:
            result = "matches=" + std::to_string(lowered.exec.joinMatches);
            break;
          case BasicOp::kSort:
            result = "sorted " +
                     std::to_string(lowered.exec.output.totalTuples()) +
                     " tuples";
            break;
        }
        table.push_back({name, basicOpName(basic),
                         std::to_string(lowered.exec.phases.size()),
                         result});
    }
    std::printf("%s", renderTable(table).c_str());
    return 0;
}
