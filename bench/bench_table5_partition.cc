/**
 * @file
 * Regenerates Table 5: Join partitioning-phase speedup over the CPU
 * baseline, for NMP, NMP-perm, Mondrian-noperm and Mondrian, plus the
 * per-vault bandwidth utilization quoted in §7.1.
 *
 * Paper reference values: NMP 58x (1.0 GB/s/vault), NMP-perm 98x
 * (1.6 GB/s), Mondrian-noperm 142x (2.4 GB/s), Mondrian 273x (4.5 GB/s).
 */

#include "bench_common.hh"

using namespace mondrian;
using namespace mondrian::bench;

int
main(int argc, char **argv)
{
    WorkloadConfig wl = parseArgs(argc, argv);
    banner("Table 5: partitioning-phase speedup vs CPU (Join)", wl);

    Runner runner(wl);
    RunResult cpu = runner.run(SystemKind::kCpu, OpKind::kJoin);

    struct Row
    {
        SystemKind kind;
        const char *paperSpeedup;
        const char *paperBW;
    };
    const Row rows[] = {
        {SystemKind::kNmp, "58x", "1.0"},
        {SystemKind::kNmpPerm, "98x", "1.6"},
        {SystemKind::kMondrianNoperm, "142x", "2.4"},
        {SystemKind::kMondrian, "273x", "4.5"},
    };

    std::vector<RunResult> all{cpu};
    std::vector<std::vector<std::string>> table;
    table.push_back({"system", "partition speedup", "paper", "GB/s/vault",
                     "paper GB/s", "partition ms"});
    table.push_back(
        {"cpu", "1.0x", "1x", fmt(cpu.partitionVaultBWGBps), "-",
         fmt(ticksToSeconds(cpu.partitionTime) * 1e3, 3)});
    for (const Row &row : rows) {
        RunResult r = runner.run(row.kind, OpKind::kJoin);
        if (r.joinMatches != cpu.joinMatches)
            fatal("functional mismatch on %s", r.system.c_str());
        all.push_back(r);
        table.push_back({r.system, fmt(partitionSpeedup(cpu, r), 1) + "x",
                         row.paperSpeedup, fmt(r.partitionVaultBWGBps),
                         row.paperBW,
                         fmt(ticksToSeconds(r.partitionTime) * 1e3, 3)});
    }
    std::printf("%s\n", renderTable(table).c_str());
    maybeWriteJson(argc, argv, all);
    return 0;
}
