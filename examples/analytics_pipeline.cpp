/**
 * @file
 * A realistic analytics pipeline on the Spark-style layer (Table 1):
 * a clickstream-sessions scenario -- filter events, join them with a user
 * dimension table, aggregate per user, and produce a sorted ranking --
 * each stage lowered onto the basic operators and timed on the Mondrian
 * Data Engine vs. the CPU baseline.
 *
 * Usage: analytics_pipeline [log2_events]   (default 15)
 */

#include <cstdio>
#include <cstdlib>

#include "example_args.hh"

#include "common/logging.hh"
#include "engine/spark.hh"
#include "engine/workload.hh"
#include "system/machine.hh"
#include "system/report.hh"

using namespace mondrian;

namespace {

double
runPipeline(SystemKind kind, std::uint64_t events)
{
    SystemConfig sys = makeSystem(kind);
    MemoryPool pool(sys.geo);

    WorkloadConfig wl;
    wl.tuples = events;
    wl.joinSmallRatio = 0.25; // users : events = 1 : 4
    WorkloadGenerator gen(wl);
    auto data = gen.makeJoinPair(pool); // r = users, s = click events

    SparkContext ctx(pool, sys.exec);
    Machine machine(sys, pool);
    Tick total = 0;

    // Stage 1: Filter events for one campaign key (lowers onto Scan).
    auto filter = ctx.filter(data.s, 1);
    for (auto t : machine.run(filter.exec))
        total += t.time;

    // Stage 2: Join events with the user dimension (lowers onto Join).
    auto join = ctx.join(data.r, data.s);
    for (auto t : machine.run(join.exec))
        total += t.time;

    // Stage 3: Sessionize -- aggregate per user (lowers onto Group-by).
    auto agg = ctx.reduceByKey(data.s);
    for (auto t : machine.run(agg.exec))
        total += t.time;

    // Stage 4: Rank users by key (lowers onto Sort).
    auto rank = ctx.sortByKey(data.s);
    for (auto t : machine.run(rank.exec))
        total += t.time;

    std::printf("  %-9s filter->%s join->%llu matches  reduce->%llu "
                "groups  sort->%llu tuples  | total %s ms, energy %s mJ\n",
                sys.name.c_str(),
                std::to_string(filter.exec.scanMatches).c_str(),
                static_cast<unsigned long long>(join.exec.joinMatches),
                static_cast<unsigned long long>(agg.exec.groupCount),
                static_cast<unsigned long long>(
                    rank.exec.output.totalTuples()),
                fmt(ticksToSeconds(total) * 1e3, 3).c_str(),
                fmt(machine.energy().total() * 1e3, 3).c_str());
    return ticksToSeconds(total);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::uint64_t events =
        1ull << example_args::intArg(argc, argv, 1, "log2_events", 8, 24, 15);
    std::printf("Clickstream pipeline: filter -> join -> reduceByKey -> "
                "sortByKey over %llu events\n\n",
                static_cast<unsigned long long>(events));

    double cpu = runPipeline(SystemKind::kCpu, events);
    double nmp = runPipeline(SystemKind::kNmp, events);
    double mon = runPipeline(SystemKind::kMondrian, events);

    std::printf("\npipeline speedup vs CPU: NMP %sx, Mondrian %sx\n",
                fmt(cpu / nmp, 1).c_str(), fmt(cpu / mon, 1).c_str());
    return 0;
}
