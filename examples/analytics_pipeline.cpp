/**
 * @file
 * The clickstream-sessions pipeline (filter events, join with the user
 * dimension, aggregate per user, rank) — now a thin driver over the
 * Scenario API: the "sessions" preset runs as one pipeline per system
 * through the Runner, so energy, per-vault bandwidth and per-stage
 * functional results come from the same machinery as every campaign run
 * instead of being hand-rolled (and partly dropped) here.
 *
 * Cross-system functional verification: every stage's functional
 * outputs (matches, groups, checksums, tuple flow) must be identical on
 * every system; the driver exits non-zero if they are not.
 *
 * Usage: analytics_pipeline [log2_events]   (default 15)
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "example_args.hh"

#include "common/logging.hh"
#include "system/report.hh"
#include "system/runner.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::uint64_t events =
        1ull << example_args::intArg(argc, argv, 1, "log2_events", 8, 24, 15);

    Scenario sessions;
    std::string error;
    if (!scenarioFromSpec("sessions", sessions, error)) {
        std::fprintf(stderr, "internal: %s\n", error.c_str());
        return 1;
    }

    std::string stages;
    for (const ScenarioStage &st : sessions.stages)
        stages += (stages.empty() ? "" : " -> ") + st.spark;
    std::printf("Clickstream pipeline '%s': %s over %llu events\n\n",
                sessions.name.c_str(), stages.c_str(),
                static_cast<unsigned long long>(events));

    WorkloadConfig wl;
    wl.tuples = events;
    wl.joinSmallRatio = 0.25; // users : events = 1 : 4
    Runner runner(wl);

    const std::vector<SystemKind> systems = {
        SystemKind::kCpu, SystemKind::kNmp, SystemKind::kMondrian};
    std::vector<RunResult> results;
    for (SystemKind kind : systems) {
        RunResult res = runner.run(kind, sessions);
        std::printf("%s: total %s ms, energy %s mJ\n", res.system.c_str(),
                    fmt(res.seconds() * 1e3, 3).c_str(),
                    fmt(res.energy.total() * 1e3, 3).c_str());
        for (const StageResult &s : res.stages) {
            std::printf("  %-12s (%-7s) %8s ms  %8s mJ  %6s GB/s/vault  "
                        "%llu -> %llu tuples\n",
                        s.stage.c_str(), s.op.c_str(),
                        fmt(ticksToSeconds(s.totalTime) * 1e3, 3).c_str(),
                        fmt(s.energy.total() * 1e3, 3).c_str(),
                        fmt(s.probeVaultBWGBps, 2).c_str(),
                        static_cast<unsigned long long>(s.inputTuples),
                        static_cast<unsigned long long>(s.outputTuples));
        }
        std::printf("  filter->%llu matches  join->%llu matches  "
                    "reduce->%llu groups (checksum %llu)  sort->%llu "
                    "tuples\n\n",
                    static_cast<unsigned long long>(res.scanMatches),
                    static_cast<unsigned long long>(res.joinMatches),
                    static_cast<unsigned long long>(res.groupCount),
                    static_cast<unsigned long long>(res.aggChecksum),
                    static_cast<unsigned long long>(
                        res.stages.back().outputTuples));
        results.push_back(std::move(res));
    }

    // Functional verification: every stage must produce identical
    // results on every system.
    bool ok = true;
    const RunResult &ref = results.front();
    for (const RunResult &res : results) {
        for (std::size_t i = 0; i < ref.stages.size(); ++i) {
            const StageResult &a = ref.stages[i];
            const StageResult &b = res.stages[i];
            if (a.scanMatches != b.scanMatches ||
                a.joinMatches != b.joinMatches ||
                a.groupCount != b.groupCount ||
                a.aggChecksum != b.aggChecksum ||
                a.inputTuples != b.inputTuples ||
                a.outputTuples != b.outputTuples) {
                std::printf("FUNCTIONAL MISMATCH at stage %zu (%s): %s "
                            "vs %s\n",
                            i, a.stage.c_str(), ref.system.c_str(),
                            res.system.c_str());
                ok = false;
            }
        }
    }
    std::printf("functional cross-system check: %s\n",
                ok ? "PASS" : "FAIL");

    std::printf("\npipeline speedup vs CPU: NMP %sx, Mondrian %sx\n",
                fmt(overallSpeedup(results[0], results[1]), 1).c_str(),
                fmt(overallSpeedup(results[0], results[2]), 1).c_str());
    return ok ? 0 : 1;
}
