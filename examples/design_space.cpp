/**
 * @file
 * Design-space exploration: run all four operators on all six evaluated
 * systems and print the full speedup/efficiency matrix -- the example a
 * systems researcher would start from when extending the Mondrian Data
 * Engine (new operators, different geometries, skewed keys).
 *
 * Usage: design_space [log2_tuples] [zipf_theta]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "system/report.hh"
#include "system/runner.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);
    WorkloadConfig wl;
    wl.tuples = 1ull << (argc > 1 ? std::atoi(argv[1]) : 15);
    wl.zipfTheta = argc > 2 ? std::atof(argv[2]) : 0.0;

    std::printf("Design space: 4 operators x 6 systems, %llu tuples%s\n\n",
                static_cast<unsigned long long>(wl.tuples),
                wl.zipfTheta > 0 ? " (Zipf-skewed keys)" : "");

    Runner runner(wl);
    const OpKind ops[] = {OpKind::kScan, OpKind::kSort, OpKind::kGroupBy,
                          OpKind::kJoin};
    const SystemKind systems[] = {
        SystemKind::kNmp,     SystemKind::kNmpPerm,
        SystemKind::kNmpSeq,  SystemKind::kMondrianNoperm,
        SystemKind::kMondrian};

    std::vector<std::vector<std::string>> table;
    table.push_back({"operator", "system", "speedup", "partition",
                     "probe", "perf/W", "GB/s/vault(probe)"});
    for (OpKind op : ops) {
        RunResult cpu = runner.run(SystemKind::kCpu, op);
        table.push_back({opKindName(op), "cpu", "1.0x", "1.0x", "1.0x",
                         "1.0x", fmt(cpu.probeVaultBWGBps)});
        for (SystemKind k : systems) {
            RunResult r = runner.run(k, op);
            std::string part =
                r.partitionTime > 0 ? fmt(partitionSpeedup(cpu, r), 1) + "x"
                                    : "-";
            table.push_back({opKindName(op), r.system,
                             fmt(overallSpeedup(cpu, r), 1) + "x", part,
                             fmt(probeSpeedup(cpu, r), 1) + "x",
                             fmt(efficiencyImprovement(cpu, r), 1) + "x",
                             fmt(r.probeVaultBWGBps)});
        }
    }
    std::printf("%s", renderTable(table).c_str());
    return 0;
}
