/**
 * @file
 * Design-space exploration, campaign edition: expand the full paper grid
 * (4 operators x 7 systems) into a CampaignRunner sweep, execute it across
 * hardware threads, and print the speedup/efficiency matrix plus the
 * campaign-level geomean rollup -- the example a systems researcher would
 * start from when extending the Mondrian Data Engine (new operators,
 * different geometries, skewed keys).
 *
 * Usage: design_space [log2_tuples] [zipf_theta] [jobs]
 *   jobs: worker threads (default 0 = one per hardware thread)
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <tuple>

#include "example_args.hh"

#include "common/logging.hh"
#include "system/campaign.hh"
#include "system/report.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);

    long log2_tuples =
        example_args::intArg(argc, argv, 1, "log2_tuples", 4, 24, 15);
    long jobs_arg = example_args::intArg(argc, argv, 3, "jobs", 0, 1024, 0);
    CampaignGrid grid = paperGrid(static_cast<unsigned>(log2_tuples));
    double theta =
        example_args::doubleArg(argc, argv, 2, "zipf_theta", 0.0, 2.0, 0.0);
    grid.zipfThetas = {theta};
    unsigned jobs = static_cast<unsigned>(jobs_arg);

    std::printf("Design space: %zu scenarios x %zu systems = %zu runs%s\n\n",
                grid.scenarios.size(), grid.systems.size(), grid.size(),
                grid.zipfThetas[0] > 0 ? " (Zipf-skewed keys)" : "");

    CampaignRunner campaign(grid);
    CampaignReport report;
    try {
        report = campaign.run(jobs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    // Baseline (cpu) run per (seed, scale, op) group, via the same index
    // the campaign summary uses, for the per-run speedup columns.
    auto cpu = baselineIndex(report.runs, SystemKind::kCpu);

    std::vector<std::vector<std::string>> table;
    table.push_back({"operator", "system", "speedup", "partition", "probe",
                     "perf/W", "GB/s/vault(probe)"});
    for (const auto &r : report.runs) {
        if (r.job.system == SystemKind::kCpu) {
            table.push_back({r.result.op, r.result.system, "1.0x", "1.0x",
                             "1.0x", "1.0x", fmt(r.result.probeVaultBWGBps)});
            continue;
        }
        auto it = cpu.find(gridGroupKey(r));
        if (it == cpu.end()) {
            // No baseline for this group: mark unknown, don't fake 1.0x.
            table.push_back({r.result.op, r.result.system, "-", "-", "-",
                             "-", fmt(r.result.probeVaultBWGBps)});
            continue;
        }
        const RunResult &base = it->second->result;
        std::string part = r.result.partitionTime > 0
                               ? fmt(partitionSpeedup(base, r.result), 1) + "x"
                               : "-";
        table.push_back({r.result.op, r.result.system,
                         fmt(overallSpeedup(base, r.result), 1) + "x", part,
                         fmt(probeSpeedup(base, r.result), 1) + "x",
                         fmt(efficiencyImprovement(base, r.result), 1) + "x",
                         fmt(r.result.probeVaultBWGBps)});
    }
    std::printf("%s", renderTable(table).c_str());

    if (!report.summaries.empty()) {
        std::printf("\nCampaign rollup (geomean over all operators, vs. %s):\n%s",
                    report.baseline.c_str(),
                    campaignSummaryTable(report).c_str());
    }
    return 0;
}
