/**
 * @file
 * Shared checked argument parsing for the examples.
 *
 * Every example takes small positional numbers (log2 scale factors,
 * thread counts, thetas). Bare atoi/atof silently turn garbage into 0
 * and let out-of-range values through — `1ull << atoi(argv[1])` is
 * undefined behavior for arguments >= 64 (and negative ones are worse).
 * These helpers reject non-numeric and out-of-range values with a clear
 * message instead, the way the campaign CLI does.
 */

#ifndef MONDRIAN_EXAMPLES_EXAMPLE_ARGS_HH
#define MONDRIAN_EXAMPLES_EXAMPLE_ARGS_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace example_args {

/**
 * Parse positional argument @p index as a long in [@p lo, @p hi];
 * @p fallback when absent. Prints an error naming @p what and exits 2
 * on garbage or out-of-range values.
 */
inline long
intArg(int argc, char **argv, int index, const char *what, long lo, long hi,
       long fallback)
{
    if (index >= argc)
        return fallback;
    const char *text = argv[index];
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: '%s' is not an integer\n", what, text);
        std::exit(2);
    }
    if (v < lo || v > hi) {
        std::fprintf(stderr, "%s must be in [%ld, %ld] (got %s)\n", what,
                     lo, hi, text);
        std::exit(2);
    }
    return v;
}

/** Same, for doubles in [@p lo, @p hi). */
inline double
doubleArg(int argc, char **argv, int index, const char *what, double lo,
          double hi, double fallback)
{
    if (index >= argc)
        return fallback;
    const char *text = argv[index];
    char *end = nullptr;
    double v = std::strtod(text, &end);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: '%s' is not a number\n", what, text);
        std::exit(2);
    }
    if (!(v >= lo) || !(v < hi)) {
        std::fprintf(stderr, "%s must be in [%g, %g) (got %s)\n", what, lo,
                     hi, text);
        std::exit(2);
    }
    return v;
}

} // namespace example_args

#endif // MONDRIAN_EXAMPLES_EXAMPLE_ARGS_HH
