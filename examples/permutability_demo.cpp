/**
 * @file
 * Demonstrates the paper's core hardware insight (§4.1.2/§5.3): during
 * the shuffle, letting the destination vault controller append objects in
 * arrival order turns interleaved random writes into sequential row fills
 * -- same data, a fraction of the row activations.
 *
 * Prints, per mode: the destination row activations, the DRAM dynamic
 * energy of the partition phase, and a proof that the partitioned data is
 * a permutation (identical per-partition content).
 *
 * Usage: permutability_demo [log2_tuples]   (default 15)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "example_args.hh"

#include "common/logging.hh"
#include "engine/ops.hh"
#include "engine/partitioner.hh"
#include "engine/workload.hh"
#include "system/machine.hh"
#include "system/report.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::uint64_t tuples =
        1ull << example_args::intArg(argc, argv, 1, "log2_tuples", 8, 24, 15);
    std::printf("Permutable shuffle demo: %llu tuples across 64 vaults\n\n",
                static_cast<unsigned long long>(tuples));

    std::multiset<std::pair<std::uint64_t, std::uint64_t>> content[2];
    std::uint64_t activations[2] = {0, 0};
    double dram_dyn[2] = {0, 0};
    Tick times[2] = {0, 0};

    for (int mode = 0; mode < 2; ++mode) {
        const bool permutable = mode == 1;
        SystemConfig sys = makeSystem(permutable ? SystemKind::kNmpPerm
                                                 : SystemKind::kNmp);
        MemoryPool pool(sys.geo);
        WorkloadConfig wl;
        wl.tuples = tuples;
        Relation input =
            WorkloadGenerator(wl).makeUniform(pool, tuples);

        Partitioner part(pool, sys.exec);
        std::vector<TraceRecorder> recs(sys.exec.numUnits);
        PhaseExec phase;
        phase.name = permutable ? "shuffle-permutable" : "shuffle-exact";
        phase.kind = PhaseKind::kPartition;
        phase.barriers = 2;
        PartitionFn fn = PartitionFn::lowBits(sys.geo.totalVaults());
        Relation out = part.shuffleNmp(input, fn, recs,
                                       permutable ? &phase.arming : nullptr);
        for (auto &rec : recs)
            phase.traces.push_back(rec.take());

        Machine machine(sys, pool);
        auto res = machine.runPhase(phase);

        for (std::size_t p = 0; p < out.numPartitions(); ++p)
            for (const Tuple &t : out.gather(pool, p))
                content[mode].insert({t.key, t.payload});
        activations[mode] = res.activations;
        times[mode] = res.time;
        dram_dyn[mode] = machine.energy().dramDynamic;

        std::printf("%-22s activations=%8llu  time=%s us  "
                    "DRAM dynamic=%s uJ\n",
                    phase.name.c_str(),
                    static_cast<unsigned long long>(res.activations),
                    fmt(ticksToSeconds(res.time) * 1e6, 1).c_str(),
                    fmt(dram_dyn[mode] * 1e6, 1).c_str());
    }

    std::printf("\nactivation reduction: %sx   DRAM dynamic energy "
                "reduction: %sx   speedup: %sx\n",
                fmt(double(activations[0]) / activations[1], 1).c_str(),
                fmt(dram_dyn[0] / dram_dyn[1], 1).c_str(),
                fmt(double(times[0]) / times[1], 2).c_str());
    std::printf("per-partition content identical across modes: %s\n",
                content[0] == content[1] ? "YES (a pure permutation)"
                                         : "NO (BUG!)");
    return content[0] == content[1] ? 0 : 1;
}
