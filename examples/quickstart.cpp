/**
 * @file
 * Quickstart: run one Join on the CPU baseline and the Mondrian Data
 * Engine and compare time, bandwidth and energy.
 *
 * Usage: quickstart [log2_tuples]   (default 16 -> 65536 tuples)
 */

#include <cstdio>
#include <cstdlib>

#include "example_args.hh"

#include "common/logging.hh"
#include "system/report.hh"
#include "system/runner.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);
    unsigned log2_tuples = static_cast<unsigned>(
        example_args::intArg(argc, argv, 1, "log2_tuples", 8, 24, 16));

    WorkloadConfig wl;
    wl.tuples = 1ull << log2_tuples;
    wl.seed = 42;

    Runner runner(wl);

    std::printf("Mondrian Data Engine quickstart: FK join, |S| = %llu, "
                "|R| = %llu\n\n",
                static_cast<unsigned long long>(wl.tuples),
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(wl.tuples *
                                               wl.joinSmallRatio)));

    RunResult cpu = runner.run(SystemKind::kCpu, OpKind::kJoin);
    std::printf("  %s\n", describeRun(cpu).c_str());

    RunResult nmp = runner.run(SystemKind::kNmp, OpKind::kJoin);
    std::printf("  %s\n", describeRun(nmp).c_str());

    RunResult mon = runner.run(SystemKind::kMondrian, OpKind::kJoin);
    std::printf("  %s\n\n", describeRun(mon).c_str());

    if (cpu.joinMatches != mon.joinMatches ||
        cpu.joinMatches != nmp.joinMatches) {
        std::printf("FUNCTIONAL MISMATCH: cpu=%llu nmp=%llu mondrian=%llu\n",
                    static_cast<unsigned long long>(cpu.joinMatches),
                    static_cast<unsigned long long>(nmp.joinMatches),
                    static_cast<unsigned long long>(mon.joinMatches));
        return 1;
    }
    std::printf("all styles agree on %llu join matches\n\n",
                static_cast<unsigned long long>(cpu.joinMatches));

    std::printf("speedup vs CPU:      NMP %sx, Mondrian %sx\n",
                fmt(overallSpeedup(cpu, nmp), 1).c_str(),
                fmt(overallSpeedup(cpu, mon), 1).c_str());
    std::printf("partition speedup:   NMP %sx, Mondrian %sx\n",
                fmt(partitionSpeedup(cpu, nmp), 1).c_str(),
                fmt(partitionSpeedup(cpu, mon), 1).c_str());
    std::printf("efficiency vs CPU:   NMP %sx, Mondrian %sx\n",
                fmt(efficiencyImprovement(cpu, nmp), 1).c_str(),
                fmt(efficiencyImprovement(cpu, mon), 1).c_str());
    return 0;
}
