/**
 * @file
 * Open-loop served workload: the sessions pipeline under Poisson query
 * arrivals on one simulated machine, swept across arrival rates.
 *
 * The single-query Runner answers "how fast is one query?"; the
 * ServedRunner answers the operator's question instead: at a given
 * offered load, what throughput does the machine sustain, what do the
 * latency percentiles look like once queries queue behind each other,
 * and what does each query cost in energy? This driver sweeps lambda
 * over a small range and prints the served table per system, showing
 * the classic open-loop behavior: flat latency while the machine keeps
 * up, then queueing delay blowing up the tail as the offered rate
 * approaches saturation.
 *
 * Usage: served_workload [log2_events]   (default 12)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "example_args.hh"

#include "common/logging.hh"
#include "system/traffic.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::uint64_t events =
        1ull << example_args::intArg(argc, argv, 1, "log2_events", 8, 20, 12);

    Scenario sessions;
    std::string error;
    if (!scenarioFromSpec("sessions", sessions, error)) {
        std::fprintf(stderr, "internal: %s\n", error.c_str());
        return 1;
    }

    WorkloadConfig wl;
    wl.tuples = events;
    wl.seed = 42;

    std::printf("Served '%s' pipeline over %llu events, Poisson "
                "arrivals, 24 queries per point\n\n",
                sessions.name.c_str(),
                static_cast<unsigned long long>(events));
    std::printf("%-10s %10s %12s %12s %12s %12s %12s\n", "system",
                "lambda", "sustained", "p50 us", "p95 us", "p99 us",
                "mJ/query");

    for (SystemKind k : {SystemKind::kCpu, SystemKind::kMondrian}) {
        for (double lambda : {500.0, 2000.0, 8000.0}) {
            TrafficSpec traffic;
            std::string spec = "poisson,lambda=" +
                               std::to_string(static_cast<long long>(lambda)) +
                               ",queries=24,seed=1";
            if (!parseTrafficSpec(spec, traffic, error)) {
                std::fprintf(stderr, "internal: %s\n", error.c_str());
                return 1;
            }

            ServedRunner runner(wl, traffic);
            RunResult r = runner.run(makeSystem(k), sessions);
            if (!r.served.valid || r.served.completed == 0) {
                std::fprintf(stderr, "%s: served run produced no "
                             "completed queries\n", systemKindName(k));
                return 1;
            }
            const ServedMetrics &s = r.served;
            std::printf("%-10s %10.0f %12.1f %12.3f %12.3f %12.3f %12.4f\n",
                        systemKindName(k), lambda, s.sustainedQps,
                        static_cast<double>(s.latencyP50) / 1e6,
                        static_cast<double>(s.latencyP95) / 1e6,
                        static_cast<double>(s.latencyP99) / 1e6,
                        s.energyPerQueryJ * 1e3);
        }
    }
    return 0;
}
