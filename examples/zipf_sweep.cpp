/**
 * @file
 * Zipf-skew study: where do permutable shuffles lose their edge?
 *
 * The paper evaluates uniform keys and defers skew to future work (§7).
 * This study drives the campaign's zipf-theta axis over
 * {0, 0.5, 0.75, 0.99} for the two permutable systems and their
 * non-permutable siblings, on the shuffle-heavy operators (join,
 * group-by). The interesting quantity is the *permutability edge*: the
 * speedup of nmp-perm over nmp and of mondrian over mondrian-noperm at
 * each theta. Under skew, the hottest destination vault serializes the
 * shuffle no matter how writes are ordered, so the edge shrinks as theta
 * grows — this sweep quantifies by how much.
 *
 * Usage: zipf_sweep [log2_tuples] [jobs]
 *   log2_tuples: scale factor (default 12)
 *   jobs: worker threads (default 0 = one per hardware thread)
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "system/campaign.hh"
#include "system/report.hh"

using namespace mondrian;

int
main(int argc, char **argv)
{
    setVerbose(false);

    int log2_tuples = argc > 1 ? std::atoi(argv[1]) : 12;
    if (log2_tuples < 8 || log2_tuples > 22) {
        std::fprintf(stderr, "log2_tuples must be in [8, 22]\n");
        return 2;
    }
    int jobs_arg = argc > 2 ? std::atoi(argv[2]) : 0;
    if (jobs_arg < 0 || jobs_arg > 1024) {
        std::fprintf(stderr, "jobs must be in [0, 1024]\n");
        return 2;
    }

    CampaignGrid grid;
    grid.systems = {SystemKind::kNmp, SystemKind::kNmpPerm,
                    SystemKind::kMondrianNoperm, SystemKind::kMondrian};
    grid.ops = {OpKind::kJoin, OpKind::kGroupBy};
    grid.log2Tuples = {static_cast<unsigned>(log2_tuples)};
    grid.seeds = {42};
    grid.zipfThetas = {0.0, 0.5, 0.75, 0.99};

    std::printf("Zipf-skew study: %zu thetas x %zu ops x %zu systems = "
                "%zu runs at 2^%d tuples\n\n",
                grid.zipfThetas.size(), grid.ops.size(), grid.systems.size(),
                grid.size(), log2_tuples);

    CampaignRunner campaign(grid);
    CampaignReport report;
    try {
        report = campaign.run(static_cast<unsigned>(jobs_arg));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    // Index runs by (theta, op, system) for the pairwise edge table.
    std::map<std::tuple<double, std::string, std::string>, const RunResult *>
        byPoint;
    for (const auto &r : report.runs)
        byPoint[{r.job.zipfTheta, r.result.op, r.result.system}] = &r.result;

    const std::pair<const char *, const char *> pairs[] = {
        {"nmp", "nmp-perm"}, {"mondrian-noperm", "mondrian"}};

    std::vector<std::vector<std::string>> table;
    table.push_back({"theta", "op", "pair", "speedup", "partition",
                     "perm GB/s/vault"});
    // edge[pair] tracks the theta at which permutability stops paying.
    std::map<std::string, double> lastWinningTheta;
    for (double theta : grid.zipfThetas) {
        for (OpKind op : grid.ops) {
            for (const auto &[noperm, perm] : pairs) {
                const RunResult *base =
                    byPoint[{theta, opKindName(op), noperm}];
                const RunResult *p = byPoint[{theta, opKindName(op), perm}];
                if (!base || !p)
                    continue;
                double speedup = overallSpeedup(*base, *p);
                std::string part =
                    p->partitionTime > 0 && base->partitionTime > 0
                        ? fmt(partitionSpeedup(*base, *p), 2) + "x"
                        : "-";
                std::string pairName =
                    std::string(perm) + "/" + std::string(noperm);
                table.push_back({fmt(theta, 2), opKindName(op), pairName,
                                 fmt(speedup, 2) + "x", part,
                                 fmt(p->partitionVaultBWGBps, 2)});
                if (speedup > 1.005)
                    lastWinningTheta[pairName] =
                        std::max(lastWinningTheta[pairName], theta);
            }
        }
    }
    std::printf("%s\n", renderTable(table).c_str());

    std::printf("Permutability edge (speedup > 1.005x) survives up to:\n");
    for (const auto &[pairName, theta] : lastWinningTheta)
        std::printf("  %-25s theta <= %s\n", pairName.c_str(),
                    fmt(theta, 2).c_str());
    if (lastWinningTheta.empty())
        std::printf("  (no winning configuration at this scale)\n");
    return 0;
}
