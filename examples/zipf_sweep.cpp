/**
 * @file
 * Zipf-skew study: where do permutable shuffles lose their edge?
 *
 * The paper evaluates uniform keys and defers skew to future work (§7).
 * This study drives the campaign's zipf-theta axis over
 * {0, 0.5, 0.75, 0.99} for the two permutable systems and their
 * non-permutable siblings, on the shuffle-heavy operators (join,
 * group-by). The interesting quantity is the *permutability edge*: the
 * speedup of nmp-perm over nmp and of mondrian over mondrian-noperm at
 * each theta. Under skew, the hottest destination vault serializes the
 * shuffle no matter how writes are ordered, so the edge shrinks as theta
 * grows — this sweep quantifies by how much.
 *
 * Usage: zipf_sweep [log2_tuples] [jobs] [csv_prefix]
 *   log2_tuples: scale factor (default 12)
 *   jobs: worker threads (default 0 = one per hardware thread)
 *   csv_prefix: when given, write chart-ready CSV next to the tables:
 *     <prefix>-runs.csv (every run, via the report-analysis layer) and
 *     <prefix>-edge.csv (the per-theta permutability edge)
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "example_args.hh"

#include "common/file_io.hh"
#include "common/logging.hh"
#include "system/analysis.hh"
#include "system/campaign.hh"
#include "system/report.hh"
#include "system/report_model.hh"

using namespace mondrian;

namespace {

bool
writeFile(const std::string &path, const std::string &text)
{
    std::string error;
    if (!writeTextFile(path, text, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return false;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    long log2_tuples =
        example_args::intArg(argc, argv, 1, "log2_tuples", 8, 22, 12);
    long jobs_arg = example_args::intArg(argc, argv, 2, "jobs", 0, 1024, 0);
    std::string csv_prefix = argc > 3 ? argv[3] : "";

    CampaignGrid grid;
    grid.systems = {SystemKind::kNmp, SystemKind::kNmpPerm,
                    SystemKind::kMondrianNoperm, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kJoin),
                      degenerateScenario(OpKind::kGroupBy)};
    grid.log2Tuples = {static_cast<unsigned>(log2_tuples)};
    grid.seeds = {42};
    grid.zipfThetas = {0.0, 0.5, 0.75, 0.99};

    std::printf("Zipf-skew study: %zu thetas x %zu scenarios x %zu systems = "
                "%zu runs at 2^%ld tuples\n\n",
                grid.zipfThetas.size(), grid.scenarios.size(),
                grid.systems.size(),
                grid.size(), log2_tuples);

    CampaignRunner campaign(grid);
    CampaignReport report;
    try {
        report = campaign.run(static_cast<unsigned>(jobs_arg));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    // Index runs by (theta, op, system) for the pairwise edge table.
    std::map<std::tuple<double, std::string, std::string>, const RunResult *>
        byPoint;
    for (const auto &r : report.runs)
        byPoint[{r.job.zipfTheta, r.result.op, r.result.system}] = &r.result;

    const std::pair<const char *, const char *> pairs[] = {
        {"nmp", "nmp-perm"}, {"mondrian-noperm", "mondrian"}};

    std::vector<std::vector<std::string>> table;
    table.push_back({"theta", "op", "pair", "speedup", "partition",
                     "perm GB/s/vault"});
    // Chart-ready form of the same rows, full precision.
    std::string edge_csv =
        "theta,op,pair,speedup,partition_speedup,perm_vault_bw_gbps\n";
    // edge[pair] tracks the theta at which permutability stops paying.
    std::map<std::string, double> lastWinningTheta;
    for (double theta : grid.zipfThetas) {
        for (const Scenario &sc : grid.scenarios) {
            for (const auto &[noperm, perm] : pairs) {
                const RunResult *base =
                    byPoint[{theta, sc.name, noperm}];
                const RunResult *p = byPoint[{theta, sc.name, perm}];
                if (!base || !p)
                    continue;
                double speedup = overallSpeedup(*base, *p);
                std::string part =
                    p->partitionTime > 0 && base->partitionTime > 0
                        ? fmt(partitionSpeedup(*base, *p), 2) + "x"
                        : "-";
                std::string pairName =
                    std::string(perm) + "/" + std::string(noperm);
                table.push_back({fmt(theta, 2), sc.name, pairName,
                                 fmt(speedup, 2) + "x", part,
                                 fmt(p->partitionVaultBWGBps, 2)});
                edge_csv += fmt(theta, 2) + "," + sc.name + "," +
                            pairName + ",";
                JsonWriter::appendDouble(edge_csv, speedup);
                edge_csv += ",";
                JsonWriter::appendDouble(edge_csv,
                                         partitionSpeedup(*base, *p));
                edge_csv += ",";
                JsonWriter::appendDouble(edge_csv, p->partitionVaultBWGBps);
                edge_csv += "\n";
                if (speedup > 1.005)
                    lastWinningTheta[pairName] =
                        std::max(lastWinningTheta[pairName], theta);
            }
        }
    }
    std::printf("%s\n", renderTable(table).c_str());

    if (!csv_prefix.empty()) {
        // Round-trip the report through its JSON schema into the
        // analysis layer, so the CSV is exactly what any consumer of the
        // report artifact would compute.
        ReportModel model;
        std::string err;
        if (!loadReportModel(campaignReportJson(report), model, err)) {
            std::fprintf(stderr, "report model: %s\n", err.c_str());
            return 2;
        }
        if (!writeFile(csv_prefix + "-runs.csv", runsCsv(model, "")) ||
            !writeFile(csv_prefix + "-edge.csv", edge_csv))
            return 2;
    }

    std::printf("Permutability edge (speedup > 1.005x) survives up to:\n");
    for (const auto &[pairName, theta] : lastWinningTheta)
        std::printf("  %-25s theta <= %s\n", pairName.c_str(),
                    fmt(theta, 2).c_str());
    if (lastWinningTheta.empty())
        std::printf("  (no winning configuration at this scale)\n");
    return 0;
}
