#!/usr/bin/env bash
# Guard the campaign determinism contract: a smoke campaign run serially
# and a run with many worker threads must produce byte-identical JSON
# reports (results are aggregated by grid index, never completion order).
#
# Usage: scripts/check_determinism.sh [path/to/mondrian_campaign]
set -euo pipefail

CAMPAIGN_BIN="${1:-build/mondrian_campaign}"
if [[ ! -x "$CAMPAIGN_BIN" ]]; then
    echo "error: $CAMPAIGN_BIN not found or not executable" >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== smoke campaign, serial (--jobs 1)"
"$CAMPAIGN_BIN" --smoke --jobs 1 --quiet --out "$workdir/serial.json"

echo "== smoke campaign, parallel (--jobs 8)"
"$CAMPAIGN_BIN" --smoke --jobs 8 --quiet --out "$workdir/parallel.json"

echo "== same grid + seed, repeated serially (run-to-run determinism)"
"$CAMPAIGN_BIN" --smoke --jobs 1 --quiet --out "$workdir/serial2.json"

if ! cmp "$workdir/serial.json" "$workdir/parallel.json"; then
    echo "FAIL: --jobs 8 report differs from --jobs 1" >&2
    diff "$workdir/serial.json" "$workdir/parallel.json" | head -40 >&2 || true
    exit 1
fi

if ! cmp "$workdir/serial.json" "$workdir/serial2.json"; then
    echo "FAIL: repeated serial runs differ (nondeterministic simulation)" >&2
    diff "$workdir/serial.json" "$workdir/serial2.json" | head -40 >&2 || true
    exit 1
fi

echo "OK: reports are byte-identical across thread counts and reruns"
