#!/usr/bin/env bash
# Guard the campaign determinism contract: a smoke campaign run serially
# and a run with many worker threads must produce byte-identical JSON
# reports (results are aggregated by grid index, never completion order).
#
# Usage: scripts/check_determinism.sh [path/to/mondrian_campaign]
set -euo pipefail
shopt -s inherit_errexit
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: command failed" >&2' ERR

CAMPAIGN_BIN="${1:-build/mondrian_campaign}"
if [[ ! -x "$CAMPAIGN_BIN" ]]; then
    echo "error: $CAMPAIGN_BIN not found or not executable" >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 2
fi

# The EXIT trap covers normal termination and set -e failures; INT/TERM
# are listed so an interrupted run still scrubs its tempdir.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "== smoke campaign, serial (--jobs 1)"
"$CAMPAIGN_BIN" --smoke --jobs 1 --quiet --out "$workdir/serial.json"

echo "== smoke campaign, parallel (--jobs 8)"
"$CAMPAIGN_BIN" --smoke --jobs 8 --quiet --out "$workdir/parallel.json"

echo "== same grid + seed, repeated serially (run-to-run determinism)"
"$CAMPAIGN_BIN" --smoke --jobs 1 --quiet --out "$workdir/serial2.json"

if ! cmp "$workdir/serial.json" "$workdir/parallel.json"; then
    echo "FAIL: --jobs 8 report differs from --jobs 1" >&2
    diff "$workdir/serial.json" "$workdir/parallel.json" | head -40 >&2 || true
    exit 1
fi

if ! cmp "$workdir/serial.json" "$workdir/serial2.json"; then
    echo "FAIL: repeated serial runs differ (nondeterministic simulation)" >&2
    diff "$workdir/serial.json" "$workdir/serial2.json" | head -40 >&2 || true
    exit 1
fi

echo "OK: reports are byte-identical across thread counts and reruns"

# --- Event-count-reduction ablation oracle ---------------------------------
# The perf transforms (docs/perf.md) are output-identical by contract:
# completion coalescing, closed-form RLE runs, queue skip-ahead and eager
# local issue may change how many physical events the simulator pops, but
# never a single byte of the report. The toggles are excluded from the
# exec-point name, so a toggled-off smoke campaign must be byte-identical
# to the default (all-on) serial report — individually and all at once.
for ablation in coalesce=0 rle=0 skip=0 eager=0 \
                coalesce=0+rle=0+skip=0+eager=0; do
    echo "== smoke campaign with --exec-ablation $ablation"
    "$CAMPAIGN_BIN" --smoke --jobs 1 --quiet --exec-ablation "$ablation" \
        --out "$workdir/ablate.json"
    if ! cmp "$workdir/serial.json" "$workdir/ablate.json"; then
        echo "FAIL: report changed with --exec-ablation $ablation" >&2
        diff "$workdir/serial.json" "$workdir/ablate.json" | head -40 >&2 || true
        exit 1
    fi
done

echo "OK: every perf-transform toggle is output-identical"

# --- Geometry-sweep determinism + cross-axis resume splicing ---------------
# The design-space axes (geometry, exec-ablation, zipf) must honor the same
# contract: identical bytes for any --jobs, and a partial sweep resumed into
# a larger one must splice cached points byte-identically.
SWEEP=(--systems cpu,mondrian --ops join --log2-tuples 10
       --geometry 4x8,4x16,4x32 --quiet)

echo "== geometry sweep (vaults/cube 8/16/32), serial"
"$CAMPAIGN_BIN" "${SWEEP[@]}" --jobs 1 --out "$workdir/geo_serial.json"

echo "== geometry sweep, parallel (--jobs 8)"
"$CAMPAIGN_BIN" "${SWEEP[@]}" --jobs 8 --out "$workdir/geo_parallel.json"

if ! cmp "$workdir/geo_serial.json" "$workdir/geo_parallel.json"; then
    echo "FAIL: geometry sweep differs across --jobs" >&2
    diff "$workdir/geo_serial.json" "$workdir/geo_parallel.json" | head -40 >&2 || true
    exit 1
fi

echo "== partial sweep (one geometry), then --resume into the full sweep"
"$CAMPAIGN_BIN" --systems cpu,mondrian --ops join --log2-tuples 10 \
    --geometry 4x8 --quiet --jobs 1 --out "$workdir/geo_partial.json"
"$CAMPAIGN_BIN" "${SWEEP[@]}" --jobs 8 --resume "$workdir/geo_partial.json" \
    --out "$workdir/geo_resumed.json"

# The spliced runs subtree must be byte-identical to the fresh sweep's.
extract_runs() {
    sed -n '/^  "runs": \[$/,/^  \],$/p' "$1"
}
# Guard against a vacuous pass: if the sed anchors ever stop matching the
# writer's formatting, fail loudly instead of comparing empty streams.
for f in geo_serial geo_resumed; do
    if [[ -z "$(extract_runs "$workdir/$f.json")" ]]; then
        echo "FAIL: could not extract the runs section from $f.json" >&2
        echo "      (did the report formatting change?)" >&2
        exit 1
    fi
done
if ! cmp <(extract_runs "$workdir/geo_serial.json") \
         <(extract_runs "$workdir/geo_resumed.json"); then
    echo "FAIL: resumed sweep's runs differ from a fresh sweep" >&2
    diff <(extract_runs "$workdir/geo_serial.json") \
         <(extract_runs "$workdir/geo_resumed.json") | head -40 >&2 || true
    exit 1
fi

echo "OK: geometry sweep deterministic; cross-axis resume splices byte-identically"

# --- Scenario-pipeline determinism + self-diff --------------------------
# Multi-stage scenarios (schema v3: per-stage sub-results, intermediate
# relations flowing stage-to-stage) must honor the same contract: byte-
# identical reports for any --jobs, and an analysis self-diff that is
# empty.
REPORT_BIN="$(dirname "$CAMPAIGN_BIN")/mondrian_report"
SCEN=(--systems cpu,mondrian --scenario sessions --log2-tuples 10 --quiet)

echo "== sessions scenario (pipeline), serial"
"$CAMPAIGN_BIN" "${SCEN[@]}" --jobs 1 --out "$workdir/scen_serial.json"

echo "== sessions scenario, parallel (--jobs 8)"
"$CAMPAIGN_BIN" "${SCEN[@]}" --jobs 8 --out "$workdir/scen_parallel.json"

if ! cmp "$workdir/scen_serial.json" "$workdir/scen_parallel.json"; then
    echo "FAIL: scenario campaign differs across --jobs" >&2
    diff "$workdir/scen_serial.json" "$workdir/scen_parallel.json" | head -40 >&2 || true
    exit 1
fi

if [[ -x "$REPORT_BIN" ]]; then
    echo "== scenario report self-diff + per-stage rendering"
    if ! "$REPORT_BIN" diff "$workdir/scen_serial.json" \
            "$workdir/scen_parallel.json" --rtol 1e-6; then
        echo "FAIL: scenario report self-diff is not empty" >&2
        exit 1
    fi
    # The summary must carry the per-stage breakdown and the stage CSV
    # must have one row per (run, stage): 2 runs x 4 stages + header.
    "$REPORT_BIN" summary "$workdir/scen_serial.json" | grep -q "### Stages" || {
        echo "FAIL: scenario summary lacks the per-stage breakdown" >&2
        exit 1
    }
    stage_rows=$("$REPORT_BIN" csv "$workdir/scen_serial.json" --stages | wc -l)
    if [[ "$stage_rows" -ne 9 ]]; then
        echo "FAIL: expected 9 stage-CSV lines, got $stage_rows" >&2
        exit 1
    fi
else
    echo "note: $REPORT_BIN not found, skipping scenario self-diff" >&2
fi

echo "OK: scenario pipelines deterministic; per-stage analysis renders"

# --- Served-traffic determinism + degenerate-traffic oracle ---------------
# Open-loop served runs (schema v4: many queries in flight on one
# simulated machine) must honor the same contract: byte-identical
# reports for any --jobs. And the degenerate spec '--traffic none' must
# leave the report byte-identical to a plain single-query campaign —
# the correctness oracle showing the traffic layer adds nothing when
# it is not asked for.
SERVED=(--systems cpu,mondrian --scenario sessions --log2-tuples 10
        --traffic poisson,lambda=2000,queries=8 --quiet)

echo "== served sessions campaign (poisson lambda=2000), serial"
"$CAMPAIGN_BIN" "${SERVED[@]}" --jobs 1 --out "$workdir/served_serial.json"

echo "== served sessions campaign, parallel (--jobs 8)"
"$CAMPAIGN_BIN" "${SERVED[@]}" --jobs 8 --out "$workdir/served_parallel.json"

if ! cmp "$workdir/served_serial.json" "$workdir/served_parallel.json"; then
    echo "FAIL: served campaign differs across --jobs" >&2
    diff "$workdir/served_serial.json" "$workdir/served_parallel.json" | head -40 >&2 || true
    exit 1
fi

echo "== '--traffic none' vs no --traffic at all (degenerate oracle)"
"$CAMPAIGN_BIN" "${SCEN[@]}" --traffic none --jobs 1 \
    --out "$workdir/scen_none.json"
if ! cmp "$workdir/scen_serial.json" "$workdir/scen_none.json"; then
    echo "FAIL: '--traffic none' report differs from a plain campaign" >&2
    diff "$workdir/scen_serial.json" "$workdir/scen_none.json" | head -40 >&2 || true
    exit 1
fi

if [[ -x "$REPORT_BIN" ]]; then
    echo "== served report self-diff + served-traffic rendering"
    if ! "$REPORT_BIN" diff "$workdir/served_serial.json" \
            "$workdir/served_parallel.json" --rtol 1e-6; then
        echo "FAIL: served report self-diff is not empty" >&2
        exit 1
    fi
    "$REPORT_BIN" summary "$workdir/served_serial.json" \
            | grep -q "### Served traffic" || {
        echo "FAIL: served summary lacks the served-traffic table" >&2
        exit 1
    }
else
    echo "note: $REPORT_BIN not found, skipping served self-diff" >&2
fi

echo "OK: served traffic deterministic; degenerate traffic is byte-identical"

# --- Distributed chaos oracle ---------------------------------------------
# The worker-sharded coordinator (--workers N) must honor the same
# contract even while workers are crashing, hanging and corrupting
# results mid-campaign: faults hit the first attempt of a job, the
# retry/reassignment machinery recovers, and the merged report is
# byte-identical to the in-process run (docs/distributed.md).
CHAOS=(--systems cpu,mondrian --ops scan,sort,groupby,join
       --log2-tuples 10 --quiet)

echo "== chaos grid, in-process (--jobs 4)"
"$CAMPAIGN_BIN" "${CHAOS[@]}" --jobs 4 --out "$workdir/chaos_inproc.json"

echo "== chaos grid, distributed (--workers 4) with injected faults"
"$CAMPAIGN_BIN" "${CHAOS[@]}" --workers 4 --heartbeat-timeout 1 \
    --fault-inject crash@0,hang@3,corrupt@5 \
    --out "$workdir/chaos_workers.json"

if ! cmp "$workdir/chaos_inproc.json" "$workdir/chaos_workers.json"; then
    echo "FAIL: chaos --workers report differs from --jobs" >&2
    diff "$workdir/chaos_inproc.json" "$workdir/chaos_workers.json" | head -40 >&2 || true
    exit 1
fi

if [[ -x "$REPORT_BIN" ]]; then
    if ! "$REPORT_BIN" diff "$workdir/chaos_inproc.json" \
            "$workdir/chaos_workers.json" --rtol 1e-6; then
        echo "FAIL: chaos report self-diff is not empty" >&2
        exit 1
    fi
fi

echo "== journal replay: a journaled campaign reruns from its journal"
"$CAMPAIGN_BIN" "${CHAOS[@]}" --workers 2 --journal "$workdir/chaos.ndjson" \
    --out "$workdir/chaos_journaled.json"
# Second invocation: every run comes from the journal, none re-simulate.
"$CAMPAIGN_BIN" "${CHAOS[@]}" --workers 2 --journal "$workdir/chaos.ndjson" \
    --out "$workdir/chaos_replayed.json" 2> "$workdir/replay.log"
if ! cmp "$workdir/chaos_inproc.json" "$workdir/chaos_journaled.json" ||
   ! cmp "$workdir/chaos_inproc.json" "$workdir/chaos_replayed.json"; then
    echo "FAIL: journaled/replayed reports differ from the in-process run" >&2
    exit 1
fi
grep -q "8 of 8 grid points reused" "$workdir/replay.log" || {
    echo "FAIL: journal replay re-simulated grid points" >&2
    cat "$workdir/replay.log" >&2
    exit 1
}

echo "OK: distributed chaos recovers byte-identically; journal replay resumes"
