#!/usr/bin/env bash
# Docs-link checker: every repo-relative path mentioned in the project's
# markdown (README.md, docs/*.md, ROADMAP.md, ...) must exist in the
# tree. Documentation that names src/... files is only trustworthy while
# those files are real; a rename that forgets the docs fails CI here.
#
# The check is grep-based by design: no markdown parser, just "anything
# that looks like a repo path". Paths containing wildcards or <angle
# placeholders> are skipped.
#
# Usage: scripts/check_doc_links.sh [repo-root]
set -euo pipefail
shopt -s inherit_errexit
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: command failed" >&2' ERR

ROOT="${1:-.}"
cd "$ROOT"

# The markdown that documents the tree. ISSUE.md/CHANGES.md are session
# logs, not documentation — they may legitimately name files that came
# and went.
mapfile -t md_files < <(ls README.md ROADMAP.md PAPER.md docs/*.md 2>/dev/null)
if [[ "${#md_files[@]}" -eq 0 ]]; then
    echo "error: no markdown files found under $ROOT" >&2
    exit 2
fi

fail=0
checked=0
for md in "${md_files[@]}"; do
    # Repo-relative paths: a known top-level directory, then
    # path characters. Trailing punctuation (sentence ends, markdown
    # syntax) is stripped from the match.
    while IFS= read -r path; do
        path="${path%%[).,:;\`*]}"
        # Skip glob/placeholder mentions ("src/*.cc", "docs/<name>.md").
        [[ "$path" == *'*'* || "$path" == *'<'* ]] && continue
        checked=$((checked + 1))
        # Accept the path itself, or an extension-set reference like
        # "src/system/analysis.{hh,cc}" whose brace part the match
        # truncated — the bare stem is fine as long as real files carry
        # it ("src/system/analysis" resolves via analysis.hh/.cc).
        if [[ ! -e "$path" ]] && ! compgen -G "$path.*" > /dev/null; then
            echo "FAIL: $md names '$path', which does not exist" >&2
            fail=1
        fi
    done < <(grep -oP '(?<![\w/.-])(src|docs|tools|tests|scripts|examples)/[\w./*<>-]+' "$md" | sort -u)
done

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "OK: $checked doc path references across ${#md_files[@]} markdown files all resolve"
