#!/usr/bin/env bash
# Diff a campaign report against the committed golden report (the
# nightly full-paper-grid regression gate) with mondrian_report — a
# structured, field-by-field comparison of every run and summary row,
# instead of text-scraping the JSON with awk.
#
# Timing is integer-tick deterministic, but energy and the summary
# geomeans go through floating point (exp/log in libm), so the
# comparison uses a relative tolerance (GOLDEN_RTOL, default 1e-6)
# instead of byte equality.
#
# Usage: scripts/check_golden.sh report.json golden-report.json [report-bin]
set -euo pipefail
shopt -s inherit_errexit
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: command failed" >&2' ERR

REPORT="${1:?usage: check_golden.sh report.json golden-report.json [report-bin]}"
GOLDEN="${2:?usage: check_golden.sh report.json golden-report.json [report-bin]}"
REPORT_BIN="${3:-build/mondrian_report}"
RTOL="${GOLDEN_RTOL:-1e-6}"

[[ -f "$REPORT" ]] || { echo "error: report '$REPORT' not found" >&2; exit 2; }
[[ -f "$GOLDEN" ]] || { echo "error: golden '$GOLDEN' not found" >&2; exit 2; }
if [[ ! -x "$REPORT_BIN" ]]; then
    echo "error: $REPORT_BIN not found or not executable" >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 2
fi

echo "== summary of $REPORT"
"$REPORT_BIN" summary "$REPORT"

echo "== diff vs $GOLDEN (rtol $RTOL)"
if ! "$REPORT_BIN" diff "$GOLDEN" "$REPORT" --rtol "$RTOL"; then
    echo "FAIL: $REPORT differs from golden $GOLDEN beyond rtol $RTOL" >&2
    exit 1
fi
echo "OK: report matches golden within rtol $RTOL"
