#!/usr/bin/env bash
# Diff a campaign report's summary geomeans against committed golden
# values (the nightly full-paper-grid regression gate).
#
# Golden file format: one line per system, whitespace-separated:
#   <system> <geomean_speedup> <geomean_perf_per_watt>
#
# Timing is integer-tick deterministic, but the geomeans go through
# exp/log in libm, so the comparison uses a relative tolerance
# (GOLDEN_RTOL, default 1e-6) instead of byte equality.
#
# Usage: scripts/check_golden.sh report.json golden.txt
set -euo pipefail

REPORT="${1:?usage: check_golden.sh report.json golden.txt}"
GOLDEN="${2:?usage: check_golden.sh report.json golden.txt}"
RTOL="${GOLDEN_RTOL:-1e-6}"

[[ -f "$REPORT" ]] || { echo "error: report '$REPORT' not found" >&2; exit 2; }
[[ -f "$GOLDEN" ]] || { echo "error: golden '$GOLDEN' not found" >&2; exit 2; }

# Extract "<system> <speedup> <perf/W>" rows from the report's summary
# section (the deterministic writer always renders it last, one member
# per line).
extract_summary() {
    awk '
        /^  "summary":/ { in_summary = 1 }
        !in_summary { next }
        /"system":/  { gsub(/[",]/, "", $2); sys = $2 }
        /"geomean_speedup":/    { gsub(/,/, "", $2); sp = $2 }
        /"geomean_perf_per_watt":/ {
            gsub(/,/, "", $2); print sys, sp, $2
        }
    ' "$1"
}

extract_summary "$REPORT" > /tmp/golden_actual.$$
trap 'rm -f /tmp/golden_actual.$$' EXIT

if [[ ! -s /tmp/golden_actual.$$ ]]; then
    echo "FAIL: no summary rows found in $REPORT" >&2
    exit 1
fi

echo "== summary geomeans in $REPORT"
cat /tmp/golden_actual.$$

# Join on system name and compare each metric within RTOL.
awk -v rtol="$RTOL" '
    function relerr(a, b) {
        d = a - b; if (d < 0) d = -d
        m = a < 0 ? -a : a; if (m < 1e-300) m = 1e-300
        return d / m
    }
    NR == FNR {
        if (NF >= 3 && $1 !~ /^#/) { gsp[$1] = $2; gpw[$1] = $3; n++ }
        next
    }
    {
        seen[$1] = 1
        if (!($1 in gsp)) {
            printf "FAIL: system %s missing from golden file\n", $1
            bad = 1; next
        }
        if (relerr(gsp[$1], $2) > rtol) {
            printf "FAIL: %s geomean_speedup %s != golden %s (rtol %s)\n",
                   $1, $2, gsp[$1], rtol
            bad = 1
        }
        if (relerr(gpw[$1], $3) > rtol) {
            printf "FAIL: %s geomean_perf_per_watt %s != golden %s (rtol %s)\n",
                   $1, $3, gpw[$1], rtol
            bad = 1
        }
    }
    END {
        for (s in gsp) if (!(s in seen)) {
            printf "FAIL: golden system %s missing from report\n", s
            bad = 1
        }
        if (bad) exit 1
        printf "OK: %d systems match golden geomeans within rtol %s\n", n, rtol
    }
' "$GOLDEN" /tmp/golden_actual.$$
