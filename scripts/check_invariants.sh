#!/usr/bin/env bash
# Project-invariant lint: mechanical enforcement of the rules the
# byte-identity and perf oracles only catch after the damage is done
# (docs/testing.md has the full rationale for each).
#
#   R1  Hot-path schedule/callback sites take a *named* closure that is
#       static_assert'ed to fit its InlineFunction inline buffer — no
#       anonymous lambdas straight into schedule()/onComplete. The PR 8
#       padding regression silently heap-allocated every event closure;
#       named-plus-asserted closures turn that class into compile errors.
#   R2  Every writeRunResult() call in the system layer declares its
#       precision policy: either setPreciseDoubles(true) (IPC frames and
#       resume journal, which must round-trip doubles exactly) or the
#       "report-precision: canonical" marker (the committed 12-digit
#       report format) within the preceding window.
#   R3  No rand()/srand()/atoi()/atof() in src/ tools/ — unseeded RNG
#       and unchecked numeric parsing both break the determinism
#       contract. examples/example_args.hh is the one sanctioned home
#       for quick-and-dirty demo parsing.
#   R4  The calendar queue's bucket-count/width power-of-two
#       static_asserts stay in place (index math masks, never divides).
#   R5  Compile probe: the hot-path TUs are re-checked with
#       -fsyntax-only so every fitsInline/packing static_assert actually
#       fires in this tree (a capture that outgrows its buffer fails
#       here even if the full build is stale).
#
# Usage: scripts/check_invariants.sh [repo-root]
#        scripts/check_invariants.sh --self-test
#
# --self-test introduces one violation per rule into a scratch copy of
# the tree and asserts the lint catches each (the same negative-testing
# discipline CI applies to check_doc_links.sh).
set -euo pipefail
shopt -s inherit_errexit
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: command failed" >&2' ERR

if [[ "${1:-}" == "--self-test" ]]; then
    SELF_TEST=1
    ROOT="$(cd "$(dirname "$0")/.." && pwd)"
else
    SELF_TEST=0
    ROOT="${1:-.}"
fi
cd "$ROOT"

CXX="${CXX:-g++}"
fail=0

note() { echo "FAIL: $*" >&2; fail=1; }

# Files whose closures land in InlineFunction hot paths.
HOT_FILES=(
    src/system/machine.cc
    src/dram/vault.cc
    src/core/core_model.cc
    src/system/traffic.cc
)

# --------------------------------------------------------------------- R1
# Anonymous lambda passed straight into a schedule call: the capture's
# size is never named, so nothing asserts it fits inline.
for f in "${HOT_FILES[@]}"; do
    if perl -0777 -ne '
        while (/\bschedule(?:Coalesced|In)?\s*\(((?:[^()]|\([^()]*\))*)\)/gs) {
            my $args = $1;
            exit 1 if $args =~ /\[[^\]]*\]\s*(?:\(|\{|mutable)/s;
        }' "$f"; then
        :
    else
        note "R1 $f: anonymous lambda passed to schedule*();" \
             "name it and static_assert fitsInline<>() first"
    fi
    if grep -q "schedule" "$f" && ! grep -q "fitsInline" "$f"; then
        note "R1 $f: schedules events but carries no fitsInline" \
             "static_assert"
    fi
done

# --------------------------------------------------------------------- R2
# writeRunResult call sites must declare a precision policy nearby.
for f in src/system/campaign.cc src/system/coordinator.cc \
         src/system/report.cc; do
    while IFS=: read -r ln _; do
        start=$((ln > 30 ? ln - 30 : 1))
        if ! sed -n "${start},${ln}p" "$f" |
                grep -qE 'setPreciseDoubles\(true\)|report-precision: canonical'; then
            note "R2 $f:$ln: writeRunResult() without setPreciseDoubles(true)" \
                 "or a 'report-precision: canonical' marker in the" \
                 "preceding 30 lines"
        fi
    done < <(grep -n 'writeRunResult(' "$f" |
             grep -v 'writeRunResult(JsonWriter' || true)
done

# --------------------------------------------------------------------- R3
r3_hits=$(grep -rnE '(^|[^_[:alnum:]])(rand|srand|atoi|atof)[[:space:]]*\(' \
              src/ tools/ --include='*.cc' --include='*.hh' || true)
if [[ -n "$r3_hits" ]]; then
    note "R3 rand()/srand()/atoi()/atof() in src/ or tools/:"$'\n'"$r3_hits"
fi

# --------------------------------------------------------------------- R4
for pat in 'kNumBuckets & (kNumBuckets - 1)' 'kWidth & (kWidth - 1)'; do
    if ! grep -qF "$pat" src/sim/event_queue.hh; then
        note "R4 src/sim/event_queue.hh: power-of-two static_assert" \
             "'$pat' is missing"
    fi
done

# --------------------------------------------------------------------- R5
# Re-run the compiler front end over the hot TUs so the fitsInline /
# kInlineFunctionPacked static_asserts are evaluated against the current
# headers. -fsyntax-only keeps this to a few seconds per file.
for f in "${HOT_FILES[@]}" src/sim/event_queue.cc; do
    if ! "$CXX" -std=c++20 -fsyntax-only -I src "$f" 2>/tmp/invariant-probe.$$; then
        note "R5 $f: compile probe failed (oversized closure or broken" \
             "layout invariant):"$'\n'"$(cat /tmp/invariant-probe.$$)"
    fi
    rm -f /tmp/invariant-probe.$$
done

# ---------------------------------------------------------------- self-test
if [[ "$SELF_TEST" -eq 1 ]]; then
    if [[ "$fail" -ne 0 ]]; then
        echo "self-test aborted: the tree itself fails the lint" >&2
        exit 2
    fi

    sandbox=""
    cleanup() { if [[ -n "$sandbox" ]]; then rm -rf "$sandbox"; fi; }
    trap cleanup EXIT INT TERM

    make_sandbox() {
        cleanup
        sandbox="$(mktemp -d)"
        cp -r src tools scripts "$sandbox/"
    }

    expect_fail() {
        local what="$1"
        if bash scripts/check_invariants.sh "$sandbox" \
                > /dev/null 2>&1; then
            echo "SELF-TEST FAIL: lint missed: $what" >&2
            exit 1
        fi
        echo "self-test ok: caught $what"
    }

    # R1: anonymous lambda handed straight to schedule().
    make_sandbox
    cat >> "$sandbox/src/system/machine.cc" <<'EOF'
namespace mondrian { namespace {
[[maybe_unused]] void selfTestR1(EventQueue &eq)
{
    eq.schedule(Tick{0}, []() {});
}
}}
EOF
    expect_fail "anonymous lambda in a schedule call (R1)"

    # R2: writeRunResult with no declared precision policy.
    make_sandbox
    cat >> "$sandbox/src/system/campaign.cc" <<'EOF'
namespace mondrian { namespace {
[[maybe_unused]] void selfTestR2(JsonWriter &w, const RunResult &r)
{
    writeRunResult(w, r);
}
}}
EOF
    expect_fail "writeRunResult without a precision policy (R2)"

    # R3: unchecked atoi.
    make_sandbox
    printf '\n// probe\nstatic int selfTestR3(const char *s) { return atoi(s); }\n' \
        >> "$sandbox/src/system/campaign.cc"
    expect_fail "atoi() in src/ (R3)"

    # R4: power-of-two static_asserts removed.
    make_sandbox
    sed -i '/kNumBuckets & (kNumBuckets - 1)/d;/kWidth & (kWidth - 1)/d' \
        "$sandbox/src/sim/event_queue.hh"
    expect_fail "missing power-of-two static_asserts (R4)"

    # R5: a hot-path closure that outgrows its inline buffer must fail
    # the compile probe even though it is named (and so passes R1).
    make_sandbox
    cat >> "$sandbox/src/system/machine.cc" <<'EOF'
namespace mondrian { namespace {
[[maybe_unused]] void selfTestR5(EventQueue &eq)
{
    struct Pad { unsigned char bytes[128]; };
    auto oversized = [p = Pad{}]() { (void)p; };
    static_assert(EventQueue::Callback::fitsInline<decltype(oversized)>(),
                  "hot-path closure must fit the inline buffer");
    eq.schedule(Tick{0}, std::move(oversized));
}
}}
EOF
    expect_fail "oversized hot-path closure (R5 compile probe)"

    echo "OK: self-test caught all 5 seeded violations"
    exit 0
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "OK: project invariants hold (R1-R5)"
