#!/usr/bin/env bash
# Launch a fleet of remote campaign workers over ssh and keep them tied
# to this script's lifetime: each host runs N `mondrian_campaign
# --worker-connect` processes dialing back to the coordinator, and every
# one of them is torn down when this script exits for any reason
# (normal exit, Ctrl-C, or a kill from the outside).
#
# Usage:
#   scripts/launch_workers.sh COORD_HOST:PORT HOST [HOST...]
#
# Environment knobs:
#   WORKERS_PER_HOST   processes per host               (default: 1)
#   WORKER_BIN         remote path to mondrian_campaign (default: mondrian_campaign)
#   HELLO_TOKEN        shared secret for the hello handshake (default: unset)
#   WORKER_CACHE       remote --worker-cache directory  (default: unset)
#   SSH                ssh command to use               (default: ssh -o BatchMode=yes)
#
# The coordinator side is started separately, e.g.:
#   mondrian_campaign --smoke --listen 0.0.0.0:17333 --out report.json
set -euo pipefail
shopt -s inherit_errexit
trap 'echo "error: ${BASH_SOURCE[0]}:${LINENO}: command failed" >&2' ERR

if [[ $# -lt 2 ]]; then
    echo "usage: $0 COORD_HOST:PORT HOST [HOST...]" >&2
    exit 2
fi

ENDPOINT="$1"
shift
HOSTS=("$@")

WORKERS_PER_HOST="${WORKERS_PER_HOST:-1}"
WORKER_BIN="${WORKER_BIN:-mondrian_campaign}"
SSH="${SSH:-ssh -o BatchMode=yes}"

if ! [[ "$ENDPOINT" == *:* && "${ENDPOINT##*:}" =~ ^[0-9]+$ ]]; then
    echo "error: '$ENDPOINT' is not HOST:PORT" >&2
    exit 2
fi

# Workers reconnect on transient drops by themselves (--worker-connect
# retries with backoff); the launcher's only job is process lifetime.
worker_cmd=("$WORKER_BIN" --worker-connect "$ENDPOINT")
if [[ -n "${HELLO_TOKEN:-}" ]]; then
    worker_cmd+=(--hello-token "$HELLO_TOKEN")
fi
if [[ -n "${WORKER_CACHE:-}" ]]; then
    worker_cmd+=(--worker-cache "$WORKER_CACHE")
fi

pids=()
teardown() {
    # Kill the local ssh clients; ssh -t allocated a tty on the remote
    # side, so the hangup propagates and the workers die with it.
    local pid
    for pid in "${pids[@]:-}"; do
        [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${pids[@]:-}"; do
        [[ -n "$pid" ]] && wait "$pid" 2>/dev/null || true
    done
}
trap teardown EXIT INT TERM

echo "launching ${WORKERS_PER_HOST} worker(s) on ${#HOSTS[@]} host(s)" \
     "-> $ENDPOINT"
for host in "${HOSTS[@]}"; do
    for ((i = 0; i < WORKERS_PER_HOST; i++)); do
        # shellcheck disable=SC2029  # remote expansion is intentional
        $SSH -t -t "$host" "${worker_cmd[@]@Q}" \
            > >(sed "s/^/[$host.$i] /") 2>&1 &
        pids+=("$!")
    done
done

echo "workers up; press Ctrl-C (or kill this script) to tear them down"
status=0
for pid in "${pids[@]}"; do
    wait "$pid" || status=$?
done
# A worker that was rejected or exhausted its reconnect budget exits 5;
# surface that instead of swallowing it.
exit "$status"
