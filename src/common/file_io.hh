/**
 * @file
 * Tiny file-output helper shared by the CLIs and examples.
 *
 * An ofstream opens fine on a full disk and fails mid-write; its
 * destructor swallows the error, so an unchecked `out << text` can exit
 * 0 having written a truncated artifact. Every writer of report/CSV
 * artifacts goes through writeTextFile() so that cannot happen.
 */

#ifndef MONDRIAN_COMMON_FILE_IO_HH
#define MONDRIAN_COMMON_FILE_IO_HH

#include <fstream>
#include <string>

namespace mondrian {

/**
 * Write @p text to @p path (binary, replacing any existing file).
 * @return false with @p error set when the file cannot be opened or the
 * write does not complete (e.g. disk full).
 */
inline bool
writeTextFile(const std::string &path, const std::string &text,
              std::string &error)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        error = "cannot open '" + path + "' for writing";
        return false;
    }
    out << text;
    out.flush();
    if (!out.good()) {
        error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace mondrian

#endif // MONDRIAN_COMMON_FILE_IO_HH
