/**
 * @file
 * Small integer-math helpers (powers of two, logs, divisions).
 */

#ifndef MONDRIAN_COMMON_INTMATH_HH
#define MONDRIAN_COMMON_INTMATH_HH

#include <bit>
#include <cstdint>

namespace mondrian {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** ceil(a / b). */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 64) ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << len) - 1));
}

} // namespace mondrian

#endif // MONDRIAN_COMMON_INTMATH_HH
