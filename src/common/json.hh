/**
 * @file
 * Minimal deterministic JSON writer.
 *
 * Campaign reports must be byte-identical across runs and across --jobs
 * counts, so the writer is fully deterministic: keys appear in insertion
 * order, doubles format via std::to_chars in general style with 12
 * significant digits (round-trippable for the magnitudes we emit), and
 * there is no locale dependence. Output is pretty-printed with two-space
 * indents so CI artifacts diff cleanly.
 */

#ifndef MONDRIAN_COMMON_JSON_HH
#define MONDRIAN_COMMON_JSON_HH

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mondrian {

/** Streaming JSON writer with deterministic formatting. */
class JsonWriter
{
  public:
    JsonWriter() { out_.reserve(4096); }

    JsonWriter &beginObject() { open('{'); return *this; }
    JsonWriter &endObject() { close('}'); return *this; }
    JsonWriter &beginArray() { open('['); return *this; }
    JsonWriter &endArray() { close(']'); return *this; }

    /** Start a named member inside an object; follow with a value/begin. */
    JsonWriter &
    key(const std::string &k)
    {
        comma();
        indent();
        quote(k);
        out_ += ": ";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &value(const std::string &v) { pre(); quote(v); return *this; }
    JsonWriter &value(const char *v) { pre(); quote(v); return *this; }
    JsonWriter &value(bool v) { pre(); out_ += v ? "true" : "false"; return *this; }

    JsonWriter &
    value(std::uint64_t v)
    {
        pre();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out_ += buf;
        return *this;
    }

    JsonWriter &value(std::uint32_t v) { return value(std::uint64_t{v}); }

    JsonWriter &
    value(std::int64_t v)
    {
        pre();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        out_ += buf;
        return *this;
    }

    /**
     * The canonical numeric encoding of report values: 12 significant
     * digits, locale-independent. Public because identity-sensitive
     * callers (the campaign resume key, duplicate-axis rejection) must
     * encode doubles exactly the way reports do — if this precision ever
     * changes, those invariants follow automatically.
     */
    static void
    appendDouble(std::string &out, double v)
    {
        // std::to_chars is locale-independent (snprintf "%g" honors
        // LC_NUMERIC and would break both JSON validity and the
        // byte-determinism contract under e.g. a de_DE host program).
        char buf[40];
        auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 12);
        out.append(buf, res.ptr);
    }

    /** appendDouble() as a fresh string — the canonical label of a
     *  double-valued axis coordinate (report text, resume keys, CSV). */
    static std::string
    doubleString(double v)
    {
        std::string out;
        appendDouble(out, v);
        return out;
    }

    JsonWriter &
    value(double v)
    {
        pre();
        if (!std::isfinite(v)) { // JSON has no inf/nan
            out_ += "null";
            return *this;
        }
        if (precise_) {
            // Shortest round-trippable form: parsing the text with
            // strtod recovers the exact bit pattern. Used for machine-
            // to-machine JSON (worker result frames, the campaign
            // journal) where a re-serialized value must be
            // indistinguishable from the original computation.
            char buf[40];
            auto res = std::to_chars(buf, buf + sizeof(buf), v);
            out_.append(buf, res.ptr);
        } else {
            appendDouble(out_, v);
        }
        return *this;
    }

    /**
     * Switch double encoding from the canonical 12-significant-digit
     * report form to exact shortest-round-trip form. Report artifacts
     * must stay in the canonical form (byte-compatibility); only
     * IPC/journal documents that are parsed back into RunResults — and
     * re-emitted through this writer in canonical form — use this.
     */
    JsonWriter &
    setPreciseDoubles(bool precise)
    {
        precise_ = precise;
        return *this;
    }

    /**
     * Collapse a pretty-printed document onto one line by dropping each
     * newline plus its following indent. String values never contain
     * raw newlines (the escaper emits \n), so this is purely a
     * formatting transform — the parse tree is unchanged. Used for
     * newline-delimited journal lines and worker protocol frames.
     */
    static std::string
    compact(const std::string &pretty)
    {
        std::string out;
        out.reserve(pretty.size());
        for (std::size_t i = 0; i < pretty.size(); ++i) {
            if (pretty[i] == '\n') {
                while (i + 1 < pretty.size() && pretty[i + 1] == ' ')
                    ++i;
                continue;
            }
            out += pretty[i];
        }
        return out;
    }

    /** Shorthand for key(k).value(v). */
    template <typename T>
    JsonWriter &
    member(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /**
     * Emit @p raw verbatim as the next value. The caller guarantees it is
     * a valid JSON value whose internal indentation matches this nesting
     * depth — used to splice cached subtrees byte-identically (campaign
     * --resume).
     */
    JsonWriter &
    rawValue(const std::string &raw)
    {
        pre();
        out_ += raw;
        return *this;
    }

    /** Finished document (valid once all containers are closed). */
    const std::string &str() const { return out_; }

  private:
    void
    open(char c)
    {
        pre();
        out_ += c;
        first_.push_back(true);
    }

    void
    close(char c)
    {
        bool empty = first_.back();
        first_.pop_back();
        if (!empty) {
            out_ += '\n';
            indentRaw();
        }
        out_ += c;
    }

    /** Handle comma/indent for a value in the current container. */
    void
    pre()
    {
        if (pendingValue_) {
            pendingValue_ = false;
            return; // already positioned after "key: "
        }
        if (!first_.empty()) {
            comma();
            indent();
        }
    }

    void
    comma()
    {
        if (first_.empty())
            return;
        if (!first_.back())
            out_ += ',';
        first_.back() = false;
        out_ += '\n';
    }

    void
    indent()
    {
        indentRaw();
    }

    void
    indentRaw()
    {
        out_.append(2 * first_.size(), ' ');
    }

    void
    quote(const std::string &s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
              case '"': out_ += "\\\""; break;
              case '\\': out_ += "\\\\"; break;
              case '\n': out_ += "\\n"; break;
              case '\t': out_ += "\\t"; break;
              case '\r': out_ += "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<bool> first_; ///< per open container: no member emitted yet
    bool pendingValue_ = false;
    bool precise_ = false; ///< exact doubles (IPC/journal) vs canonical 12
};

} // namespace mondrian

#endif // MONDRIAN_COMMON_JSON_HH
