#include "common/json_parse.hh"

#include <cctype>
#include <charconv>

namespace mondrian {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::kNumber)
        return 0;
    std::uint64_t v = 0;
    std::from_chars(text.data(), text.data() + text.size(), v);
    return v;
}

double
JsonValue::asDouble() const
{
    return kind == Kind::kNumber ? number : 0.0;
}

const std::string &
JsonValue::asString() const
{
    static const std::string empty;
    return kind == Kind::kString ? text : empty;
}

namespace {

/** Append one Unicode code point to @p out as UTF-8. */
void
appendUtf8(std::string &out, std::uint32_t code)
{
    if (code < 0x80) {
        out += static_cast<char>(code);
    } else if (code < 0x800) {
        out += static_cast<char>(0xc0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
        out += static_cast<char>(0xe0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
        out += static_cast<char>(0xf0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (code & 0x3f));
    }
}

/** Parse the 4 hex digits at @p pos; false when short or non-hex. */
bool
parseHex4(const std::string &text, std::size_t pos, std::uint32_t &code)
{
    if (pos + 4 > text.size())
        return false;
    code = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        char c = text[pos + i];
        code <<= 4;
        if (c >= '0' && c <= '9')
            code |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            code |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            code |= static_cast<std::uint32_t>(c - 'A' + 10);
        else
            return false;
    }
    return true;
}

} // namespace

bool
jsonUnescape(const std::string &body, std::string &out, std::string &error)
{
    out.clear();
    out.reserve(body.size());
    std::size_t pos = 0;
    while (pos < body.size()) {
        char c = body[pos++];
        if (c != '\\') {
            out += c;
            continue;
        }
        if (pos >= body.size()) {
            error = "dangling backslash";
            return false;
        }
        char e = body[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            std::uint32_t code;
            if (!parseHex4(body, pos, code)) {
                error = "bad \\u escape";
                return false;
            }
            pos += 4;
            if (code >= 0xdc00 && code <= 0xdfff) {
                error = "unpaired low surrogate in \\u escape";
                return false;
            }
            if (code >= 0xd800 && code <= 0xdbff) {
                // High surrogate: a \uDC00-\uDFFF low half must follow,
                // and the pair encodes one supplementary code point.
                std::uint32_t lo = 0;
                if (pos + 6 > body.size() || body[pos] != '\\' ||
                    body[pos + 1] != 'u' ||
                    !parseHex4(body, pos + 2, lo) || lo < 0xdc00 ||
                    lo > 0xdfff) {
                    error = "unpaired high surrogate in \\u escape";
                    return false;
                }
                pos += 6;
                code = 0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
            }
            appendUtf8(out, code);
            break;
          }
          default:
            error = std::string("unknown escape '\\") + e + "'";
            return false;
        }
    }
    return true;
}

namespace {

/** Recursive-descent parser over the source text. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        // Find the closing quote (a backslash always escapes the next
        // byte), then decode the whole body in one pass.
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                ++pos_;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        std::string escape_error;
        if (!jsonUnescape(text_.substr(start, pos_ - start), out,
                          escape_error))
            return fail(escape_error);
        ++pos_; // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        // Containers recurse; bound the depth so a malformed document
        // fails with an error instead of overflowing the stack. The
        // writer never nests past single digits.
        if (depth_ >= kMaxDepth)
            return fail("nesting deeper than 256 levels");
        out.begin = pos_;
        char c = text_[pos_];
        bool ok;
        switch (c) {
          case '{':
            ++depth_;
            ok = parseObject(out);
            --depth_;
            break;
          case '[':
            ++depth_;
            ok = parseArray(out);
            --depth_;
            break;
          case '"':
            out.kind = JsonValue::Kind::kString;
            ok = parseString(out.text);
            break;
          case 't':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            ok = literal("true");
            break;
          case 'f':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            ok = literal("false");
            break;
          case 'n':
            out.kind = JsonValue::Kind::kNull;
            ok = literal("null");
            break;
          default:
            ok = parseNumber(out);
            break;
        }
        if (!ok)
            return false;
        out.end = pos_;
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                c == 'e' || c == 'E' || c == '-' || c == '+') {
                digits = digits ||
                         std::isdigit(static_cast<unsigned char>(c));
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits) {
            pos_ = start;
            return fail("expected value");
        }
        out.kind = JsonValue::Kind::kNumber;
        out.text = text_.substr(start, pos_ - start);
        // std::from_chars, not strtod: the writer's locale-independence
        // contract (json.hh) extends to the read path.
        auto res = std::from_chars(out.text.data(),
                                   out.text.data() + out.text.size(),
                                   out.number);
        if (res.ec != std::errc{}) {
            pos_ = start;
            return fail("malformed number");
        }
        return true;
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::kArray;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    static constexpr int kMaxDepth = 256;

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    Parser p(text, error);
    return p.parseDocument(out);
}

} // namespace mondrian
