/**
 * @file
 * Minimal JSON parser for reading back campaign reports.
 *
 * Counterpart of JsonWriter (json.hh): parses the deterministic documents
 * the simulator writes. Every value remembers its [begin, end) byte span
 * in the source text, so callers that must reproduce a subtree
 * byte-identically (campaign --resume splices cached run results
 * verbatim) can copy the original text instead of re-serializing —
 * re-serialization of doubles could disturb the last printed digit.
 *
 * Deliberately small: objects as insertion-ordered vectors (the writer
 * emits deterministic key order), numbers kept both as double and as raw
 * text (so 64-bit integers such as seeds survive exactly). String escapes
 * decode fully — including \uXXXX to UTF-8 with surrogate pairs — via
 * jsonUnescape(), the exact inverse of JsonWriter's escaper.
 */

#ifndef MONDRIAN_COMMON_JSON_PARSE_HH
#define MONDRIAN_COMMON_JSON_PARSE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mondrian {

/** One parsed JSON value (tree node). */
struct JsonValue
{
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text; ///< string value, or raw number literal
    std::vector<JsonValue> items;                            ///< array
    std::vector<std::pair<std::string, JsonValue>> members;  ///< object
    std::size_t begin = 0; ///< byte offset of this value in the source
    std::size_t end = 0;   ///< one past the value's last byte

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isNumber() const { return kind == Kind::kNumber; }
    bool isString() const { return kind == Kind::kString; }

    /** Number as u64, parsed from the raw literal (exact for integers). */
    std::uint64_t asU64() const;
    /** Number as double (0.0 for null — the writer's non-finite marker). */
    double asDouble() const;
    /** String value ("" when not a string). */
    const std::string &asString() const;
};

/**
 * Parse @p text into @p out.
 * @return true on success; false with a human-readable @p error otherwise.
 */
bool parseJson(const std::string &text, JsonValue &out, std::string &error);

/**
 * Decode the escaped body of a JSON string (the characters between the
 * quotes) into UTF-8. Handles the simple escapes (\" \\ \/ \n \t \r \b
 * \f) and \uXXXX — including surrogate pairs, which encode as one
 * code point — making it the exact inverse of JsonWriter's escaper.
 * @return false with @p error set on malformed escapes (dangling
 * backslash, bad hex, unpaired surrogates).
 */
bool jsonUnescape(const std::string &body, std::string &out,
                  std::string &error);

} // namespace mondrian

#endif // MONDRIAN_COMMON_JSON_PARSE_HH
