/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  -- an internal invariant was violated (simulator bug); aborts.
 * fatal()  -- the user asked for something impossible (bad config); exits.
 * warn()   -- behaviour is approximate but usable.
 * inform() -- plain status output.
 */

#ifndef MONDRIAN_COMMON_LOGGING_HH
#define MONDRIAN_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mondrian {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

#define panic(...) ::mondrian::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::mondrian::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::mondrian::warnImpl(__VA_ARGS__)
#define inform(...) ::mondrian::informImpl(__VA_ARGS__)

/** panic() unless the invariant holds. */
#define sim_assert(cond)                                                      \
    do {                                                                      \
        if (!(cond))                                                          \
            panic("assertion failed: %s", #cond);                             \
    } while (0)

} // namespace mondrian

#endif // MONDRIAN_COMMON_LOGGING_HH
