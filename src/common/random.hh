/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every workload generator and test uses this xoshiro256** engine so runs
 * are reproducible across platforms (std::mt19937 would also work, but a
 * self-contained engine keeps the simulator independent of libstdc++
 * distribution details).
 */

#ifndef MONDRIAN_COMMON_RANDOM_HH
#define MONDRIAN_COMMON_RANDOM_HH

#include <cstdint>

namespace mondrian {

/** xoshiro256** PRNG with splitmix64 seeding. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) using Lemire's rejection method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Reseed the engine deterministically. */
    void seed(std::uint64_t seed);

  private:
    std::uint64_t state_[4];
};

} // namespace mondrian

#endif // MONDRIAN_COMMON_RANDOM_HH
