/**
 * @file
 * Fundamental scalar types and unit helpers shared across the simulator.
 *
 * The simulation clock counts picoseconds (Tick). Using a sub-nanosecond
 * base unit lets the 2 GHz CPU, 1 GHz NMP cores, 10 GHz SerDes links and the
 * 1.6 ns DRAM clock all tick on exact integer boundaries.
 */

#ifndef MONDRIAN_COMMON_TYPES_HH
#define MONDRIAN_COMMON_TYPES_HH

#include <cstdint>

namespace mondrian {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Physical byte address in the flat NMP address space. */
using Addr = std::uint64_t;

/** Cycle count within some clock domain. */
using Cycles = std::uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick kTickNever = ~Tick{0};

/** Ticks per common time units. */
constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Byte-size helpers. */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
periodFromMHz(std::uint64_t mhz)
{
    return kSecond / (mhz * 1000 * 1000);
}

/** Convert ticks to (floating-point) seconds, for reporting. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Bandwidth in GB/s given bytes moved over a tick interval. */
constexpr double
bytesPerTickToGBps(double bytes, Tick interval)
{
    if (interval == 0)
        return 0.0;
    // 1 byte/ns == 1 GB/s; ticks are picoseconds.
    return 1000.0 * bytes / static_cast<double>(interval);
}

} // namespace mondrian

#endif // MONDRIAN_COMMON_TYPES_HH
