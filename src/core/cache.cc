#include "core/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.sizeBytes % (std::uint64_t{cfg_.lineBytes} * cfg_.associativity))
        fatal("cache size must be a multiple of line*assoc");
    numSets_ = cfg_.sizeBytes / (std::uint64_t{cfg_.lineBytes} *
                                 cfg_.associativity);
    lines_.assign(numSets_ * cfg_.associativity, Line{});
}

std::optional<Addr>
Cache::fill(std::uint64_t line, bool dirty, bool prefetched)
{
    std::size_t set = setOf(line);
    Line *victim = nullptr;
    for (std::size_t w = 0; w < cfg_.associativity; ++w) {
        Line &l = lines_[set * cfg_.associativity + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }

    std::optional<Addr> writeback;
    if (victim->valid && victim->dirty) {
        writeback = victim->tag * cfg_.lineBytes;
        stats_.writebacks++;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lruStamp = ++stamp_;
    return writeback;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    stats_.accesses++;
    CacheAccessResult res;
    std::uint64_t line = lineAddr(addr);
    std::size_t set = setOf(line);

    for (std::size_t w = 0; w < cfg_.associativity; ++w) {
        Line &l = lines_[set * cfg_.associativity + w];
        if (l.valid && l.tag == line) {
            res.hit = true;
            res.prefetchHit = l.prefetched;
            if (l.prefetched) {
                stats_.prefetchHits++;
                l.prefetched = false; // first demand touch consumes the tag
                // Keep the stream rolling: prefetch ahead of the
                // consumed line too, not just on demand misses.
                for (unsigned i = 1; i <= cfg_.prefetchDepth; ++i) {
                    res.prefetchFills.push_back((line + i) *
                                                cfg_.lineBytes);
                    stats_.prefetchIssued++;
                }
            } else {
                stats_.hits++;
            }
            l.dirty |= is_write;
            l.lruStamp = ++stamp_;
            return res;
        }
    }

    // Miss: fill, and trigger the next-line prefetcher.
    stats_.misses++;
    res.writebackAddr = fill(line, is_write, false);
    for (unsigned i = 1; i <= cfg_.prefetchDepth; ++i) {
        res.prefetchFills.push_back((line + i) * cfg_.lineBytes);
        stats_.prefetchIssued++;
    }
    return res;
}

bool
Cache::insertPrefetch(Addr addr)
{
    std::uint64_t line = lineAddr(addr);
    std::size_t set = setOf(line);
    for (std::size_t w = 0; w < cfg_.associativity; ++w) {
        Line &l = lines_[set * cfg_.associativity + w];
        if (l.valid && l.tag == line)
            return false; // already resident
    }
    fill(line, false, true);
    return true;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l = Line{};
}

} // namespace mondrian
