#include "core/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg_.sizeBytes % (std::uint64_t{cfg_.lineBytes} * cfg_.associativity))
        fatal("cache size must be a multiple of line*assoc");
    numSets_ = cfg_.sizeBytes / (std::uint64_t{cfg_.lineBytes} *
                                 cfg_.associativity);
    if (cfg_.prefetchDepth > CacheAccessResult::kMaxPrefetch)
        fatal("prefetchDepth %u exceeds inline result capacity %u",
              cfg_.prefetchDepth, CacheAccessResult::kMaxPrefetch);
    tags_.assign(numSets_ * cfg_.associativity, kNoTag);
    stamps_.assign(numSets_ * cfg_.associativity, 0);
    flags_.assign(numSets_ * cfg_.associativity, 0);
}

Cache::Probe
Cache::probe(std::uint64_t line) const
{
    // Single pass over the set: find the tag (dense scan — invalid ways
    // hold kNoTag, which no real line equals) while tracking the victim
    // a fill would pick: first invalid way, else LRU. The one victim
    // policy serves demand fills and prefetch inserts alike, keeping the
    // replacement behavior of the two paths identical by construction.
    const std::size_t base = setOf(line) * cfg_.associativity;
    Probe p{kNoWay, base};
    bool invalid_victim = false;
    for (std::size_t w = 0; w < cfg_.associativity; ++w) {
        std::size_t i = base + w;
        if (tags_[i] == line) {
            p.hit = i;
            return p; // victim is irrelevant on a hit
        }
        if (invalid_victim)
            continue;
        if (!(flags_[i] & kValid)) {
            p.victim = i;
            invalid_victim = true;
        } else if (w == 0 || stamps_[i] < stamps_[p.victim]) {
            p.victim = i;
        }
    }
    return p;
}

std::optional<Addr>
Cache::fillAt(std::size_t idx, std::uint64_t line, bool dirty,
              bool prefetched)
{
    std::optional<Addr> writeback;
    if ((flags_[idx] & (kValid | kDirty)) == (kValid | kDirty)) {
        writeback = tags_[idx] * cfg_.lineBytes;
        stats_.writebacks++;
    }
    tags_[idx] = line;
    flags_[idx] = static_cast<std::uint8_t>(
        kValid | (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0));
    stamps_[idx] = ++stamp_;
    return writeback;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    stats_.accesses++;
    CacheAccessResult res;
    std::uint64_t line = lineAddr(addr);
    Probe p = probe(line);

    if (p.hit != kNoWay) {
        std::size_t i = p.hit;
        res.hit = true;
        res.prefetchHit = (flags_[i] & kPrefetched) != 0;
        if (res.prefetchHit) {
            stats_.prefetchHits++;
            flags_[i] &= static_cast<std::uint8_t>(~kPrefetched);
            // Keep the stream rolling: prefetch ahead of the consumed
            // line too, not just on demand misses.
            for (unsigned d = 1; d <= cfg_.prefetchDepth; ++d) {
                res.prefetchFills.push_back((line + d) * cfg_.lineBytes);
                stats_.prefetchIssued++;
            }
        } else {
            stats_.hits++;
        }
        if (is_write)
            flags_[i] |= kDirty;
        stamps_[i] = ++stamp_;
        return res;
    }

    // Miss: fill over the probe's victim, trigger the prefetcher.
    stats_.misses++;
    res.writebackAddr = fillAt(p.victim, line, is_write, false);
    for (unsigned d = 1; d <= cfg_.prefetchDepth; ++d) {
        res.prefetchFills.push_back((line + d) * cfg_.lineBytes);
        stats_.prefetchIssued++;
    }
    return res;
}

std::uint32_t
Cache::accessRun(Addr addr, std::uint32_t size, std::uint32_t n,
                 bool is_write)
{
    std::uint32_t done = 0;
    while (done < n) {
        std::uint64_t line = lineAddr(addr + Addr{done} * size);
        Probe p = probe(line);
        if (p.hit == kNoWay || (flags_[p.hit] & kPrefetched))
            break; // boundary: the per-access path models this one
        // Count the accesses whose start falls on this same line; one
        // probe then covers them all.
        std::uint32_t k = 1;
        while (done + k < n &&
               lineAddr(addr + Addr{done + k} * size) == line)
            ++k;
        stats_.accesses += k;
        stats_.hits += k;
        if (is_write)
            flags_[p.hit] |= kDirty;
        // k individual hits each do stamps_[i] = ++stamp_; only the last
        // value sticks, so bump the clock by k and store once.
        stamp_ += k;
        stamps_[p.hit] = stamp_;
        done += k;
    }
    return done;
}

bool
Cache::insertPrefetch(Addr addr)
{
    std::uint64_t line = lineAddr(addr);
    Probe p = probe(line);
    if (p.hit != kNoWay)
        return false; // already resident
    fillAt(p.victim, line, false, true);
    return true;
}

void
Cache::flush()
{
    std::fill(tags_.begin(), tags_.end(), kNoTag);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    std::fill(flags_.begin(), flags_.end(), 0);
}

} // namespace mondrian
