/**
 * @file
 * Set-associative cache tag model with LRU replacement, write-back /
 * write-allocate policy and an optional next-line prefetcher.
 *
 * The cache tracks tags only — data lives in the functional backing store.
 * Core models consult the cache on every load/store: hits cost the cache's
 * latency, misses produce a line fill (and possibly a dirty writeback) that
 * the core turns into DRAM traffic.
 *
 * The next-line prefetcher (CPU and NMP baselines, §6) reacts to demand
 * misses by pre-inserting the next N lines, tagged as prefetched; the first
 * demand hit on a prefetched line is charged the prefetch-hit latency
 * (the line may still be in flight) and the fill traffic is reported so
 * the caller can account DRAM bandwidth and energy.
 */

#ifndef MONDRIAN_CORE_CACHE_HH
#define MONDRIAN_CORE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Cache geometry and policy parameters. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * kKiB;
    unsigned associativity = 2;
    unsigned lineBytes = 64;
    Cycles hitLatency = 2;
    unsigned prefetchDepth = 0; ///< next-line prefetcher lines (0 = off)
};

/** Result of one cache lookup. */
struct CacheAccessResult
{
    bool hit = false;
    bool prefetchHit = false; ///< hit on a line brought in by the prefetcher
    /** Dirty line evicted by this access's fill, if any. */
    std::optional<Addr> writebackAddr;
    /** Lines the prefetcher wants filled as a consequence of this access. */
    std::vector<Addr> prefetchFills;
};

/** Cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchIssued = 0;
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on miss the line is filled (possibly evicting).
     * @param is_write marks the line dirty on hit or fill.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /**
     * Insert a line as prefetched (no stats, no recursion).
     * @return true when the line was newly inserted (fill traffic due).
     */
    bool insertPrefetch(Addr addr);

    /** Invalidate everything (between phases / tests). */
    void flush();

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    double
    hitRate() const
    {
        return stats_.accesses == 0
                   ? 0.0
                   : static_cast<double>(stats_.hits) /
                         static_cast<double>(stats_.accesses);
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t lineAddr(Addr a) const { return a / cfg_.lineBytes; }
    std::size_t setOf(std::uint64_t line) const { return line % numSets_; }

    /** Fill @p line into its set; returns dirty victim address if any. */
    std::optional<Addr> fill(std::uint64_t line, bool dirty, bool prefetched);

    CacheConfig cfg_;
    std::size_t numSets_;
    std::vector<Line> lines_; ///< numSets_ x associativity
    std::uint64_t stamp_ = 0;
    CacheStats stats_;
};

} // namespace mondrian

#endif // MONDRIAN_CORE_CACHE_HH
