/**
 * @file
 * Set-associative cache tag model with LRU replacement, write-back /
 * write-allocate policy and an optional next-line prefetcher.
 *
 * The cache tracks tags only — data lives in the functional backing store.
 * Core models consult the cache on every load/store: hits cost the cache's
 * latency, misses produce a line fill (and possibly a dirty writeback) that
 * the core turns into DRAM traffic.
 *
 * The next-line prefetcher (CPU and NMP baselines, §6) reacts to demand
 * misses by pre-inserting the next N lines, tagged as prefetched; the first
 * demand hit on a prefetched line is charged the prefetch-hit latency
 * (the line may still be in flight) and the fill traffic is reported so
 * the caller can account DRAM bandwidth and energy.
 */

#ifndef MONDRIAN_CORE_CACHE_HH
#define MONDRIAN_CORE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Cache geometry and policy parameters. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * kKiB;
    unsigned associativity = 2;
    unsigned lineBytes = 64;
    Cycles hitLatency = 2;
    unsigned prefetchDepth = 0; ///< next-line prefetcher lines (0 = off)
};

/** Result of one cache lookup. */
struct CacheAccessResult
{
    /** Upper bound on prefetchDepth; keeps the result heap-free. */
    static constexpr unsigned kMaxPrefetch = 8;

    bool hit = false;
    bool prefetchHit = false; ///< hit on a line brought in by the prefetcher
    /** Dirty line evicted by this access's fill, if any. */
    std::optional<Addr> writebackAddr;

    /**
     * Lines the prefetcher wants filled as a consequence of this access.
     * Inline storage: this struct is created on every access of the
     * replay hot loop, so it must not allocate.
     */
    struct PrefetchList
    {
        Addr addrs[kMaxPrefetch];
        unsigned count = 0;

        void push_back(Addr a) { addrs[count++] = a; }
        Addr operator[](unsigned i) const { return addrs[i]; }
        const Addr *begin() const { return addrs; }
        const Addr *end() const { return addrs + count; }
        unsigned size() const { return count; }
        bool empty() const { return count == 0; }
    };
    PrefetchList prefetchFills;
};

/** Cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchIssued = 0;
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on miss the line is filled (possibly evicting).
     * @param is_write marks the line dirty on hit or fill.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /**
     * Closed-form batch of an RLE run's leading plain hits: accesses
     * k = 0..n-1 at @p addr + k * @p size, consumed while each one's
     * start line is resident, valid and NOT prefetch-tagged — i.e. while
     * access(addr_k, is_write) would be a plain hit with no side traffic.
     * Consumed accesses update stats, dirty bits and LRU stamps exactly
     * as n individual access() calls would (stamps advance once per
     * access, so victim selection downstream is unchanged); the first
     * boundary access (miss, prefetch hit) is left untouched for the
     * caller's per-access path.
     *
     * @return number of leading accesses consumed (0..n).
     */
    std::uint32_t accessRun(Addr addr, std::uint32_t size, std::uint32_t n,
                            bool is_write);

    /**
     * Insert a line as prefetched (no stats, no recursion).
     * @return true when the line was newly inserted (fill traffic due).
     */
    bool insertPrefetch(Addr addr);

    /** Invalidate everything (between phases / tests). */
    void flush();

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    double
    hitRate() const
    {
        return stats_.accesses == 0
                   ? 0.0
                   : static_cast<double>(stats_.hits) /
                         static_cast<double>(stats_.accesses);
    }

  private:
    /** Tag value of an invalid way (no real line maps to it). */
    static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kDirty = 2;
    static constexpr std::uint8_t kPrefetched = 4;

    std::uint64_t lineAddr(Addr a) const { return a / cfg_.lineBytes; }
    std::size_t setOf(std::uint64_t line) const { return line % numSets_; }

    /** Sentinel way index: no matching way in the set. */
    static constexpr std::size_t kNoWay = ~std::size_t{0};

    /** One-pass set lookup: matching way (or kNoWay) plus fill victim. */
    struct Probe
    {
        std::size_t hit;    ///< way holding the line, or kNoWay
        std::size_t victim; ///< way a fill would replace (miss only)
    };
    Probe probe(std::uint64_t line) const;

    /**
     * Install @p line over way @p idx (a victim probe() selected).
     * @return dirty victim address if any.
     */
    std::optional<Addr> fillAt(std::size_t idx, std::uint64_t line,
                               bool dirty, bool prefetched);

    CacheConfig cfg_;
    std::size_t numSets_;
    // Structure-of-arrays line metadata: the tag probe — the per-access
    // hot loop — touches only the dense tag array. Invalid ways hold
    // kNoTag so the probe needs no validity test.
    std::vector<std::uint64_t> tags_;   ///< numSets_ x associativity
    std::vector<std::uint64_t> stamps_; ///< LRU stamps
    std::vector<std::uint8_t> flags_;   ///< kValid | kDirty | kPrefetched
    std::uint64_t stamp_ = 0;
    CacheStats stats_;
};

} // namespace mondrian

#endif // MONDRIAN_CORE_CACHE_HH
