#include "core/core_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

CoreConfig
cortexA57()
{
    CoreConfig c;
    c.name = "cortex-a57";
    c.period = periodFromMHz(2000); // 2 GHz
    c.issueWidth = 3;
    // §3.2: a 128-entry ROB sustains about 20 outstanding accesses.
    c.maxOutstandingLoads = 20;
    c.maxOutstandingStores = 24;
    // 32 MSHRs + next-line prefetcher keep sequential streams deep.
    c.streamDepth = 12;
    c.peakPowerWatts = 2.1; // Table 4
    return c;
}

CoreConfig
krait400()
{
    CoreConfig c;
    c.name = "krait400";
    c.period = periodFromMHz(1000); // 1 GHz
    c.issueWidth = 3;
    // 48-entry ROB: roughly 8 concurrent fine-grained accesses.
    c.maxOutstandingLoads = 8;
    c.maxOutstandingStores = 12;
    c.streamDepth = 6; // next-line prefetcher (3 lines) + MSHRs
    c.peakPowerWatts = 0.312; // vault power budget (Table 4)
    return c;
}

CoreConfig
cortexA35Simd()
{
    CoreConfig c;
    c.name = "cortex-a35-simd";
    c.period = periodFromMHz(1000); // 1 GHz
    c.issueWidth = 2;
    // In-order dual-issue: a single demand miss stalls the pipeline...
    c.maxOutstandingLoads = 2;
    c.maxOutstandingStores = 16; // object buffer drains posted stores
    // ...but the eight stream buffers keep eight fetches in flight.
    c.streamDepth = 8;
    c.peakPowerWatts = 0.180; // modified A35 estimate (§5.2)
    return c;
}

TraceCore::TraceCore(EventQueue &eq, const CoreConfig &cfg, MemoryPath &path,
                     unsigned core_id)
    : eq_(eq), cfg_(cfg), path_(path), id_(core_id)
{}

void
TraceCore::setTrace(const KernelTrace *trace)
{
    trace_ = trace;
    cursor_ = 0;
    runPos_ = 0;
    runBatchArmed_ = true;
    lastHitBatchable_ = false;
    time_ = 0;
    outLoads_ = outStreams_ = outStores_ = 0;
    blocked_ = waiting_ = fencing_ = false;
    started_ = finished_ = false;
    stats_ = CoreStats{};
}

void
TraceCore::start()
{
    sim_assert(trace_ != nullptr);
    sim_assert(!started_);
    started_ = true;
    time_ = eq_.now();
    advance();
}

double
TraceCore::utilization() const
{
    if (stats_.finishedAt == 0)
        return 0.0;
    return static_cast<double>(stats_.computeTicks) /
           static_cast<double>(stats_.finishedAt);
}

void
TraceCore::completion(Tick t, TraceOpKind kind)
{
    switch (kind) {
      case TraceOpKind::kLoad:
      case TraceOpKind::kLoadBlocking:
        sim_assert(outLoads_ > 0);
        --outLoads_;
        break;
      case TraceOpKind::kStreamRead:
        sim_assert(outStreams_ > 0);
        --outStreams_;
        break;
      case TraceOpKind::kStore:
      case TraceOpKind::kPermutableStore:
        sim_assert(outStores_ > 0);
        --outStores_;
        break;
      default:
        panic("unexpected completion kind");
    }

    // A core blocked on a dependent load only resumes when that load
    // returns (a core issues at most one blocking load before stalling,
    // so any kLoadBlocking completion is the awaited one). Other stalls
    // (window full, fence) clear on any completion.
    bool wake_up = false;
    if (blocked_)
        wake_up = kind == TraceOpKind::kLoadBlocking;
    else
        wake_up = waiting_ || fencing_;

    if (wake_up) {
        Tick wake = std::max(time_, t);
        Tick stall = wake - time_;
        stats_.stallTicks += stall;
        switch (stallKind_) {
          case TraceOpKind::kStore:
          case TraceOpKind::kPermutableStore:
            stats_.stallStoreTicks += stall;
            break;
          case TraceOpKind::kStreamRead:
            stats_.stallStreamTicks += stall;
            break;
          case TraceOpKind::kLoad:
          case TraceOpKind::kLoadBlocking:
            stats_.stallLoadTicks += stall;
            break;
          default:
            stats_.stallFenceTicks += stall;
            break;
        }
        time_ = wake;
        blocked_ = waiting_ = false;
        advance();
    } else if (finishedTraceButDraining()) {
        maybeFinish();
    }
}

bool
TraceCore::issueMemOp(TraceOpKind kind, Addr addr, std::uint32_t size)
{
    const bool is_write = kind == TraceOpKind::kStore ||
                          kind == TraceOpKind::kPermutableStore;
    const bool sequential = kind == TraceOpKind::kStreamRead;
    const bool permutable = kind == TraceOpKind::kPermutableStore;

    stats_.memOps++;
    if (is_write)
        stats_.bytesToMem += size;
    else
        stats_.bytesFromMem += size;

    auto on_done = [this, kind](Tick t) { completion(t, kind); };
    static_assert(MemoryPath::DoneFn::fitsInline<decltype(on_done)>(),
                  "core completion closure must fit the inline buffer");
    auto res = path_.request(time_, addr, size, is_write, sequential,
                             permutable, std::move(on_done));

    if (res.immediate) {
        // Cache hit: charge the hit latency inline, nothing outstanding.
        Tick cost = res.latency * cfg_.period;
        time_ += cost;
        stats_.computeTicks += cost;
        lastHitBatchable_ = res.batchable;
        return false;
    }
    lastHitBatchable_ = false;

    switch (kind) {
      case TraceOpKind::kLoad:
      case TraceOpKind::kLoadBlocking:
        ++outLoads_;
        break;
      case TraceOpKind::kStreamRead:
        ++outStreams_;
        break;
      case TraceOpKind::kStore:
      case TraceOpKind::kPermutableStore:
        ++outStores_;
        break;
      default:
        panic("not a memory op");
    }
    return true;
}

void
TraceCore::advance()
{
    const auto &ops = trace_->ops();
    while (cursor_ < ops.size()) {
        const TraceOp &op = ops[cursor_];
        switch (op.kind) {
          case TraceOpKind::kCompute: {
            Tick cost = Tick{op.value} * cfg_.period;
            time_ += cost;
            stats_.computeTicks += cost;
            ++cursor_;
            break;
          }
          case TraceOpKind::kLoad:
            if (outLoads_ >= cfg_.maxOutstandingLoads) {
                waiting_ = true;
                stallKind_ = TraceOpKind::kLoad;
                return;
            }
            issueMemOp(op.kind, op.addr, op.value);
            ++cursor_;
            break;
          case TraceOpKind::kLoadBlocking: {
            if (outLoads_ >= cfg_.maxOutstandingLoads) {
                waiting_ = true;
                stallKind_ = TraceOpKind::kLoad;
                return;
            }
            bool missed = issueMemOp(op.kind, op.addr, op.value);
            ++cursor_;
            // A dependent load that missed gates further progress. (The
            // wake fires on the next load completion; blocking loads are
            // emitted by kernels where they are the only loads in flight.)
            if (missed) {
                blocked_ = true;
                stallKind_ = TraceOpKind::kLoadBlocking;
                return;
            }
            break;
          }
          case TraceOpKind::kStreamRead:
            if (outStreams_ >= cfg_.streamDepth) {
                waiting_ = true;
                stallKind_ = TraceOpKind::kStreamRead;
                return;
            }
            issueMemOp(op.kind, op.addr, op.value);
            ++cursor_;
            break;
          case TraceOpKind::kStore:
          case TraceOpKind::kPermutableStore:
            if (outStores_ >= cfg_.maxOutstandingStores) {
                waiting_ = true;
                stallKind_ = TraceOpKind::kStore;
                return;
            }
            issueMemOp(op.kind, op.addr, op.value);
            ++cursor_;
            break;
          case TraceOpKind::kFence:
            if (outLoads_ + outStreams_ + outStores_ > 0) {
                fencing_ = true;
                stallKind_ = TraceOpKind::kFence;
                return;
            }
            ++cursor_;
            break;
          case TraceOpKind::kLoadRun:
          case TraceOpKind::kStreamRun:
          case TraceOpKind::kStoreRun: {
            // Expand the run on the fly: each access behaves exactly like
            // the plain op it encodes (same window checks, same issue
            // order), optionally followed by the per-access compute burst.
            // runPos_ keeps the position across window stalls.
            const TraceOpKind ek = TraceOp::expandedKind(op.kind);
            const bool run_write = ek == TraceOpKind::kStore;
            while (runPos_ < op.count) {
                bool full;
                TraceOpKind stall;
                switch (ek) {
                  case TraceOpKind::kStreamRead:
                    full = outStreams_ >= cfg_.streamDepth;
                    stall = TraceOpKind::kStreamRead;
                    break;
                  case TraceOpKind::kStore:
                    full = outStores_ >= cfg_.maxOutstandingStores;
                    stall = TraceOpKind::kStore;
                    break;
                  default:
                    full = outLoads_ >= cfg_.maxOutstandingLoads;
                    stall = TraceOpKind::kLoad;
                    break;
                }
                if (full) {
                    waiting_ = true;
                    stallKind_ = stall;
                    return;
                }
                if (cfg_.rleRunBatching && runBatchArmed_) {
                    // Closed-form prefix: consume the run's leading plain
                    // hits in one call. Immediate hits leave the window
                    // counters untouched, so the one not-full check above
                    // covers every consumed access — exactly the checks
                    // the per-access oracle would have made. The boundary
                    // access (miss, prefetch warmup, uncacheable) falls
                    // through to issueMemOp below on the next iteration.
                    auto rh = path_.requestRun(
                        time_, op.addr + Addr{runPos_} * op.value,
                        op.value, op.count - runPos_, run_write,
                        ek == TraceOpKind::kStreamRead, false);
                    if (rh.consumed > 0) {
                        const std::uint64_t k = rh.consumed;
                        stats_.memOps += k;
                        if (run_write)
                            stats_.bytesToMem += k * op.value;
                        else
                            stats_.bytesFromMem += k * op.value;
                        Tick per = rh.latency * cfg_.period +
                                   Tick{op.aux} * cfg_.period;
                        time_ += per * k;
                        stats_.computeTicks += per * k;
                        runPos_ += rh.consumed;
                        continue;
                    }
                    // Nothing batched: the next accesses are boundaries
                    // too until something hits again. Disarm so a run of
                    // misses is not charged a failed probe per access; a
                    // synchronous hit below re-arms.
                    runBatchArmed_ = false;
                }
                bool outstanding = issueMemOp(
                    ek, op.addr + Addr{runPos_} * op.value, op.value);
                // Re-arm only on a plain hit: a prefetch-stream hit
                // means the next access is almost surely another
                // boundary, and probing it would fail every time.
                (void)outstanding;
                runBatchArmed_ = runBatchArmed_ || lastHitBatchable_;
                ++runPos_;
                if (op.aux > 0) {
                    Tick cost = Tick{op.aux} * cfg_.period;
                    time_ += cost;
                    stats_.computeTicks += cost;
                }
            }
            runPos_ = 0;
            runBatchArmed_ = true;
            ++cursor_;
            break;
          }
        }
    }
    maybeFinish();
}

bool
TraceCore::finishedTraceButDraining() const
{
    return started_ && !finished_ && cursor_ >= trace_->ops().size();
}

void
TraceCore::maybeFinish()
{
    if (finished_)
        return;
    if (cursor_ < trace_->ops().size())
        return;
    if (outLoads_ + outStreams_ + outStores_ > 0)
        return;
    finished_ = true;
    stats_.finishedAt = std::max(time_, eq_.now());
    if (onFinish) {
        // Defer the callback so it observes a consistent simulator state.
        auto fire = [this]() { onFinish(id_, stats_.finishedAt); };
        static_assert(EventQueue::Callback::fitsInline<decltype(fire)>(),
                      "finish closure must fit the inline buffer");
        eq_.schedule(stats_.finishedAt, std::move(fire));
    }
}

} // namespace mondrian
