/**
 * @file
 * Window-limited core timing model.
 *
 * A TraceCore replays a KernelTrace against a MemoryPath. The model
 * captures the first-order microarchitectural effects the paper's analysis
 * (§3.2) builds on:
 *
 *  - compute bursts advance core-local time at the core's clock;
 *  - random-access loads overlap up to maxOutstandingLoads (the ROB/MSHR
 *    limit of an OoO window, ~20 for an A57, ~8 for a Krait400);
 *  - blocking loads model pointer-chase-style dependences (hash probes);
 *  - sequential stream reads overlap up to streamDepth (stream buffers on
 *    Mondrian, next-line prefetcher + MSHRs on the baselines);
 *  - stores are posted through a finite store buffer;
 *  - fences drain everything (shuffle_end, phase boundaries).
 *
 * The same engine models all three machines; they differ in configuration
 * (clock, windows) and in the MemoryPath behind them (caches or not).
 */

#ifndef MONDRIAN_CORE_CORE_MODEL_HH
#define MONDRIAN_CORE_CORE_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"
#include "core/trace.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"

namespace mondrian {

/** Core microarchitecture parameters. */
struct CoreConfig
{
    std::string name = "core";
    Tick period = 1000;               ///< clock period (ps); 1 GHz default
    unsigned issueWidth = 2;          ///< for reporting only
    unsigned maxOutstandingLoads = 8; ///< random-access MLP window
    unsigned maxOutstandingStores = 16; ///< store buffer entries
    unsigned streamDepth = 8;         ///< sequential fetch overlap
    double peakPowerWatts = 0.312;    ///< for the energy model
    /**
     * Consume the plain-hit prefix of an RLE run in closed form via
     * MemoryPath::requestRun instead of expanding every access (docs/
     * perf.md). Output-identical: the batch replicates the per-access
     * bookkeeping exactly and falls back at any boundary condition.
     */
    bool rleRunBatching = true;
};

/** Preset matching the paper's CPU core (Table 3: ARM Cortex-A57 @ 2 GHz). */
CoreConfig cortexA57();

/** Preset matching the NMP baseline core (Qualcomm Krait400 @ 1 GHz). */
CoreConfig krait400();

/** Preset matching the Mondrian tile (Cortex-A35 + 1024-bit SIMD @ 1 GHz). */
CoreConfig cortexA35Simd();

/**
 * Abstract memory system seen by one core (caches + NoC + DRAM are wired
 * behind this by the Machine).
 */
class MemoryPath
{
  public:
    virtual ~MemoryPath() = default;

    /**
     * Completion callback type. Allocation-free up to 64 capture bytes —
     * enough for every completion closure on the hot path.
     */
    using DoneFn = InlineFunction<void(Tick), 64>;
    static_assert(kInlineFunctionPacked<DoneFn>,
                  "padding crept ahead of the completion callback buffer");

    /** Outcome of a request: either satisfied immediately (cache hit)... */
    struct Result
    {
        bool immediate = false;
        Cycles latency = 0; ///< cycles to charge when immediate
        /**
         * Immediate via a plain cache hit — the only outcome
         * requestRun() can consume. Immediate results that carry side
         * effects (prefetch-stream hits and their fill traffic, LLC
         * hits) leave this false so a run core does not re-arm its
         * batch probe just to have it fail on the next access.
         */
        bool batchable = false;
    };

    /**
     * Issue a request at core-local time @p when.
     *
     * @param sequential hint that this access is part of a stream
     * @param permutable store may be reordered by the destination vault
     * @param done invoked at completion when not immediate
     */
    virtual Result request(Tick when, Addr addr, std::uint32_t size,
                           bool is_write, bool sequential, bool permutable,
                           DoneFn done) = 0;

    /** Outcome of requestRun(): a prefix of immediate plain hits. */
    struct RunHits
    {
        std::uint32_t consumed = 0; ///< leading accesses satisfied
        Cycles latency = 0;         ///< per-access cost of each of them
    };

    /**
     * Batched form of request() for an RLE run: accesses k = 0..n-1 at
     * @p addr + k * @p size. Consumes the maximal leading prefix that
     * request() would satisfy immediately as plain cache hits — no
     * prefetch conversion, no fills, no events — and reports their
     * uniform per-access latency. Any boundary access (miss, prefetch
     * hit, uncacheable) is left for the caller's per-access path, so a
     * path that cannot batch simply returns zero consumed (the default:
     * fixed-latency paths and tests never see a behavior change).
     */
    virtual RunHits
    requestRun(Tick when, Addr addr, std::uint32_t size, std::uint32_t n,
               bool is_write, bool sequential, bool permutable)
    {
        (void)when;
        (void)addr;
        (void)size;
        (void)n;
        (void)is_write;
        (void)sequential;
        (void)permutable;
        return RunHits{};
    }
};

/** Statistics of one core's trace replay. */
struct CoreStats
{
    Tick finishedAt = 0;
    Tick computeTicks = 0;   ///< time advancing due to kCompute / cache hits
    Tick stallTicks = 0;     ///< time blocked on memory
    Tick stallStoreTicks = 0;  ///< stalled with a full store buffer
    Tick stallStreamTicks = 0; ///< stalled with full stream-fetch window
    Tick stallLoadTicks = 0;   ///< stalled on loads (window or dependence)
    Tick stallFenceTicks = 0;  ///< draining at fences
    std::uint64_t memOps = 0;
    std::uint64_t bytesFromMem = 0;
    std::uint64_t bytesToMem = 0;
};

/** Replays one kernel trace with windowed memory-level parallelism. */
class TraceCore
{
  public:
    TraceCore(EventQueue &eq, const CoreConfig &cfg, MemoryPath &path,
              unsigned core_id);

    /** Bind the trace to replay; resets progress. */
    void setTrace(const KernelTrace *trace);

    /** Begin execution at the current simulation time. */
    void start();

    bool finished() const { return finished_; }
    const CoreStats &stats() const { return stats_; }
    const CoreConfig &config() const { return cfg_; }
    unsigned id() const { return id_; }

    /** Called once when the trace completes and all memory has drained. */
    std::function<void(unsigned core_id, Tick when)> onFinish;

    /** Fraction of elapsed time spent computing (for core energy). */
    double utilization() const;

  private:
    void advance();
    /** @return true when the op went outstanding (miss), false on a hit. */
    bool issueMemOp(TraceOpKind kind, Addr addr, std::uint32_t size);
    void completion(Tick t, TraceOpKind kind);
    void maybeFinish();
    bool finishedTraceButDraining() const;

    EventQueue &eq_;
    CoreConfig cfg_;
    MemoryPath &path_;
    unsigned id_;

    const KernelTrace *trace_ = nullptr;
    std::size_t cursor_ = 0;
    std::uint32_t runPos_ = 0; ///< accesses already issued of a run op
    /**
     * Whether the next run access should attempt the closed-form batch
     * (cfg_.rleRunBatching). Armed at every run start and by every
     * synchronous *plain* hit (Result::batchable); a failed batch probe
     * disarms it, so miss- or prefetch-dominated runs pay the redundant
     * probe once per boundary cluster instead of once per access. Purely
     * a probe-retry policy: which accesses the batch consumes — and
     * therefore every modeled result — is unchanged.
     */
    bool runBatchArmed_ = true;
    bool lastHitBatchable_ = false; ///< last sync hit was plain (batch re-arm)
    Tick time_ = 0; ///< core-local clock (>= eq.now() at wake points)

    unsigned outLoads_ = 0;
    unsigned outStreams_ = 0;
    unsigned outStores_ = 0;
    bool blocked_ = false;  ///< waiting on a blocking load (kLoadBlocking)
    TraceOpKind stallKind_ = TraceOpKind::kFence; ///< what caused the stall
    bool waiting_ = false;  ///< waiting for any completion (window full)
    bool fencing_ = false;  ///< draining at a fence
    bool started_ = false;
    bool finished_ = false;

    CoreStats stats_;
};

} // namespace mondrian

#endif // MONDRIAN_CORE_CORE_MODEL_HH
