#include "core/stream_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

StreamBufferUnit::StreamBufferUnit(const StreamBufferConfig &cfg) : cfg_(cfg)
{}

void
StreamBufferUnit::program(Addr start, std::uint64_t stream_size,
                          unsigned num_streams)
{
    if (num_streams > cfg_.numBuffers)
        fatal("stream buffer unit has %u buffers, %u streams requested",
              cfg_.numBuffers, num_streams);
    streams_.clear();
    for (unsigned i = 0; i < num_streams; ++i) {
        Stream s;
        s.start = start + std::uint64_t{i} * stream_size;
        s.size = stream_size;
        streams_.push_back(s);
    }
}

void
StreamBufferUnit::programStreams(const std::vector<Stream> &streams)
{
    if (streams.size() > cfg_.numBuffers)
        fatal("stream buffer unit has %u buffers, %zu streams requested",
              cfg_.numBuffers, streams.size());
    streams_ = streams;
}

bool
StreamBufferUnit::allDone() const
{
    return std::all_of(streams_.begin(), streams_.end(),
                       [](const Stream &s) { return s.done(); });
}

unsigned
StreamBufferUnit::activeStreams() const
{
    unsigned n = 0;
    for (const auto &s : streams_)
        if (!s.done())
            ++n;
    return n;
}

Addr
StreamBufferUnit::headAddr(unsigned i) const
{
    sim_assert(i < streams_.size());
    return streams_[i].headAddr();
}

Addr
StreamBufferUnit::pop(unsigned i, std::uint32_t bytes)
{
    sim_assert(i < streams_.size());
    Stream &s = streams_[i];
    sim_assert(!s.done());
    Addr at = s.headAddr();
    s.head += bytes;
    consumed_ += bytes;
    return at;
}

unsigned
StreamBufferUnit::fetchDepth() const
{
    return std::min(cfg_.numBuffers, std::max(1u, activeStreams()));
}

} // namespace mondrian
