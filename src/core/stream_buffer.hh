/**
 * @file
 * Stream buffer unit for the Mondrian compute tile (§5.2).
 *
 * Each tile has eight 384 B stream buffers (1.5x the 256 B row buffer),
 * programmed with [start, start+size) ranges. The unit keeps binding
 * prefetches in flight so the core consumes tuples at the head of each
 * stream without exposing DRAM latency. The timing effect is captured by
 * the core model (kStreamRead ops may overlap up to the unit's total
 * outstanding-fetch depth); this class owns the architectural bookkeeping:
 * stream ranges, head cursors, and the derived fetch schedule.
 */

#ifndef MONDRIAN_CORE_STREAM_BUFFER_HH
#define MONDRIAN_CORE_STREAM_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Configuration of a tile's stream-buffer unit. */
struct StreamBufferConfig
{
    unsigned numBuffers = 8;        ///< parallel streams
    std::uint32_t bufferBytes = 384; ///< per-buffer capacity (1.5 rows)
    std::uint32_t fetchBytes = 256;  ///< granularity of binding prefetches
};

/** One programmed stream. */
struct Stream
{
    Addr start = 0;
    std::uint64_t size = 0;
    std::uint64_t head = 0; ///< bytes consumed so far

    bool done() const { return head >= size; }
    Addr headAddr() const { return start + head; }
    std::uint64_t remaining() const { return size - head; }
};

/**
 * Architectural state of the stream-buffer unit; mirrors the programming
 * interface of Fig. 4b (prefetch_in_str_buf / read_stream_heads /
 * pop_input_stream).
 */
class StreamBufferUnit
{
  public:
    explicit StreamBufferUnit(const StreamBufferConfig &cfg = {});

    /**
     * Program @p num_streams equal slices of [start, start+total).
     * Mirrors prefetch_in_str_buf(start_addr, stream_size, num_streams).
     */
    void program(Addr start, std::uint64_t stream_size, unsigned num_streams);

    /** Program explicit streams (for merge trees over sorted runs). */
    void programStreams(const std::vector<Stream> &streams);

    /** True when every stream is fully consumed. */
    bool allDone() const;

    /** Number of active (not done) streams. */
    unsigned activeStreams() const;

    /** Address of stream @p i's head element. */
    Addr headAddr(unsigned i) const;

    /**
     * Consume @p bytes from stream @p i (pop_input_stream).
     * @return the address range consumed begins at.
     */
    Addr pop(unsigned i, std::uint32_t bytes);

    /**
     * Max outstanding fetches the unit sustains: one per active stream,
     * bounded by the buffer count. This is what makes simple in-order
     * hardware saturate the vault bandwidth on sequential streams.
     */
    unsigned fetchDepth() const;

    const StreamBufferConfig &config() const { return cfg_; }
    const std::vector<Stream> &streams() const { return streams_; }

    /** Total bytes popped across all streams. */
    std::uint64_t bytesConsumed() const { return consumed_; }

  private:
    StreamBufferConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t consumed_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_CORE_STREAM_BUFFER_HH
