#include "core/trace.hh"

namespace mondrian {

KernelTrace::Summary
KernelTrace::summarize() const
{
    Summary s;
    for (const auto &op : ops_) {
        switch (op.kind) {
          case TraceOpKind::kCompute:
            s.computeCycles += op.value;
            break;
          case TraceOpKind::kLoad:
          case TraceOpKind::kLoadBlocking:
            s.loads++;
            s.loadBytes += op.value;
            break;
          case TraceOpKind::kStore:
            s.stores++;
            s.storeBytes += op.value;
            break;
          case TraceOpKind::kPermutableStore:
            s.stores++;
            s.permutableStores++;
            s.storeBytes += op.value;
            break;
          case TraceOpKind::kStreamRead:
            s.streamReads++;
            s.streamBytes += op.value;
            break;
          case TraceOpKind::kFence:
            s.fences++;
            break;
        }
    }
    return s;
}

} // namespace mondrian
