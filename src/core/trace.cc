#include "core/trace.hh"

namespace mondrian {

KernelTrace::Summary
KernelTrace::summarize() const
{
    Summary s;
    for (const auto &op : ops_) {
        switch (op.kind) {
          case TraceOpKind::kCompute:
            s.computeCycles += op.value;
            break;
          case TraceOpKind::kLoad:
          case TraceOpKind::kLoadBlocking:
            s.loads++;
            s.loadBytes += op.value;
            break;
          case TraceOpKind::kStore:
            s.stores++;
            s.storeBytes += op.value;
            break;
          case TraceOpKind::kPermutableStore:
            s.stores++;
            s.permutableStores++;
            s.storeBytes += op.value;
            break;
          case TraceOpKind::kStreamRead:
            s.streamReads++;
            s.streamBytes += op.value;
            break;
          case TraceOpKind::kFence:
            s.fences++;
            break;
          case TraceOpKind::kLoadRun:
            s.loads += op.count;
            s.loadBytes += std::uint64_t{op.count} * op.value;
            s.computeCycles += std::uint64_t{op.count} * op.aux;
            break;
          case TraceOpKind::kStreamRun:
            s.streamReads += op.count;
            s.streamBytes += std::uint64_t{op.count} * op.value;
            s.computeCycles += std::uint64_t{op.count} * op.aux;
            break;
          case TraceOpKind::kStoreRun:
            s.stores += op.count;
            s.storeBytes += std::uint64_t{op.count} * op.value;
            s.computeCycles += std::uint64_t{op.count} * op.aux;
            break;
        }
    }
    return s;
}

std::uint64_t
KernelTrace::expandedSize() const
{
    std::uint64_t n = 0;
    for (const auto &op : ops_) {
        if (op.isRun())
            n += std::uint64_t{op.count} * (op.aux > 0 ? 2 : 1);
        else
            ++n;
    }
    return n;
}

std::vector<TraceOp>
KernelTrace::expanded() const
{
    std::vector<TraceOp> out;
    out.reserve(expandedSize());
    for (const auto &op : ops_) {
        if (!op.isRun()) {
            out.push_back(op);
            continue;
        }
        TraceOp unit;
        unit.value = op.value;
        unit.kind = TraceOp::expandedKind(op.kind);
        for (std::uint32_t i = 0; i < op.count; ++i) {
            unit.addr = op.addr + Addr{i} * op.value;
            out.push_back(unit);
            if (op.aux > 0)
                out.push_back(TraceOp::compute(op.aux));
        }
    }
    return out;
}

} // namespace mondrian
