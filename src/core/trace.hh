/**
 * @file
 * Kernel traces: the interface between functional operator execution and
 * the timing models.
 *
 * Operators execute functionally (they really join/sort/aggregate tuples in
 * the simulated memory) and record, per compute unit, the abstract
 * instruction stream of the kernel: compute bursts, loads, stores,
 * permutable stores, and stream reads. A core timing model then replays
 * the trace against the cache/NoC/DRAM models to produce time and energy.
 *
 * This mirrors the paper's methodology (§6): measured instruction counts
 * combined with microarchitectural timing, except our timing comes from an
 * event-driven model instead of sampled Flexus IPC.
 */

#ifndef MONDRIAN_CORE_TRACE_HH
#define MONDRIAN_CORE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Kinds of trace operations a core can replay. */
enum class TraceOpKind : std::uint8_t
{
    kCompute,         ///< value = core cycles of computation
    kLoad,            ///< window-limited load (random-access MLP)
    kLoadBlocking,    ///< load whose result gates further progress
    kStore,           ///< posted store (store-buffer limited)
    kPermutableStore, ///< posted store tagged permutable (§5.3)
    kStreamRead,      ///< sequential read via stream buffer / prefetcher
    kFence            ///< drain all outstanding memory operations
};

/** One trace operation (16 bytes). */
struct TraceOp
{
    Addr addr = 0;           ///< target address (memory ops)
    std::uint32_t value = 0; ///< size in bytes, or cycles for kCompute
    TraceOpKind kind = TraceOpKind::kCompute;

    static TraceOp
    compute(std::uint32_t cycles)
    {
        return TraceOp{0, cycles, TraceOpKind::kCompute};
    }
    static TraceOp
    load(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, TraceOpKind::kLoad};
    }
    static TraceOp
    loadBlocking(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, TraceOpKind::kLoadBlocking};
    }
    static TraceOp
    store(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, TraceOpKind::kStore};
    }
    static TraceOp
    permutableStore(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, TraceOpKind::kPermutableStore};
    }
    static TraceOp
    streamRead(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, TraceOpKind::kStreamRead};
    }
    static TraceOp
    fence()
    {
        return TraceOp{0, 0, TraceOpKind::kFence};
    }
};

/** The recorded instruction stream of one compute unit for one phase. */
class KernelTrace
{
  public:
    void
    addCompute(std::uint64_t cycles)
    {
        // Coalesce adjacent compute bursts; split bursts over 2^32 cycles.
        while (cycles > 0) {
            std::uint32_t c = cycles > 0xffffffffull
                                  ? 0xffffffffu
                                  : static_cast<std::uint32_t>(cycles);
            if (!ops_.empty() &&
                ops_.back().kind == TraceOpKind::kCompute &&
                ops_.back().value <= 0x7fffffffu) {
                std::uint64_t merged = std::uint64_t{ops_.back().value} + c;
                if (merged <= 0xffffffffull) {
                    ops_.back().value = static_cast<std::uint32_t>(merged);
                    cycles -= c;
                    continue;
                }
            }
            ops_.push_back(TraceOp::compute(c));
            cycles -= c;
        }
    }

    void add(const TraceOp &op) { ops_.push_back(op); }

    const std::vector<TraceOp> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    void clear() { ops_.clear(); }
    void reserve(std::size_t n) { ops_.reserve(n); }

    /** Summary statistics over the trace (for reports and tests). */
    struct Summary
    {
        std::uint64_t computeCycles = 0;
        std::uint64_t loads = 0;
        std::uint64_t loadBytes = 0;
        std::uint64_t stores = 0;
        std::uint64_t storeBytes = 0;
        std::uint64_t permutableStores = 0;
        std::uint64_t streamReads = 0;
        std::uint64_t streamBytes = 0;
        std::uint64_t fences = 0;
    };
    Summary summarize() const;

  private:
    std::vector<TraceOp> ops_;
};

} // namespace mondrian

#endif // MONDRIAN_CORE_TRACE_HH
