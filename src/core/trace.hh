/**
 * @file
 * Kernel traces: the interface between functional operator execution and
 * the timing models.
 *
 * Operators execute functionally (they really join/sort/aggregate tuples in
 * the simulated memory) and record, per compute unit, the abstract
 * instruction stream of the kernel: compute bursts, loads, stores,
 * permutable stores, and stream reads. A core timing model then replays
 * the trace against the cache/NoC/DRAM models to produce time and energy.
 *
 * Sequential sweeps — the dominant access pattern of every operator — are
 * recorded run-length encoded: one kLoadRun/kStreamRun/kStoreRun op stands
 * for `count` consecutive chunk accesses (optionally each followed by
 * `aux` compute cycles), so a 2^20-tuple scan records O(runs) ops instead
 * of O(chunks). The replay loop expands runs on the fly into exactly the
 * op sequence the unencoded trace would contain, so encoding changes
 * nothing about timing — only memory footprint and replay speed.
 *
 * This mirrors the paper's methodology (§6): measured instruction counts
 * combined with microarchitectural timing, except our timing comes from an
 * event-driven model instead of sampled Flexus IPC.
 */

#ifndef MONDRIAN_CORE_TRACE_HH
#define MONDRIAN_CORE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Kinds of trace operations a core can replay. */
enum class TraceOpKind : std::uint8_t
{
    kCompute,         ///< value = core cycles of computation
    kLoad,            ///< window-limited load (random-access MLP)
    kLoadBlocking,    ///< load whose result gates further progress
    kStore,           ///< posted store (store-buffer limited)
    kPermutableStore, ///< posted store tagged permutable (§5.3)
    kStreamRead,      ///< sequential read via stream buffer / prefetcher
    kFence,           ///< drain all outstanding memory operations
    kLoadRun,         ///< RLE: count contiguous kLoad chunks
    kStreamRun,       ///< RLE: count contiguous kStreamRead chunks
    kStoreRun         ///< RLE: count contiguous kStore chunks
};

/**
 * One trace operation (24 bytes).
 *
 * Non-run ops use addr/value only (count = 1, aux = 0). Run ops encode
 * `count` back-to-back accesses of `value` bytes starting at `addr`
 * (access i touches addr + i*value); when `aux` is nonzero each access is
 * followed by `aux` cycles of compute, reproducing the scan idiom's
 * read-then-process interleave.
 */
struct TraceOp
{
    Addr addr = 0;            ///< target address (memory ops)
    std::uint32_t value = 0;  ///< size in bytes, or cycles for kCompute
    std::uint32_t count = 1;  ///< run length (run kinds only)
    std::uint32_t aux = 0;    ///< run kinds: compute cycles per access
    TraceOpKind kind = TraceOpKind::kCompute;

    static TraceOp
    compute(std::uint32_t cycles)
    {
        return TraceOp{0, cycles, 1, 0, TraceOpKind::kCompute};
    }
    static TraceOp
    load(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, 1, 0, TraceOpKind::kLoad};
    }
    static TraceOp
    loadBlocking(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, 1, 0, TraceOpKind::kLoadBlocking};
    }
    static TraceOp
    store(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, 1, 0, TraceOpKind::kStore};
    }
    static TraceOp
    permutableStore(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, 1, 0, TraceOpKind::kPermutableStore};
    }
    static TraceOp
    streamRead(Addr a, std::uint32_t size)
    {
        return TraceOp{a, size, 1, 0, TraceOpKind::kStreamRead};
    }
    static TraceOp
    fence()
    {
        return TraceOp{0, 0, 1, 0, TraceOpKind::kFence};
    }
    static TraceOp
    loadRun(Addr a, std::uint32_t size, std::uint32_t count,
            std::uint32_t aux_cycles = 0)
    {
        return TraceOp{a, size, count, aux_cycles, TraceOpKind::kLoadRun};
    }
    static TraceOp
    streamRun(Addr a, std::uint32_t size, std::uint32_t count,
              std::uint32_t aux_cycles = 0)
    {
        return TraceOp{a, size, count, aux_cycles, TraceOpKind::kStreamRun};
    }
    static TraceOp
    storeRun(Addr a, std::uint32_t size, std::uint32_t count,
             std::uint32_t aux_cycles = 0)
    {
        return TraceOp{a, size, count, aux_cycles, TraceOpKind::kStoreRun};
    }

    bool
    isRun() const
    {
        return kind == TraceOpKind::kLoadRun ||
               kind == TraceOpKind::kStreamRun ||
               kind == TraceOpKind::kStoreRun;
    }

    /** Kind each access of a run replays as (identity for non-runs). */
    static TraceOpKind
    expandedKind(TraceOpKind k)
    {
        switch (k) {
          case TraceOpKind::kLoadRun:
            return TraceOpKind::kLoad;
          case TraceOpKind::kStreamRun:
            return TraceOpKind::kStreamRead;
          case TraceOpKind::kStoreRun:
            return TraceOpKind::kStore;
          default:
            return k;
        }
    }

    bool
    operator==(const TraceOp &o) const
    {
        return addr == o.addr && value == o.value && count == o.count &&
               aux == o.aux && kind == o.kind;
    }
};

static_assert(sizeof(TraceOp) == 24, "TraceOp layout drifted");

/** The recorded instruction stream of one compute unit for one phase. */
class KernelTrace
{
  public:
    void
    addCompute(std::uint64_t cycles)
    {
        // Coalesce adjacent compute bursts; split bursts over 2^32 cycles.
        while (cycles > 0) {
            std::uint32_t c = cycles > 0xffffffffull
                                  ? 0xffffffffu
                                  : static_cast<std::uint32_t>(cycles);
            if (!ops_.empty() &&
                ops_.back().kind == TraceOpKind::kCompute &&
                ops_.back().value <= 0x7fffffffu) {
                std::uint64_t merged = std::uint64_t{ops_.back().value} + c;
                if (merged <= 0xffffffffull) {
                    ops_.back().value = static_cast<std::uint32_t>(merged);
                    cycles -= c;
                    continue;
                }
            }
            ops_.push_back(TraceOp::compute(c));
            cycles -= c;
        }
    }

    void add(const TraceOp &op) { ops_.push_back(op); }

    const std::vector<TraceOp> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    void clear() { ops_.clear(); }
    void reserve(std::size_t n) { ops_.reserve(n); }

    /**
     * Number of ops after expanding runs: the op count the un-encoded
     * trace would have (each run access and its aux compute burst count
     * separately, matching what expanded() produces).
     */
    std::uint64_t expandedSize() const;

    /**
     * The trace with every run op expanded into its plain-op sequence
     * (access, then a compute burst when aux > 0). Replaying the expanded
     * trace is timing-identical to replaying this one; tests use that as
     * the RLE correctness oracle.
     */
    std::vector<TraceOp> expanded() const;

    /** Summary statistics over the trace (for reports and tests). */
    struct Summary
    {
        std::uint64_t computeCycles = 0;
        std::uint64_t loads = 0;
        std::uint64_t loadBytes = 0;
        std::uint64_t stores = 0;
        std::uint64_t storeBytes = 0;
        std::uint64_t permutableStores = 0;
        std::uint64_t streamReads = 0;
        std::uint64_t streamBytes = 0;
        std::uint64_t fences = 0;
    };
    Summary summarize() const;

  private:
    std::vector<TraceOp> ops_;
};

} // namespace mondrian

#endif // MONDRIAN_CORE_TRACE_HH
