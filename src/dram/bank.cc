#include "dram/bank.hh"

#include <algorithm>

namespace mondrian {

BankAccessResult
Bank::access(std::uint64_t row, Tick start, bool is_write, Tick burst_ticks)
{
    const DramTiming &t = *timing_;
    Tick when = std::max(start, busyUntil_);

    BankAccessResult res{};
    Tick cmd; // tick the column command issues
    if (openRow_ && *openRow_ == row) {
        // Row hit: column access only.
        res.rowHit = true;
        cmd = when;
        res.readyAt = cmd + t.tCAS;
    } else if (!openRow_) {
        // Row closed: activate, then column access.
        res.activated = true;
        lastActivate_ = when;
        cmd = when + t.tRCD;
        res.readyAt = cmd + t.tCAS;
        openRow_ = row;
    } else {
        // Row conflict: precharge (respecting tRAS and tWR), activate,
        // column access.
        Tick pre_start = std::max({when, lastActivate_ + t.tRAS,
                                   writeRecoveryEnd_});
        Tick act_start = pre_start + t.tRP;
        res.activated = true;
        lastActivate_ = act_start;
        cmd = act_start + t.tRCD;
        res.readyAt = cmd + t.tCAS;
        openRow_ = row;
    }

    // Column commands pipeline: the bank can take the next CAS after tCCD
    // (or once this burst's data slot drains, whichever is longer). tCAS
    // is latency, not occupancy.
    busyUntil_ = cmd + std::max(t.tCCD, burst_ticks);
    if (is_write)
        writeRecoveryEnd_ = res.readyAt + burst_ticks + t.tWR;
    return res;
}

void
Bank::prechargeNow(Tick now)
{
    if (!openRow_)
        return;
    Tick pre_start = std::max({now, lastActivate_ + timing_->tRAS,
                               writeRecoveryEnd_});
    busyUntil_ = std::max(busyUntil_, pre_start + timing_->tRP);
    openRow_.reset();
}

} // namespace mondrian
