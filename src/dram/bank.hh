/**
 * @file
 * Single DRAM bank state machine.
 *
 * Tracks the open row and the earliest times the next activate / column
 * command may issue, honoring tRCD, tCAS, tRP, tRAS and tWR. The vault
 * controller asks a bank to service one column-sized access and receives
 * the time the data burst may begin plus whether a row was activated.
 */

#ifndef MONDRIAN_DRAM_BANK_HH
#define MONDRIAN_DRAM_BANK_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "dram/timing.hh"

namespace mondrian {

/** Outcome of presenting one access to a bank. */
struct BankAccessResult
{
    Tick readyAt;     ///< earliest tick the data burst may start
    bool activated;   ///< a row activation was required
    bool rowHit;      ///< the access hit the already-open row
};

/** One DRAM bank: open-page policy, explicit timing windows. */
class Bank
{
  public:
    explicit Bank(const DramTiming &timing) : timing_(&timing) {}

    /**
     * Service an access to @p row whose scheduling may begin at @p start.
     *
     * @param row         target row index within this bank
     * @param start       earliest tick the controller considers the access
     * @param is_write    write accesses delay subsequent precharges by tWR
     * @param burst_ticks duration of the data transfer on the bus
     * @return timing/bookkeeping outcome
     */
    BankAccessResult access(std::uint64_t row, Tick start, bool is_write,
                            Tick burst_ticks);

    /** Row currently latched in the row buffer, if any. */
    std::optional<std::uint64_t> openRow() const { return openRow_; }

    /** Earliest tick the bank can begin another command. */
    Tick busyUntil() const { return busyUntil_; }

    /** Close the open row (used by tests and drain logic). */
    void prechargeNow(Tick now);

  private:
    const DramTiming *timing_;
    std::optional<std::uint64_t> openRow_;
    Tick busyUntil_ = 0;       ///< earliest next command issue
    Tick lastActivate_ = 0;    ///< for tRAS enforcement
    Tick writeRecoveryEnd_ = 0;///< earliest precharge after a write (tWR)
};

} // namespace mondrian

#endif // MONDRIAN_DRAM_BANK_HH
