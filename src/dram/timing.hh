/**
 * @file
 * DRAM timing and energy parameters.
 *
 * Defaults reproduce Table 3 (timing) and Table 4 (power/energy) of the
 * paper: HMC-style stacked DRAM with 256 B rows, 8 GB/s of effective
 * per-vault bandwidth, tCK = 1.6 ns.
 */

#ifndef MONDRIAN_DRAM_TIMING_HH
#define MONDRIAN_DRAM_TIMING_HH

#include "common/types.hh"

namespace mondrian {

/** DRAM device timing (Table 3). */
struct DramTiming
{
    Tick tCK = Tick{1600};    ///< DRAM clock period: 1.6 ns
    Tick tRAS = Tick{22400};  ///< min row-open time: 22.4 ns
    Tick tRCD = Tick{11200};  ///< activate-to-column: 11.2 ns
    Tick tCAS = Tick{11200};  ///< column access: 11.2 ns
    Tick tWR = Tick{14400};   ///< write recovery: 14.4 ns
    Tick tRP = Tick{11200};   ///< precharge: 11.2 ns
    Tick tCCD = Tick{6400};   ///< column-to-column (CAS pipelining): 4 tCK

    /**
     * Per-vault data bus cost per byte. 8 GB/s effective peak bandwidth
     * (HMC vault, §3.2) = 0.125 ns/B = 125 ps/B.
     */
    Tick busPsPerByte = Tick{125};

    /** Row cycle time: min spacing of activations to one bank. */
    Tick tRC() const { return tRAS + tRP; }

    /** Peak vault bandwidth implied by the bus rate, in GB/s. */
    double peakGBps() const { return 1000.0 / static_cast<double>(busPsPerByte); }
};

/** DRAM energy coefficients (Table 4, HMC row of the paper). */
struct DramEnergy
{
    double activationNanojoule = 0.65; ///< per row activation
    double accessPicojoulePerBit = 2.0; ///< row buffer <-> I/O transfer
    double backgroundWattPerCube = 0.98; ///< static power per 8 GB cube
};

} // namespace mondrian

#endif // MONDRIAN_DRAM_TIMING_HH
