#include "dram/vault.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

VaultController::VaultController(EventQueue &eq, const AddressMap &map,
                                 unsigned global_vault,
                                 const DramTiming &timing, unsigned window)
    : eq_(eq), map_(map), vault_(global_vault), timing_(timing),
      window_(window)
{
    const auto &geo = map.geometry();
    banks_.reserve(geo.banksPerVault);
    for (unsigned i = 0; i < geo.banksPerVault; ++i)
        banks_.emplace_back(timing_);
}

void
VaultController::enqueue(MemRequest &&req)
{
    sim_assert(req.size > 0);
    sim_assert(map_.vaultOf(req.addr) == vault_);

    if (req.isWrite && permArmed_ &&
        req.addr >= permRegion_.base &&
        req.addr + req.size <= permRegion_.base + permRegion_.size) {
        // Append engine: placement is arrival order, not the address the
        // source computed. Objects never straddle messages (§5.3), so a
        // whole request relocates as a unit. Arriving objects coalesce in
        // the controller's row-sized staging buffer and drain to DRAM as
        // full-row writes -- one activation and one burst per row, the
        // §5.3 guarantee. The store is acknowledged as soon as the
        // controller accepts it into the staging buffer.
        if (permCursor_ + req.size > permRegion_.size) {
            // Destination buffer overflow: the paper raises a CPU
            // exception and re-partitions; we treat it as a fatal
            // configuration error since our workloads are uniform.
            fatal("permutable region overflow in vault %u", vault_);
        }
        permCursor_ += req.size;
        stats_.permutableWrites++;
        if (req.onComplete) {
            Tick now = eq_.now();
            // Hot coalescing site: a partition burst acknowledges many
            // stores at one tick with no intervening schedules.
            auto ack = [cb = std::move(req.onComplete), now]() { cb(now); };
            static_assert(EventQueue::Callback::fitsInline<decltype(ack)>(),
                          "store-ack closure must fit the inline buffer");
            eq_.scheduleCoalesced(now, std::move(ack));
        }
        flushAppendRows(false);
        return;
    }

    DecodedAddr d = map_.decode(req.addr);
    req.bank = d.bank;
    req.row = static_cast<std::uint32_t>(d.row);
    queue_.push_back(std::move(req));
    ++live_;
    trySchedule();
}

void
VaultController::armPermutable(const PermutableRegion &region)
{
    sim_assert(!permArmed_);
    sim_assert(map_.vaultOf(region.base) == vault_);
    permArmed_ = true;
    permRegion_ = region;
    permCursor_ = 0;
    permFlushed_ = 0;
}

std::uint64_t
VaultController::disarmPermutable()
{
    sim_assert(permArmed_);
    flushAppendRows(true);
    permArmed_ = false;
    return permCursor_;
}

void
VaultController::flushAppendRows(bool final_flush)
{
    const std::uint64_t row = map_.geometry().rowBytes;
    // Drain every complete row between the flushed mark and the cursor;
    // on the final flush, drain the trailing partial row too.
    while (permFlushed_ < permCursor_) {
        Addr start = permRegion_.base + permFlushed_;
        std::uint64_t row_end = ((start / row) + 1) * row;
        std::uint64_t limit = permRegion_.base + permCursor_;
        if (row_end > limit) {
            if (!final_flush)
                break; // partial row keeps staging
            row_end = limit;
        }
        MemRequest flush;
        flush.addr = start;
        flush.size = static_cast<std::uint32_t>(row_end - start);
        flush.isWrite = true;
        DecodedAddr d = map_.decode(start);
        flush.bank = d.bank;
        flush.row = static_cast<std::uint32_t>(d.row);
        queue_.push_back(std::move(flush));
        ++live_;
        permFlushed_ += row_end - start;
    }
    trySchedule();
}

double
VaultController::rowHitRate() const
{
    std::uint64_t total = stats_.rowHits + stats_.rowActivations;
    return total == 0 ? 0.0
                      : static_cast<double>(stats_.rowHits) /
                            static_cast<double>(total);
}

void
VaultController::trySchedule()
{
    // Picked requests leave a tombstone (size == 0) instead of an erase:
    // erasing mid-queue would shift every request behind the pick — an
    // O(window) move of callback-carrying objects per issue, the dominant
    // cost of the old deque scheduler. Tombstones pop cheaply once they
    // reach the head. The pick order is identical either way.
    while (issued_ < window_ && live_ > 0) {
        while (head_ < queue_.size() && queue_[head_].size == 0)
            ++head_;
        // live_ > 0 guarantees a live entry at or after head_; reaching
        // the end would mean the live_ bookkeeping broke.
        sim_assert(head_ < queue_.size());
        if (head_ >= 1024 && head_ * 2 >= queue_.size()) {
            // Reclaim the consumed prefix once it dominates the vector.
            queue_.erase(queue_.begin(),
                         queue_.begin() +
                             static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }

        // FR-FCFS: prefer the oldest request that hits an open row;
        // otherwise take the oldest request. Scan the oldest `window_`
        // live requests, skipping tombstones.
        std::size_t pick = head_;
        bool found_hit = false;
        std::size_t seen = 0;
        for (std::size_t i = head_;
             i < queue_.size() && seen < window_; ++i) {
            if (queue_[i].size == 0)
                continue;
            ++seen;
            const auto &open = banks_[queue_[i].bank].openRow();
            if (open && *open == queue_[i].row) {
                pick = i;
                found_hit = true;
                break;
            }
        }
        if (!found_hit)
            pick = head_; // head is live after the pop loop above

        MemRequest &req = queue_[pick];
        --live_;
        issue(std::move(req)); // consumes the callback; fields stay valid
        req.size = 0;          // tombstone
        if (pick == head_)
            ++head_;
    }
    if (live_ == 0 && !queue_.empty()) {
        // Fully drained: everything left is a tombstone.
        queue_.clear();
        head_ = 0;
    }
}

void
VaultController::issue(MemRequest &&req)
{
    const auto &geo = map_.geometry();
    ++issued_;

    if (req.isWrite) {
        stats_.writes++;
        stats_.bytesWritten += req.size;
    } else {
        stats_.reads++;
        stats_.bytesRead += req.size;
    }

    // Split the request at row boundaries; each chunk is one column access
    // (possibly preceded by an activation) on its bank.
    Tick done = eq_.now();
    Addr addr = req.addr;
    std::uint64_t remaining = req.size;
    while (remaining > 0) {
        DecodedAddr d = map_.decode(addr);
        std::uint64_t in_row = geo.rowBytes - d.column;
        std::uint64_t chunk = std::min(remaining, in_row);
        Tick burst = chunk * timing_.busPsPerByte;

        BankAccessResult r =
            banks_[d.bank].access(d.row, eq_.now(), req.isWrite, burst);
        Tick burst_start = std::max(r.readyAt, busFreeAt_);
        busFreeAt_ = burst_start + burst;
        stats_.busBusy += burst;
        done = std::max(done, burst_start + burst);

        if (r.activated)
            stats_.rowActivations++;
        if (r.rowHit)
            stats_.rowHits++;

        addr += chunk;
        remaining -= chunk;
    }

    // NB: the 16-byte-aligned callback is captured first so the closure
    // packs tightly and stays within the event's inline buffer.
    auto complete = [cb = std::move(req.onComplete), this, done]() {
        --issued_;
        if (cb)
            cb(done);
        trySchedule();
        if (issued_ == 0 && live_ == 0 && onDrained)
            onDrained();
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(complete)>(),
                  "vault completion closure must fit the inline buffer");
    eq_.scheduleCoalesced(done, std::move(complete));
}

} // namespace mondrian
