/**
 * @file
 * Vault memory controller: FR-FCFS scheduling over the vault's banks, a
 * shared data bus at the vault's peak bandwidth, and the Mondrian
 * permutable-write append engine (§5.3 of the paper).
 *
 * When a permutable region is armed and a write request lands inside it,
 * the controller ignores the request's target address and appends the
 * object at its own sequential cursor. Interleaved writes arriving from
 * many source partitions therefore fill rows in order, activating every
 * row buffer exactly once instead of once per object.
 */

#ifndef MONDRIAN_DRAM_VAULT_HH
#define MONDRIAN_DRAM_VAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/timing.hh"
#include "mem/address_map.hh"
#include "mem/allocator.hh"
#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/stats.hh"

namespace mondrian {

/** One memory access presented to a vault controller. */
struct MemRequest
{
    /**
     * Inline capacity sized for the machine's pointer-sized completion
     * closure with headroom; larger captures (tests) heap-allocate.
     */
    using Callback = InlineFunction<void(Tick), 40>;
    static_assert(kInlineFunctionPacked<Callback>,
                  "padding crept ahead of the completion callback buffer");

    Addr addr = 0;
    std::uint32_t size = 0;
    bool isWrite = false;
    /**
     * Cached (bank, row) of addr, filled by the vault on acceptance so
     * the FR-FCFS scan — which revisits queued requests many times —
     * never re-decodes the address.
     */
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    /** Completion callback, invoked at the tick the data burst finishes. */
    Callback onComplete;
};

/** Per-vault statistics snapshot. */
struct VaultStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t rowActivations = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t permutableWrites = 0;
    Tick busBusy = 0;
};

/**
 * Timing model of one vault: banks + scheduler + bus + append engine.
 */
class VaultController
{
  public:
    /**
     * @param eq          simulation event queue
     * @param map         system address map
     * @param global_vault this vault's global index
     * @param timing      DRAM timing parameters
     * @param window      FR-FCFS scheduling window (max outstanding)
     */
    VaultController(EventQueue &eq, const AddressMap &map,
                    unsigned global_vault, const DramTiming &timing,
                    unsigned window = 16);

    /** Present a request at the current tick. */
    void enqueue(MemRequest &&req);

    /** Arm the permutable append engine over @p region (shuffle_begin). */
    void armPermutable(const PermutableRegion &region);

    /** Disarm the append engine (shuffle_end). @return bytes appended. */
    std::uint64_t disarmPermutable();

    bool permutableArmed() const { return permArmed_; }

    /** Bytes appended so far in the armed region. */
    std::uint64_t permutableCursor() const { return permCursor_; }

    const VaultStats &stats() const { return stats_; }

    /** Row-buffer hit rate over all accesses so far. */
    double rowHitRate() const;

    unsigned globalVault() const { return vault_; }

    /** Number of requests accepted but not yet completed. */
    unsigned outstanding() const { return issued_ + static_cast<unsigned>(live_); }

    /**
     * True when a request presented right now would issue immediately
     * and deterministically: nothing queued ahead of it and a free
     * window entry. This is the vault-side half of the machine's eager
     * local-issue condition (Machine::issueDram) — under it, enqueue()
     * reduces to exactly one issue() whose bank/bus interactions depend
     * only on state already committed, so delivering the request via an
     * arrival event and delivering it synchronously are
     * indistinguishable.
     */
    bool readyForImmediateIssue() const { return live_ == 0 && issued_ < window_; }

    /**
     * Invoked (when set) at the end of a completion event that leaves the
     * controller with no issued or queued requests. Callback-driven phase
     * execution (Machine::beginPhase) uses it to detect quiescence of
     * traffic that carries no completion callback of its own — the
     * permutable append engine's row flushes can be the chronologically
     * last events of a phase.
     */
    using DrainFn = InlineFunction<void(), 16>;
    static_assert(kInlineFunctionPacked<DrainFn>,
                  "padding crept ahead of the drain callback buffer");
    DrainFn onDrained;

  private:
    void trySchedule();
    void issue(MemRequest &&req);

    EventQueue &eq_;
    const AddressMap &map_;
    unsigned vault_;
    DramTiming timing_;
    unsigned window_;

    std::vector<Bank> banks_;
    /**
     * FR-FCFS queue as a vector ring: entries [head_, size) are the
     * waiting requests in arrival order; picked entries tombstone
     * (size == 0) in place and pop cheaply once they reach head_.
     */
    std::vector<MemRequest> queue_;
    std::size_t head_ = 0; ///< index of the oldest entry
    std::size_t live_ = 0; ///< non-tombstone entries in queue_
    unsigned issued_ = 0;
    Tick busFreeAt_ = 0;

    /** Flush coalesced append bytes up to the current cursor. */
    void flushAppendRows(bool final_flush);

    bool permArmed_ = false;
    PermutableRegion permRegion_{};
    std::uint64_t permCursor_ = 0;
    std::uint64_t permFlushed_ = 0; ///< bytes already issued to DRAM

    VaultStats stats_;
};

} // namespace mondrian

#endif // MONDRIAN_DRAM_VAULT_HH
