#include "energy/energy_model.hh"

namespace mondrian {

EnergyBreakdown
EnergyModel::compute(const EnergyActivity &a) const
{
    EnergyBreakdown e;
    const double seconds = ticksToSeconds(a.elapsed);

    // DRAM dynamic: row activations + row-buffer/IO transfers.
    e.dramDynamic =
        static_cast<double>(a.rowActivations) *
            coeff_.dramActivationNanojoule * 1e-9 +
        static_cast<double>(a.dramBitsMoved) *
            coeff_.dramAccessPicojoulePerBit * 1e-12;

    // DRAM static: background power per cube over the whole run.
    e.dramStatic = coeff_.dramBackgroundWattPerCube *
                   static_cast<double>(a.numCubes) * seconds;

    // Cores: peak power scaled by utilization, idle floor otherwise
    // ("estimate core power based on the core's peak power and its
    // utilization statistics", §6). LLC dynamic + leakage fold into the
    // same Fig. 8 category.
    double util = a.coreUtilization;
    double per_core =
        a.corePeakWattsEach *
        (util + coeff_.coreIdleFraction * (1.0 - util));
    e.cores = per_core * static_cast<double>(a.numCores) * seconds;
    if (a.hasLlc) {
        e.cores += static_cast<double>(a.llcAccesses) *
                       coeff_.llcAccessNanojoule * 1e-9 +
                   coeff_.llcLeakWatt * seconds;
    }

    // SerDes: busy bits at the busy rate; the remaining bit slots of every
    // directed link idle at the idle rate (links run at line rate whether
    // or not payload flows).
    const double slots_per_link =
        coeff_.serdesLinkGbps * 1e9 * seconds; // bit slots per link
    double total_slots =
        slots_per_link * static_cast<double>(a.numSerdesLinks);
    double busy = static_cast<double>(a.serdesBusyBits);
    if (busy > total_slots)
        busy = total_slots; // saturated links cannot exceed line rate
    double serdes = busy * coeff_.serdesBusyPicojoulePerBit * 1e-12 +
                    (total_slots - busy) *
                        coeff_.serdesIdlePicojoulePerBit * 1e-12;

    // NOC: dynamic bit-hops plus per-stack leakage.
    double noc = static_cast<double>(a.meshBitHops) *
                     coeff_.nocPicojoulePerBitPerMm * coeff_.nocHopMm *
                     1e-12 +
                 coeff_.nocLeakWattPerStack *
                     static_cast<double>(a.numCubes) * seconds;

    e.network = serdes + noc;
    return e;
}

} // namespace mondrian
