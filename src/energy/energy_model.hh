/**
 * @file
 * System energy model (Table 4 of the paper).
 *
 * Combines event counts from the timing models (row activations, bits
 * moved, core busy time, LLC accesses, SerDes traffic) with per-component
 * power/energy coefficients to produce the Fig. 8 breakdown:
 * DRAM dynamic, DRAM static, cores, and SerDes+NOC.
 */

#ifndef MONDRIAN_ENERGY_ENERGY_MODEL_HH
#define MONDRIAN_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace mondrian {

/** Power/energy coefficients (Table 4, 28 nm). */
struct EnergyCoefficients
{
    // DRAM (per 8 GB HMC cube)
    double dramActivationNanojoule = 0.65;
    double dramAccessPicojoulePerBit = 2.0;
    double dramBackgroundWattPerCube = 0.98;

    // SerDes links
    double serdesIdlePicojoulePerBit = 1.0;
    double serdesBusyPicojoulePerBit = 3.0;
    double serdesLinkGbps = 160.0; ///< per direction, for idle-slot count

    // On-chip network
    double nocPicojoulePerBitPerMm = 0.04;
    double nocHopMm = 2.0;       ///< average wire length per mesh hop
    double nocLeakWattPerStack = 0.030;

    // LLC (CPU-centric system only)
    double llcAccessNanojoule = 0.09;
    double llcLeakWatt = 0.110;

    /** Fraction of peak power a core draws while stalled. */
    double coreIdleFraction = 0.3;
};

/** Raw activity counts a machine hands to the model. */
struct EnergyActivity
{
    Tick elapsed = 0;               ///< total runtime
    unsigned numCubes = 4;          ///< HMC stacks
    unsigned numSerdesLinks = 0;    ///< directed links in the topology
    unsigned numCores = 0;

    std::uint64_t rowActivations = 0;
    std::uint64_t dramBitsMoved = 0;   ///< read+written at the row buffer
    std::uint64_t serdesBusyBits = 0;
    std::uint64_t meshBitHops = 0;
    std::uint64_t llcAccesses = 0;
    bool hasLlc = false;

    double corePeakWattsEach = 0.0;
    double coreUtilization = 0.0;      ///< mean busy fraction across cores
};

/** Fig. 8 energy categories, in joules. */
struct EnergyBreakdown
{
    double dramDynamic = 0.0;
    double dramStatic = 0.0;
    double cores = 0.0;   ///< cores + private caches + LLC
    double network = 0.0; ///< SerDes + NOC

    double
    total() const
    {
        return dramDynamic + dramStatic + cores + network;
    }
};

/** Turns activity counts into the energy breakdown. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyCoefficients &coeff = {})
        : coeff_(coeff)
    {}

    EnergyBreakdown compute(const EnergyActivity &activity) const;

    const EnergyCoefficients &coefficients() const { return coeff_; }

  private:
    EnergyCoefficients coeff_;
};

} // namespace mondrian

#endif // MONDRIAN_ENERGY_ENERGY_MODEL_HH
