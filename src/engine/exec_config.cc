#include "engine/exec_config.hh"

namespace mondrian {

ExecConfig
cpuExec(unsigned total_vaults)
{
    ExecConfig c;
    c.cpuStyle = true;
    // The paper's CPU system: 16 cores for a 32 GB pool (2 GB/core).
    c.numUnits = total_vaults >= 16 ? 16 : total_vaults;
    c.permutable = false;
    c.sortProbe = false;
    c.simd = false;
    c.readChunkBytes = 64; // cache-line granularity
    c.costs = cpuKernelCosts();
    return c;
}

ExecConfig
nmpExec(unsigned total_vaults, bool permutable, bool sort_probe)
{
    ExecConfig c;
    c.cpuStyle = false;
    c.numUnits = total_vaults;
    c.permutable = permutable;
    c.sortProbe = sort_probe;
    c.simd = false;
    c.readChunkBytes = 64;
    c.costs = nmpKernelCosts();
    return c;
}

ExecConfig
mondrianExec(unsigned total_vaults, bool permutable)
{
    ExecConfig c;
    c.cpuStyle = false;
    c.numUnits = total_vaults;
    c.permutable = permutable;
    c.sortProbe = true; // Mondrian always favors sequential algorithms
    c.simd = true;
    c.readChunkBytes = 256; // stream-buffer fetch granularity (row-sized)
    c.costs = mondrianKernelCosts();
    return c;
}

} // namespace mondrian
