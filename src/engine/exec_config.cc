#include "engine/exec_config.hh"

#include <cstdlib>

#include "common/intmath.hh"

namespace mondrian {

ExecConfig
cpuExec(unsigned total_vaults)
{
    ExecConfig c;
    c.cpuStyle = true;
    // The paper's CPU system: 16 cores for a 32 GB pool (2 GB/core).
    c.numUnits = total_vaults >= 16 ? 16 : total_vaults;
    c.permutable = false;
    c.sortProbe = false;
    c.simd = false;
    c.readChunkBytes = 64; // cache-line granularity
    c.costs = cpuKernelCosts();
    return c;
}

ExecConfig
nmpExec(unsigned total_vaults, bool permutable, bool sort_probe)
{
    ExecConfig c;
    c.cpuStyle = false;
    c.numUnits = total_vaults;
    c.permutable = permutable;
    c.sortProbe = sort_probe;
    c.simd = false;
    c.readChunkBytes = 64;
    c.costs = nmpKernelCosts();
    return c;
}

ExecConfig
mondrianExec(unsigned total_vaults, bool permutable)
{
    ExecConfig c;
    c.cpuStyle = false;
    c.numUnits = total_vaults;
    c.permutable = permutable;
    c.sortProbe = true; // Mondrian always favors sequential algorithms
    c.simd = true;
    c.readChunkBytes = 256; // stream-buffer fetch granularity (row-sized)
    c.costs = mondrianKernelCosts();
    return c;
}

std::string
ExecOverride::name() const
{
    std::string n;
    auto add = [&n](const char *key, int v) {
        if (v < 0)
            return;
        if (!n.empty())
            n += '+';
        n += key;
        n += '=';
        n += std::to_string(v);
    };
    add("chunk", readChunkBytes);
    add("radix", radixBits);
    add("tlb", tlbEntries);
    return n.empty() ? "base" : n;
}

void
ExecOverride::apply(ExecConfig &cfg) const
{
    if (radixBits >= 0)
        cfg.cpuPartitionBits = static_cast<unsigned>(radixBits);
    if (readChunkBytes >= 0)
        cfg.readChunkBytes = static_cast<std::uint32_t>(readChunkBytes);
    if (tlbEntries >= 0)
        cfg.tlbEntries = static_cast<unsigned>(tlbEntries);
    if (coalesce >= 0)
        cfg.coalesceCompletions = coalesce != 0;
    if (rle >= 0)
        cfg.rleRunBatching = rle != 0;
    if (skip >= 0)
        cfg.queueSkipAhead = skip != 0;
    if (eager >= 0)
        cfg.eagerLocalIssue = eager != 0;
}

bool
validateExecOverride(const ExecOverride &ov, std::string &error)
{
    if (ov.radixBits >= 0 && (ov.radixBits < 1 || ov.radixBits > 24)) {
        error = "radix bits must be in [1, 24]";
        return false;
    }
    if (ov.readChunkBytes >= 0 &&
        (ov.readChunkBytes < 16 || ov.readChunkBytes > 4096 ||
         !isPowerOf2(static_cast<std::uint64_t>(ov.readChunkBytes)))) {
        error = "read chunk must be a power of two in [16, 4096]";
        return false;
    }
    if (ov.tlbEntries >= 0 && (ov.tlbEntries < 1 || ov.tlbEntries > 1 << 20)) {
        error = "tlb entries must be in [1, 2^20]";
        return false;
    }
    if (ov.coalesce > 1 || ov.rle > 1 || ov.skip > 1 || ov.eager > 1) {
        error = "perf toggles (coalesce/rle/skip/eager) take 0 or 1";
        return false;
    }
    return true;
}

bool
parseExecOverride(const std::string &spec, ExecOverride &out, std::string &error)
{
    out = ExecOverride{};
    if (spec == "base")
        return true;
    if (spec.empty()) {
        error = "empty exec-ablation spec";
        return false;
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t next = spec.find('+', pos);
        std::string knob = spec.substr(
            pos, next == std::string::npos ? std::string::npos : next - pos);
        std::size_t eq = knob.find('=');
        if (eq == std::string::npos) {
            error = "exec-ablation knob '" + knob + "' is not key=value";
            return false;
        }
        std::string key = knob.substr(0, eq);
        std::string val = knob.substr(eq + 1);
        char *end = nullptr;
        long v = std::strtol(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0' || v < 0 ||
            v > (1 << 20)) {
            error = "exec-ablation value '" + val + "' is not an integer "
                    "in [0, 2^20]";
            return false;
        }
        int *slot = nullptr;
        if (key == "radix") {
            slot = &out.radixBits;
        } else if (key == "chunk") {
            slot = &out.readChunkBytes;
        } else if (key == "tlb") {
            slot = &out.tlbEntries;
        } else if (key == "coalesce") {
            slot = &out.coalesce;
        } else if (key == "rle") {
            slot = &out.rle;
        } else if (key == "skip") {
            slot = &out.skip;
        } else if (key == "eager") {
            slot = &out.eager;
        } else {
            error = "unknown exec-ablation knob '" + key +
                    "' (expected radix/chunk/tlb/coalesce/rle/skip/eager)";
            return false;
        }
        if (*slot >= 0) {
            error = "exec-ablation knob '" + key + "' given twice";
            return false;
        }
        *slot = static_cast<int>(v);
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    return validateExecOverride(out, error);
}

} // namespace mondrian
