/**
 * @file
 * Execution-style configuration for operator implementations.
 *
 * One ExecConfig describes *how* the operators run: on CPU cores over the
 * star network or on per-vault NMP units; with exact-address scatter or
 * the permutable append engine during partitioning; with hash-based or
 * sort-based probe algorithms; with scalar loops or Mondrian's 1024-bit
 * SIMD streaming idiom. The six evaluated systems (§6 "Evaluated
 * configurations") are all combinations of these knobs.
 */

#ifndef MONDRIAN_ENGINE_EXEC_CONFIG_HH
#define MONDRIAN_ENGINE_EXEC_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/kernel_costs.hh"

namespace mondrian {

/** How operators execute on a given system. */
struct ExecConfig
{
    /** CPU-centric (16 cores, star) vs. near-memory (one unit per vault). */
    bool cpuStyle = false;
    /** Number of compute units emitting traces (16 CPU cores or 64 tiles). */
    unsigned numUnits = 64;
    /** Partitioning writes use the permutable append engine (§5.3). */
    bool permutable = false;
    /** Probe phase uses sort-based algorithms (sort-merge join, §4.1.1). */
    bool sortProbe = false;
    /** Mondrian idioms: stream-buffer reads, SIMD bitonic first pass. */
    bool simd = false;

    /** Sequential read granularity: 64 B cache lines or 256 B streams. */
    std::uint32_t readChunkBytes = 64;

    /**
     * Radix bits for CPU-style partitioning of Join/Group-by. The paper
     * uses the keys' 16 low-order bits at 32 GB scale; scaled runs shrink
     * this together with the caches and the TLB so both walls survive:
     * fanout > TLB reach (page walk per scattered store) and co-partition
     * size > L1 (probe runs out of LLC/DRAM). See DESIGN.md section 5.
     */
    unsigned cpuPartitionBits = 7;

    /** Headroom factor for shuffle destination buffers. */
    double shuffleCapacityFactor = 1.7;

    /**
     * TLB reach of the CPU cores in entries. Radix fanouts beyond this
     * incur a page walk per scattered store -- the classical fanout limit
     * of CPU partitioning (Kim et al. [38]). NMP units use physical
     * addresses (§5.1) and never translate.
     */
    unsigned tlbEntries = 64;

    /** Cycles-per-tuple cost table for this unit microarchitecture. */
    KernelCosts costs;

    /**
     * Event-count-reduction toggles (docs/perf.md). Each transform is
     * output-identical — reports stay byte-identical either way — so the
     * toggles select an execution strategy, not a modeled system, and are
     * deliberately excluded from ExecOverride::name() and the grid-point
     * identity. Off is the reference path, kept for A/B pricing and the
     * determinism oracle.
     */
    bool coalesceCompletions = true; ///< batch same-tick completion events
    bool rleRunBatching = true;      ///< closed-form RLE plain-hit prefixes
    bool queueSkipAhead = true;      ///< calendar-queue empty-bucket jump
    bool eagerLocalIssue = true;     ///< local arrivals issue sans event

    /** Vaults owned by unit @p u out of @p total_vaults (data share). */
    std::vector<unsigned>
    unitVaults(unsigned u, unsigned total_vaults) const
    {
        std::vector<unsigned> v;
        unsigned per = total_vaults / numUnits;
        for (unsigned i = 0; i < per; ++i)
            v.push_back(u * per + i);
        return v;
    }

    /** Unit that owns vault @p vault. */
    unsigned
    unitOfVault(unsigned vault, unsigned total_vaults) const
    {
        return vault / (total_vaults / numUnits);
    }
};

/** Execution-style presets for the evaluated systems (§6). */
ExecConfig cpuExec(unsigned total_vaults);
ExecConfig nmpExec(unsigned total_vaults, bool permutable, bool sort_probe);
ExecConfig mondrianExec(unsigned total_vaults, bool permutable);

/**
 * Named delta on top of a preset ExecConfig — the exec-ablation axis of a
 * design-space campaign. Each knob is an override when >= 0 and "inherit
 * the preset" when negative; the empty override is the "base" point.
 *
 * The knobs are the three sensitivity parameters of the paper's
 * CPU-vs-NMP partitioning story: the radix fanout (2^bits destinations),
 * the sequential read granularity, and the TLB reach that caps the
 * fanout CPU cores can scatter to without a page walk per store.
 */
struct ExecOverride
{
    int radixBits = -1;      ///< ExecConfig::cpuPartitionBits
    int readChunkBytes = -1; ///< ExecConfig::readChunkBytes
    int tlbEntries = -1;     ///< ExecConfig::tlbEntries

    /**
     * Perf-transform toggles (0 = off, 1 = on, negative = inherit).
     * Unlike the model knobs above these are identity-neutral by the
     * output-identity contract: name(), isBase() and the grid-point hash
     * ignore them, so "coalesce=0" labels as "base" and its report must
     * be byte-identical — which is exactly what check_determinism.sh's
     * coalescing block verifies with cmp.
     */
    int coalesce = -1; ///< ExecConfig::coalesceCompletions
    int rle = -1;      ///< ExecConfig::rleRunBatching
    int skip = -1;     ///< ExecConfig::queueSkipAhead
    int eager = -1;    ///< ExecConfig::eagerLocalIssue

    bool isBase() const
    {
        return radixBits < 0 && readChunkBytes < 0 && tlbEntries < 0;
    }

    /**
     * Canonical name, e.g. "base" or "chunk=256+radix=9" (keys in fixed
     * chunk/radix/tlb order). Equal names imply equal deltas, so the name
     * doubles as the axis label in reports and the resume identity.
     * Perf toggles are excluded: they never change results.
     */
    std::string name() const;

    /** Apply the set knobs to @p cfg. */
    void apply(ExecConfig &cfg) const;
};

/**
 * Parse an exec-ablation spec: "base" or '+'-joined knobs from
 * {radix=N, chunk=N, tlb=N}, e.g. "radix=9+tlb=16".
 * @return false with @p error set on unknown keys or out-of-range values.
 */
bool parseExecOverride(const std::string &spec, ExecOverride &out,
                       std::string &error);

/**
 * Range-check an override's set knobs (radix in [1,24], chunk a power of
 * two in [16,4096], tlb in [1,2^20]) — the same bounds parseExecOverride
 * enforces, for overrides built through the library API.
 * @return false with @p error set when a knob is out of range.
 */
bool validateExecOverride(const ExecOverride &ov, std::string &error);

} // namespace mondrian

#endif // MONDRIAN_ENGINE_EXEC_CONFIG_HH
