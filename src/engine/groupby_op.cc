#include "engine/ops.hh"

#include <map>

#include "common/logging.hh"
#include "engine/op_helpers.hh"
#include "engine/partitioner.hh"
#include "engine/sort_algos.hh"
#include "engine/trace_recorder.hh"

namespace mondrian {

namespace {

constexpr std::uint32_t kGroupRecBytes = sizeof(GroupRecord);

/** Aggregate @p tuples into per-key records (key-ordered). */
std::map<std::uint64_t, GroupRecord>
aggregate(const std::vector<Tuple> &tuples)
{
    std::map<std::uint64_t, GroupRecord> groups;
    for (const Tuple &t : tuples) {
        GroupRecord &g = groups[t.key];
        g.key = t.key;
        g.count++;
        g.sum += t.payload;
        g.min = std::min(g.min, t.payload);
        g.max = std::max(g.max, t.payload);
        g.sumsq += t.payload * t.payload;
    }
    for (auto &[key, g] : groups)
        g.avg = static_cast<double>(g.sum) / static_cast<double>(g.count);
    return groups;
}

} // namespace

OperatorExecution
runGroupBy(MemoryPool &pool, const ExecConfig &cfg, const Relation &rel)
{
    const unsigned vaults = pool.geometry().totalVaults();
    OperatorExecution exec;
    exec.op = "groupby";
    exec.style = cfg.cpuStyle ? "cpu"
                              : (cfg.simd ? "mondrian"
                                          : (cfg.sortProbe ? "nmp-seq"
                                                           : "nmp-rand"));

    Partitioner partitioner(pool, cfg);
    LocalSorter sorter(pool, cfg);
    const KernelCosts &k = cfg.costs;

    PhaseExec part_phase;
    part_phase.name = "partition";
    part_phase.kind = PhaseKind::kPartition;
    part_phase.barriers = 2;
    PhaseExec probe_phase;
    probe_phase.name = "probe";
    probe_phase.kind = PhaseKind::kProbe;

    std::vector<TraceRecorder> part_recs(cfg.numUnits);
    std::vector<TraceRecorder> probe_recs(cfg.numUnits);

    std::uint64_t group_total = 0;
    std::uint64_t checksum = 0;

    if (cfg.cpuStyle) {
        // --- CPU: radix partition into 2^bits partitions, then hash
        // aggregation per (cache-sized) partition.
        const unsigned P = 1u << cfg.cpuPartitionBits;
        PartitionFn fn = PartitionFn::lowBits(P);
        auto res = partitioner.shuffleCpu(rel, fn, P, part_recs);

        // One reusable hash-table region per core, sized for the largest
        // partition it handles (stays cache-resident across partitions).
        std::vector<std::uint64_t> max_part(cfg.numUnits, 0);
        for (unsigned p = 0; p < P; ++p) {
            unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
            max_part[u] = std::max(max_part[u],
                                   res.bounds[p + 1] - res.bounds[p]);
        }
        std::vector<Addr> ht(cfg.numUnits);
        std::vector<std::uint64_t> ht_slots(cfg.numUnits);
        std::vector<Addr> out_base(cfg.numUnits);
        std::vector<std::uint64_t> out_cursor(cfg.numUnits, 0);

        // Output region sizing needs group counts; aggregate functionally
        // first, per partition.
        std::vector<std::uint64_t> unit_groups(cfg.numUnits, 0);
        std::vector<std::map<std::uint64_t, GroupRecord>> agg(P);
        for (unsigned p = 0; p < P; ++p) {
            std::vector<Tuple> tuples;
            for (auto &[base, n] : cpuRangeSegments(res, res.bounds[p],
                                                    res.bounds[p + 1])) {
                std::size_t at = tuples.size();
                tuples.resize(at + n);
                pool.store().read(base, tuples.data() + at, n * kTupleBytes);
            }
            agg[p] = aggregate(tuples);
            unit_groups[cpuUnitOfPartition(p, P, cfg.numUnits)] +=
                agg[p].size();
        }
        for (unsigned u = 0; u < cfg.numUnits; ++u) {
            unsigned home = cfg.unitVaults(u, vaults).front();
            ht_slots[u] = nextPow2(2 * std::max<std::uint64_t>(1,
                                                               max_part[u]));
            ht[u] = pool.allocBytes(home, ht_slots[u] * kGroupRecBytes, 64);
            out_base[u] = pool.allocBytes(
                home, std::max<std::uint64_t>(1, unit_groups[u]) *
                          kGroupRecBytes,
                64);
        }

        // One cardinality-based reservation per core: ~3 ops per tuple of
        // hash aggregation plus two per emitted group.
        {
            std::vector<std::uint64_t> unit_tuples(cfg.numUnits, 0);
            for (unsigned p = 0; p < P; ++p) {
                unit_tuples[cpuUnitOfPartition(p, P, cfg.numUnits)] +=
                    res.bounds[p + 1] - res.bounds[p];
            }
            for (unsigned u = 0; u < cfg.numUnits; ++u) {
                probe_recs[u].reserveMore(3 * unit_tuples[u] +
                                          2 * unit_groups[u] + 2 * P);
            }
        }

        for (unsigned p = 0; p < P; ++p) {
            unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
            TraceRecorder &rec = probe_recs[u];
            auto segs = cpuRangeSegments(res, res.bounds[p],
                                         res.bounds[p + 1]);
            // Hash aggregation: per tuple, probe/update the record.
            for (auto &[base, n] : segs) {
                std::vector<Tuple> tuples(n);
                pool.store().read(base, tuples.data(), n * kTupleBytes);
                scanEmit(rec, base, n, kTupleBytes, cfg.readChunkBytes,
                         false, [&](std::uint64_t j) {
                             std::uint64_t slot = hashKey(tuples[j].key) &
                                                  (ht_slots[u] - 1);
                             Addr sa = ht[u] + slot * kGroupRecBytes;
                             // Dependent read-modify-write of the record
                             // (cache hits don't stall).
                             rec.loadBlocking(sa, kGroupRecBytes);
                             rec.compute(k.aggregate);
                             rec.store(sa, kGroupRecBytes);
                         });
            }
            // Emit the finished records and write them out functionally.
            for (auto &[key, g] : agg[p]) {
                Addr oa = out_base[u] + out_cursor[u]++ * kGroupRecBytes;
                pool.store().writeValue(oa, g);
                rec.store(oa, kGroupRecBytes);
                rec.compute(2.0);
                checksum += g.digest();
            }
            group_total += agg[p].size();
            rec.fence();
        }
        for (unsigned u = 0; u < cfg.numUnits; ++u)
            exec.outputRegions.emplace_back(out_base[u],
                                            out_cursor[u] * kGroupRecBytes);
    } else {
        // --- NMP variants: radix partition one-per-vault, then either
        // hash aggregation (NMP-rand) or sort + sequential sweep
        // (NMP-seq, Mondrian).
        PartitionFn fn = PartitionFn::lowBits(vaults);
        Relation out = partitioner.shuffleNmp(rel, fn, part_recs,
                                              &part_phase.arming);

        for (unsigned v = 0; v < vaults; ++v) {
            TraceRecorder &rec = probe_recs[v];
            const auto &part = out.partition(v);
            auto tuples = out.gather(pool, v);
            auto groups = aggregate(tuples);
            group_total += groups.size();

            // Hash aggregation emits ~3 ops per tuple plus a store per
            // emitted group; the sorted sweep is RLE and needs the tail.
            rec.reserveMore((cfg.sortProbe ? 1 : 3) * part.count +
                            groups.size() + 16);

            Addr out_addr = pool.allocBytes(
                v, std::max<std::uint64_t>(1, groups.size()) *
                       kGroupRecBytes,
                64);
            exec.outputRegions.emplace_back(out_addr,
                                            groups.size() * kGroupRecBytes);

            if (!cfg.sortProbe) {
                // Hash aggregation in vault-local DRAM: the table exceeds
                // the tile's small cache, so every update is a dependent
                // random read-modify-write (the paper's NMP-rand, IPC
                // ~0.24).
                std::uint64_t slots =
                    nextPow2(2 * std::max<std::uint64_t>(1, groups.size()));
                Addr ht = pool.allocBytes(v, slots * kGroupRecBytes, 64);
                scanEmit(rec, part.base, part.count, kTupleBytes,
                         cfg.readChunkBytes, false, [&](std::uint64_t j) {
                             std::uint64_t slot =
                                 hashKey(tuples[j].key) & (slots - 1);
                             Addr sa = ht + slot * kGroupRecBytes;
                             rec.loadBlocking(sa, kGroupRecBytes);
                             rec.compute(k.aggregate);
                             rec.store(sa, kGroupRecBytes);
                         });
            } else {
                // Sort then sweep: groups come out contiguous, the sweep
                // is one sequential pass with a store per group boundary.
                sorter.sortPartition(out, v, rec);
                rec.scanFixed(part.base, part.count, kTupleBytes,
                              cfg.readChunkBytes, cfg.simd, k.aggregate);
            }
            std::uint64_t g_idx = 0;
            for (auto &[key, g] : groups) {
                Addr oa = out_addr + g_idx++ * kGroupRecBytes;
                pool.store().writeValue(oa, g);
                rec.store(oa, kGroupRecBytes);
                checksum += g.digest();
            }
            rec.fence();
        }
        exec.output = out;
    }

    for (auto &rec : part_recs)
        part_phase.traces.push_back(rec.take());
    for (auto &rec : probe_recs)
        probe_phase.traces.push_back(rec.take());
    exec.phases.push_back(std::move(part_phase));
    exec.phases.push_back(std::move(probe_phase));
    exec.groupCount = group_total;
    exec.aggChecksum = checksum;
    return exec;
}

} // namespace mondrian
