#include "engine/ops.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "engine/op_helpers.hh"
#include "engine/partitioner.hh"
#include "engine/sort_algos.hh"
#include "engine/trace_recorder.hh"

namespace mondrian {

namespace {

/** Functional hash join of one co-partition (FK: R keys unique). */
std::vector<Tuple>
joinPartition(const std::vector<Tuple> &r, const std::vector<Tuple> &s)
{
    std::unordered_map<std::uint64_t, std::uint64_t> build;
    build.reserve(r.size() * 2);
    for (const Tuple &t : r)
        build[t.key] = t.payload;
    std::vector<Tuple> out;
    out.reserve(s.size());
    for (const Tuple &t : s) {
        auto it = build.find(t.key);
        if (it != build.end())
            out.push_back(Tuple{t.key, t.payload + it->second});
    }
    return out;
}

} // namespace

OperatorExecution
runJoin(MemoryPool &pool, const ExecConfig &cfg, const Relation &r,
        const Relation &s)
{
    const unsigned vaults = pool.geometry().totalVaults();
    OperatorExecution exec;
    exec.op = "join";
    exec.style = cfg.cpuStyle ? "cpu"
                              : (cfg.simd ? "mondrian"
                                          : (cfg.sortProbe ? "nmp-seq"
                                                           : "nmp-rand"));

    Partitioner partitioner(pool, cfg);
    LocalSorter sorter(pool, cfg);
    const KernelCosts &k = cfg.costs;

    // Both relations are partitioned with the same function so matching
    // keys land in the same co-partition. Each shuffle is its own timed
    // phase: with permutability, the vault controllers re-arm between the
    // R and S destination buffers.
    PhaseExec part_r, part_s, probe_phase;
    part_r.name = "partition-R";
    part_r.kind = PhaseKind::kPartition;
    part_r.barriers = 2;
    part_s.name = "partition-S";
    part_s.kind = PhaseKind::kPartition;
    part_s.barriers = 2;
    probe_phase.name = "probe";
    probe_phase.kind = PhaseKind::kProbe;

    std::vector<TraceRecorder> r_recs(cfg.numUnits), s_recs(cfg.numUnits),
        probe_recs(cfg.numUnits);

    std::uint64_t matches = 0;

    if (cfg.cpuStyle) {
        // --- CPU radix hash join (Kim et al. [38], Balkesen et al. [10]).
        const unsigned P = 1u << cfg.cpuPartitionBits;
        PartitionFn fn = PartitionFn::lowBits(P);
        auto r_res = partitioner.shuffleCpu(r, fn, P, r_recs);
        auto s_res = partitioner.shuffleCpu(s, fn, P, s_recs);

        // Functional probe + output sizing.
        std::vector<std::vector<Tuple>> out_parts(P);
        std::vector<std::uint64_t> unit_matches(cfg.numUnits, 0);
        std::vector<std::uint64_t> max_r(cfg.numUnits, 0);
        for (unsigned p = 0; p < P; ++p) {
            unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
            std::vector<Tuple> rp, sp;
            for (auto &[base, n] : cpuRangeSegments(r_res, r_res.bounds[p],
                                                    r_res.bounds[p + 1])) {
                std::size_t at = rp.size();
                rp.resize(at + n);
                pool.store().read(base, rp.data() + at, n * kTupleBytes);
            }
            for (auto &[base, n] : cpuRangeSegments(s_res, s_res.bounds[p],
                                                    s_res.bounds[p + 1])) {
                std::size_t at = sp.size();
                sp.resize(at + n);
                pool.store().read(base, sp.data() + at, n * kTupleBytes);
            }
            out_parts[p] = joinPartition(rp, sp);
            unit_matches[u] += out_parts[p].size();
            max_r[u] = std::max<std::uint64_t>(max_r[u], rp.size());
        }

        // Per-core reusable hash-table region + output buffer.
        std::vector<Addr> ht(cfg.numUnits), out_base(cfg.numUnits);
        std::vector<std::uint64_t> ht_slots(cfg.numUnits),
            out_cursor(cfg.numUnits, 0);
        for (unsigned u = 0; u < cfg.numUnits; ++u) {
            unsigned home = cfg.unitVaults(u, vaults).front();
            ht_slots[u] =
                nextPow2(2 * std::max<std::uint64_t>(1, max_r[u]));
            ht[u] = pool.allocBytes(home, ht_slots[u] * kTupleBytes, 64);
            out_base[u] = pool.allocBytes(
                home,
                std::max<std::uint64_t>(1, unit_matches[u]) * kTupleBytes,
                64);
        }

        // One cardinality-based reservation per core: ~2 ops per build
        // tuple and ~4 per probe tuple.
        {
            std::vector<std::uint64_t> r_n(cfg.numUnits, 0),
                s_n(cfg.numUnits, 0);
            for (unsigned p = 0; p < P; ++p) {
                unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
                r_n[u] += r_res.bounds[p + 1] - r_res.bounds[p];
                s_n[u] += s_res.bounds[p + 1] - s_res.bounds[p];
            }
            for (unsigned u = 0; u < cfg.numUnits; ++u)
                probe_recs[u].reserveMore(2 * r_n[u] + 4 * s_n[u] + 2 * P);
        }

        for (unsigned p = 0; p < P; ++p) {
            unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
            TraceRecorder &rec = probe_recs[u];

            // Build over R co-partition (second hashing of §6's probe
            // description: group R keys into contiguous index ranges).
            for (auto &[base, n] : cpuRangeSegments(r_res, r_res.bounds[p],
                                                    r_res.bounds[p + 1])) {
                std::vector<Tuple> rp(n);
                pool.store().read(base, rp.data(), n * kTupleBytes);
                scanEmit(rec, base, n, kTupleBytes, cfg.readChunkBytes,
                         false, [&](std::uint64_t j) {
                             std::uint64_t slot = hashKey(rp[j].key) &
                                                  (ht_slots[u] - 1);
                             rec.compute(k.hashBuild);
                             rec.store(ht[u] + slot * kTupleBytes,
                                       kTupleBytes);
                         });
            }
            // Probe with S co-partition; matches stream to the output.
            // Two dependent accesses per probe (§6): the hash-index
            // lookup, then the matching tuple inside R's index range.
            auto r_segs = cpuRangeSegments(r_res, r_res.bounds[p],
                                           r_res.bounds[p + 1]);
            std::uint64_t r_count = r_res.bounds[p + 1] - r_res.bounds[p];
            auto r_tuple_addr = [&](std::uint64_t idx) {
                for (auto &[rb, rn] : r_segs) {
                    if (idx < rn)
                        return rb + idx * kTupleBytes;
                    idx -= rn;
                }
                return r_segs.empty() ? ht[u] : r_segs.front().first;
            };
            for (auto &[base, n] : cpuRangeSegments(s_res, s_res.bounds[p],
                                                    s_res.bounds[p + 1])) {
                std::vector<Tuple> sp(n);
                pool.store().read(base, sp.data(), n * kTupleBytes);
                scanEmit(rec, base, n, kTupleBytes, cfg.readChunkBytes,
                         false, [&](std::uint64_t j) {
                             std::uint64_t h = hashKey(sp[j].key);
                             std::uint64_t slot = h & (ht_slots[u] - 1);
                             // Dependent bucket lookup, then the index
                             // range entry it points at (cache hits
                             // don't stall).
                             rec.loadBlocking(ht[u] + slot * kTupleBytes,
                                              kTupleBytes);
                             if (r_count > 0) {
                                 rec.loadBlocking(
                                     r_tuple_addr((h >> 7) % r_count),
                                     kTupleBytes);
                             }
                             rec.compute(k.hashProbe);
                             Addr oa = out_base[u] +
                                       out_cursor[u] * kTupleBytes;
                             rec.store(oa, kTupleBytes);
                             out_cursor[u]++;
                         });
            }
            // Functional output write.
            rec.fence();
        }
        // Write functional outputs into each unit's buffer in order.
        {
            std::vector<std::uint64_t> w(cfg.numUnits, 0);
            for (unsigned p = 0; p < P; ++p) {
                unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
                for (const Tuple &t : out_parts[p]) {
                    pool.store().writeValue(
                        out_base[u] + w[u]++ * kTupleBytes, t);
                }
            }
            for (unsigned u = 0; u < cfg.numUnits; ++u)
                exec.outputRegions.emplace_back(out_base[u],
                                                w[u] * kTupleBytes);
        }
        for (unsigned p = 0; p < P; ++p)
            matches += out_parts[p].size();
    } else {
        // --- NMP variants: co-partition one-per-vault.
        PartitionFn fn = PartitionFn::lowBits(vaults);
        Relation r_out = partitioner.shuffleNmp(r, fn, r_recs,
                                                &part_r.arming);
        Relation s_out = partitioner.shuffleNmp(s, fn, s_recs,
                                                &part_s.arming);

        for (unsigned v = 0; v < vaults; ++v) {
            TraceRecorder &rec = probe_recs[v];
            auto rp = r_out.gather(pool, v);
            auto sp = s_out.gather(pool, v);
            auto out_tuples = joinPartition(rp, sp);

            // Probe traces are per-tuple: ~2 ops per build tuple and ~3
            // per probe tuple (hash path); the sort path needs far less.
            rec.reserveMore(2 * rp.size() + 3 * sp.size() + 16);

            Addr out_addr = pool.allocBytes(
                v,
                std::max<std::uint64_t>(1, out_tuples.size()) * kTupleBytes,
                64);
            exec.outputRegions.emplace_back(
                out_addr, out_tuples.size() * kTupleBytes);

            const auto &r_part = r_out.partition(v);
            const auto &s_part = s_out.partition(v);

            if (!cfg.sortProbe) {
                // NMP-rand: hash join against vault DRAM (the 8 KB tile
                // cache cannot hold the table): dependent random loads.
                std::uint64_t slots = nextPow2(
                    2 * std::max<std::uint64_t>(1, rp.size()));
                Addr ht = pool.allocBytes(v, slots * kTupleBytes, 64);
                scanEmit(rec, r_part.base, r_part.count, kTupleBytes,
                         cfg.readChunkBytes, false, [&](std::uint64_t j) {
                             std::uint64_t slot =
                                 hashKey(rp[j].key) & (slots - 1);
                             rec.compute(k.hashBuild);
                             rec.store(ht + slot * kTupleBytes,
                                       kTupleBytes);
                         });
                std::uint64_t oc = 0;
                scanEmit(rec, s_part.base, s_part.count, kTupleBytes,
                         cfg.readChunkBytes, false, [&](std::uint64_t j) {
                             std::uint64_t slot =
                                 hashKey(sp[j].key) & (slots - 1);
                             rec.loadBlocking(ht + slot * kTupleBytes,
                                              kTupleBytes);
                             rec.compute(k.hashProbe);
                             rec.store(out_addr + oc * kTupleBytes,
                                       kTupleBytes);
                             ++oc;
                         });
            } else {
                // NMP-seq / Mondrian: sort-merge join. Sort both inputs,
                // then a single sequential merge pass joins them.
                sorter.sortPartition(r_out, v, rec);
                sorter.sortPartition(s_out, v, rec);
                rec.scanFixed(r_part.base, r_part.count, kTupleBytes,
                              cfg.readChunkBytes, cfg.simd, k.joinMerge);
                std::uint64_t oc = 0;
                scanEmit(rec, s_part.base, s_part.count, kTupleBytes,
                         cfg.readChunkBytes, cfg.simd,
                         [&](std::uint64_t) {
                             rec.compute(k.joinMerge);
                             rec.store(out_addr + oc * kTupleBytes,
                                       kTupleBytes);
                             ++oc;
                         });
            }
            // Functional output write.
            for (std::size_t i = 0; i < out_tuples.size(); ++i) {
                pool.store().writeValue(out_addr + i * kTupleBytes,
                                        out_tuples[i]);
            }
            matches += out_tuples.size();
            rec.fence();
        }
    }

    for (auto &rec : r_recs)
        part_r.traces.push_back(rec.take());
    for (auto &rec : s_recs)
        part_s.traces.push_back(rec.take());
    for (auto &rec : probe_recs)
        probe_phase.traces.push_back(rec.take());
    exec.phases.push_back(std::move(part_r));
    exec.phases.push_back(std::move(part_s));
    exec.phases.push_back(std::move(probe_phase));
    exec.joinMatches = matches;
    return exec;
}

} // namespace mondrian
