/**
 * @file
 * Per-architecture kernel cost models (calibration constants).
 *
 * The functional operator code emits one compute burst per inner-loop
 * iteration; these tables give the burst length in core cycles. They are
 * the reproduction's stand-in for the paper's sampled Flexus IPC
 * measurements, chosen so the modeled cores land near the IPCs and
 * bandwidths the paper reports:
 *
 *  - NMP partition loop IPC ~0.98, 1.0 GB/s/vault (§7.1, Table 5 text)
 *  - NMP-seq probe IPC ~0.95, NMP-rand probe IPC ~0.24
 *  - Mondrian scan at 6.7 GB/s/vault, CPU scan at 4.3 GB/s/core
 *  - Mondrian's 1024-bit SIMD processes 8 tuples per operation (§5.2)
 *
 * All values are cycles per tuple unless stated otherwise.
 */

#ifndef MONDRIAN_ENGINE_KERNEL_COSTS_HH
#define MONDRIAN_ENGINE_KERNEL_COSTS_HH

namespace mondrian {

/** Cycles-per-tuple cost table for one compute-unit microarchitecture. */
struct KernelCosts
{
    // --- Partitioning phase ---------------------------------------------
    /** Hash key + histogram counter update (histogram build step). */
    double histogram = 8.0;
    /** Destination address computation: cursor load/increment chain. */
    double scatterAddr = 12.0;
    /** Tuple copy into an outgoing message / store setup. */
    double scatterCopy = 8.0;
    /** Simplified append path when permutability removes the cursor chain. */
    double permutableAppend = 6.0;

    // --- Probe phase -----------------------------------------------------
    /** Predicate evaluation per tuple (Scan). */
    double scan = 7.0;
    /** Hash-table insert per build tuple. */
    double hashBuild = 14.0;
    /** Hash lookup + key compare per probe tuple (excl. memory time). */
    double hashProbe = 10.0;
    /** Compare/advance per tuple per two-way merge pass (mergesort). */
    double mergePass = 8.0;
    /** Initial in-register sort pass per tuple (bitonic, Mondrian only). */
    double bitonicPass = 6.0;
    /** Quicksort: cycles per tuple per log2(n) level (CPU probe sort). */
    double quicksortLevel = 7.0;
    /** Final merge-join pass per tuple (sorted R x sorted S). */
    double joinMerge = 9.0;
    /** Six aggregate updates (avg/count/min/max/sum/sumsq) per tuple. */
    double aggregate = 14.0;
};

/** Cortex-A57 class CPU core (3-wide OoO @ 2 GHz): CPU-centric system. */
inline KernelCosts
cpuKernelCosts()
{
    KernelCosts c;
    // A 3-wide OoO core sustains IPC ~1.5-2 on these loops; the cycle
    // counts below are instruction counts divided by that throughput.
    c.histogram = 6.0;
    c.scatterAddr = 10.0;   // dependent cursor chain limits ILP
    c.scatterCopy = 6.0;
    c.permutableAppend = 5.0; // CPU never uses it; kept for ablations
    c.scan = 7.0;             // 4 tuples/line, ~28 cyc/line -> 4.3 GB/s @2GHz
    c.hashBuild = 12.0;
    c.hashProbe = 9.0;
    c.mergePass = 7.0;
    c.bitonicPass = 6.0;
    c.quicksortLevel = 6.5;
    c.joinMerge = 8.0;
    c.aggregate = 12.0;
    return c;
}

/** Krait400-class NMP baseline core (3-wide OoO @ 1 GHz). */
inline KernelCosts
nmpKernelCosts()
{
    KernelCosts c;
    // Same scalar instruction stream as the CPU but a shallower window;
    // the paper reports IPC 0.98 on the partition loop ("heavy data
    // dependencies"), so cycles/tuple ~= instructions/tuple.
    c.histogram = 9.0;
    c.scatterAddr = 14.0;
    c.scatterCopy = 9.0;
    c.permutableAppend = 7.0; // NMP-perm: simpler code, fewer dependences
    c.scan = 6.5;
    c.hashBuild = 16.0;
    c.hashProbe = 11.0;
    c.mergePass = 9.0;
    c.bitonicPass = 8.0;
    c.quicksortLevel = 8.0;
    c.joinMerge = 10.0;
    c.aggregate = 16.0;
    return c;
}

/**
 * Mondrian tile (in-order A35 + 1024-bit fixed-point SIMD @ 1 GHz).
 * Data-parallel kernels process 8 tuples per SIMD operation; loop
 * overheads keep effective speedup below the 8x width.
 */
inline KernelCosts
mondrianKernelCosts()
{
    KernelCosts c;
    c.histogram = 1.5;       // SIMD hash of 8 keys + scatter-add
    c.scatterAddr = 6.0;     // noperm: cursor chain stays scalar (§7.1)
    c.scatterCopy = 1.5;     // SIMD tuple moves
    c.permutableAppend = 1.2; // full-SIMD partition loop (§7.1, Table 5)
    c.scan = 2.2;            // 16 tuples/256 B stream step
    c.hashBuild = 16.0;      // hash paths stay scalar on the A35
    c.hashProbe = 11.0;
    c.mergePass = 2.5;       // 8-wide merge network, 8 tuples / ~20 cyc
    c.bitonicPass = 1.5;     // SIMD bitonic of in-register groups
    c.quicksortLevel = 8.0;  // unused (Mondrian sorts by merge)
    c.joinMerge = 2.5;
    c.aggregate = 3.0;       // SIMD 6-function update of 8 tuples
    return c;
}

} // namespace mondrian

#endif // MONDRIAN_ENGINE_KERNEL_COSTS_HH
