/**
 * @file
 * Internal helpers shared by the operator implementations. Not part of
 * the public API.
 */

#ifndef MONDRIAN_ENGINE_OP_HELPERS_HH
#define MONDRIAN_ENGINE_OP_HELPERS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/intmath.hh"
#include "engine/exec_config.hh"
#include "engine/partitioner.hh"
#include "engine/relation.hh"

namespace mondrian {

/** Contiguous (address, tuple-count) pieces of a CPU global-array range. */
inline std::vector<std::pair<Addr, std::uint64_t>>
cpuRangeSegments(const Partitioner::CpuResult &res, std::uint64_t g0,
                 std::uint64_t g1)
{
    std::vector<std::pair<Addr, std::uint64_t>> segs;
    std::uint64_t g = g0;
    while (g < g1) {
        std::uint64_t chunk_end = (g / res.chunkTuples + 1) * res.chunkTuples;
        std::uint64_t n = std::min(g1, chunk_end) - g;
        segs.emplace_back(Partitioner::globalTupleAddr(res.out,
                                                       res.chunkTuples, g),
                          n);
        g += n;
    }
    return segs;
}

/** CPU unit responsible for logical partition @p p of @p P total. */
inline unsigned
cpuUnitOfPartition(unsigned p, unsigned P, unsigned units)
{
    return static_cast<unsigned>((std::uint64_t{p} * units) / P);
}

/** Smallest power of two >= v (min 1). */
inline std::uint64_t
nextPow2(std::uint64_t v)
{
    return v <= 1 ? 1 : (std::uint64_t{1} << ceilLog2(v));
}

/** Largest key in a relation plus one (the range-partition key space). */
inline std::uint64_t
keySpaceOf(const MemoryPool &pool, const Relation &rel)
{
    std::uint64_t max_key = 0;
    for (std::size_t p = 0; p < rel.numPartitions(); ++p) {
        for (const Tuple &t : rel.gather(pool, p))
            max_key = std::max(max_key, t.key);
    }
    return max_key + 1;
}

} // namespace mondrian

#endif // MONDRIAN_ENGINE_OP_HELPERS_HH
