#include "engine/operator.hh"

namespace mondrian {

KernelTrace::Summary
PhaseExec::summarize() const
{
    KernelTrace::Summary total;
    for (const auto &t : traces) {
        auto s = t.summarize();
        total.computeCycles += s.computeCycles;
        total.loads += s.loads;
        total.loadBytes += s.loadBytes;
        total.stores += s.stores;
        total.storeBytes += s.storeBytes;
        total.permutableStores += s.permutableStores;
        total.streamReads += s.streamReads;
        total.streamBytes += s.streamBytes;
        total.fences += s.fences;
    }
    return total;
}

} // namespace mondrian
