/**
 * @file
 * Operator execution products: per-phase kernel traces plus functional
 * results.
 *
 * Every operator implementation both transforms the data (functionally,
 * through the simulated address space) and records the kernel traces the
 * timing models replay. Phases mirror Table 2 of the paper: partitioning
 * (histogram build + data distribution; Join runs one shuffle per input
 * relation) and probe.
 */

#ifndef MONDRIAN_ENGINE_OPERATOR_HH
#define MONDRIAN_ENGINE_OPERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "engine/relation.hh"
#include "mem/allocator.hh"

namespace mondrian {

/** Which half of Table 2 a phase belongs to. */
enum class PhaseKind
{
    kPartition,
    kProbe
};

/** One timed phase: traces per unit, plus shuffle metadata. */
struct PhaseExec
{
    std::string name;
    PhaseKind kind = PhaseKind::kProbe;
    /** One kernel trace per compute unit. */
    std::vector<KernelTrace> traces;
    /**
     * Permutable regions to arm before the phase: (global vault, region)
     * pairs. Empty when the phase does not shuffle permutably.
     */
    std::vector<std::pair<unsigned, PermutableRegion>> arming;
    /** Number of global synchronization barriers inside the phase. */
    unsigned barriers = 0;

    bool empty() const { return traces.empty(); }

    /** Sum of all units' trace summaries. */
    KernelTrace::Summary summarize() const;
};

/** Full execution of one operator: phases + functional outputs. */
struct OperatorExecution
{
    std::string op;    ///< "scan", "sort", "groupby", "join"
    std::string style; ///< execution style description
    std::vector<PhaseExec> phases;

    // Functional results (checked by tests against references).
    std::uint64_t scanMatches = 0; ///< Scan: predicate hits
    std::uint64_t joinMatches = 0; ///< Join: output tuples
    std::uint64_t groupCount = 0;  ///< Group-by: distinct groups
    Relation output;               ///< operator output relation
    std::uint64_t aggChecksum = 0; ///< Group-by: checksum over aggregates
    /** Raw output regions (addr, bytes), e.g. Group-by record arrays. */
    std::vector<std::pair<Addr, std::uint64_t>> outputRegions;

    /** Total units (traces per phase). */
    std::size_t
    numUnits() const
    {
        return phases.empty() ? 0 : phases.front().traces.size();
    }
};

} // namespace mondrian

#endif // MONDRIAN_ENGINE_OPERATOR_HH
