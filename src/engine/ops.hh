/**
 * @file
 * The four basic in-memory data operators (Table 2): Scan, Sort, Group-by,
 * Join. Each runs functionally on simulated memory and records per-unit
 * kernel traces for every phase, in the style selected by the ExecConfig
 * (CPU hash/quicksort, NMP-rand hash, NMP-seq sort, Mondrian SIMD sort).
 */

#ifndef MONDRIAN_ENGINE_OPS_HH
#define MONDRIAN_ENGINE_OPS_HH

#include <cstdint>

#include "engine/exec_config.hh"
#include "engine/operator.hh"
#include "engine/relation.hh"

namespace mondrian {

/**
 * Group-by output record: the six aggregate functions of §6 (avg, count,
 * min, max, sum, sum of squares) plus the group key, padded to 64 bytes.
 */
struct GroupRecord
{
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = ~std::uint64_t{0};
    std::uint64_t max = 0;
    std::uint64_t sumsq = 0;
    double avg = 0.0;
    std::uint64_t pad = 0;

    /** Order-independent digest used to compare styles in tests. */
    std::uint64_t
    digest() const
    {
        return key * 0x9e3779b97f4a7c15ull + count * 31 + sum * 7 + min * 3 +
               max * 11 + sumsq;
    }
};

static_assert(sizeof(GroupRecord) == 64, "group records must be 64 bytes");

/**
 * Scan: count tuples whose key equals @p probe_key. No partitioning phase
 * (Table 2); every unit scans its local data in parallel.
 */
OperatorExecution runScan(MemoryPool &pool, const ExecConfig &cfg,
                          const Relation &rel, std::uint64_t probe_key);

/**
 * Sort: range-partition on high-order key bits, then sort each partition
 * locally (quicksort on CPU, mergesort on NMP, SIMD mergesort on
 * Mondrian). The output relation is globally sorted in partition order.
 */
OperatorExecution runSort(MemoryPool &pool, const ExecConfig &cfg,
                          const Relation &rel);

/**
 * Group-by: radix-partition on low-order key bits, then aggregate each
 * group with the six functions (hash aggregation or sort-then-sweep).
 */
OperatorExecution runGroupBy(MemoryPool &pool, const ExecConfig &cfg,
                             const Relation &rel);

/**
 * Join (R |x| S): radix-partition both relations on low-order key bits,
 * then join co-partitions (hash join or sort-merge join). Keys follow a
 * foreign-key relationship: every S tuple matches exactly one R tuple.
 * Output tuples carry the matched key and the sum of both payloads.
 */
OperatorExecution runJoin(MemoryPool &pool, const ExecConfig &cfg,
                          const Relation &r, const Relation &s);

} // namespace mondrian

#endif // MONDRIAN_ENGINE_OPS_HH
