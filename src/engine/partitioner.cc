#include "engine/partitioner.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

PartitionFn
PartitionFn::lowBits(unsigned num_partitions)
{
    sim_assert(isPowerOf2(num_partitions));
    return PartitionFn(num_partitions, false, 0);
}

PartitionFn
PartitionFn::range(unsigned num_partitions, std::uint64_t key_space)
{
    sim_assert(key_space > 0);
    return PartitionFn(num_partitions, true, key_space);
}

unsigned
PartitionFn::operator()(std::uint64_t key) const
{
    if (range_) {
        // High-order bits: contiguous key ranges per partition (Sort).
        auto p = static_cast<unsigned>(
            (static_cast<__uint128_t>(key) * num_) / keySpace_);
        return p >= num_ ? num_ - 1 : p;
    }
    // Low-order bits: radix partitioning (Join, Group-by).
    return static_cast<unsigned>(key & (num_ - 1));
}

Relation
Partitioner::shuffleNmp(
    const Relation &in, const PartitionFn &fn,
    std::vector<TraceRecorder> &recs,
    std::vector<std::pair<unsigned, PermutableRegion>> *arming)
{
    const unsigned vaults = pool_.geometry().totalVaults();
    sim_assert(fn.numPartitions() == vaults);
    sim_assert(recs.size() == vaults);
    sim_assert(in.numPartitions() == vaults);

    const std::uint64_t total = in.totalTuples();

    // --- Functional: gather sources, classify destinations. -------------
    std::vector<std::vector<Tuple>> src(vaults);
    std::vector<std::vector<unsigned>> dest(vaults);
    std::vector<std::vector<std::uint64_t>> counts(
        vaults, std::vector<std::uint64_t>(vaults, 0));
    for (unsigned sv = 0; sv < vaults; ++sv) {
        src[sv] = in.gather(pool_, sv);
        dest[sv].resize(src[sv].size());
        for (std::size_t j = 0; j < src[sv].size(); ++j) {
            unsigned dv = fn(src[sv][j].key);
            dest[sv][j] = dv;
            counts[sv][dv]++;
        }
    }

    // Destination buffers: the flat shuffleCapacityFactor headroom covers
    // uniform keys (§5.3's overprovisioning); skewed keys (Zipf studies)
    // can exceed any flat factor, so each destination is additionally
    // sized from the exchanged histogram — exactly the per-destination
    // counts every vault already computes before distribution. Uniform
    // workloads keep the flat capacity (and therefore an identical memory
    // layout); only destinations the histogram proves hotter grow.
    const std::uint64_t flat_cap =
        static_cast<std::uint64_t>(
            static_cast<double>(divCeil(total, vaults)) *
            cfg_.shuffleCapacityFactor) +
        16;
    std::vector<std::uint64_t> inbound(vaults, 0);
    for (unsigned dv = 0; dv < vaults; ++dv)
        for (unsigned sv = 0; sv < vaults; ++sv)
            inbound[dv] += counts[sv][dv];

    std::vector<unsigned> all(vaults);
    std::vector<std::uint64_t> caps(vaults);
    for (unsigned v = 0; v < vaults; ++v) {
        all[v] = v;
        caps[v] = std::max(flat_cap, inbound[v]);
    }
    Relation out = Relation::alloc(pool_, all, caps);

    // --- Placement. ------------------------------------------------------
    // addrOf[sv][j]: final address of source sv's j-th tuple.
    std::vector<std::vector<Addr>> addrOf(vaults);
    for (unsigned sv = 0; sv < vaults; ++sv)
        addrOf[sv].resize(src[sv].size());

    if (!cfg_.permutable) {
        // Exact placement from exchanged histogram prefix sums:
        // source sv's block within dv starts after all lower sources'.
        std::vector<std::vector<std::uint64_t>> off(
            vaults, std::vector<std::uint64_t>(vaults, 0));
        for (unsigned dv = 0; dv < vaults; ++dv) {
            std::uint64_t run = 0;
            for (unsigned sv = 0; sv < vaults; ++sv) {
                off[dv][sv] = run;
                run += counts[sv][dv];
            }
        }
        std::vector<std::vector<std::uint64_t>> cursor(
            vaults, std::vector<std::uint64_t>(vaults, 0));
        for (unsigned sv = 0; sv < vaults; ++sv) {
            for (std::size_t j = 0; j < src[sv].size(); ++j) {
                unsigned dv = dest[sv][j];
                std::uint64_t idx = off[dv][sv] + cursor[sv][dv]++;
                addrOf[sv][j] = out.tupleAddr(dv, idx);
                out.writeTuple(pool_, dv, idx, src[sv][j]);
            }
        }
    } else {
        // Permutable placement: the destination vault controller appends
        // objects in arrival order. We model arrival as a round-robin
        // interleave of the source streams -- messages from concurrently
        // shuffling sources interleave in the memory network (Fig. 2).
        // Any permutation is functionally correct; this one is
        // deterministic.
        for (unsigned dv = 0; dv < vaults; ++dv) {
            // Per-source FIFO of tuple indices destined for dv.
            std::vector<std::vector<std::uint64_t>> fifo(vaults);
            for (unsigned sv = 0; sv < vaults; ++sv)
                for (std::size_t j = 0; j < dest[sv].size(); ++j)
                    if (dest[sv][j] == dv)
                        fifo[sv].push_back(j);
            std::vector<std::size_t> pos(vaults, 0);
            std::uint64_t arrival = 0;
            bool progress = true;
            while (progress) {
                progress = false;
                for (unsigned sv = 0; sv < vaults; ++sv) {
                    if (pos[sv] < fifo[sv].size()) {
                        std::uint64_t j = fifo[sv][pos[sv]++];
                        addrOf[sv][j] = out.tupleAddr(dv, arrival);
                        out.writeTuple(pool_, dv, arrival, src[sv][j]);
                        ++arrival;
                        progress = true;
                    }
                }
            }
            sim_assert(arrival == inbound[dv]);
        }
        if (arming) {
            for (unsigned dv = 0; dv < vaults; ++dv) {
                arming->emplace_back(
                    dv, PermutableRegion{out.partition(dv).base,
                                         caps[dv] * kTupleBytes,
                                         kTupleBytes});
            }
        }
    }
    for (unsigned dv = 0; dv < vaults; ++dv)
        out.partition(dv).count = inbound[dv];

    // --- Histogram-exchange scratch (predefined remote locations). ------
    if (exchangeBlocks_.empty()) {
        exchangeBlocks_.resize(vaults);
        for (unsigned v = 0; v < vaults; ++v)
            exchangeBlocks_[v] = pool_.allocBytes(v, vaults * 8);
    }

    // --- Traces. ----------------------------------------------------------
    const KernelCosts &k = cfg_.costs;
    const std::uint64_t per_chunk =
        std::max<std::uint64_t>(1, cfg_.readChunkBytes / kTupleBytes);
    for (unsigned sv = 0; sv < vaults; ++sv) {
        TraceRecorder &rec = recs[sv];
        const auto &part = in.partition(sv);

        // Size the trace once from the known cardinality: the scatter
        // loop below emits two ops per tuple plus a read per chunk.
        rec.reserveMore(2 * part.count + part.count / per_chunk + vaults +
                        8);

        // Histogram build: sequential scan + hash/count per tuple. The
        // 64-entry histogram lives in registers/L1 on an NMP unit.
        rec.scanFixed(part.base, part.count, kTupleBytes,
                      cfg_.readChunkBytes, cfg_.simd, k.histogram);
        // Exchange: write own counts to every vault's predefined slot.
        for (unsigned dv = 0; dv < vaults; ++dv)
            rec.store(exchangeBlocks_[dv] + sv * 8, 8);
        rec.fence();

        // Data distribution: re-scan and store each tuple to its target.
        scanEmit(rec, part.base, part.count, kTupleBytes,
                 cfg_.readChunkBytes, cfg_.simd, [&](std::uint64_t j) {
                     if (cfg_.permutable) {
                         rec.compute(k.permutableAppend);
                         rec.permutableStore(addrOf[sv][j], kTupleBytes);
                     } else {
                         rec.compute(k.scatterAddr + k.scatterCopy);
                         rec.store(addrOf[sv][j], kTupleBytes);
                     }
                 });
        rec.fence();
    }
    return out;
}

Addr
Partitioner::globalTupleAddr(const Relation &rel, std::uint64_t chunk,
                             std::uint64_t g)
{
    return rel.tupleAddr(g / chunk, g % chunk);
}

Partitioner::CpuResult
Partitioner::shuffleCpu(const Relation &in, const PartitionFn &fn,
                        unsigned num_partitions,
                        std::vector<TraceRecorder> &recs)
{
    const unsigned vaults = pool_.geometry().totalVaults();
    const unsigned units = cfg_.numUnits;
    sim_assert(recs.size() == units);
    const std::uint64_t total = in.totalTuples();
    const unsigned P = num_partitions;

    // --- Functional: per-unit histograms over their vault shares. -------
    std::vector<std::vector<Tuple>> src(units);
    std::vector<std::vector<unsigned>> dst(units);
    std::vector<std::vector<std::uint64_t>> counts(
        units, std::vector<std::uint64_t>(P, 0));
    for (unsigned u = 0; u < units; ++u) {
        for (unsigned v : cfg_.unitVaults(u, vaults)) {
            auto tuples = in.gather(pool_, v);
            for (const Tuple &t : tuples) {
                unsigned p = fn(t.key);
                counts[u][p]++;
                src[u].push_back(t);
                dst[u].push_back(p);
            }
        }
    }

    // Global bounds and per-(unit, partition) exact offsets -- the
    // standard parallel radix layout with private output blocks.
    CpuResult res;
    res.bounds.assign(P + 1, 0);
    for (unsigned p = 0; p < P; ++p) {
        std::uint64_t c = 0;
        for (unsigned u = 0; u < units; ++u)
            c += counts[u][p];
        res.bounds[p + 1] = res.bounds[p] + c;
    }
    std::vector<std::vector<std::uint64_t>> off(
        units, std::vector<std::uint64_t>(P, 0));
    for (unsigned p = 0; p < P; ++p) {
        std::uint64_t run = res.bounds[p];
        for (unsigned u = 0; u < units; ++u) {
            off[u][p] = run;
            run += counts[u][p];
        }
    }

    // Output: a global array carved into per-vault chunks.
    res.chunkTuples = divCeil(total, vaults);
    std::vector<unsigned> all(vaults);
    for (unsigned v = 0; v < vaults; ++v)
        all[v] = v;
    res.out = Relation::alloc(pool_, all, res.chunkTuples);
    for (unsigned v = 0; v < vaults; ++v) {
        std::uint64_t start = std::uint64_t{v} * res.chunkTuples;
        res.out.partition(v).count =
            start >= total ? 0
                           : std::min(res.chunkTuples, total - start);
    }

    // Functional placement.
    {
        std::vector<std::vector<std::uint64_t>> cursor(
            units, std::vector<std::uint64_t>(P, 0));
        for (unsigned u = 0; u < units; ++u) {
            for (std::size_t j = 0; j < src[u].size(); ++j) {
                unsigned p = dst[u][j];
                std::uint64_t g = off[u][p] + cursor[u][p]++;
                pool_.store().writeValue(
                    globalTupleAddr(res.out, res.chunkTuples, g), src[u][j]);
            }
        }
    }

    // --- Model state: private cursor arrays and page-table footprint. ---
    if (cursorBlocks_.size() != units) {
        cursorBlocks_.assign(units, 0);
        for (unsigned u = 0; u < units; ++u) {
            unsigned home = cfg_.unitVaults(u, vaults).front();
            cursorBlocks_[u] = pool_.allocBytes(home, std::uint64_t{P} * 8);
        }
    }
    const bool tlb_pressure = P > cfg_.tlbEntries;
    if (tlb_pressure && pageTableBytes_ == 0) {
        // Leaf page-table working set for the scattered output pages. The
        // walker touches last-level PTE cache lines scattered over the
        // OS's page-table pages; the footprint comfortably exceeds the
        // LLC once the fanout exceeds the TLB (the radix-partitioning
        // fanout wall of Kim et al. [38]). Spread across vaults like the
        // OS's physically scattered page-table pages.
        pageTableBytes_ =
            std::max<std::uint64_t>(std::uint64_t{P} * 512, 2 * kMiB);
        pageTableBlockBytes_ = divCeil(pageTableBytes_, vaults);
        pageTableBlocks_.resize(vaults);
        for (unsigned v = 0; v < vaults; ++v)
            pageTableBlocks_[v] = pool_.allocBytes(v, pageTableBlockBytes_);
    }
    auto pt_addr = [&](Addr out_addr) {
        std::uint64_t page = out_addr >> 12;
        std::uint64_t h = hashKey(page);
        unsigned v = static_cast<unsigned>(h % vaults);
        std::uint64_t slot = (h / vaults) % (pageTableBlockBytes_ / 8);
        return pageTableBlocks_[v] + slot * 8;
    };

    // --- Traces. ----------------------------------------------------------
    const KernelCosts &k = cfg_.costs;
    const std::uint64_t per_chunk =
        std::max<std::uint64_t>(1, cfg_.readChunkBytes / kTupleBytes);
    for (unsigned u = 0; u < units; ++u) {
        TraceRecorder &rec = recs[u];

        // Cardinality-based sizing: histogram emits 2 ops/tuple, the
        // scatter 3 (plus 3 page-walk loads under TLB pressure), and each
        // chunked sweep adds a read per chunk.
        const std::uint64_t n_u = src[u].size();
        rec.reserveMore((tlb_pressure ? 8 : 5) * n_u +
                        2 * (n_u / per_chunk) + 16);

        // Histogram step: scan own share; count into the private array
        // (P entries; modeled as a load per tuple through the caches).
        std::uint64_t j_base = 0;
        for (unsigned v : cfg_.unitVaults(u, vaults)) {
            const auto &part = in.partition(v);
            scanEmit(rec, part.base, part.count, kTupleBytes,
                     cfg_.readChunkBytes, false, [&](std::uint64_t j) {
                         unsigned p = dst[u][j_base + j];
                         rec.load(cursorBlocks_[u] + std::uint64_t{p} * 8, 8);
                         rec.compute(k.histogram);
                     });
            j_base += part.count;
        }
        // Prefix-sum across units (tiny) + barrier.
        rec.compute(2.0 * P);
        rec.fence();

        // Scatter step: re-scan; cursor chain + page walk + store.
        std::vector<std::uint64_t> cursor(P, 0);
        j_base = 0;
        for (unsigned v : cfg_.unitVaults(u, vaults)) {
            const auto &part = in.partition(v);
            scanEmit(rec, part.base, part.count, kTupleBytes,
                     cfg_.readChunkBytes, false, [&](std::uint64_t j) {
                         unsigned p = dst[u][j_base + j];
                         std::uint64_t g = off[u][p] + cursor[p]++;
                         Addr out_addr =
                             globalTupleAddr(res.out, res.chunkTuples, g);
                         rec.load(cursorBlocks_[u] + std::uint64_t{p} * 8, 8);
                         if (tlb_pressure) {
                             // TLB miss: a dependent multi-level walk.
                             // With 64K+ scattered destinations the
                             // walker caches thrash along with the TLB,
                             // leaving ~3 serialized memory accesses per
                             // translation (Kim et al. [38] identify this
                             // fanout wall; §5.1 notes NMP units use
                             // physical addresses and never pay it).
                             rec.loadBlocking(
                                 pt_addr(out_addr ^ 0xbf58476d1ce4e5b9ull),
                                 8);
                             rec.loadBlocking(
                                 pt_addr(out_addr ^ 0x5851f42dull), 8);
                             rec.loadBlocking(pt_addr(out_addr), 8);
                         }
                         rec.compute(k.scatterAddr + k.scatterCopy);
                         rec.store(out_addr, kTupleBytes);
                     });
            j_base += part.count;
        }
        rec.fence();
    }
    return res;
}

} // namespace mondrian
