/**
 * @file
 * Data partitioning (the shuffle) for every execution style.
 *
 * Table 2: the partitioning phase builds a histogram of destination
 * partitions, then redistributes tuples. Three concrete machines:
 *
 *  - shuffleNmp, exact placement: every source computes each tuple's
 *    precise destination address from exchanged histogram prefix sums and
 *    issues a remote store. Arrival interleaving makes the destination's
 *    DRAM access pattern random (Fig. 2).
 *  - shuffleNmp, permutable: sources only pick the destination *vault*;
 *    the destination vault controller appends objects in arrival order
 *    (§5.3). Histogram is still built (it sizes the destination buffers
 *    and the completion barrier), but the cursor-maintenance code and its
 *    dependences disappear from the inner loop.
 *  - shuffleCpu: single-pass radix partitioning on the CPU cores into 2^bits
 *    cache/TLB-straining logical partitions (the paper's 16 low-order-bit
 *    configuration), with per-core private cursors and page-walk traffic
 *    modeled for the scattered stores.
 */

#ifndef MONDRIAN_ENGINE_PARTITIONER_HH
#define MONDRIAN_ENGINE_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "engine/exec_config.hh"
#include "engine/operator.hh"
#include "engine/relation.hh"
#include "engine/trace_recorder.hh"

namespace mondrian {

/** Destination-partition function (radix low bits or range high bits). */
class PartitionFn
{
  public:
    /** Radix partitioning on the low-order key bits (Join, Group-by). */
    static PartitionFn lowBits(unsigned num_partitions);

    /** Range partitioning on the high-order key bits (Sort). */
    static PartitionFn range(unsigned num_partitions,
                             std::uint64_t key_space);

    unsigned operator()(std::uint64_t key) const;

    unsigned numPartitions() const { return num_; }
    bool isRange() const { return range_; }

  private:
    PartitionFn(unsigned num, bool is_range, std::uint64_t key_space)
        : num_(num), range_(is_range), keySpace_(key_space)
    {}

    unsigned num_;
    bool range_;
    std::uint64_t keySpace_;
};

/** Executes shuffles functionally and records their kernel traces. */
class Partitioner
{
  public:
    Partitioner(MemoryPool &pool, const ExecConfig &cfg)
        : pool_(pool), cfg_(cfg)
    {}

    /**
     * Near-memory shuffle: one destination partition per vault.
     *
     * Appends this shuffle's trace ops to @p recs (one recorder per unit).
     * When the config is permutable, arming descriptors are appended to
     * @p arming (ignored otherwise; may be null for non-permutable runs).
     *
     * @return the redistributed relation (partition i lives in vault i).
     */
    Relation shuffleNmp(
        const Relation &in, const PartitionFn &fn,
        std::vector<TraceRecorder> &recs,
        std::vector<std::pair<unsigned, PermutableRegion>> *arming);

    /** Result of a CPU-style radix partition. */
    struct CpuResult
    {
        /** Output as a global array split into per-vault chunks. */
        Relation out;
        /** Global tuple-index boundaries: partition p = [b[p], b[p+1]). */
        std::vector<std::uint64_t> bounds;
        /** Per-vault chunk size in tuples (global index stride). */
        std::uint64_t chunkTuples = 0;
    };

    /**
     * CPU radix partition into @p num_partitions logical partitions.
     * Models per-core private cursor arrays and, when the fanout exceeds
     * the TLB reach, a page walk per scattered store.
     */
    CpuResult shuffleCpu(const Relation &in, const PartitionFn &fn,
                         unsigned num_partitions,
                         std::vector<TraceRecorder> &recs);

    /** Address of CPU global-array tuple @p g in @p rel. */
    static Addr globalTupleAddr(const Relation &rel, std::uint64_t chunk,
                                std::uint64_t g);

  private:
    MemoryPool &pool_;
    const ExecConfig &cfg_;

    /** Lazily allocated per-unit private cursor arrays (CPU radix). */
    std::vector<Addr> cursorBlocks_;
    /** Histogram-exchange slots, one block per vault (NMP shuffle). */
    std::vector<Addr> exchangeBlocks_;
    /** Modeled page-table footprint for TLB-pressured scatters. */
    std::vector<Addr> pageTableBlocks_; ///< one block per vault
    std::uint64_t pageTableBlockBytes_ = 0;
    std::uint64_t pageTableBytes_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_ENGINE_PARTITIONER_HH
