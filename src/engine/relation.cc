#include "engine/relation.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

MemoryPool::MemoryPool(const MemGeometry &geo)
    : map_(geo), store_(geo.totalBytes())
{
    allocs_.reserve(geo.totalVaults());
    for (unsigned v = 0; v < geo.totalVaults(); ++v)
        allocs_.emplace_back(map_.vaultBase(v), geo.vaultBytes);
}

Addr
MemoryPool::allocTuples(unsigned vault, std::uint64_t tuples)
{
    return allocBytes(vault, tuples * kTupleBytes, 64);
}

Addr
MemoryPool::allocBytes(unsigned vault, std::uint64_t bytes,
                       std::uint64_t align)
{
    sim_assert(vault < allocs_.size());
    return allocs_[vault].alloc(bytes, align);
}

std::uint64_t
MemoryPool::remaining(unsigned vault) const
{
    sim_assert(vault < allocs_.size());
    return allocs_[vault].remaining();
}

Relation
Relation::alloc(MemoryPool &pool, const std::vector<unsigned> &vaults,
                std::uint64_t capacity_per_vault)
{
    return alloc(pool, vaults,
                 std::vector<std::uint64_t>(vaults.size(),
                                            capacity_per_vault));
}

Relation
Relation::alloc(MemoryPool &pool, const std::vector<unsigned> &vaults,
                const std::vector<std::uint64_t> &capacities)
{
    sim_assert(capacities.size() == vaults.size());
    Relation r;
    r.parts_.reserve(vaults.size());
    for (std::size_t i = 0; i < vaults.size(); ++i) {
        RelationPartition p;
        p.vault = vaults[i];
        p.base = pool.allocTuples(vaults[i], capacities[i]);
        p.capacity = capacities[i];
        p.count = 0;
        r.parts_.push_back(p);
    }
    return r;
}

Relation
Relation::allocAcrossAll(MemoryPool &pool, std::uint64_t total_capacity)
{
    unsigned vaults = pool.geometry().totalVaults();
    std::vector<unsigned> all(vaults);
    for (unsigned v = 0; v < vaults; ++v)
        all[v] = v;
    return alloc(pool, all, divCeil(total_capacity, vaults));
}

std::uint64_t
Relation::totalTuples() const
{
    std::uint64_t n = 0;
    for (const auto &p : parts_)
        n += p.count;
    return n;
}

Tuple
Relation::readTuple(const MemoryPool &pool, std::size_t part,
                    std::uint64_t idx) const
{
    sim_assert(part < parts_.size() && idx < parts_[part].capacity);
    return pool.store().readValue<Tuple>(tupleAddr(part, idx));
}

void
Relation::writeTuple(MemoryPool &pool, std::size_t part, std::uint64_t idx,
                     const Tuple &t)
{
    sim_assert(part < parts_.size() && idx < parts_[part].capacity);
    pool.store().writeValue(tupleAddr(part, idx), t);
}

std::uint64_t
Relation::append(MemoryPool &pool, std::size_t part, const Tuple &t)
{
    auto &p = parts_[part];
    sim_assert(p.count < p.capacity);
    std::uint64_t idx = p.count++;
    pool.store().writeValue(tupleAddr(part, idx), t);
    return idx;
}

std::vector<Tuple>
Relation::gather(const MemoryPool &pool, std::size_t part) const
{
    const auto &p = parts_[part];
    std::vector<Tuple> out(p.count);
    if (p.count > 0)
        pool.store().read(p.base, out.data(), p.count * kTupleBytes);
    return out;
}

std::vector<Tuple>
Relation::gatherAll(const MemoryPool &pool) const
{
    std::vector<Tuple> out;
    out.reserve(totalTuples());
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        auto part = gather(pool, i);
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
}

void
Relation::scatter(MemoryPool &pool, std::size_t part,
                  const std::vector<Tuple> &tuples)
{
    auto &p = parts_[part];
    sim_assert(tuples.size() <= p.capacity);
    if (!tuples.empty())
        pool.store().write(p.base, tuples.data(),
                           tuples.size() * kTupleBytes);
    p.count = tuples.size();
}

} // namespace mondrian
