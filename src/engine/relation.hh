/**
 * @file
 * Vault-partitioned relations living in simulated physical memory.
 *
 * A Relation is a set of per-vault tuple arrays. All functional operator
 * code reads and writes tuples through the simulated address space, so the
 * timing traces and the data always agree.
 */

#ifndef MONDRIAN_ENGINE_RELATION_HH
#define MONDRIAN_ENGINE_RELATION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "engine/tuple.hh"
#include "mem/address_map.hh"
#include "mem/allocator.hh"
#include "mem/backing_store.hh"

namespace mondrian {

/** One vault-resident slice of a relation. */
struct RelationPartition
{
    unsigned vault = 0;          ///< global vault index
    Addr base = 0;               ///< base address of the tuple array
    std::uint64_t capacity = 0;  ///< allocated tuple slots
    std::uint64_t count = 0;     ///< live tuples
};

/**
 * Shared allocation context: address map, functional store, and one bump
 * allocator per vault.
 */
class MemoryPool
{
  public:
    explicit MemoryPool(const MemGeometry &geo);

    const AddressMap &map() const { return map_; }
    BackingStore &store() { return store_; }
    const BackingStore &store() const { return store_; }
    const MemGeometry &geometry() const { return map_.geometry(); }

    /** Allocate @p tuples slots in @p vault; returns the base address. */
    Addr allocTuples(unsigned vault, std::uint64_t tuples);

    /** Allocate @p bytes raw in @p vault. */
    Addr allocBytes(unsigned vault, std::uint64_t bytes,
                    std::uint64_t align = 64);

    /** Bytes remaining in @p vault. */
    std::uint64_t remaining(unsigned vault) const;

  private:
    AddressMap map_;
    BackingStore store_;
    std::vector<VaultAllocator> allocs_;
};

/** A relation distributed across a set of vaults. */
class Relation
{
  public:
    Relation() = default;

    /**
     * Allocate an empty relation with @p capacity_per_vault tuple slots in
     * each of @p vaults.
     */
    static Relation alloc(MemoryPool &pool, const std::vector<unsigned> &vaults,
                          std::uint64_t capacity_per_vault);

    /**
     * Allocate with an individual tuple capacity per vault (skew-aware
     * shuffle destinations are sized from the exchanged histogram).
     */
    static Relation alloc(MemoryPool &pool,
                          const std::vector<unsigned> &vaults,
                          const std::vector<std::uint64_t> &capacities);

    /** Allocate with uniform capacity across all vaults in the system. */
    static Relation allocAcrossAll(MemoryPool &pool,
                                   std::uint64_t total_capacity);

    std::size_t numPartitions() const { return parts_.size(); }
    const RelationPartition &partition(std::size_t i) const { return parts_[i]; }
    RelationPartition &partition(std::size_t i) { return parts_[i]; }
    const std::vector<RelationPartition> &partitions() const { return parts_; }

    /** Total live tuples across partitions. */
    std::uint64_t totalTuples() const;

    /** Address of tuple @p idx within partition @p part. */
    Addr
    tupleAddr(std::size_t part, std::uint64_t idx) const
    {
        return parts_[part].base + idx * kTupleBytes;
    }

    /** Functional tuple accessors (bounds-checked against capacity). */
    Tuple readTuple(const MemoryPool &pool, std::size_t part,
                    std::uint64_t idx) const;
    void writeTuple(MemoryPool &pool, std::size_t part, std::uint64_t idx,
                    const Tuple &t);

    /** Append @p t to partition @p part; returns its index. */
    std::uint64_t append(MemoryPool &pool, std::size_t part, const Tuple &t);

    /** Copy all tuples of partition @p part into a native vector. */
    std::vector<Tuple> gather(const MemoryPool &pool, std::size_t part) const;

    /** Copy the whole relation into a native vector (tests/verification). */
    std::vector<Tuple> gatherAll(const MemoryPool &pool) const;

    /** Overwrite partition @p part with @p tuples (count must fit). */
    void scatter(MemoryPool &pool, std::size_t part,
                 const std::vector<Tuple> &tuples);

  private:
    std::vector<RelationPartition> parts_;
};

} // namespace mondrian

#endif // MONDRIAN_ENGINE_RELATION_HH
