#include "engine/ops.hh"

#include "common/logging.hh"
#include "engine/trace_recorder.hh"

namespace mondrian {

OperatorExecution
runScan(MemoryPool &pool, const ExecConfig &cfg, const Relation &rel,
        std::uint64_t probe_key)
{
    const unsigned vaults = pool.geometry().totalVaults();
    OperatorExecution exec;
    exec.op = "scan";
    exec.style = cfg.cpuStyle ? "cpu" : (cfg.simd ? "mondrian" : "nmp");

    PhaseExec probe;
    probe.name = "probe";
    probe.kind = PhaseKind::kProbe;

    std::vector<TraceRecorder> recs(cfg.numUnits);
    std::uint64_t matches = 0;

    for (unsigned u = 0; u < cfg.numUnits; ++u) {
        TraceRecorder &rec = recs[u];
        for (unsigned v : cfg.unitVaults(u, vaults)) {
            const auto &part = rel.partition(v);
            // Functional: evaluate the predicate.
            for (const Tuple &t : rel.gather(pool, v))
                matches += (t.key == probe_key) ? 1 : 0;
            // Trace: one sequential sweep, one compare per tuple (RLE).
            rec.scanFixed(part.base, part.count, kTupleBytes,
                          cfg.readChunkBytes, cfg.simd, cfg.costs.scan);
        }
        rec.fence();
    }

    for (auto &rec : recs)
        probe.traces.push_back(rec.take());
    exec.phases.push_back(std::move(probe));
    exec.scanMatches = matches;
    return exec;
}

} // namespace mondrian
