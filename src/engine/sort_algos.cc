#include "engine/sort_algos.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

unsigned
LocalSorter::mergePassCount(std::uint64_t n, std::uint64_t initial_run)
{
    if (n <= initial_run)
        return 0;
    unsigned passes = 0;
    std::uint64_t run = initial_run;
    while (run < n) {
        run *= 2;
        ++passes;
    }
    return passes;
}

Addr
LocalSorter::scratchFor(unsigned vault, std::uint64_t bytes)
{
    for (auto &s : scratch_) {
        if (s.vault == vault && s.bytes >= bytes)
            return s.base;
    }
    // Allocate with headroom so repeated sorts of similar sizes reuse it.
    std::uint64_t alloc = roundUp(bytes, 4 * kKiB);
    Addr base = pool_.allocBytes(vault, alloc, 256);
    scratch_.push_back(Scratch{vault, base, alloc});
    return base;
}

void
LocalSorter::functionalSort(Addr base, std::uint64_t count)
{
    if (count < 2)
        return;
    std::vector<Tuple> tuples(count);
    pool_.store().read(base, tuples.data(), count * kTupleBytes);
    std::sort(tuples.begin(), tuples.end(),
              [](const Tuple &a, const Tuple &b) { return a.key < b.key; });
    pool_.store().write(base, tuples.data(), count * kTupleBytes);
}

void
LocalSorter::emitMergesort(Addr base, std::uint64_t count, unsigned vault,
                           TraceRecorder &rec, SortPasses &passes)
{
    if (count == 0)
        return;
    const KernelCosts &k = cfg_.costs;
    const std::uint64_t bytes = count * kTupleBytes;
    const Addr scratch = scratchFor(vault, bytes);

    std::uint64_t run = 1;
    if (cfg_.simd) {
        // Bitonic intra-stream pass: one streaming sweep sorts 16-tuple
        // groups in registers, cutting log2(16) = 4 merge passes (§5.2).
        passes.bitonicPasses = 1;
        rec.scanFixed(base, count, kTupleBytes, cfg_.readChunkBytes,
                      /*stream=*/true, k.bitonicPass);
        rec.writeRange(base, bytes, cfg_.readChunkBytes);
        rec.fence();
        run = kBitonicGroup;
    }

    // Bottom-up merge passes, ping-ponging between the partition buffer
    // and vault-local scratch. The trace reads the source sequentially
    // (two interleaved run streams -- still sequential per stream, which
    // is exactly what stream buffers are for) and writes the destination
    // sequentially.
    unsigned n_passes = mergePassCount(count, run);
    passes.mergePasses = n_passes;
    Addr src = base, dst = scratch;
    // Land the final pass in the partition buffer.
    if (n_passes % 2 == 1)
        std::swap(src, dst);
    for (unsigned pass = 0; pass < n_passes; ++pass) {
        rec.scanFixed(src, count, kTupleBytes, cfg_.readChunkBytes,
                      cfg_.simd, k.mergePass);
        rec.writeRange(dst, bytes, cfg_.readChunkBytes);
        rec.fence();
        std::swap(src, dst);
    }

    functionalSort(base, count);
}

void
LocalSorter::emitQuicksort(Addr base, std::uint64_t count,
                           TraceRecorder &rec, SortPasses &passes)
{
    if (count == 0)
        return;
    const KernelCosts &k = cfg_.costs;
    const std::uint64_t bytes = count * kTupleBytes;

    // Each quicksort level sweeps the (sub)partitions once: reads are
    // sequential-ish from both ends, writes are in-place swaps. We model a
    // level as a line-granular read sweep plus per-tuple compare/swap
    // work; deeper levels work on cache-resident fragments, which the
    // cache model captures naturally because the addresses repeat.
    unsigned levels = count <= 1 ? 0 : ceilLog2(count);
    passes.quicksortLevels = levels;
    for (unsigned level = 0; level < levels; ++level) {
        rec.scanFixed(base, count, kTupleBytes, cfg_.readChunkBytes,
                      /*stream=*/false, k.quicksortLevel);
        // In-place partitioning writes roughly half the tuples per level.
        rec.writeRange(base, bytes / 2, cfg_.readChunkBytes);
        rec.fence();
    }

    functionalSort(base, count);
}

SortPasses
LocalSorter::sortPartition(Relation &rel, std::size_t part,
                           TraceRecorder &rec)
{
    SortPasses passes;
    const auto &p = rel.partition(part);
    if (cfg_.cpuStyle)
        emitQuicksort(p.base, p.count, rec, passes);
    else
        emitMergesort(p.base, p.count, p.vault, rec, passes);
    return passes;
}

SortPasses
LocalSorter::sortRange(Addr base, std::uint64_t count, TraceRecorder &rec)
{
    SortPasses passes;
    sim_assert(cfg_.cpuStyle);
    emitQuicksort(base, count, rec, passes);
    return passes;
}

SortPasses
LocalSorter::sortSegments(
    const std::vector<std::pair<Addr, std::uint64_t>> &segments,
    TraceRecorder &rec)
{
    SortPasses passes;
    std::uint64_t count = 0;
    for (const auto &[base, n] : segments)
        count += n;
    if (count == 0)
        return passes;

    // Functional: gather across segments, sort, scatter back in order.
    std::vector<Tuple> tuples;
    tuples.reserve(count);
    for (const auto &[base, n] : segments) {
        std::size_t at = tuples.size();
        tuples.resize(at + n);
        pool_.store().read(base, tuples.data() + at, n * kTupleBytes);
    }
    std::sort(tuples.begin(), tuples.end(),
              [](const Tuple &a, const Tuple &b) { return a.key < b.key; });
    std::size_t at = 0;
    for (const auto &[base, n] : segments) {
        pool_.store().write(base, tuples.data() + at, n * kTupleBytes);
        at += n;
    }

    // Trace: quicksort levels sweeping every segment.
    const KernelCosts &k = cfg_.costs;
    unsigned levels = count <= 1 ? 0 : ceilLog2(count);
    passes.quicksortLevels = levels;
    for (unsigned level = 0; level < levels; ++level) {
        for (const auto &[base, n] : segments) {
            rec.scanFixed(base, n, kTupleBytes, cfg_.readChunkBytes,
                          /*stream=*/false, k.quicksortLevel);
            rec.writeRange(base, n * kTupleBytes / 2, cfg_.readChunkBytes);
        }
        rec.fence();
    }
    return passes;
}

} // namespace mondrian
