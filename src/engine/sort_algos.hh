/**
 * @file
 * Local (per-partition) sorting: the probe-phase workhorses.
 *
 * Three styles from §4.1.1 / §5.2:
 *
 *  - mergesort (NMP-seq): bottom-up two-way merge; every pass streams the
 *    whole partition in and out sequentially. log2(n) passes.
 *  - SIMD mergesort (Mondrian): an initial bitonic pass sorts 16-tuple
 *    groups in registers (the intra-stream sorting of §5.2, saving four
 *    merge passes), then merge passes run on the 1024-bit SIMD unit while
 *    stream buffers feed the inputs.
 *  - quicksort (CPU): cache-friendly in-place sort; modeled as log2(n)
 *    levels each sweeping the partition through the cache hierarchy.
 *
 * All styles functionally sort through the simulated address space; the
 * differences are the emitted traces and pass counts.
 */

#ifndef MONDRIAN_ENGINE_SORT_ALGOS_HH
#define MONDRIAN_ENGINE_SORT_ALGOS_HH

#include <cstdint>
#include <vector>

#include "engine/exec_config.hh"
#include "engine/relation.hh"
#include "engine/trace_recorder.hh"

namespace mondrian {

/** Tuples per bitonic in-register group (16 x 16 B = 4 SIMD registers). */
constexpr std::uint64_t kBitonicGroup = 16;

/** Pass accounting returned by the sorters (checked by ablation tests). */
struct SortPasses
{
    unsigned bitonicPasses = 0;
    unsigned mergePasses = 0;
    unsigned quicksortLevels = 0;
};

/** Sorts relation partitions and records the kernel traces. */
class LocalSorter
{
  public:
    LocalSorter(MemoryPool &pool, const ExecConfig &cfg)
        : pool_(pool), cfg_(cfg)
    {}

    /**
     * Sort partition @p part of @p rel by key, in place (functionally).
     * Emits the style-appropriate trace into @p rec:
     * mergesort when !cfg.cpuStyle, SIMD mergesort when cfg.simd,
     * quicksort model when cfg.cpuStyle.
     */
    SortPasses sortPartition(Relation &rel, std::size_t part,
                             TraceRecorder &rec);

    /**
     * Sort an address range of @p count tuples at @p base (CPU global
     * arrays). Functional + quicksort trace.
     */
    SortPasses sortRange(Addr base, std::uint64_t count, TraceRecorder &rec);

    /**
     * Sort a logical partition scattered over several contiguous address
     * segments (CPU global arrays straddle vault chunks). Tuples are
     * ordered across segments in segment order.
     */
    SortPasses sortSegments(
        const std::vector<std::pair<Addr, std::uint64_t>> &segments,
        TraceRecorder &rec);

    /** Number of merge passes a mergesort of @p n tuples needs. */
    static unsigned mergePassCount(std::uint64_t n, std::uint64_t initial_run);

  private:
    /** Scratch buffer in @p vault big enough for @p bytes (cached). */
    Addr scratchFor(unsigned vault, std::uint64_t bytes);

    void emitMergesort(Addr base, std::uint64_t count, unsigned vault,
                       TraceRecorder &rec, SortPasses &passes);
    void emitQuicksort(Addr base, std::uint64_t count, TraceRecorder &rec,
                       SortPasses &passes);

    /** Functionally sort @p count tuples at @p base. */
    void functionalSort(Addr base, std::uint64_t count);

    MemoryPool &pool_;
    const ExecConfig &cfg_;

    struct Scratch
    {
        unsigned vault;
        Addr base;
        std::uint64_t bytes;
    };
    std::vector<Scratch> scratch_;
};

} // namespace mondrian

#endif // MONDRIAN_ENGINE_SORT_ALGOS_HH
