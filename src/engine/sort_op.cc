#include "engine/ops.hh"

#include "common/logging.hh"
#include "engine/op_helpers.hh"
#include "engine/partitioner.hh"
#include "engine/sort_algos.hh"
#include "engine/trace_recorder.hh"

namespace mondrian {

OperatorExecution
runSort(MemoryPool &pool, const ExecConfig &cfg, const Relation &rel)
{
    const unsigned vaults = pool.geometry().totalVaults();
    OperatorExecution exec;
    exec.op = "sort";
    exec.style = cfg.cpuStyle ? "cpu" : (cfg.simd ? "mondrian" : "nmp");

    Partitioner partitioner(pool, cfg);
    LocalSorter sorter(pool, cfg);

    // Sort range-partitions on the high-order key bits (Table 2) so that
    // partition i holds keys strictly below partition i+1's. The CPU uses
    // the same fanout as its radix partitioning ("the partitioning phase
    // for all operators is almost identical", §7.1); NMP uses one
    // partition per vault.
    const std::uint64_t key_space = keySpaceOf(pool, rel);

    PhaseExec part_phase;
    part_phase.name = "partition";
    part_phase.kind = PhaseKind::kPartition;
    part_phase.barriers = 2;

    PhaseExec probe_phase;
    probe_phase.name = "probe";
    probe_phase.kind = PhaseKind::kProbe;

    std::vector<TraceRecorder> part_recs(cfg.numUnits);
    std::vector<TraceRecorder> probe_recs(cfg.numUnits);

    if (cfg.cpuStyle) {
        // CPU: range partition at radix fanout, then quicksort each
        // partition (§6: "quicksort, in the case of CPU").
        const unsigned P = 1u << cfg.cpuPartitionBits;
        PartitionFn fn = PartitionFn::range(P, key_space);
        auto res = partitioner.shuffleCpu(rel, fn, P, part_recs);
        for (unsigned p = 0; p < P; ++p) {
            unsigned u = cpuUnitOfPartition(p, P, cfg.numUnits);
            auto segs = cpuRangeSegments(res, res.bounds[p],
                                         res.bounds[p + 1]);
            sorter.sortSegments(segs, probe_recs[u]);
        }
        exec.output = res.out;
    } else {
        PartitionFn fn = PartitionFn::range(vaults, key_space);
        Relation out = partitioner.shuffleNmp(rel, fn, part_recs,
                                              &part_phase.arming);
        for (unsigned v = 0; v < vaults; ++v)
            sorter.sortPartition(out, v, probe_recs[v]);
        exec.output = out;
    }

    for (auto &rec : part_recs)
        part_phase.traces.push_back(rec.take());
    for (auto &rec : probe_recs)
        probe_phase.traces.push_back(rec.take());
    exec.phases.push_back(std::move(part_phase));
    exec.phases.push_back(std::move(probe_phase));
    return exec;
}

} // namespace mondrian
