#include "engine/spark.hh"

#include "common/logging.hh"

namespace mondrian {

const char *
basicOpName(BasicOp op)
{
    switch (op) {
      case BasicOp::kScan:
        return "scan";
      case BasicOp::kGroupBy:
        return "groupby";
      case BasicOp::kJoin:
        return "join";
      case BasicOp::kSort:
        return "sort";
    }
    return "?";
}

const std::vector<std::pair<std::string, BasicOp>> &
sparkOperatorTable()
{
    // Table 1: Characterization of Spark operators.
    static const std::vector<std::pair<std::string, BasicOp>> table = {
        {"Filter", BasicOp::kScan},
        {"Union", BasicOp::kScan},
        {"LookupKey", BasicOp::kScan},
        {"Map", BasicOp::kScan},
        {"FlatMap", BasicOp::kScan},
        {"MapValues", BasicOp::kScan},
        {"GroupByKey", BasicOp::kGroupBy},
        {"Cogroup", BasicOp::kGroupBy},
        {"ReduceByKey", BasicOp::kGroupBy},
        {"Reduce", BasicOp::kGroupBy},
        {"CountByKey", BasicOp::kGroupBy},
        {"AggregateByKey", BasicOp::kGroupBy},
        {"Join", BasicOp::kJoin},
        {"SortByKey", BasicOp::kSort},
    };
    return table;
}

SparkContext::Lowered
SparkContext::filter(const Relation &rel, std::uint64_t key)
{
    return Lowered{"Filter", BasicOp::kScan, runScan(pool_, cfg_, rel, key)};
}

SparkContext::Lowered
SparkContext::reduceByKey(const Relation &rel)
{
    return Lowered{"ReduceByKey", BasicOp::kGroupBy,
                   runGroupBy(pool_, cfg_, rel)};
}

SparkContext::Lowered
SparkContext::join(const Relation &r, const Relation &s)
{
    return Lowered{"Join", BasicOp::kJoin, runJoin(pool_, cfg_, r, s)};
}

SparkContext::Lowered
SparkContext::sortByKey(const Relation &rel)
{
    return Lowered{"SortByKey", BasicOp::kSort, runSort(pool_, cfg_, rel)};
}

SparkContext::Lowered
SparkContext::lower(const std::string &spark_op, const Relation &rel,
                    const Relation *second)
{
    for (const auto &[name, basic] : sparkOperatorTable()) {
        if (name != spark_op)
            continue;
        Lowered result;
        switch (basic) {
          case BasicOp::kScan:
            result = filter(rel, 0);
            break;
          case BasicOp::kGroupBy:
            result = reduceByKey(rel);
            break;
          case BasicOp::kJoin:
            if (!second)
                fatal("Spark %s needs two input relations",
                      spark_op.c_str());
            result = join(rel, *second);
            break;
          case BasicOp::kSort:
            result = sortByKey(rel);
            break;
        }
        result.sparkOp = spark_op;
        result.basicOp = basic;
        return result;
    }
    fatal("unknown Spark operator '%s'", spark_op.c_str());
}

} // namespace mondrian
