/**
 * @file
 * Spark-style dataflow layer (Table 1 of the paper, executable).
 *
 * Contemporary analytics stacks express queries as dataflow operators
 * (Filter, ReduceByKey, SortByKey, Join, ...) that lower onto the four
 * basic physical operators. This layer provides that lowering so the
 * examples can run realistic pipelines against any evaluated system.
 */

#ifndef MONDRIAN_ENGINE_SPARK_HH
#define MONDRIAN_ENGINE_SPARK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "engine/exec_config.hh"
#include "engine/operator.hh"
#include "engine/ops.hh"
#include "engine/relation.hh"

namespace mondrian {

/** Which basic operator a Spark operator lowers onto (Table 1). */
enum class BasicOp
{
    kScan,
    kGroupBy,
    kJoin,
    kSort
};

const char *basicOpName(BasicOp op);

/** The full Table 1 mapping: Spark operator -> basic operator. */
const std::vector<std::pair<std::string, BasicOp>> &sparkOperatorTable();

/** Spark-flavored entry points lowering onto the basic operators. */
class SparkContext
{
  public:
    SparkContext(MemoryPool &pool, const ExecConfig &cfg)
        : pool_(pool), cfg_(cfg)
    {}

    /** Result of one lowered operator. */
    struct Lowered
    {
        std::string sparkOp;
        BasicOp basicOp;
        OperatorExecution exec;
    };

    /** Filter / LookupKey / Map-style operators lower onto Scan. */
    Lowered filter(const Relation &rel, std::uint64_t key);

    /** ReduceByKey / GroupByKey / CountByKey lower onto Group-by. */
    Lowered reduceByKey(const Relation &rel);

    /** Join lowers onto Join. */
    Lowered join(const Relation &r, const Relation &s);

    /** SortByKey lowers onto Sort. */
    Lowered sortByKey(const Relation &rel);

    /** Lower an arbitrary Table 1 operator by name. */
    Lowered lower(const std::string &spark_op, const Relation &rel,
                  const Relation *second = nullptr);

  private:
    MemoryPool &pool_;
    ExecConfig cfg_;
};

} // namespace mondrian

#endif // MONDRIAN_ENGINE_SPARK_HH
