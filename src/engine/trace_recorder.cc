// TraceRecorder is header-only; this translation unit keeps the build
// layout uniform (one .cc per module header).
#include "engine/trace_recorder.hh"
