/**
 * @file
 * Trace recorder: the functional layer's pen for writing kernel traces.
 *
 * A TraceRecorder wraps one compute unit's KernelTrace with fractional
 * cycle accounting (cost tables are doubles; the recorder accumulates the
 * remainder so long loops charge the exact average) and with helpers that
 * express common access idioms (line-granular sequential reads, tuple
 * stores, stream pops).
 *
 * Sequential idioms emit run-length-encoded ops (see trace.hh): readRange,
 * writeRange and scanFixed record one run op per maximal uniform stretch
 * instead of one op per chunk. The encoded trace expands to exactly the op
 * sequence the per-chunk emission used to produce, so timing results are
 * unchanged — traces are just far smaller and faster to replay.
 */

#ifndef MONDRIAN_ENGINE_TRACE_RECORDER_HH
#define MONDRIAN_ENGINE_TRACE_RECORDER_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/trace.hh"

namespace mondrian {

/** Records one compute unit's kernel trace. */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Charge @p cycles (fractional) of computation. */
    void
    compute(double cycles)
    {
        carry_ += cycles;
        auto whole = static_cast<std::uint64_t>(carry_);
        if (whole > 0) {
            trace_.addCompute(whole);
            carry_ -= static_cast<double>(whole);
        }
    }

    void load(Addr a, std::uint32_t size) { trace_.add(TraceOp::load(a, size)); }
    void
    loadBlocking(Addr a, std::uint32_t size)
    {
        trace_.add(TraceOp::loadBlocking(a, size));
    }
    void store(Addr a, std::uint32_t size) { trace_.add(TraceOp::store(a, size)); }
    void
    permutableStore(Addr a, std::uint32_t size)
    {
        trace_.add(TraceOp::permutableStore(a, size));
    }
    void
    streamRead(Addr a, std::uint32_t size)
    {
        trace_.add(TraceOp::streamRead(a, size));
    }
    void fence() { trace_.add(TraceOp::fence()); }

    /** Grow the trace's reservation by @p more ops (cardinality hint). */
    void
    reserveMore(std::size_t more)
    {
        trace_.reserve(trace_.size() + more);
    }

    /**
     * Sequential read of [base, base+bytes) in @p chunk-sized pieces.
     * Whole chunks are recorded as one run op; a trailing partial chunk
     * is recorded individually.
     * @param stream use stream-buffer reads instead of demand loads.
     */
    void
    readRange(Addr base, std::uint64_t bytes, std::uint32_t chunk,
              bool stream)
    {
        const std::uint64_t full = bytes / chunk;
        const auto tail = static_cast<std::uint32_t>(bytes % chunk);
        Addr at = base;
        for (std::uint64_t left = full; left > 0;) {
            auto n = static_cast<std::uint32_t>(
                left > 0xffffffffull ? 0xffffffffull : left);
            if (n == 1) {
                if (stream)
                    streamRead(at, chunk);
                else
                    load(at, chunk);
            } else {
                trace_.add(stream ? TraceOp::streamRun(at, chunk, n)
                                  : TraceOp::loadRun(at, chunk, n));
            }
            at += Addr{n} * chunk;
            left -= n;
        }
        if (tail > 0) {
            if (stream)
                streamRead(at, tail);
            else
                load(at, tail);
        }
    }

    /** Sequential write of [base, base+bytes) in @p chunk-sized pieces. */
    void
    writeRange(Addr base, std::uint64_t bytes, std::uint32_t chunk)
    {
        const std::uint64_t full = bytes / chunk;
        const auto tail = static_cast<std::uint32_t>(bytes % chunk);
        Addr at = base;
        for (std::uint64_t left = full; left > 0;) {
            auto n = static_cast<std::uint32_t>(
                left > 0xffffffffull ? 0xffffffffull : left);
            if (n == 1)
                store(at, chunk);
            else
                trace_.add(TraceOp::storeRun(at, chunk, n));
            at += Addr{n} * chunk;
            left -= n;
        }
        if (tail > 0)
            store(at, tail);
    }

    /**
     * The scan idiom for a *uniform* per-tuple compute cost, run-length
     * encoded: `count` tuples are read from @p base in @p chunk_bytes
     * pieces, and every tuple costs @p cycles_per_tuple cycles.
     *
     * Emits exactly the ops that
     *   scanEmit(rec, base, count, tb, cb, stream,
     *            [&](std::uint64_t) { rec.compute(cycles_per_tuple); });
     * would (same fractional-cycle carry behavior, chunk by chunk), but
     * collapses maximal stretches of identical (chunk bytes, chunk
     * compute) into single run ops. Note a compute() call immediately
     * after this will not coalesce with the final chunk's compute burst
     * when that burst ended inside a run op; callers that need byte-exact
     * continuation emit a memory op or fence next (all current ones do).
     */
    void
    scanFixed(Addr base, std::uint64_t count, std::uint32_t tuple_bytes,
              std::uint32_t chunk_bytes, bool stream,
              double cycles_per_tuple)
    {
        const std::uint64_t per_chunk = chunk_bytes / tuple_bytes;
        sim_assert(per_chunk > 0); // chunk must hold >= 1 tuple
        Addr run_base = 0;
        std::uint32_t run_bytes = 0;
        std::uint64_t run_cycles = 0;
        std::uint32_t run_len = 0;

        auto flush = [&]() {
            if (run_len == 0)
                return;
            if (run_len == 1) {
                if (stream)
                    streamRead(run_base, run_bytes);
                else
                    load(run_base, run_bytes);
                if (run_cycles > 0)
                    trace_.addCompute(run_cycles);
            } else {
                auto aux = static_cast<std::uint32_t>(run_cycles);
                trace_.add(stream ? TraceOp::streamRun(run_base, run_bytes,
                                                       run_len, aux)
                                  : TraceOp::loadRun(run_base, run_bytes,
                                                     run_len, aux));
            }
            run_len = 0;
        };

        for (std::uint64_t start = 0; start < count; start += per_chunk) {
            const std::uint64_t n =
                (count - start) < per_chunk ? (count - start) : per_chunk;
            const auto bytes = static_cast<std::uint32_t>(n * tuple_bytes);
            // Whole cycles this chunk emits, with the identical carry
            // stepping compute() would perform per tuple.
            std::uint64_t chunk_cycles = 0;
            for (std::uint64_t j = 0; j < n; ++j) {
                carry_ += cycles_per_tuple;
                auto whole = static_cast<std::uint64_t>(carry_);
                if (whole > 0) {
                    chunk_cycles += whole;
                    carry_ -= static_cast<double>(whole);
                }
            }
            if (run_len > 0 && bytes == run_bytes &&
                chunk_cycles == run_cycles && run_len < 0xffffffffu &&
                chunk_cycles <= 0xffffffffull) {
                ++run_len;
            } else {
                flush();
                run_base = base + start * tuple_bytes;
                run_bytes = bytes;
                run_cycles = chunk_cycles;
                run_len = chunk_cycles <= 0xffffffffull ? 1 : 0;
                if (run_len == 0) {
                    // Absurdly large per-chunk burst: emit unencoded.
                    if (stream)
                        streamRead(base + start * tuple_bytes, bytes);
                    else
                        load(base + start * tuple_bytes, bytes);
                    trace_.addCompute(chunk_cycles);
                }
            }
        }
        flush();
    }

    KernelTrace &trace() { return trace_; }
    const KernelTrace &trace() const { return trace_; }

    /** Move the finished trace out. */
    KernelTrace take() { return std::move(trace_); }

  private:
    KernelTrace trace_;
    double carry_ = 0.0;
};

/**
 * Emit the canonical scan idiom: a chunked sequential read of @p count
 * tuples from @p base, interleaved with per-tuple work so the timing model
 * sees compute and memory overlap the way the real loop would.
 *
 * Use TraceRecorder::scanFixed instead when the per-tuple work is a fixed
 * compute cost — it records the same stream run-length encoded.
 *
 * @param f callback invoked once per tuple index with (tuple_index).
 */
template <typename PerTuple>
void
scanEmit(TraceRecorder &rec, Addr base, std::uint64_t count,
         std::uint32_t tuple_bytes, std::uint32_t chunk_bytes, bool stream,
         PerTuple f)
{
    const std::uint64_t per_chunk = chunk_bytes / tuple_bytes;
    sim_assert(per_chunk > 0); // chunk must hold >= 1 tuple
    for (std::uint64_t start = 0; start < count; start += per_chunk) {
        const std::uint64_t n =
            (count - start) < per_chunk ? (count - start) : per_chunk;
        const auto bytes = static_cast<std::uint32_t>(n * tuple_bytes);
        if (stream)
            rec.streamRead(base + start * tuple_bytes, bytes);
        else
            rec.load(base + start * tuple_bytes, bytes);
        for (std::uint64_t j = 0; j < n; ++j)
            f(start + j);
    }
}

} // namespace mondrian

#endif // MONDRIAN_ENGINE_TRACE_RECORDER_HH
