/**
 * @file
 * Trace recorder: the functional layer's pen for writing kernel traces.
 *
 * A TraceRecorder wraps one compute unit's KernelTrace with fractional
 * cycle accounting (cost tables are doubles; the recorder accumulates the
 * remainder so long loops charge the exact average) and with helpers that
 * express common access idioms (line-granular sequential reads, tuple
 * stores, stream pops).
 */

#ifndef MONDRIAN_ENGINE_TRACE_RECORDER_HH
#define MONDRIAN_ENGINE_TRACE_RECORDER_HH

#include <cstdint>

#include "common/types.hh"
#include "core/trace.hh"

namespace mondrian {

/** Records one compute unit's kernel trace. */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Charge @p cycles (fractional) of computation. */
    void
    compute(double cycles)
    {
        carry_ += cycles;
        auto whole = static_cast<std::uint64_t>(carry_);
        if (whole > 0) {
            trace_.addCompute(whole);
            carry_ -= static_cast<double>(whole);
        }
    }

    void load(Addr a, std::uint32_t size) { trace_.add(TraceOp::load(a, size)); }
    void
    loadBlocking(Addr a, std::uint32_t size)
    {
        trace_.add(TraceOp::loadBlocking(a, size));
    }
    void store(Addr a, std::uint32_t size) { trace_.add(TraceOp::store(a, size)); }
    void
    permutableStore(Addr a, std::uint32_t size)
    {
        trace_.add(TraceOp::permutableStore(a, size));
    }
    void
    streamRead(Addr a, std::uint32_t size)
    {
        trace_.add(TraceOp::streamRead(a, size));
    }
    void fence() { trace_.add(TraceOp::fence()); }

    /**
     * Sequential read of [base, base+bytes) in @p chunk-sized pieces.
     * @param stream use stream-buffer reads instead of demand loads.
     */
    void
    readRange(Addr base, std::uint64_t bytes, std::uint32_t chunk,
              bool stream)
    {
        for (std::uint64_t off = 0; off < bytes; off += chunk) {
            auto n = static_cast<std::uint32_t>(
                bytes - off < chunk ? bytes - off : chunk);
            if (stream)
                streamRead(base + off, n);
            else
                load(base + off, n);
        }
    }

    /** Sequential write of [base, base+bytes) in @p chunk-sized pieces. */
    void
    writeRange(Addr base, std::uint64_t bytes, std::uint32_t chunk)
    {
        for (std::uint64_t off = 0; off < bytes; off += chunk) {
            auto n = static_cast<std::uint32_t>(
                bytes - off < chunk ? bytes - off : chunk);
            store(base + off, n);
        }
    }

    KernelTrace &trace() { return trace_; }
    const KernelTrace &trace() const { return trace_; }

    /** Move the finished trace out. */
    KernelTrace take() { return std::move(trace_); }

  private:
    KernelTrace trace_;
    double carry_ = 0.0;
};

/**
 * Emit the canonical scan idiom: a chunked sequential read of @p count
 * tuples from @p base, interleaved with per-tuple work so the timing model
 * sees compute and memory overlap the way the real loop would.
 *
 * @param f callback invoked once per tuple index with (tuple_index).
 */
template <typename PerTuple>
void
scanEmit(TraceRecorder &rec, Addr base, std::uint64_t count,
         std::uint32_t tuple_bytes, std::uint32_t chunk_bytes, bool stream,
         PerTuple f)
{
    const std::uint64_t per_chunk = chunk_bytes / tuple_bytes;
    for (std::uint64_t start = 0; start < count; start += per_chunk) {
        const std::uint64_t n =
            (count - start) < per_chunk ? (count - start) : per_chunk;
        const auto bytes = static_cast<std::uint32_t>(n * tuple_bytes);
        if (stream)
            rec.streamRead(base + start * tuple_bytes, bytes);
        else
            rec.load(base + start * tuple_bytes, bytes);
        for (std::uint64_t j = 0; j < n; ++j)
            f(start + j);
    }
}

} // namespace mondrian

#endif // MONDRIAN_ENGINE_TRACE_RECORDER_HH
