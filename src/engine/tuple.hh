/**
 * @file
 * The 16-byte key/value tuple all operators work on.
 *
 * The paper evaluates on 8 B key + 8 B payload tuples "as commonly done in
 * data analytics research" (§5.2, citing Balkesen et al. and Kim et al.),
 * representing one row of an in-memory columnar store.
 */

#ifndef MONDRIAN_ENGINE_TUPLE_HH
#define MONDRIAN_ENGINE_TUPLE_HH

#include <cstdint>

namespace mondrian {

/** One analytics tuple: 8-byte integer key, 8-byte integer payload. */
struct Tuple
{
    std::uint64_t key = 0;
    std::uint64_t payload = 0;

    friend bool
    operator==(const Tuple &a, const Tuple &b)
    {
        return a.key == b.key && a.payload == b.payload;
    }
};

static_assert(sizeof(Tuple) == 16, "tuples must be 16 bytes");

constexpr std::uint32_t kTupleBytes = sizeof(Tuple);

/**
 * Multiplicative (Fibonacci) hash — the partitioning hash both the CPU
 * radix code and the NMP shuffle use before taking destination bits.
 */
constexpr std::uint64_t
hashKey(std::uint64_t key)
{
    return key * 0x9e3779b97f4a7c15ull;
}

} // namespace mondrian

#endif // MONDRIAN_ENGINE_TUPLE_HH
