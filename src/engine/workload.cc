#include "engine/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mondrian {

void
WorkloadGenerator::fill(MemoryPool &pool, Relation &rel,
                        const std::vector<std::uint64_t> &keys)
{
    const std::size_t parts = rel.numPartitions();
    sim_assert(parts > 0);
    // Round-robin placement gives every vault an even share of a randomly
    // ordered key stream, i.e. data "initially randomly distributed across
    // multiple memory partitions" (§2).
    std::vector<std::vector<Tuple>> buckets(parts);
    for (auto &b : buckets)
        b.reserve(keys.size() / parts + 1);
    for (std::size_t i = 0; i < keys.size(); ++i)
        buckets[i % parts].push_back(
            Tuple{keys[i], static_cast<std::uint64_t>(i)});
    for (std::size_t p = 0; p < parts; ++p)
        rel.scatter(pool, p, buckets[p]);
}

std::uint64_t
WorkloadGenerator::drawKey(std::uint64_t space)
{
    if (cfg_.zipfTheta <= 0.0)
        return rng_.nextBounded(space);

    // Zipf via inverse-CDF table (rebuilt when the key space changes).
    if (zipfSpace_ != space) {
        zipfSpace_ = space;
        zipfCdf_.resize(space);
        double sum = 0.0;
        for (std::uint64_t i = 0; i < space; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1),
                                  cfg_.zipfTheta);
            zipfCdf_[i] = sum;
        }
        for (auto &v : zipfCdf_)
            v /= sum;
    }
    double u = rng_.nextDouble();
    auto it = std::lower_bound(zipfCdf_.begin(), zipfCdf_.end(), u);
    return static_cast<std::uint64_t>(it - zipfCdf_.begin());
}

Relation
WorkloadGenerator::makeUniform(MemoryPool &pool, std::uint64_t tuples)
{
    rng_.seed(cfg_.seed);
    unsigned vaults = pool.geometry().totalVaults();
    // Capacity leaves headroom so partitions tolerate imbalance.
    Relation rel = Relation::allocAcrossAll(pool, tuples + vaults);
    std::vector<std::uint64_t> keys(tuples);
    for (auto &k : keys)
        k = drawKey(tuples * 4);
    fill(pool, rel, keys);
    return rel;
}

WorkloadGenerator::JoinPair
WorkloadGenerator::makeJoinPair(MemoryPool &pool)
{
    rng_.seed(cfg_.seed);
    std::uint64_t s_tuples = cfg_.tuples;
    std::uint64_t r_tuples = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(s_tuples) *
                                      cfg_.joinSmallRatio));

    JoinPair pair;
    unsigned vaults = pool.geometry().totalVaults();
    pair.r = Relation::allocAcrossAll(pool, r_tuples + vaults);
    pair.s = Relation::allocAcrossAll(pool, s_tuples + vaults);

    // R: a random permutation of [0, r_tuples) -- unique keys.
    std::vector<std::uint64_t> r_keys(r_tuples);
    for (std::uint64_t i = 0; i < r_tuples; ++i)
        r_keys[i] = i;
    for (std::uint64_t i = r_tuples; i > 1; --i)
        std::swap(r_keys[i - 1], r_keys[rng_.nextBounded(i)]);
    fill(pool, pair.r, r_keys);

    // S: foreign keys drawn from R's key space.
    std::vector<std::uint64_t> s_keys(s_tuples);
    for (auto &k : s_keys)
        k = drawKey(r_tuples);
    fill(pool, pair.s, s_keys);
    return pair;
}

Relation
WorkloadGenerator::makeGroupBy(MemoryPool &pool, std::uint64_t tuples)
{
    rng_.seed(cfg_.seed);
    std::uint64_t groups = cfg_.groupCardinality
                               ? cfg_.groupCardinality
                               : std::max<std::uint64_t>(1, tuples / 4);
    unsigned vaults = pool.geometry().totalVaults();
    Relation rel = Relation::allocAcrossAll(pool, tuples + vaults);
    std::vector<std::uint64_t> keys(tuples);
    for (auto &k : keys)
        k = drawKey(groups);
    fill(pool, rel, keys);
    return rel;
}

} // namespace mondrian
