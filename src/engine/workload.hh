/**
 * @file
 * Workload generators for the four basic operators.
 *
 * All generators are deterministic given a seed. Keys follow the paper's
 * setup: uniform distributions, 16 B tuples, and for Join a foreign-key
 * relationship where every tuple of the large relation S matches exactly
 * one tuple of the small relation R (§6). A Zipfian generator is provided
 * for the skew-sensitivity extension study (the paper defers skew to
 * future work; we include it as an ablation).
 */

#ifndef MONDRIAN_ENGINE_WORKLOAD_HH
#define MONDRIAN_ENGINE_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "engine/relation.hh"

namespace mondrian {

/** Parameters for workload generation. */
struct WorkloadConfig
{
    std::uint64_t tuples = 1u << 18;   ///< |S| (and |R| scaled by ratio)
    double joinSmallRatio = 0.25;      ///< |R| = tuples * ratio
    std::uint64_t groupCardinality = 0;///< 0 = tuples/4 (avg group size 4, §6)
    std::uint64_t seed = 42;
    double zipfTheta = 0.0;            ///< 0 = uniform; >0 = skewed keys
};

/** Generator producing relations laid out across the memory pool. */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(const WorkloadConfig &cfg) : cfg_(cfg) {}

    /** Uniform-key relation for Scan and Sort. */
    Relation makeUniform(MemoryPool &pool, std::uint64_t tuples);

    /**
     * Foreign-key join pair: R has unique keys [0, |R|) in random order,
     * S keys are drawn from [0, |R|) so every S tuple joins exactly once.
     */
    struct JoinPair
    {
        Relation r; ///< small build relation
        Relation s; ///< large probe relation
    };
    JoinPair makeJoinPair(MemoryPool &pool);

    /** Group-by relation with the configured key cardinality. */
    Relation makeGroupBy(MemoryPool &pool, std::uint64_t tuples);

    const WorkloadConfig &config() const { return cfg_; }

  private:
    /** Fill @p rel with @p keys (payload = generator sequence number). */
    void fill(MemoryPool &pool, Relation &rel,
              const std::vector<std::uint64_t> &keys);

    std::uint64_t drawKey(std::uint64_t space);

    WorkloadConfig cfg_;
    Random rng_{42};
    /** Zipf sampling state (computed lazily per key-space size). */
    std::vector<double> zipfCdf_;
    std::uint64_t zipfSpace_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_ENGINE_WORKLOAD_HH
