#include "mem/address_map.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

AddressMap::AddressMap(const MemGeometry &geo) : geo_(geo)
{
    if (!isPowerOf2(geo.rowBytes))
        fatal("row size must be a power of two (got %llu)",
              static_cast<unsigned long long>(geo.rowBytes));
    if (geo.vaultBytes % (geo.rowBytes * geo.banksPerVault) != 0)
        fatal("vault capacity must be a multiple of rowBytes*banks");
    if (geo.numStacks == 0 || geo.vaultsPerStack == 0 || geo.banksPerVault == 0)
        fatal("memory geometry must be non-degenerate");
}

DecodedAddr
AddressMap::decode(Addr addr) const
{
    sim_assert(addr < geo_.totalBytes());
    DecodedAddr d;
    d.globalVault = static_cast<unsigned>(addr / geo_.vaultBytes);
    d.stack = d.globalVault / geo_.vaultsPerStack;
    d.vault = d.globalVault % geo_.vaultsPerStack;

    std::uint64_t off = addr % geo_.vaultBytes;
    d.column = off % geo_.rowBytes;
    std::uint64_t row_slot = off / geo_.rowBytes; // global row slot in vault
    d.bank = static_cast<unsigned>(row_slot % geo_.banksPerVault);
    d.row = row_slot / geo_.banksPerVault;
    return d;
}

Addr
AddressMap::encode(const DecodedAddr &d) const
{
    std::uint64_t row_slot = d.row * geo_.banksPerVault + d.bank;
    std::uint64_t off = row_slot * geo_.rowBytes + d.column;
    return std::uint64_t{d.globalVault} * geo_.vaultBytes + off;
}

Addr
AddressMap::vaultBase(unsigned global_vault) const
{
    sim_assert(global_vault < geo_.totalVaults());
    return std::uint64_t{global_vault} * geo_.vaultBytes;
}

unsigned
AddressMap::vaultOf(Addr addr) const
{
    sim_assert(addr < geo_.totalBytes());
    return static_cast<unsigned>(addr / geo_.vaultBytes);
}

std::uint64_t
AddressMap::rowId(Addr addr) const
{
    // (vault, bank, row) uniquely identified by the row-aligned address.
    return addr / geo_.rowBytes;
}

} // namespace mondrian
