#include "mem/address_map.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

AddressMap::AddressMap(const MemGeometry &geo) : geo_(geo)
{
    if (!isPowerOf2(geo.rowBytes))
        fatal("row size must be a power of two (got %llu)",
              static_cast<unsigned long long>(geo.rowBytes));
    if (geo.vaultBytes % (geo.rowBytes * geo.banksPerVault) != 0)
        fatal("vault capacity must be a multiple of rowBytes*banks");
    if (geo.numStacks == 0 || geo.vaultsPerStack == 0 || geo.banksPerVault == 0)
        fatal("memory geometry must be non-degenerate");

    // Hot-path fast decode: precompute shifts/masks when every factor is
    // a power of two (true for the default and all preset geometries).
    pow2_ = isPowerOf2(geo.vaultBytes) && isPowerOf2(geo.vaultsPerStack) &&
            isPowerOf2(geo.banksPerVault);
    if (pow2_) {
        vaultShift_ = static_cast<unsigned>(floorLog2(geo.vaultBytes));
        vpsShift_ = static_cast<unsigned>(floorLog2(geo.vaultsPerStack));
        vpsMask_ = geo.vaultsPerStack - 1;
        rowShift_ = static_cast<unsigned>(floorLog2(geo.rowBytes));
        bankShift_ = static_cast<unsigned>(floorLog2(geo.banksPerVault));
        bankMask_ = geo.banksPerVault - 1;
        vaultMask_ = geo.vaultBytes - 1;
        colMask_ = geo.rowBytes - 1;
    }
}

bool
validateGeometry(const MemGeometry &geo, std::string &error)
{
    auto fail = [&error](const std::string &msg) {
        error = msg;
        return false;
    };
    if (geo.numStacks == 0 || geo.vaultsPerStack == 0 ||
        geo.banksPerVault == 0 || geo.rowBytes == 0 || geo.vaultBytes == 0)
        return fail("geometry has a zero factor");
    if (!isPowerOf2(geo.numStacks))
        return fail("stacks must be a power of two (got " +
                    std::to_string(geo.numStacks) + ")");
    if (!isPowerOf2(geo.vaultsPerStack))
        return fail("vaults/stack must be a power of two (got " +
                    std::to_string(geo.vaultsPerStack) + ")");
    if (!isPowerOf2(geo.banksPerVault))
        return fail("banks/vault must be a power of two (got " +
                    std::to_string(geo.banksPerVault) + ")");
    if (!isPowerOf2(geo.rowBytes))
        return fail("row size must be a power of two (got " +
                    std::to_string(geo.rowBytes) + ")");
    if (!isPowerOf2(geo.vaultBytes))
        return fail("vault capacity must be a power of two (got " +
                    std::to_string(geo.vaultBytes) + ")");
    if (geo.rowBytes < 64 || geo.rowBytes > 64 * kKiB)
        return fail("row size must be in [64 B, 64 KiB]");
    if (geo.banksPerVault > 256)
        return fail("banks/vault must be at most 256");
    if (geo.vaultBytes > 64 * kGiB)
        return fail("vault capacity exceeds 64 GiB");
    if (geo.numStacks > 4096 || geo.vaultsPerStack > 4096 ||
        geo.totalVaults() > 4096)
        return fail("geometry has " + std::to_string(geo.totalVaults()) +
                    " vaults (max 4096)");
    if (geo.vaultBytes < geo.rowBytes * geo.banksPerVault)
        return fail("vault capacity smaller than one row per bank");
    if (geo.vaultBytes < 64 * kKiB)
        return fail("vault capacity must be at least 64 KiB");
    if (geo.totalBytes() > 64ull * kGiB)
        return fail("total pool exceeds 64 GiB");
    return true;
}

Addr
AddressMap::encode(const DecodedAddr &d) const
{
    std::uint64_t row_slot = d.row * geo_.banksPerVault + d.bank;
    std::uint64_t off = row_slot * geo_.rowBytes + d.column;
    return std::uint64_t{d.globalVault} * geo_.vaultBytes + off;
}

Addr
AddressMap::vaultBase(unsigned global_vault) const
{
    sim_assert(global_vault < geo_.totalVaults());
    return std::uint64_t{global_vault} * geo_.vaultBytes;
}

} // namespace mondrian
