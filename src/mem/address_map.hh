/**
 * @file
 * Physical address geometry of the NMP memory pool.
 *
 * The flat physical address space is carved into stacks (HMC cubes), each
 * stack into vaults, each vault into DRAM banks of 256-byte rows (HMC's row
 * buffer size; DDR-class parts would use 1-8 KiB).
 *
 * Layout (low to high bits):
 *   [column within row][bank][row][vault][stack]
 *
 * A vault therefore owns one contiguous region of the address space (it is
 * the paper's "memory partition"), while *within* a vault consecutive rows
 * interleave across banks so a sequential stream naturally overlaps row
 * activations in different banks.
 */

#ifndef MONDRIAN_MEM_ADDRESS_MAP_HH
#define MONDRIAN_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace mondrian {

/** Geometry parameters for the stacked-memory pool. */
struct MemGeometry
{
    unsigned numStacks = 4;       ///< HMC cubes in the system
    unsigned vaultsPerStack = 16; ///< vaults (partitions) per cube
    unsigned banksPerVault = 8;   ///< independent DRAM banks per vault
    std::uint64_t rowBytes = 256; ///< DRAM row (row buffer) size in bytes
    std::uint64_t vaultBytes = 8 * kMiB; ///< per-vault capacity

    unsigned totalVaults() const { return numStacks * vaultsPerStack; }
    std::uint64_t totalBytes() const { return std::uint64_t{totalVaults()} * vaultBytes; }
    std::uint64_t rowsPerBank() const { return vaultBytes / (rowBytes * banksPerVault); }
};

/** Fully decoded address. */
struct DecodedAddr
{
    unsigned stack;
    unsigned vault;       ///< vault index within its stack
    unsigned globalVault; ///< stack * vaultsPerStack + vault
    unsigned bank;
    std::uint64_t row;    ///< row index within the bank
    std::uint64_t column; ///< byte offset within the row
};

/** Bidirectional address encoder/decoder for a given geometry. */
class AddressMap
{
  public:
    explicit AddressMap(const MemGeometry &geo);

    const MemGeometry &geometry() const { return geo_; }

    /** Decode a physical address into its DRAM coordinates. */
    DecodedAddr decode(Addr addr) const;

    /** Inverse of decode(). */
    Addr encode(const DecodedAddr &d) const;

    /** First address of the given vault's contiguous region. */
    Addr vaultBase(unsigned global_vault) const;

    /** Global vault index owning @p addr. */
    unsigned vaultOf(Addr addr) const;

    /** Row-buffer identifier (unique per (vault,bank,row)) for @p addr. */
    std::uint64_t rowId(Addr addr) const;

  private:
    MemGeometry geo_;
};

} // namespace mondrian

#endif // MONDRIAN_MEM_ADDRESS_MAP_HH
