/**
 * @file
 * Physical address geometry of the NMP memory pool.
 *
 * The flat physical address space is carved into stacks (HMC cubes), each
 * stack into vaults, each vault into DRAM banks of 256-byte rows (HMC's row
 * buffer size; DDR-class parts would use 1-8 KiB).
 *
 * Layout (low to high bits):
 *   [column within row][bank][row][vault][stack]
 *
 * A vault therefore owns one contiguous region of the address space (it is
 * the paper's "memory partition"), while *within* a vault consecutive rows
 * interleave across banks so a sequential stream naturally overlaps row
 * activations in different banks.
 */

#ifndef MONDRIAN_MEM_ADDRESS_MAP_HH
#define MONDRIAN_MEM_ADDRESS_MAP_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace mondrian {

/** Geometry parameters for the stacked-memory pool. */
struct MemGeometry
{
    unsigned numStacks = 4;       ///< HMC cubes in the system
    unsigned vaultsPerStack = 16; ///< vaults (partitions) per cube
    unsigned banksPerVault = 8;   ///< independent DRAM banks per vault
    std::uint64_t rowBytes = 256; ///< DRAM row (row buffer) size in bytes
    std::uint64_t vaultBytes = 8 * kMiB; ///< per-vault capacity

    unsigned totalVaults() const { return numStacks * vaultsPerStack; }
    std::uint64_t totalBytes() const { return std::uint64_t{totalVaults()} * vaultBytes; }
    std::uint64_t rowsPerBank() const { return vaultBytes / (rowBytes * banksPerVault); }
};

/**
 * Strict validation for sweepable geometries (campaign axes).
 *
 * AddressMap itself tolerates any non-degenerate shape (non-power-of-two
 * factors take the division path), but design-space sweeps only admit
 * geometries every preset can be built over: all factors powers of two —
 * so address decode, NoC node decomposition and the CPU core-to-vault
 * partitioning divide evenly — with sane row/capacity bounds.
 *
 * @return true when @p geo is sweepable; false with @p error set to a
 *         human-readable reason otherwise.
 */
bool validateGeometry(const MemGeometry &geo, std::string &error);

/** Fully decoded address. */
struct DecodedAddr
{
    unsigned stack;
    unsigned vault;       ///< vault index within its stack
    unsigned globalVault; ///< stack * vaultsPerStack + vault
    unsigned bank;
    std::uint64_t row;    ///< row index within the bank
    std::uint64_t column; ///< byte offset within the row
};

/**
 * Bidirectional address encoder/decoder for a given geometry.
 *
 * decode()/vaultOf()/rowId() run on every simulated memory access, so for
 * power-of-two geometries (the default and every preset) the divisions
 * reduce to precomputed shifts and masks; non-power-of-two geometries fall
 * back to the division path.
 */
class AddressMap
{
  public:
    explicit AddressMap(const MemGeometry &geo);

    const MemGeometry &geometry() const { return geo_; }

    /** Decode a physical address into its DRAM coordinates. */
    DecodedAddr
    decode(Addr addr) const
    {
        sim_assert(addr < geo_.totalBytes());
        DecodedAddr d;
        if (pow2_) {
            d.globalVault = static_cast<unsigned>(addr >> vaultShift_);
            d.stack = d.globalVault >> vpsShift_;
            d.vault = d.globalVault & vpsMask_;
            std::uint64_t off = addr & vaultMask_;
            d.column = off & colMask_;
            std::uint64_t row_slot = off >> rowShift_;
            d.bank = static_cast<unsigned>(row_slot) & bankMask_;
            d.row = row_slot >> bankShift_;
            return d;
        }
        d.globalVault = static_cast<unsigned>(addr / geo_.vaultBytes);
        d.stack = d.globalVault / geo_.vaultsPerStack;
        d.vault = d.globalVault % geo_.vaultsPerStack;
        std::uint64_t off = addr % geo_.vaultBytes;
        d.column = off % geo_.rowBytes;
        std::uint64_t row_slot = off / geo_.rowBytes;
        d.bank = static_cast<unsigned>(row_slot % geo_.banksPerVault);
        d.row = row_slot / geo_.banksPerVault;
        return d;
    }

    /** Inverse of decode(). */
    Addr encode(const DecodedAddr &d) const;

    /** First address of the given vault's contiguous region. */
    Addr vaultBase(unsigned global_vault) const;

    /** Global vault index owning @p addr. */
    unsigned
    vaultOf(Addr addr) const
    {
        sim_assert(addr < geo_.totalBytes());
        if (pow2_)
            return static_cast<unsigned>(addr >> vaultShift_);
        return static_cast<unsigned>(addr / geo_.vaultBytes);
    }

    /** Row-buffer identifier (unique per (vault,bank,row)) for @p addr. */
    std::uint64_t
    rowId(Addr addr) const
    {
        // (vault, bank, row) uniquely identified by the row-aligned addr.
        if (pow2_)
            return addr >> rowShift_;
        return addr / geo_.rowBytes;
    }

  private:
    MemGeometry geo_;
    bool pow2_ = false;      ///< all geometry factors are powers of two
    unsigned vaultShift_ = 0;
    unsigned vpsShift_ = 0;
    unsigned vpsMask_ = 0;
    unsigned rowShift_ = 0;
    unsigned bankShift_ = 0;
    unsigned bankMask_ = 0;
    std::uint64_t vaultMask_ = 0;
    std::uint64_t colMask_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_MEM_ADDRESS_MAP_HH
