#include "mem/allocator.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

Addr
VaultAllocator::alloc(std::uint64_t size, std::uint64_t align)
{
    sim_assert(isPowerOf2(align));
    std::uint64_t aligned = roundUp(used_, align);
    if (aligned + size > capacity_)
        fatal("vault allocator exhausted: need %llu, have %llu of %llu",
              static_cast<unsigned long long>(size),
              static_cast<unsigned long long>(capacity_ - aligned),
              static_cast<unsigned long long>(capacity_));
    used_ = aligned + size;
    return base_ + aligned;
}

void
PermutableRegionTable::arm(unsigned vault, const PermutableRegion &region)
{
    sim_assert(vault < regions_.size());
    sim_assert(region.objectBytes > 0);
    regions_[vault] = region;
    active_[vault] = true;
}

void
PermutableRegionTable::disarm(unsigned vault)
{
    sim_assert(vault < regions_.size());
    active_[vault] = false;
}

bool
PermutableRegionTable::isPermutable(unsigned vault, Addr addr,
                                    std::uint64_t size) const
{
    sim_assert(vault < regions_.size());
    if (!active_[vault])
        return false;
    const auto &r = regions_[vault];
    return addr >= r.base && addr + size <= r.base + r.size;
}

const PermutableRegion &
PermutableRegionTable::region(unsigned vault) const
{
    sim_assert(vault < regions_.size() && active_[vault]);
    return regions_[vault];
}

} // namespace mondrian
