/**
 * @file
 * Per-vault memory allocation and permutable-region bookkeeping.
 *
 * The engine allocates relation partitions inside specific vaults (the
 * paper's malloc_permutable takes a vault list). A VaultAllocator is a bump
 * allocator over one vault's contiguous address range. The
 * PermutableRegionTable is the software/hardware contract from §5.3: during
 * shuffle_begin..shuffle_end, stores landing in a registered region may be
 * reordered by the destination vault controller at object granularity.
 */

#ifndef MONDRIAN_MEM_ALLOCATOR_HH
#define MONDRIAN_MEM_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/address_map.hh"

namespace mondrian {

/** Bump allocator over a single vault's address range. */
class VaultAllocator
{
  public:
    VaultAllocator() = default;
    VaultAllocator(Addr base, std::uint64_t capacity)
        : base_(base), capacity_(capacity)
    {}

    /**
     * Allocate @p size bytes aligned to @p align (power of two).
     * @return base address of the allocation.
     */
    Addr alloc(std::uint64_t size, std::uint64_t align = 64);

    /** Bytes still available. */
    std::uint64_t remaining() const { return capacity_ - used_; }

    std::uint64_t used() const { return used_; }
    Addr base() const { return base_; }

    /** Release everything (arena-style). */
    void reset() { used_ = 0; }

  private:
    Addr base_ = 0;
    std::uint64_t capacity_ = 0;
    std::uint64_t used_ = 0;
};

/** A registered permutable destination buffer (one per vault per shuffle). */
struct PermutableRegion
{
    Addr base = 0;
    std::uint64_t size = 0;
    std::uint32_t objectBytes = 0; ///< permutation granularity (§5.3)
};

/**
 * Registry of active permutable regions, indexed by global vault.
 *
 * Models the memory-mapped registers the CPU writes during shuffle setup.
 * At most one region per vault may be active at a time, mirroring the
 * single set of registers in each vault controller.
 */
class PermutableRegionTable
{
  public:
    explicit PermutableRegionTable(unsigned num_vaults)
        : regions_(num_vaults), active_(num_vaults, false)
    {}

    /** Arm @p vault's permutable region. Replaces any previous region. */
    void arm(unsigned vault, const PermutableRegion &region);

    /** Disarm (shuffle_end). */
    void disarm(unsigned vault);

    /** True if @p addr within @p vault falls in an armed region. */
    bool isPermutable(unsigned vault, Addr addr, std::uint64_t size) const;

    /** The armed region for @p vault; vault must be armed. */
    const PermutableRegion &region(unsigned vault) const;

    bool armed(unsigned vault) const { return active_[vault]; }

  private:
    std::vector<PermutableRegion> regions_;
    std::vector<bool> active_;
};

} // namespace mondrian

#endif // MONDRIAN_MEM_ALLOCATOR_HH
