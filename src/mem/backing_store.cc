#include "mem/backing_store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

const std::uint8_t BackingStore::kZeroChunk[BackingStore::kChunkBytes] = {};

BackingStore::BackingStore(std::uint64_t capacity) : capacity_(capacity) {}

std::uint8_t *
BackingStore::chunkFor(Addr addr)
{
    std::uint64_t idx = addr / kChunkBytes;
    auto it = chunks_.find(idx);
    if (it == chunks_.end()) {
        auto mem = std::make_unique<std::uint8_t[]>(kChunkBytes);
        std::memset(mem.get(), 0, kChunkBytes);
        it = chunks_.emplace(idx, std::move(mem)).first;
    }
    return it->second.get();
}

const std::uint8_t *
BackingStore::chunkForRead(Addr addr) const
{
    std::uint64_t idx = addr / kChunkBytes;
    auto it = chunks_.find(idx);
    return it == chunks_.end() ? kZeroChunk : it->second.get();
}

void
BackingStore::write(Addr addr, const void *src, std::uint64_t size)
{
    sim_assert(addr + size <= capacity_);
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        std::uint64_t in_chunk = addr % kChunkBytes;
        std::uint64_t n = std::min(size, kChunkBytes - in_chunk);
        std::memcpy(chunkFor(addr) + in_chunk, bytes, n);
        addr += n;
        bytes += n;
        size -= n;
    }
}

void
BackingStore::read(Addr addr, void *dst, std::uint64_t size) const
{
    sim_assert(addr + size <= capacity_);
    auto *bytes = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        std::uint64_t in_chunk = addr % kChunkBytes;
        std::uint64_t n = std::min(size, kChunkBytes - in_chunk);
        std::memcpy(bytes, chunkForRead(addr) + in_chunk, n);
        addr += n;
        bytes += n;
        size -= n;
    }
}

} // namespace mondrian
