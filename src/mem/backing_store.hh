/**
 * @file
 * Sparse functional backing store.
 *
 * Holds the actual bytes of the simulated physical memory so operators run
 * *through* the simulated address space: a bug in address arithmetic shows
 * up as a wrong query answer, not just a wrong cycle count. Storage is
 * chunked and allocated on first touch, so a mostly-empty multi-GiB address
 * space costs only what is actually written.
 */

#ifndef MONDRIAN_MEM_BACKING_STORE_HH
#define MONDRIAN_MEM_BACKING_STORE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Chunked, lazily allocated byte store indexed by physical address. */
class BackingStore
{
  public:
    static constexpr std::uint64_t kChunkBytes = 64 * kKiB;

    explicit BackingStore(std::uint64_t capacity);

    std::uint64_t capacity() const { return capacity_; }

    /** Copy @p size bytes from @p src into memory at @p addr. */
    void write(Addr addr, const void *src, std::uint64_t size);

    /** Copy @p size bytes from memory at @p addr into @p dst. */
    void read(Addr addr, void *dst, std::uint64_t size) const;

    /** Typed convenience accessors. */
    template <typename T>
    void
    writeValue(Addr addr, const T &v)
    {
        write(addr, &v, sizeof(T));
    }

    template <typename T>
    T
    readValue(Addr addr) const
    {
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Number of chunks materialized so far (for footprint reporting). */
    std::size_t chunksAllocated() const { return chunks_.size(); }

  private:
    std::uint8_t *chunkFor(Addr addr);
    const std::uint8_t *chunkForRead(Addr addr) const;

    std::uint64_t capacity_;
    std::unordered_map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> chunks_;
    static const std::uint8_t kZeroChunk[kChunkBytes];
};

} // namespace mondrian

#endif // MONDRIAN_MEM_BACKING_STORE_HH
