#include "net/socket.hh"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mondrian {

std::string
Endpoint::name() const
{
    return host + ":" + std::to_string(port);
}

bool
parseEndpoint(const std::string &spec, Endpoint &out, std::string &error)
{
    // The port starts after the LAST colon, so a future bracketed-IPv6
    // host form stays representable; today hosts are names or IPv4.
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
        error = "endpoint '" + spec + "': expected HOST:PORT";
        return false;
    }
    const std::string host = spec.substr(0, colon);
    const std::string port_text = spec.substr(colon + 1);
    if (host.empty()) {
        error = "endpoint '" + spec + "': empty host";
        return false;
    }
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
        error = "endpoint '" + spec + "': '" + port_text +
                "' is not a port number";
        return false;
    }
    char *end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (port > 65535) {
        error = "endpoint '" + spec + "': port " + port_text +
                " out of range [0, 65535]";
        return false;
    }
    out.host = host;
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

namespace {

void
setNoDelay(int fd)
{
    // Best effort: the protocol is small framed messages and a delayed
    // ACK interaction would add 40 ms to every heartbeat/result.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

struct AddrList
{
    addrinfo *head = nullptr;
    ~AddrList()
    {
        if (head)
            ::freeaddrinfo(head);
    }
};

bool
resolve(const Endpoint &ep, int ai_flags, AddrList &list, std::string &error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = ai_flags;
    const std::string port_text = std::to_string(ep.port);
    const int rc =
        ::getaddrinfo(ep.host.c_str(), port_text.c_str(), &hints, &list.head);
    if (rc != 0) {
        error = "cannot resolve '" + ep.name() + "': " + ::gai_strerror(rc);
        return false;
    }
    return true;
}

} // namespace

Socket
Socket::listen(const Endpoint &ep, std::string &error)
{
    AddrList addrs;
    if (!resolve(ep, AI_PASSIVE, addrs, error))
        return Socket{};

    int last_errno = 0;
    for (addrinfo *ai = addrs.head; ai; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0)
            return Socket(fd);
        last_errno = errno;
        ::close(fd);
    }
    error = "cannot listen on '" + ep.name() +
            "': " + std::strerror(last_errno ? last_errno : EINVAL);
    return Socket{};
}

Socket
Socket::connect(const Endpoint &ep, std::string &error)
{
    AddrList addrs;
    if (!resolve(ep, 0, addrs, error))
        return Socket{};

    int last_errno = 0;
    for (addrinfo *ai = addrs.head; ai; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        int rc;
        do {
            rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0) {
            setNoDelay(fd);
            return Socket(fd);
        }
        last_errno = errno;
        ::close(fd);
    }
    error = "cannot connect to '" + ep.name() +
            "': " + std::strerror(last_errno ? last_errno : EINVAL);
    return Socket{};
}

Socket
Socket::accept(std::string &error) const
{
    error.clear();
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            setNoDelay(fd);
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != ECONNABORTED)
            error = std::string("accept: ") + std::strerror(errno);
        return Socket{};
    }
}

bool
Socket::setNonBlocking(std::string &error) const
{
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
        error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
        return false;
    }
    return true;
}

std::uint16_t
Socket::localPort() const
{
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        return 0;
    if (addr.ss_family == AF_INET)
        return ntohs(reinterpret_cast<sockaddr_in *>(&addr)->sin_port);
    if (addr.ss_family == AF_INET6)
        return ntohs(reinterpret_cast<sockaddr_in6 *>(&addr)->sin6_port);
    return 0;
}

ssize_t
Socket::readSome(void *buf, std::size_t size) const
{
    for (;;) {
        const ssize_t n = ::read(fd_, buf, size);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

bool
Socket::writeAll(const void *buf, std::size_t size) const
{
    const char *p = static_cast<const char *>(buf);
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::send(fd_, p + off, size - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Non-blocking coordinator-side socket with a full kernel
            // buffer (a worker that stopped reading). Messages are small,
            // so a short writability wait is enough; a peer that stays
            // unwritable is treated as gone and lands on the ordinary
            // kill/requeue path.
            pollfd pfd{fd_, POLLOUT, 0};
            const int rc = ::poll(&pfd, 1, 5000);
            if (rc > 0)
                continue;
            errno = ETIMEDOUT;
            return false;
        }
        return false;
    }
    return true;
}

} // namespace mondrian
