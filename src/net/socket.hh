/**
 * @file
 * Small non-blocking TCP socket layer for distributed campaigns.
 *
 * The coordinator's event loop is a single-threaded poll() reactor; this
 * layer gives it exactly what it needs and nothing more: an RAII fd
 * wrapper, listen/connect/accept, and read/write primitives with the
 * EINTR and partial-transfer handling done once instead of at every call
 * site. No frames, no protocol — that is src/net/transport.hh's job.
 *
 * Endpoint grammar (shared by --listen and --worker-connect):
 * `HOST:PORT` where HOST is a hostname or numeric address resolved via
 * getaddrinfo and PORT is a decimal port (0 = kernel-assigned, used by
 * tests to bind an ephemeral listener and read it back via localPort()).
 */

#ifndef MONDRIAN_NET_SOCKET_HH
#define MONDRIAN_NET_SOCKET_HH

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace mondrian {

/** A parsed HOST:PORT endpoint. */
struct Endpoint
{
    std::string host;
    std::uint16_t port = 0;

    /** Canonical display form, "host:port". */
    std::string name() const;
};

/**
 * Parse a `HOST:PORT` spec (the --listen / --worker-connect grammar).
 * The port is decimal in [0, 65535]; the host must be non-empty (use
 * 0.0.0.0 to listen on every interface).
 * @return false with @p error set on malformed specs.
 */
bool parseEndpoint(const std::string &spec, Endpoint &out,
                   std::string &error);

/**
 * Move-only RAII wrapper of one TCP socket fd.
 *
 * All factory functions report failure by returning an invalid Socket
 * with @p error set (never by throwing — the callers are event loops
 * and CLI front ends that map failures to requeue paths or exit codes).
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close now (idempotent; EINTR-safe per POSIX close semantics). */
    void close();

    /** Release ownership of the fd without closing it. */
    int release();

    /**
     * Bind and listen on @p ep (SO_REUSEADDR so restarted coordinators
     * do not trip TIME_WAIT). Port 0 binds an ephemeral port readable
     * via localPort().
     */
    static Socket listen(const Endpoint &ep, std::string &error);

    /**
     * Blocking connect to @p ep; resolves the host and tries every
     * returned address in order. TCP_NODELAY is set (the protocol is
     * small request/response messages).
     */
    static Socket connect(const Endpoint &ep, std::string &error);

    /**
     * Accept one pending connection from a listening socket.
     * Returns an invalid Socket with an EMPTY @p error when no
     * connection is pending (the non-blocking accept's EAGAIN) and an
     * invalid Socket with @p error set on real failures. Accepted
     * sockets get TCP_NODELAY.
     */
    Socket accept(std::string &error) const;

    /** Switch the fd to O_NONBLOCK (coordinator-side sockets). */
    bool setNonBlocking(std::string &error) const;

    /** Locally bound port (0 on error) — how tests recover a port-0 bind. */
    std::uint16_t localPort() const;

    /**
     * Read up to @p size bytes, retrying EINTR.
     * @return bytes read (> 0), 0 on orderly EOF, -1 with errno set
     * otherwise (EAGAIN/EWOULDBLOCK = nothing available right now).
     */
    ssize_t readSome(void *buf, std::size_t size) const;

    /**
     * Write all @p size bytes, retrying EINTR and partial writes.
     * Only valid on blocking sockets or when short-term blocking is
     * acceptable (protocol messages are small; the kernel buffer
     * absorbs them).
     * @return false with errno set when the peer is gone (EPIPE,
     * ECONNRESET) or the write fails.
     */
    bool writeAll(const void *buf, std::size_t size) const;

  private:
    int fd_ = -1;
};

} // namespace mondrian

#endif // MONDRIAN_NET_SOCKET_HH
