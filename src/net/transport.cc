#include "net/transport.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mondrian {

namespace {

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = makeCrcTable();

std::string
crcHex(std::uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[crc & 0xF];
        crc >>= 4;
    }
    return out;
}

/** Maximum sane payload; anything larger is a desynced length field. */
constexpr std::size_t kMaxPayload = std::size_t{64} << 20;

/** A frame header line is short; a longer run without '\n' is desync. */
constexpr std::size_t kMaxHeaderLine = 32;

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        crc = kCrcTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::string
encodeFrame(const std::string &payload, bool with_crc)
{
    std::string out = std::to_string(payload.size());
    if (with_crc) {
        out += ' ';
        out += crcHex(crc32(payload.data(), payload.size()));
    }
    out += '\n';
    out += payload;
    out += '\n';
    return out;
}

int
decodeFrame(std::string &buf, std::string &payload, bool with_crc)
{
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos)
        return buf.size() > kMaxHeaderLine ? -1 : 0;
    std::string header = buf.substr(0, nl);

    std::string crc_text;
    if (with_crc) {
        const std::size_t space = header.find(' ');
        if (space == std::string::npos)
            return -1;
        crc_text = header.substr(space + 1);
        header.resize(space);
        if (crc_text.size() != 8 ||
            crc_text.find_first_not_of("0123456789abcdef") !=
                std::string::npos)
            return -1;
    }
    if (header.empty() ||
        header.find_first_not_of("0123456789") != std::string::npos)
        return -1;
    const std::size_t len = static_cast<std::size_t>(
        std::strtoull(header.c_str(), nullptr, 10));
    if (len > kMaxPayload)
        return -1;
    if (buf.size() < nl + 1 + len + 1)
        return 0;
    if (buf[nl + 1 + len] != '\n')
        return -1;
    payload = buf.substr(nl + 1, len);
    buf.erase(0, nl + 1 + len + 1);
    if (with_crc) {
        const std::uint32_t declared = static_cast<std::uint32_t>(
            std::strtoull(crc_text.c_str(), nullptr, 16));
        if (crc32(payload.data(), payload.size()) != declared)
            return -1;
    }
    return 1;
}

int
decodeLine(std::string &buf, std::string &payload)
{
    for (;;) {
        const std::size_t nl = buf.find('\n');
        if (nl == std::string::npos)
            return 0;
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank keep-alive noise, as std::getline skipped
        payload = std::move(line);
        return 1;
    }
}

namespace {

/** Shared read-into-buffer step for both transports. */
Transport::Pump
pumpFd(int fd, std::string &buf)
{
    bool got_data = false;
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buf.append(chunk, static_cast<std::size_t>(n));
            got_data = true;
            // The fd may be in blocking mode (a worker's stdin or
            // socket): keep reading only while bytes are already
            // waiting, never block a second time inside one pump —
            // the caller must get a chance to decode what arrived.
            struct pollfd pfd;
            pfd.fd = fd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            if (::poll(&pfd, 1, 0) <= 0 ||
                !(pfd.revents & (POLLIN | POLLHUP)))
                return Transport::Pump::kData;
            continue;
        }
        if (n == 0)
            return got_data ? Transport::Pump::kData : Transport::Pump::kEof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return got_data ? Transport::Pump::kData : Transport::Pump::kIdle;
        return got_data ? Transport::Pump::kData : Transport::Pump::kError;
    }
}

bool
writeAllFd(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

// ----------------------------------------------------------- PipeTransport

PipeTransport::PipeTransport(Role role, int read_fd, int write_fd,
                             bool own_fds)
    : role_(role), read_fd_(read_fd), write_fd_(write_fd), own_fds_(own_fds)
{}

PipeTransport::~PipeTransport()
{
    close();
}

bool
PipeTransport::send(const std::string &payload)
{
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (write_fd_ < 0)
        return false;
    // Coordinator commands are newline-delimited JSON; worker replies
    // are length-prefixed frames — the exact PR 7 pipe protocol.
    const std::string wire = role_ == Role::kCoordinator
                                 ? payload + "\n"
                                 : encodeFrame(payload, false);
    return writeAllFd(write_fd_, wire);
}

Transport::Pump
PipeTransport::pump()
{
    if (read_fd_ < 0)
        return Pump::kEof;
    return pumpFd(read_fd_, buf_);
}

int
PipeTransport::next(std::string &payload)
{
    return role_ == Role::kCoordinator ? decodeFrame(buf_, payload, false)
                                       : decodeLine(buf_, payload);
}

void
PipeTransport::shutdownSend()
{
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (write_fd_ >= 0) {
        if (own_fds_ && write_fd_ != read_fd_)
            ::close(write_fd_);
        write_fd_ = -1;
    }
}

void
PipeTransport::close()
{
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (own_fds_) {
        if (read_fd_ >= 0)
            ::close(read_fd_);
        if (write_fd_ >= 0 && write_fd_ != read_fd_)
            ::close(write_fd_);
    }
    read_fd_ = write_fd_ = -1;
}

// ------------------------------------------------------------ TcpTransport

bool
TcpTransport::send(const std::string &payload)
{
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (!socket_.valid())
        return false;
    const std::string wire = encodeFrame(payload, true);
    return socket_.writeAll(wire.data(), wire.size());
}

Transport::Pump
TcpTransport::pump()
{
    if (!socket_.valid())
        return Pump::kEof;
    return pumpFd(socket_.fd(), buf_);
}

int
TcpTransport::next(std::string &payload)
{
    return decodeFrame(buf_, payload, true);
}

void
TcpTransport::shutdownSend()
{
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (socket_.valid())
        ::shutdown(socket_.fd(), SHUT_WR);
}

void
TcpTransport::close()
{
    // Serialized against send(): the worker's heartbeat thread may be
    // mid-write when the job loop tears the channel down.
    std::lock_guard<std::mutex> lock(send_mutex_);
    socket_.close();
}

} // namespace mondrian
