/**
 * @file
 * Transport: the message channel between a campaign coordinator and one
 * worker, abstracted over pipes and TCP.
 *
 * PR 7's wire protocol was designed transport-agnostic: JSON command
 * messages flow coordinator -> worker, framed payloads flow back. This
 * file is where that abstraction becomes real. Two implementations:
 *
 *  - PipeTransport — the original subprocess transport, extracted from
 *    coordinator.cc behavior-preservingly: commands are newline-delimited
 *    compact JSON on the worker's stdin, replies are length-prefixed
 *    frames ("<decimal length>\n<payload>\n") on its stdout.
 *
 *  - TcpTransport — one socket, the SAME protocol messages, but BOTH
 *    directions carry CRC-framed payloads:
 *    "<decimal length> <8-hex crc32>\n<payload>\n". The CRC means a bit
 *    flip on the wire is detected at the transport layer (next() returns
 *    a desync, which maps to the coordinator's kill/requeue path) instead
 *    of surfacing as a JSON parse error deep in result handling.
 *
 * Threading: send() is serialized by an internal mutex — the worker's
 * dedicated heartbeat thread writes concurrently with the job loop (the
 * same contract FrameSender provided on stdout). pump()/next() are
 * single-consumer: only the owning event loop reads.
 */

#ifndef MONDRIAN_NET_TRANSPORT_HH
#define MONDRIAN_NET_TRANSPORT_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/socket.hh"

namespace mondrian {

/** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/**
 * Encode one payload as a transport frame:
 * without CRC, "<decimal length>\n<payload>\n" (the pipe format);
 * with CRC, "<decimal length> <8-hex crc32>\n<payload>\n" (TCP).
 */
std::string encodeFrame(const std::string &payload, bool with_crc);

/**
 * Extract the next complete frame from @p buf, consuming it.
 * @return 1 on a frame (payload out), 0 when more bytes are needed, -1
 * on a framing violation — unparseable header, nonsense length,
 * missing trailer, or (with @p with_crc) a CRC mismatch. -1 means the
 * stream is no longer trustworthy: the caller must drop the channel.
 */
int decodeFrame(std::string &buf, std::string &payload, bool with_crc);

/**
 * Extract the next newline-delimited message from @p buf (the pipe
 * command channel), consuming it; blank lines are skipped.
 * @return 1 on a message, 0 when more bytes are needed.
 */
int decodeLine(std::string &buf, std::string &payload);

/**
 * Bidirectional message channel between a coordinator and one worker.
 * The role decides the encoding each direction uses on asymmetric
 * transports (pipes): a coordinator sends commands and receives frames,
 * a worker the reverse.
 */
class Transport
{
  public:
    enum class Role
    {
        kCoordinator,
        kWorker
    };

    /** pump() outcome. */
    enum class Pump
    {
        kData, ///< bytes were appended to the reassembly buffer
        kIdle, ///< nothing available right now (non-blocking fd only)
        kEof,  ///< peer closed the channel in an orderly way
        kError ///< read error: channel dead
    };

    virtual ~Transport() = default;

    /**
     * Send one protocol message (thread-safe).
     * @return false when the peer is gone or the write fails.
     */
    virtual bool send(const std::string &payload) = 0;

    /** Read available bytes from the fd into the reassembly buffer.
     *  Blocking fds block until data/EOF; non-blocking fds drain until
     *  EAGAIN and report kIdle when nothing was pending. */
    virtual Pump pump() = 0;

    /**
     * Extract the next complete inbound message from the reassembly
     * buffer. @return 1 with the message in @p payload, 0 when more
     * bytes are needed (pump() again), -1 on a framing violation or CRC
     * mismatch (drop the channel).
     */
    virtual int next(std::string &payload) = 0;

    /** poll()able fd of the receive side. */
    virtual int fd() const = 0;

    /**
     * Half-close the send direction only (idempotent): the peer sees
     * EOF on its read side while our receive side stays open. This is
     * how the coordinator's shutdown works — after the exit message the
     * command channel closes, but the reply channel stays readable
     * until the worker is reaped.
     */
    virtual void shutdownSend() = 0;

    /** Close both directions (idempotent). */
    virtual void close() = 0;

    virtual bool closed() const = 0;

    /** "pipe" or "tcp" — for log lines and the --dry-run listing. */
    virtual const char *kind() const = 0;
};

/**
 * The stdin/stdout subprocess transport (see file header). Owns neither,
 * either, or both fds depending on @p own_fds — the worker side wraps
 * fds 0 and 1 without owning them; the coordinator side owns its pipe
 * ends.
 */
class PipeTransport : public Transport
{
  public:
    PipeTransport(Role role, int read_fd, int write_fd, bool own_fds);
    ~PipeTransport() override;

    bool send(const std::string &payload) override;
    Pump pump() override;
    int next(std::string &payload) override;
    int fd() const override { return read_fd_; }
    void shutdownSend() override;
    void close() override;
    bool closed() const override { return read_fd_ < 0 && write_fd_ < 0; }
    const char *kind() const override { return "pipe"; }

  private:
    Role role_;
    int read_fd_;
    int write_fd_;
    bool own_fds_;
    std::string buf_;
    std::mutex send_mutex_;
};

/** The TCP transport: one socket, CRC frames both ways (see header). */
class TcpTransport : public Transport
{
  public:
    explicit TcpTransport(Socket socket) : socket_(std::move(socket)) {}

    bool send(const std::string &payload) override;
    Pump pump() override;
    int next(std::string &payload) override;
    int fd() const override { return socket_.fd(); }
    void shutdownSend() override;
    void close() override;
    bool closed() const override { return !socket_.valid(); }
    const char *kind() const override { return "tcp"; }

  private:
    Socket socket_;
    std::string buf_;
    std::mutex send_mutex_;
};

} // namespace mondrian

#endif // MONDRIAN_NET_TRANSPORT_HH
