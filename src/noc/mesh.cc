#include "noc/mesh.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

Mesh::Mesh(const MeshConfig &cfg) : cfg_(cfg)
{
    injectFree_.assign(cfg_.routers(), Tick{0});
    ejectFree_.assign(cfg_.routers(), Tick{0});
    portBusy_.assign(std::size_t{cfg_.routers()} * 2, Tick{0});
}

unsigned
Mesh::hops(unsigned src, unsigned dst) const
{
    unsigned sx = src % cfg_.width, sy = src / cfg_.width;
    unsigned dx = dst % cfg_.width, dy = dst / cfg_.width;
    return (sx > dx ? sx - dx : dx - sx) + (sy > dy ? sy - dy : dy - sy);
}

Tick
Mesh::route(unsigned src, unsigned dst, std::uint64_t bytes, Tick start,
            bool reserve_inject, bool reserve_eject)
{
    sim_assert(src < cfg_.routers() && dst < cfg_.routers());
    stats_.packets++;
    stats_.bytes += bytes;

    if (src == dst)
        return start; // local delivery: no mesh traversal

    const Tick ser = bytes * cfg_.psPerByte();
    const unsigned n_hops = hops(src, dst);
    stats_.bitHops += bytes * 8 * n_hops;

    // Injection port: serialize out of the source router.
    Tick depart = start;
    if (reserve_inject) {
        depart = std::max(start, injectFree_[src]);
        injectFree_[src] = depart + ser;
        portBusy_[src] += ser;
    }

    // Interior traversal: latency only (see file comment).
    Tick head = depart + ser + Tick{n_hops} * cfg_.hopLatency;

    // Ejection port: serialize into the destination router.
    Tick eject = head;
    if (reserve_eject) {
        eject = std::max(head, ejectFree_[dst]);
        ejectFree_[dst] = eject + ser;
        portBusy_[std::size_t{cfg_.routers()} + dst] += ser;
    }

    return eject + ser;
}

Tick
Mesh::maxPortReserved() const
{
    Tick m = 0;
    for (Tick t : injectFree_)
        m = std::max(m, t);
    for (Tick t : ejectFree_)
        m = std::max(m, t);
    return m;
}

} // namespace mondrian
