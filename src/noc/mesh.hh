/**
 * @file
 * Intra-stack 2D mesh interconnect model.
 *
 * Each HMC stack's logic layer carries a 2D mesh connecting the vault
 * tiles (Table 3: 16 B links, 3 cycles/hop). The model charges XY-route
 * latency per hop and serializes bandwidth at the two endpoints of every
 * traversal: the source router's injection port and the destination
 * router's ejection port.
 *
 * Endpoint-only contention is deliberate. A single next-free-time per
 * interior link cannot represent a reservation at a future instant without
 * also blocking every earlier slot; when SerDes queues delay cross-stack
 * messages, those far-future interior reservations would cascade into a
 * network-wide convoy that has no physical counterpart. Injection and
 * ejection ports see (near-)monotone arrival orders, where next-free-time
 * is accurate -- and they are exactly where a 4x4 mesh of 32 GB/s links
 * actually saturates first (the ejection port of a hot vault, the port
 * router feeding a SerDes link).
 */

#ifndef MONDRIAN_NOC_MESH_HH
#define MONDRIAN_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Mesh configuration. */
struct MeshConfig
{
    unsigned width = 4;          ///< routers per row
    unsigned height = 4;         ///< routers per column
    Tick hopLatency = 3000;      ///< 3 ns per hop (Table 3: 3 cycles/hop)
    std::uint64_t linkBytesPerCycle = 16; ///< 16 B links (Table 3)
    /**
     * Logic-layer network clock: 2 GHz. Table 3 gives 16 B links and
     * 3 cycles/hop; for the paper's SerDes-bound partitioning story to
     * hold (4.5 GB/s/vault of payload in 16 B messages), the mesh must
     * sustain ~2x the vault bandwidth per link, i.e. a 2 GHz link clock.
     */
    Tick cycle = 500;

    Tick psPerByte() const { return cycle / linkBytesPerCycle; }
    unsigned routers() const { return width * height; }
};

/** Cumulative mesh statistics. */
struct MeshStats
{
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t bitHops = 0; ///< bits x hops traversed (for energy)
};

/** One stack's mesh: XY latency, endpoint-port contention. */
class Mesh
{
  public:
    explicit Mesh(const MeshConfig &cfg);

    /**
     * Route @p bytes from router @p src to router @p dst, entering the
     * network at @p start. Reserves serialization time on the source's
     * injection port and the destination's ejection port.
     *
     * @param reserve_inject serialize at the source's injection port;
     *        pass false when the hand-off is paced upstream (a SerDes
     *        link delivering into the mesh), so late deliveries cannot
     *        convoy the router's own traffic.
     * @param reserve_eject likewise for the destination's ejection port
     *        (a SerDes link draining the mesh paces itself).
     * @return tick at which the tail of the packet arrives at @p dst.
     */
    Tick route(unsigned src, unsigned dst, std::uint64_t bytes, Tick start,
               bool reserve_inject = true, bool reserve_eject = true);

    /** Number of mesh hops between two routers (Manhattan distance). */
    unsigned hops(unsigned src, unsigned dst) const;

    const MeshConfig &config() const { return cfg_; }
    const MeshStats &stats() const { return stats_; }

    /** Cumulative serialization per port (diagnostics): inject then eject. */
    const std::vector<Tick> &portBusy() const { return portBusy_; }

    /** Latest port next-free-time (hotspot diagnostics). */
    Tick maxPortReserved() const;

  private:
    MeshConfig cfg_;
    std::vector<Tick> injectFree_; ///< per-router injection port
    std::vector<Tick> ejectFree_;  ///< per-router ejection port
    std::vector<Tick> portBusy_;   ///< 2*routers: inject busy, eject busy
    MeshStats stats_;
};

} // namespace mondrian

#endif // MONDRIAN_NOC_MESH_HH
