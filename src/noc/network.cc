#include "noc/network.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

Network::Network(const MemGeometry &geo, Topology topo,
                 const MeshConfig &mesh_cfg, const SerDesConfig &serdes_cfg,
                 std::uint32_t packet_overhead)
    : geo_(geo), topo_(topo), overhead_(packet_overhead)
{
    if (geo.numStacks == 0 || geo.vaultsPerStack == 0)
        fatal("network geometry must have stacks and vaults");

    MeshConfig cfg = mesh_cfg;
    // Size the mesh to cover the stack's vaults in a near-square grid.
    // Power-of-two vault counts (every sweepable geometry) get an exact
    // rectangle with no unused routers: 8 vaults -> 4x2, 32 -> 8x4.
    if (isPowerOf2(geo.vaultsPerStack)) {
        unsigned l = static_cast<unsigned>(floorLog2(geo.vaultsPerStack));
        cfg.width = 1u << ((l + 1) / 2);
        cfg.height = geo.vaultsPerStack / cfg.width;
    } else {
        cfg.width = 1;
        while (cfg.width * cfg.width < geo.vaultsPerStack)
            ++cfg.width;
        cfg.height = (geo.vaultsPerStack + cfg.width - 1) / cfg.width;
    }

    for (unsigned s = 0; s < geo.numStacks; ++s)
        meshes_.emplace_back(cfg);

    if (topo_ == Topology::kFullyConnectedNmp) {
        interStack_.assign(std::size_t{geo.numStacks} * geo.numStacks,
                           SerDesLink{serdes_cfg});
    }
    cpuToStack_.assign(geo.numStacks, SerDesLink{serdes_cfg});
    stackToCpu_.assign(geo.numStacks, SerDesLink{serdes_cfg});

    // delay() runs several node decompositions per simulated message;
    // strength-reduce them for the (universal) power-of-two case.
    vpsPow2_ = isPowerOf2(geo_.vaultsPerStack);
    if (vpsPow2_) {
        vpsShift_ = static_cast<unsigned>(floorLog2(geo_.vaultsPerStack));
        vpsMask_ = geo_.vaultsPerStack - 1;
    }
}

unsigned
Network::stackOf(unsigned node) const
{
    sim_assert(node != kCpuNode);
    return vpsPow2_ ? node >> vpsShift_ : node / geo_.vaultsPerStack;
}

unsigned
Network::routerOf(unsigned node) const
{
    sim_assert(node != kCpuNode);
    return vpsPow2_ ? node & vpsMask_ : node % geo_.vaultsPerStack;
}

unsigned
Network::portRouter(unsigned stack, unsigned peer_stack) const
{
    (void)stack;
    const MeshConfig &mc = meshes_[0].config();
    const unsigned corners[4] = {
        0, mc.width - 1, mc.width * (mc.height - 1),
        mc.width * mc.height - 1};
    if (peer_stack == kCpuNode)
        return corners[0];
    return corners[peer_stack % 4];
}

unsigned
Network::serdesLinkCount() const
{
    unsigned n = 2 * geo_.numStacks; // CPU links, both directions
    if (topo_ == Topology::kFullyConnectedNmp)
        n += geo_.numStacks * (geo_.numStacks - 1);
    return n;
}

Tick
Network::delay(unsigned src, unsigned dst, std::uint64_t bytes, Tick start)
{
    packets_++;
    payloadBytes_ += bytes;
    const std::uint64_t wire_bytes = bytes + overhead_;

    if (src == dst && src != kCpuNode)
        return start; // vault-local access: never enters the network

    // CPU <-> vault.
    if (src == kCpuNode || dst == kCpuNode) {
        unsigned vault = src == kCpuNode ? dst : src;
        unsigned stack = stackOf(vault);
        unsigned port = portRouter(stack, kCpuNode);
        if (src == kCpuNode) {
            Tick t = cpuToStack_[stack].transfer(wire_bytes, start);
            // The SerDes link paces the hand-off into the mesh.
            return meshes_[stack].route(port, routerOf(vault), wire_bytes,
                                        t, /*reserve_inject=*/false,
                                        /*reserve_eject=*/true);
        }
        Tick t = meshes_[stack].route(routerOf(vault), port, wire_bytes,
                                      start, /*reserve_inject=*/true,
                                      /*reserve_eject=*/false);
        return stackToCpu_[stack].transfer(wire_bytes, t);
    }

    unsigned s_stack = stackOf(src), d_stack = stackOf(dst);
    if (s_stack == d_stack) {
        return meshes_[s_stack].route(routerOf(src), routerOf(dst),
                                      wire_bytes, start);
    }

    // Cross-stack: exit via the corner port for the destination stack,
    // enter via the corner port for the source stack. The SerDes link is
    // the pacing resource at both corners, so neither corner's own
    // vault ports are reserved.
    Tick t = meshes_[s_stack].route(routerOf(src),
                                    portRouter(s_stack, d_stack),
                                    wire_bytes, start,
                                    /*reserve_inject=*/true,
                                    /*reserve_eject=*/false);
    if (topo_ == Topology::kFullyConnectedNmp) {
        t = interStack_[std::size_t{s_stack} * geo_.numStacks + d_stack]
                .transfer(wire_bytes, t);
    } else {
        // Star: bounce through the CPU hub.
        t = stackToCpu_[s_stack].transfer(wire_bytes, t);
        t = cpuToStack_[d_stack].transfer(wire_bytes, t);
    }
    return meshes_[d_stack].route(portRouter(d_stack, s_stack),
                                  routerOf(dst), wire_bytes, t,
                                  /*reserve_inject=*/false,
                                  /*reserve_eject=*/true);
}

Tick
Network::baseLatency(unsigned src, unsigned dst, std::uint64_t bytes) const
{
    if (src == dst && src != kCpuNode)
        return 0;
    const std::uint64_t wire_bytes = bytes + overhead_;
    const MeshConfig &mc = meshes_[0].config();
    SerDesConfig sc; // default config matches construction

    auto mesh_time = [&](unsigned a, unsigned b) {
        return Tick{meshes_[0].hops(a, b)} * mc.hopLatency +
               wire_bytes * mc.psPerByte();
    };
    auto serdes_time = [&]() {
        return wire_bytes * sc.psPerByte() + sc.latency;
    };

    if (src == kCpuNode || dst == kCpuNode) {
        unsigned vault = src == kCpuNode ? dst : src;
        unsigned stack = stackOf(vault);
        return serdes_time() +
               mesh_time(portRouter(stack, kCpuNode), routerOf(vault));
    }
    unsigned s_stack = stackOf(src), d_stack = stackOf(dst);
    if (s_stack == d_stack)
        return mesh_time(routerOf(src), routerOf(dst));

    Tick t = mesh_time(routerOf(src), portRouter(s_stack, d_stack)) +
             mesh_time(portRouter(d_stack, s_stack), routerOf(dst));
    if (topo_ == Topology::kFullyConnectedNmp)
        return t + serdes_time();
    return t + 2 * serdes_time();
}

Tick
Network::maxMeshLinkReserved() const
{
    Tick m = 0;
    for (const auto &mesh : meshes_)
        m = std::max(m, mesh.maxPortReserved());
    return m;
}

NetworkStats
Network::stats() const
{
    NetworkStats s;
    s.packets = packets_;
    s.payloadBytes = payloadBytes_;
    for (const auto &m : meshes_)
        s.meshBitHops += m.stats().bitHops;
    for (const auto &l : interStack_)
        s.serdesBusyBits += l.busyBits();
    for (const auto &l : cpuToStack_)
        s.serdesBusyBits += l.busyBits();
    for (const auto &l : stackToCpu_)
        s.serdesBusyBits += l.busyBits();
    return s;
}

} // namespace mondrian
