/**
 * @file
 * System-level interconnect: per-stack meshes glued by SerDes links.
 *
 * Two topologies from the paper's methodology (§6, Fig. 3a / Fig. 5):
 *  - kStarCpu: passive stacks, each linked only to the CPU chip; any
 *    stack-to-stack traffic must bounce through the CPU hub.
 *  - kFullyConnectedNmp: active stacks with direct SerDes links between
 *    every pair of cubes (plus a supervisory CPU attachment).
 *
 * Nodes are addressed by global vault index, or kCpuNode for the CPU chip.
 * Every transfer pays a fixed per-packet protocol overhead, modeling the
 * HMC packetized request/response framing.
 */

#ifndef MONDRIAN_NOC_NETWORK_HH
#define MONDRIAN_NOC_NETWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/address_map.hh"
#include "noc/mesh.hh"
#include "noc/serdes.hh"

namespace mondrian {

/** Interconnect topology selector. */
enum class Topology
{
    kStarCpu,          ///< CPU hub, passive cubes (Fig. 5)
    kFullyConnectedNmp ///< active cubes, all-to-all SerDes (Fig. 3a)
};

/** Aggregate network statistics (for reporting and energy). */
struct NetworkStats
{
    std::uint64_t serdesBusyBits = 0;
    std::uint64_t meshBitHops = 0;
    std::uint64_t packets = 0;
    std::uint64_t payloadBytes = 0;
};

/** Topology-aware message timing across the whole machine. */
class Network
{
  public:
    static constexpr unsigned kCpuNode = 0xffffffffu;

    Network(const MemGeometry &geo, Topology topo,
            const MeshConfig &mesh_cfg = {},
            const SerDesConfig &serdes_cfg = {},
            std::uint32_t packet_overhead = 16);

    /**
     * Time for a @p bytes message from node @p src to node @p dst entering
     * the network at @p start, including all contention along the way.
     *
     * @return tick at which the message is fully delivered.
     */
    Tick delay(unsigned src, unsigned dst, std::uint64_t bytes, Tick start);

    /** Zero-contention latency estimate (for model sanity checks). */
    Tick baseLatency(unsigned src, unsigned dst, std::uint64_t bytes) const;

    Topology topology() const { return topo_; }

    /** Number of directed SerDes links in this topology. */
    unsigned serdesLinkCount() const;

    NetworkStats stats() const;

    /** Hotspot diagnostic: busiest mesh-link next-free-time per stack. */
    Tick maxMeshLinkReserved() const;

    /** Direct mesh access for diagnostics and tests. */
    const Mesh &mesh(unsigned stack) const { return meshes_[stack]; }

    /** Inter-stack link diagnostics (NMP topology only). */
    const SerDesLink &interStackLink(unsigned s, unsigned d) const
    {
        return interStack_[std::size_t{s} * geo_.numStacks + d];
    }

    /**
     * Mesh router terminating the SerDes link toward @p peer_stack (or
     * the CPU when peer_stack == kCpuNode). Each link lands on a
     * different corner of the mesh, like the four link quadrants of a
     * real HMC, so one port router never funnels all external traffic.
     */
    unsigned portRouter(unsigned stack, unsigned peer_stack) const;

  private:
    unsigned stackOf(unsigned node) const;
    unsigned routerOf(unsigned node) const;

    MemGeometry geo_;
    Topology topo_;
    std::uint32_t overhead_;
    bool vpsPow2_ = false;   ///< vaultsPerStack is a power of two
    unsigned vpsShift_ = 0;  ///< log2(vaultsPerStack) when vpsPow2_
    unsigned vpsMask_ = 0;   ///< vaultsPerStack - 1 when vpsPow2_

    std::vector<Mesh> meshes_; ///< one per stack
    /** interStack_[s*numStacks+d]: directed link s -> d (NMP topology). */
    std::vector<SerDesLink> interStack_;
    std::vector<SerDesLink> cpuToStack_;
    std::vector<SerDesLink> stackToCpu_;

    std::uint64_t packets_ = 0;
    std::uint64_t payloadBytes_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_NOC_NETWORK_HH
