// SerDesLink is header-only; this translation unit anchors the vtable-free
// class so the build layout stays uniform (one .cc per module header).
#include "noc/serdes.hh"
