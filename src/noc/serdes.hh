/**
 * @file
 * Inter-stack SerDes link model.
 *
 * HMC stacks talk to each other and to the CPU over packetized serial
 * links (Table 3: SerDes @ 10 GHz, 160 Gb/s = 20 GB/s per direction).
 * Each directed link is a latency + next-free-time pipe; busy bits are
 * counted for the 3 pJ/bit busy / 1 pJ/bit idle energy model (Table 4).
 */

#ifndef MONDRIAN_NOC_SERDES_HH
#define MONDRIAN_NOC_SERDES_HH

#include <cstdint>

#include "common/types.hh"

namespace mondrian {

/** SerDes link configuration. */
struct SerDesConfig
{
    double gbytesPerSec = 20.0; ///< 160 Gb/s per direction
    Tick latency = 8000;        ///< end-to-end packet latency: 8 ns

    Tick
    psPerByte() const
    {
        return static_cast<Tick>(1000.0 / gbytesPerSec);
    }
};

/** One directed SerDes link. */
class SerDesLink
{
  public:
    explicit SerDesLink(const SerDesConfig &cfg = {}) : cfg_(cfg) {}

    /**
     * Transfer @p bytes entering at @p start.
     * @return tick the tail arrives at the far end.
     */
    Tick
    transfer(std::uint64_t bytes, Tick start)
    {
        Tick serialization = bytes * cfg_.psPerByte();
        Tick depart = start > free_ ? start : free_;
        free_ = depart + serialization;
        busyBits_ += bytes * 8;
        return depart + serialization + cfg_.latency;
    }

    /** Total bits serialized so far (for busy energy). */
    std::uint64_t busyBits() const { return busyBits_; }

    /** Next-free-time of the link (diagnostics). */
    Tick freeAt() const { return free_; }

    const SerDesConfig &config() const { return cfg_; }

  private:
    SerDesConfig cfg_;
    Tick free_ = 0;
    std::uint64_t busyBits_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_NOC_SERDES_HH
