#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace mondrian {

namespace {

/** Heap comparator: true when @p a orders after @p b (min at front). */
struct LaterWhen
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

} // namespace

EventQueue::EventQueue()
    : buckets_(kNumBuckets), occupied_(kNumBuckets / 64, 0)
{}

void
EventQueue::schedulePastPanic(Tick when) const
{
    panic("scheduling event in the past (when=%llu now=%llu)",
          static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(now_));
}

void
EventQueue::placeOverflow(Tick when, std::uint64_t seq, Callback &&cb)
{
    overflow_.emplace_back(when, seq, std::move(cb));
    std::push_heap(overflow_.begin(), overflow_.end(), LaterWhen{});
}

void
EventQueue::pullOverflow()
{
    while (!overflow_.empty() && overflow_.front().when < base_ + kHorizon) {
        std::pop_heap(overflow_.begin(), overflow_.end(), LaterWhen{});
        Event ev = std::move(overflow_.back());
        overflow_.pop_back();
        // Always lands in a bucket (inside the window).
        place(ev.when, ev.seq, std::move(ev.cb));
    }
}

void
EventQueue::advanceToOccupied()
{
    std::size_t cur = bucketIndexOf(base_);
    if (!buckets_[cur].empty())
        return;
    // Scan the occupancy bitmap cyclically from the bucket after cur.
    std::size_t steps = 0;
    std::size_t idx = (cur + 1) & (kNumBuckets - 1);
    std::size_t word = idx >> 6;
    std::uint64_t mask = occupied_[word] & (~std::uint64_t{0} << (idx & 63));
    for (std::size_t scanned = 0;; ++scanned) {
        sim_assert(scanned <= occupied_.size()); // nearCount_ > 0 ensures hit
        if (mask != 0) {
            std::size_t found =
                (word << 6) + static_cast<std::size_t>(std::countr_zero(mask));
            steps = (found - cur) & (kNumBuckets - 1);
            break;
        }
        word = (word + 1) % occupied_.size();
        mask = occupied_[word];
    }
    base_ += static_cast<Tick>(steps) * kWidth;
    // The window moved forward; overflow events may have entered it. They
    // are all >= the old horizon, hence strictly beyond the bucket just
    // found, so the minimum stays where we found it.
    pullOverflow();
}

std::size_t
EventQueue::findMin()
{
    sim_assert(size_ > 0);
    if (nearCount_ == 0) {
        // Only far-future events remain: jump the window to the earliest.
        base_ = overflow_.front().when & ~(kWidth - 1);
        pullOverflow();
    }
    advanceToOccupied();

    const auto &keys = buckets_[bucketIndexOf(base_)].keys;
    std::size_t min_i = keys.size();
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const Bucket::Key &k = keys[i];
        if (k.seq == kConsumed)
            continue;
        if (min_i == keys.size() || k.when < keys[min_i].when ||
            (k.when == keys[min_i].when && k.seq < keys[min_i].seq))
            min_i = i;
    }
    sim_assert(min_i < keys.size());
    return min_i;
}

Tick
EventQueue::headWhen()
{
    // findMin() first: it may advance base_ to the bucket it reports.
    std::size_t min_i = findMin();
    return buckets_[bucketIndexOf(base_)].keys[min_i].when;
}

void
EventQueue::step()
{
    // The min-scan touches only the compact key array; the consumed entry
    // stays in its bucket until the bucket drains (no hole-filling move).
    std::size_t min_i = findMin();
    std::size_t idx = bucketIndexOf(base_);
    {
        Bucket &b0 = buckets_[idx];
        now_ = b0.keys[min_i].when;
        ++executed_;
        b0.keys[min_i].seq = kConsumed;
        ++b0.consumed;
    }
    --nearCount_;
    --size_;
    // Move the callback to the stack before invoking: the callback may
    // schedule into this very bucket and reallocate its storage, which
    // must not happen underneath the executing closure.
    Callback cb = std::move(buckets_[idx].cbs[min_i]);
    cb();
    Bucket &b = buckets_[idx];
    if (b.consumed == b.keys.size()) {
        b.clear();
        occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    } else if (b.consumed >= 32 &&
               std::size_t{b.consumed} * 2 >= b.keys.size()) {
        // A busy bucket that keeps receiving events while draining would
        // otherwise accumulate consumed entries and stretch every
        // min-scan; compact once they are half the bucket (amortized one
        // callback move per executed event at most).
        std::size_t w = 0;
        for (std::size_t i = 0; i < b.keys.size(); ++i) {
            if (b.keys[i].seq == kConsumed)
                continue;
            if (w != i) {
                b.keys[w] = b.keys[i];
                b.cbs[w] = std::move(b.cbs[i]);
            }
            ++w;
        }
        b.keys.resize(w);
        b.cbs.resize(w);
        b.consumed = 0;
    }
}

Tick
EventQueue::run()
{
    while (size_ > 0) {
        step();
        if (stopRequested_) {
            stopRequested_ = false;
            break;
        }
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (size_ > 0 && headWhen() <= limit)
        step();
    if (now_ < limit && size_ == 0)
        return now_;
    now_ = limit > now_ ? limit : now_;
    return now_;
}

void
EventQueue::reset()
{
    for (auto &bucket : buckets_)
        bucket.clear();
    std::fill(occupied_.begin(), occupied_.end(), 0);
    overflow_.clear();
    base_ = 0;
    nearCount_ = 0;
    size_ = 0;
    now_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
    stopRequested_ = false;
}

} // namespace mondrian
