#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace mondrian {

namespace {

/** Heap comparator: true when @p a orders after @p b (min at front). */
struct LaterWhen
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

/** Key order within a bucket: (when, seq) ascending. */
struct EarlierKey
{
    template <typename K>
    bool
    operator()(const K &a, const K &b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }
};

} // namespace

EventQueue::EventQueue()
    : buckets_(kNumBuckets), occupied_(kNumBuckets / 64, 0)
{}

void
EventQueue::schedulePastPanic(Tick when) const
{
    panic("scheduling event in the past (when=%llu now=%llu)",
          static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(now_));
}

void
EventQueue::growArena()
{
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    chunk0_ = chunks_.front().get();
}

void
EventQueue::placeOverflow(Tick when, std::uint64_t seq, Callback &&cb)
{
    overflow_.emplace_back(when, seq, std::move(cb));
    std::push_heap(overflow_.begin(), overflow_.end(), LaterWhen{});
}

void
EventQueue::pullOverflow()
{
    while (!overflow_.empty() && overflow_.front().when < base_ + kHorizon) {
        std::pop_heap(overflow_.begin(), overflow_.end(), LaterWhen{});
        Event ev = std::move(overflow_.back());
        overflow_.pop_back();
        // Always lands in a bucket (inside the window).
        place(ev.when, ev.seq, std::move(ev.cb));
    }
}

void
EventQueue::advanceToOccupied()
{
    // Only called with the current bucket drained, so its occupancy bit
    // is clear and the scan starts at the bucket after it.
    std::size_t cur = bucketIndexOf(base_);
    std::size_t steps = 0;
    std::size_t idx = (cur + 1) & (kNumBuckets - 1);
    std::size_t word = idx >> 6;
    std::uint64_t mask = occupied_[word] & (~std::uint64_t{0} << (idx & 63));
    if (skipAhead_) {
        // Skip-ahead: instead of walking empty occupancy words one by
        // one, rotate the one-word summary so the word after `word` lands
        // at bit 0 and count straight to the next non-empty word. A run
        // of thousands of empty buckets (sparse schedules, long DRAM
        // gaps) costs one shift+countr_zero instead of a 64-word walk.
        if (mask == 0) {
            sim_assert(summary_ != 0); // a bucket event exists
            const std::uint64_t after = summary_ >> 1 >> word;
            word = after != 0
                       ? word + 1 +
                             static_cast<std::size_t>(std::countr_zero(after))
                       : static_cast<std::size_t>(
                             std::countr_zero(summary_));
            mask = occupied_[word];
        }
        std::size_t found =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(mask));
        steps = (found - cur) & (kNumBuckets - 1);
    } else {
        for (std::size_t scanned = 0;; ++scanned) {
            sim_assert(scanned <= occupied_.size());
            if (mask != 0) {
                std::size_t found =
                    (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(mask));
                steps = (found - cur) & (kNumBuckets - 1);
                break;
            }
            word = (word + 1) % occupied_.size();
            mask = occupied_[word];
        }
    }
    base_ += static_cast<Tick>(steps) * kWidth;
    // The window moved forward; overflow events may have entered it. They
    // are all beyond the old horizon, hence strictly beyond the bucket
    // just found (the window advances at most kNumBuckets-1 buckets), so
    // the minimum stays where we found it.
    pullOverflow();
}

EventQueue::Bucket &
EventQueue::currentBucket()
{
    sim_assert(size_ > 0);
    Bucket *b = &buckets_[bucketIndexOf(base_)];
    if (!b->live()) {
        if (size_ == overflow_.size()) {
            // Only far-future events remain: jump the window to the
            // earliest.
            base_ = overflow_.front().when & ~(kWidth - 1);
            pullOverflow();
            b = &buckets_[bucketIndexOf(base_)];
        }
        if (!b->live()) {
            advanceToOccupied();
            b = &buckets_[bucketIndexOf(base_)];
        }
    }
    // Lazy sort: keys appended since the last pop/peek join the order
    // here, once, instead of a min-scan on every pop.
    if (b->sorted < b->keys.size()) {
        auto first = b->keys.begin() + b->cursor;
        auto last = b->keys.end();
        const std::ptrdiff_t n = last - first;
        if (n <= 8) {
            // Buckets typically hold a handful of keys; a branch-light
            // insertion sort beats the std::sort call for these.
            for (std::ptrdiff_t i = 1; i < n; ++i) {
                Bucket::Key k = first[i];
                std::ptrdiff_t j = i;
                for (; j > 0 && EarlierKey{}(k, first[j - 1]); --j)
                    first[j] = first[j - 1];
                first[j] = k;
            }
        } else {
            std::sort(first, last, EarlierKey{});
        }
        b->sorted = static_cast<std::uint32_t>(b->keys.size());
    }
    sim_assert(b->live());
    return *b;
}

Tick
EventQueue::headWhen()
{
    Bucket &b = currentBucket();
    return b.keys[b.cursor].when;
}

void
EventQueue::step()
{
    Bucket &b = currentBucket();
    const Bucket::Key k = b.keys[b.cursor++];
    now_ = k.when;
    curSeq_ = k.seq;
    ++executed_;
    --size_;
    if (!b.live()) {
        // Drained: recycle the bucket *before* the callback runs — it
        // may immediately schedule back into it.
        b.clear();
        const std::size_t idx = bucketIndexOf(base_);
        occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        if (occupied_[idx >> 6] == 0)
            summary_ &= ~(std::uint64_t{1} << (idx >> 6));
    }
    // Callbacks run in place: the slot arena is pointer-stable, so a
    // callback scheduling new events (growing the arena) cannot move the
    // closure out from under itself. The follower chain is walked after
    // the event's own callback — scheduleCoalesced() guarantees nothing
    // can append to an event once it starts executing.
    Slot &s = slot(k.slot);
    s.cb();
    std::uint32_t fi = s.head;
    freeSlot(k.slot);
    while (fi != kNilSlot) {
        Slot &f = slot(fi);
        const std::uint32_t next = f.head;
        f.cb();
        --pendingFollowers_;
        freeSlot(fi);
        fi = next;
    }
}

Tick
EventQueue::run()
{
    while (size_ > 0) {
        Bucket &b = currentBucket();
        while (true) {
            const Bucket::Key k = b.keys[b.cursor++];
            now_ = k.when;
            curSeq_ = k.seq;
            ++executed_;
            --size_;
            const bool drained = !b.live();
            if (drained) {
                b.clear();
                const std::size_t idx = bucketIndexOf(base_);
                occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
                if (occupied_[idx >> 6] == 0)
                    summary_ &= ~(std::uint64_t{1} << (idx >> 6));
            }
            Slot &s = slot(k.slot);
            s.cb();
            std::uint32_t fi = s.head;
            freeSlot(k.slot);
            while (fi != kNilSlot) {
                Slot &f = slot(fi);
                const std::uint32_t next = f.head;
                f.cb();
                --pendingFollowers_;
                freeSlot(fi);
                fi = next;
            }
            if (stopRequested_) {
                stopRequested_ = false;
                return now_;
            }
            if (drained || b.sorted < b.keys.size() || !b.live())
                break;
        }
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (size_ > 0 && headWhen() <= limit)
        step();
    if (now_ < limit && size_ == 0)
        return now_;
    now_ = limit > now_ ? limit : now_;
    return now_;
}

void
EventQueue::reset()
{
    for (auto &bucket : buckets_)
        bucket.clear();
    std::fill(occupied_.begin(), occupied_.end(), 0);
    summary_ = 0;
    overflow_.clear();
    chunks_.clear(); // slot destructors release any heap captures
    chunk0_ = nullptr;
    freeHead_ = kNilSlot;
    slotCount_ = 0;
    base_ = 0;
    size_ = 0;
    pendingFollowers_ = 0;
    now_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
    coalesced_ = 0;
    curSeq_ = ~std::uint64_t{0};
    lastSlot_ = kNilSlot;
    coalSlot_ = kNilSlot;
    stopRequested_ = false;
}

} // namespace mondrian
