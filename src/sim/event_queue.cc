#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace mondrian {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    events_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::step()
{
    sim_assert(!events_.empty());
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately after.
    Event ev = std::move(const_cast<Event &>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
}

Tick
EventQueue::run()
{
    while (!events_.empty())
        step();
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!events_.empty() && events_.top().when <= limit)
        step();
    if (now_ < limit && events_.empty())
        return now_;
    now_ = limit > now_ ? limit : now_;
    return now_;
}

void
EventQueue::reset()
{
    while (!events_.empty())
        events_.pop();
    now_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
}

} // namespace mondrian
