/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-order event queue drives every timing model in the
 * simulator. Events are arbitrary callables scheduled at an absolute tick;
 * ties are broken by insertion order so simulation is deterministic.
 */

#ifndef MONDRIAN_SIM_EVENT_QUEUE_HH
#define MONDRIAN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** Priority queue of timed callbacks; the heart of the simulator. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Run until the queue drains. Returns the final tick. */
    Tick run();

    /** Run until the queue drains or @p limit is reached. */
    Tick runUntil(Tick limit);

    /** Pop and execute a single event. Queue must not be empty. */
    void step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * A clock domain converts between cycles and ticks for a component running
 * at a fixed frequency (CPU 2 GHz, NMP cores 1 GHz, DRAM 625 MHz, ...).
 */
class ClockDomain
{
  public:
    /** @param period_ticks clock period in ticks (ps). */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks) {}

    Tick period() const { return period_; }

    /** Ticks covering @p cycles whole cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * period_; }

    /** Whole cycles elapsed by @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

    /** Next clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % period_;
        return rem == 0 ? t : t + (period_ - rem);
    }

  private:
    Tick period_;
};

} // namespace mondrian

#endif // MONDRIAN_SIM_EVENT_QUEUE_HH
