/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-order event queue drives every timing model in the
 * simulator. Events are arbitrary callables scheduled at an absolute tick;
 * ties are broken by insertion order so simulation is deterministic.
 *
 * The queue is built for the simulator's dominant pattern — millions of
 * near-now events (bank timings, bus bursts, completion callbacks landing
 * nanoseconds ahead) — and is allocation-free on that path:
 *
 *  - callbacks are InlineFunction, not std::function, so captures up to
 *    Callback::kInlineBytes live inside the event (no per-event new);
 *  - callbacks live in a chunked, pointer-stable slot arena and execute
 *    in place — an event is never moved or copied between its schedule
 *    and its invocation;
 *  - a calendar (bucketed) front-end covers a sliding window of
 *    kHorizon ticks in kWidth-tick buckets; a bucket holds only compact
 *    24-byte ordering keys, sorted lazily when the window reaches it, so
 *    popping is a cursor increment — no per-pop min-scan, no tombstones,
 *    no compaction;
 *  - an occupancy bitmap with a one-word summary lets the window skip
 *    runs of empty buckets in one rotate-and-count (see setSkipAhead);
 *  - the rare far-future event goes to an overflow binary heap and
 *    migrates into the calendar when the window reaches it;
 *  - same-tick completion bursts coalesce: scheduleCoalesced() appends a
 *    callback to the previously scheduled event as a "follower" when
 *    that is provably order-preserving, eliding the queue insert and pop
 *    entirely (see the member comment for the exactness condition).
 *
 * Ordering is exactly (tick, insertion seq) — the same total order as the
 * previous std::function/priority_queue kernel, so replacing the queue
 * changes no simulation result, only its speed.
 */

#ifndef MONDRIAN_SIM_EVENT_QUEUE_HH
#define MONDRIAN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "sim/inline_function.hh"

namespace mondrian {

/** Calendar queue of timed callbacks; the heart of the simulator. */
class EventQueue
{
  public:
    /**
     * Inline capacity covers every simulator hot-path closure (the widest
     * is a vault completion carrying a MemRequest::Callback, 64 bytes);
     * larger captures still work but heap-allocate.
     */
    using Callback = InlineFunction<void(), 64>;
    static_assert(kInlineFunctionPacked<Callback>,
                  "padding crept ahead of the event callback buffer "
                  "(PR 8 regression class: nested captures spill to heap)");

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when (>= now). The
     * callable is constructed directly in queue storage — no intermediate
     * Callback object, no per-event allocation for inline-sized captures.
     */
    template <typename F>
    void
    schedule(Tick when, F &&cb)
    {
        scheduleGetSlot(when, std::forward<F>(cb));
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F &&cb)
    {
        schedule(now_ + delta, std::forward<F>(cb));
    }

    /**
     * Schedule @p cb at @p when, coalescing it into the most recently
     * scheduled event when that is provably order-preserving. A coalesced
     * callback becomes a "follower" of that event: it runs inside the
     * event's pop, after the event's own callback (and its earlier
     * followers), and costs no queue insert, no ordering key and no pop.
     *
     * The exactness condition, and why the result is output-identical:
     * events order by (tick, insertion seq). Callback @p cb may join
     * event E only while (a) it targets E's tick, (b) no schedule() call
     * has happened since E was scheduled, and (c) E has not yet executed.
     * Under (b), no event in the system holds a sequence number between
     * E and the would-be position of @p cb, so running @p cb inside E's
     * pop — after E and E's earlier followers — occupies exactly the
     * global-order slot direct scheduling would have given it. Any
     * intervening schedule() breaks (b) and the callback schedules
     * normally, itself becoming the next coalescing candidate. (c) is
     * decided by comparing E's (tick, seq) against the event currently
     * executing: the queue pops in global order, so E is still pending
     * iff its key is lexicographically greater.
     *
     * The simulator routes completion traffic here: bursts of requests
     * acknowledged at one tick (permutable-store acks, network responses
     * released together) each land while the previous ack is the last
     * scheduled event, and collapse into one real event. With coalescing
     * toggled off this is plain schedule().
     */
    template <typename F>
    void
    scheduleCoalesced(Tick when, F &&cb)
    {
        if (coalesceOn_ && coalSlot_ != kNilSlot && when == coalWhen_ &&
            nextSeq_ == coalStamp_ &&
            (when > now_ || (when == now_ && coalSeq_ > curSeq_))) {
            appendFollower(std::forward<F>(cb));
            return;
        }
        const std::uint32_t si = scheduleGetSlot(when, std::forward<F>(cb));
        if (coalesceOn_) {
            // si is kNilSlot when place() overflowed to the heap; heap
            // events have no slot to chain followers onto.
            coalSlot_ = si;
            coalWhen_ = when;
            coalSeq_ = nextSeq_ - 1;
            coalStamp_ = nextSeq_;
        }
    }

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events (followers count toward it). */
    std::size_t pending() const { return size_ + pendingFollowers_; }

    /** Events popped from the queue since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Callbacks absorbed as followers (queue events *not* created). */
    std::uint64_t coalesced() const { return coalesced_; }

    /**
     * Total schedule() calls since construction — the coalescing
     * ordering stamp (see scheduleCoalesced()). One sequence number is
     * consumed per schedule() call, so this is also nextSeq_.
     */
    std::uint64_t scheduleCalls() const { return nextSeq_; }

    /**
     * Toggle the empty-bucket skip-ahead in the calendar scan. A pure
     * search-strategy switch: on, the scan consults a one-word summary of
     * the occupancy bitmap and jumps straight to the next occupied word;
     * off, it walks the bitmap word by word. Identical results either
     * way — the toggle exists so the A/B ablation axis can price it.
     */
    void setSkipAhead(bool on) { skipAhead_ = on; }

    /**
     * Toggle completion coalescing; off, scheduleCoalesced() degrades to
     * schedule(). Output-identical either way (see scheduleCoalesced());
     * executed() + coalesced() is invariant under the toggle.
     */
    void setCoalescing(bool on) { coalesceOn_ = on; }

    /** Run until the queue drains or stop is requested. Returns the
     *  final tick. */
    Tick run();

    /**
     * Ask run() to return after the event currently executing completes,
     * leaving any remaining events pending. Used by callback-driven phase
     * execution (Machine::beginPhase) to stop the loop at phase
     * quiescence exactly where the old drain-to-empty loop stopped — the
     * trailing events (e.g. permutable flush completions) stay queued
     * for the next phase, as before. The request is consumed by the
     * run() that observes it.
     */
    void requestStop() { stopRequested_ = true; }

    /** Run until the queue drains or @p limit is reached. */
    Tick runUntil(Tick limit);

    /**
     * Execute the next event. Queue must not be empty. The callback runs
     * in place (no event is moved or copied); destroying or resetting the
     * queue from inside a callback is not supported.
     */
    void step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    /** Far-future event as stored in the overflow heap. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        Event(Tick w, std::uint64_t s, Callback c)
            : when(w), seq(s), cb(std::move(c))
        {}
    };

    /** No-slot sentinel (slot indices are arena offsets). */
    static constexpr std::uint32_t kNilSlot = ~std::uint32_t{0};

    /**
     * One arena slot: the callback plus the follower chain built by
     * scheduleCoalesced(). For an event slot, head/tail delimit its
     * follower list; for a follower slot, head links the next follower.
     * Slots are pointer-stable (chunked arena), so callbacks execute in
     * place even when their own execution schedules and grows the arena.
     */
    struct alignas(64) Slot
    {
        Callback cb;
        std::uint32_t head = kNilSlot;
        std::uint32_t tail = kNilSlot;
    };

    static constexpr unsigned kChunkBits = 9; ///< 512 slots per chunk
    static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkBits;

    /**
     * One calendar bucket: compact ordering keys only (the callbacks live
     * in the slot arena). keys[0..cursor) are executed; keys[cursor..)
     * are pending, and sorted by (when, seq) once `sorted` catches up to
     * keys.size() — the sort runs lazily when the window pops or peeks
     * the bucket, so schedule() is a plain append.
     */
    struct Bucket
    {
        struct Key
        {
            Tick when;
            std::uint64_t seq;
            std::uint32_t slot;
        };
        std::vector<Key> keys;
        std::uint32_t cursor = 0; ///< executed prefix
        std::uint32_t sorted = 0; ///< keys[0..sorted) in (when,seq) order

        bool live() const { return cursor < keys.size(); }
        void
        clear()
        {
            keys.clear();
            cursor = 0;
            sorted = 0;
        }
    };

    // Geometry tuned on the paper-grid profile: buckets narrow enough
    // that each holds a handful of events, a window wide enough
    // (~0.5 us) that DRAM/NoC latencies land inside the calendar.
    static constexpr unsigned kBucketBits = 12; ///< 4096 buckets
    static constexpr std::size_t kNumBuckets = std::size_t{1} << kBucketBits;
    static constexpr unsigned kWidthBits = 7; ///< 128 ticks (ps) each
    static constexpr Tick kWidth = Tick{1} << kWidthBits;
    /** Window the calendar covers ahead of base_ (~0.5 us). */
    static constexpr Tick kHorizon = kWidth * kNumBuckets;

    // Invariant (scripts/check_invariants.sh): bucket count and window
    // width are powers of two — bucketIndexOf masks instead of dividing,
    // and the occupancy bitmap's word math assumes it.
    static_assert(kNumBuckets > 0 && (kNumBuckets & (kNumBuckets - 1)) == 0,
                  "calendar bucket count must be a power of two");
    static_assert(kWidth > 0 && (kWidth & (kWidth - 1)) == 0,
                  "calendar bucket width must be a power of two");

    static std::size_t bucketIndexOf(Tick t)
    {
        return static_cast<std::size_t>(t >> kWidthBits) & (kNumBuckets - 1);
    }

    [[noreturn]] void schedulePastPanic(Tick when) const;

    Slot &
    slot(std::uint32_t i)
    {
        // Nearly every live slot index is small (LIFO freelist reuse), so
        // the first chunk gets a cached direct pointer.
        if (i < kChunkSlots) [[likely]]
            return chunk0_[i];
        return chunks_[i >> kChunkBits][i & (kChunkSlots - 1)];
    }

    /**
     * Allocate an arena slot holding @p cb. Free slots chain through
     * their `head` field (intrusive LIFO freelist), so allocation is two
     * loads and release is two stores — no side structure.
     */
    template <typename F>
    std::uint32_t
    allocSlot(F &&cb)
    {
        std::uint32_t i = freeHead_;
        if (i != kNilSlot) {
            freeHead_ = slot(i).head;
        } else {
            if ((slotCount_ & (kChunkSlots - 1)) == 0)
                growArena();
            i = static_cast<std::uint32_t>(slotCount_++);
        }
        Slot &s = slot(i);
        // Fresh callables construct straight into the slot; an already
        // wrapped Callback (overflow-heap migration) move-assigns.
        if constexpr (std::is_same_v<std::decay_t<F>, Callback>)
            s.cb = std::forward<F>(cb);
        else
            s.cb.emplace(std::forward<F>(cb));
        // head doubles as the freelist link; reset it. tail needs no
        // reset: appendFollower writes it before the first read.
        s.head = kNilSlot;
        return i;
    }

    void growArena();

    /** schedule(), returning the arena slot of the new event. */
    template <typename F>
    std::uint32_t
    scheduleGetSlot(Tick when, F &&cb)
    {
        if (when < now_)
            schedulePastPanic(when);
        if (size_ == 0)
            base_ = when & ~(kWidth - 1); // re-anchor after idle gaps
        const std::uint32_t si =
            place(when, nextSeq_++, std::forward<F>(cb));
        ++size_;
        return si;
    }

    /**
     * File an event into its bucket or the overflow heap. @return the
     * arena slot holding the callback, or kNilSlot for overflow events
     * (which have no slot to chain followers onto).
     */
    template <typename F>
    std::uint32_t
    place(Tick when, std::uint64_t seq, F &&cb)
    {
        // Everything at or below the current bucket's range joins the
        // current bucket: the lazy sort handles mixed ticks within a
        // bucket, and this keeps "the global minimum lives in the
        // current bucket" true even when the window has been advanced
        // past a just-scheduled tick (possible after runUntil peeks
        // ahead).
        std::size_t idx;
        if (when < base_ + kWidth) {
            idx = bucketIndexOf(base_);
        } else {
            std::uint64_t rel =
                (when >> kWidthBits) - (base_ >> kWidthBits);
            if (rel >= kNumBuckets) {
                placeOverflow(when, seq, std::forward<F>(cb));
                return kNilSlot;
            }
            idx = bucketIndexOf(when);
        }
        std::uint32_t si = allocSlot(std::forward<F>(cb));
        buckets_[idx].keys.push_back(Bucket::Key{when, seq, si});
        if (occupied_[idx >> 6] == 0)
            summary_ |= std::uint64_t{1} << (idx >> 6);
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        return si;
    }

    /** Chain @p cb onto the current coalescing candidate's slot. */
    template <typename F>
    void
    appendFollower(F &&cb)
    {
        std::uint32_t fi = allocSlot(std::forward<F>(cb));
        Slot &head = slot(coalSlot_);
        if (head.head == kNilSlot)
            head.head = fi;
        else
            slot(head.tail).head = fi;
        head.tail = fi;
        ++coalesced_;
        ++pendingFollowers_;
    }

    void placeOverflow(Tick when, std::uint64_t seq, Callback &&cb);

    /** Migrate overflow events that now fall inside the window. */
    void pullOverflow();

    /** Advance base_ to the first bucket with live events. */
    void advanceToOccupied();

    /**
     * Position the window on the bucket holding the minimal pending
     * event and return it, tail-sorted so keys[cursor] is that minimum.
     * Queue must not be empty.
     */
    Bucket &currentBucket();

    /** Release slot @p i back to the freelist. */
    void
    freeSlot(std::uint32_t i)
    {
        // The stale callback stays in the slot; allocSlot's emplace
        // destroys it on reuse, and reset()/teardown destroy the rest.
        slot(i).head = freeHead_;
        freeHead_ = i;
    }

    /** Tick of the next event; queue must not be empty. */
    Tick headWhen();

    // The two-level occupancy index: occupied_ has one bit per bucket,
    // summary_ one bit per occupied_ word. 4096 buckets / 64 buckets per
    // word = exactly one summary word, which is what makes the skip-ahead
    // scan a single rotate-and-count.
    static_assert(kNumBuckets / 64 <= 64,
                  "summary_ holds one bit per occupancy word");

    std::vector<Bucket> buckets_;         ///< kNumBuckets rings
    std::vector<std::uint64_t> occupied_; ///< bitmap over buckets
    std::uint64_t summary_ = 0; ///< bit w set iff occupied_[w] != 0
    std::vector<Event> overflow_;         ///< min-heap beyond horizon
    /** Pointer-stable callback arena; keys reference slots by index. */
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    Slot *chunk0_ = nullptr; ///< chunks_[0].get() (hot-path shortcut)
    std::uint32_t freeHead_ = kNilSlot; ///< intrusive slot freelist
    std::size_t slotCount_ = 0; ///< arena high-water mark
    Tick base_ = 0;           ///< start tick of the current bucket
    std::size_t size_ = 0;      ///< total pending events
    std::size_t pendingFollowers_ = 0; ///< coalesced, not yet run
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t coalesced_ = 0;
    /** Seq of the event currently (or last) executed — with now_, the
     *  "has the coalescing candidate already run" comparison point. */
    std::uint64_t curSeq_ = ~std::uint64_t{0};
    /** Arena slot of the event place() most recently filed (kNilSlot
     *  after an overflow placement). */
    std::uint32_t lastSlot_ = kNilSlot;
    // Coalescing candidate: the last scheduleCoalesced()-scheduled event.
    std::uint32_t coalSlot_ = kNilSlot;
    Tick coalWhen_ = 0;
    std::uint64_t coalSeq_ = 0;
    std::uint64_t coalStamp_ = 0;
    bool stopRequested_ = false;
    bool skipAhead_ = true;
    bool coalesceOn_ = false;
};

/**
 * A clock domain converts between cycles and ticks for a component running
 * at a fixed frequency (CPU 2 GHz, NMP cores 1 GHz, DRAM 625 MHz, ...).
 */
class ClockDomain
{
  public:
    /** @param period_ticks clock period in ticks (ps). */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks) {}

    Tick period() const { return period_; }

    /** Ticks covering @p cycles whole cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * period_; }

    /** Whole cycles elapsed by @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

    /** Next clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % period_;
        return rem == 0 ? t : t + (period_ - rem);
    }

  private:
    Tick period_;
};

} // namespace mondrian

#endif // MONDRIAN_SIM_EVENT_QUEUE_HH
