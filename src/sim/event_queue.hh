/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-order event queue drives every timing model in the
 * simulator. Events are arbitrary callables scheduled at an absolute tick;
 * ties are broken by insertion order so simulation is deterministic.
 *
 * The queue is built for the simulator's dominant pattern — millions of
 * near-now events (bank timings, bus bursts, completion callbacks landing
 * nanoseconds ahead) — and is allocation-free on that path:
 *
 *  - callbacks are InlineFunction, not std::function, so captures up to
 *    Callback::kInlineBytes live inside the event (no per-event new);
 *  - a calendar (bucketed) front-end covers a sliding window of
 *    kHorizon ticks in kWidth-tick buckets; events land in their bucket
 *    with one push_back and pop with a short scan of the (small) bucket;
 *  - the rare far-future event goes to an overflow binary heap and
 *    migrates into the calendar when the window reaches it.
 *
 * Ordering is exactly (tick, insertion seq) — the same total order as the
 * previous std::function/priority_queue kernel, so replacing the queue
 * changes no simulation result, only its speed.
 */

#ifndef MONDRIAN_SIM_EVENT_QUEUE_HH
#define MONDRIAN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/inline_function.hh"

namespace mondrian {

/** Calendar queue of timed callbacks; the heart of the simulator. */
class EventQueue
{
  public:
    /**
     * Inline capacity covers every simulator hot-path closure (the widest
     * is a vault completion carrying a MemRequest::Callback, 64 bytes);
     * larger captures still work but heap-allocate.
     */
    using Callback = InlineFunction<void(), 64>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when (>= now). The
     * callable is constructed directly in queue storage — no intermediate
     * Callback object, no per-event allocation for inline-sized captures.
     */
    template <typename F>
    void
    schedule(Tick when, F &&cb)
    {
        if (when < now_)
            schedulePastPanic(when);
        if (size_ == 0)
            base_ = when & ~(kWidth - 1); // re-anchor after idle gaps
        place(when, nextSeq_++, std::forward<F>(cb));
        ++size_;
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F &&cb)
    {
        schedule(now_ + delta, std::forward<F>(cb));
    }

    /** True when no events remain. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Run until the queue drains or stop is requested. Returns the
     *  final tick. */
    Tick run();

    /**
     * Ask run() to return after the event currently executing completes,
     * leaving any remaining events pending. Used by callback-driven phase
     * execution (Machine::beginPhase) to stop the loop at phase
     * quiescence exactly where the old drain-to-empty loop stopped — the
     * trailing events (e.g. permutable flush completions) stay queued
     * for the next phase, as before. The request is consumed by the
     * run() that observes it.
     */
    void requestStop() { stopRequested_ = true; }

    /** Run until the queue drains or @p limit is reached. */
    Tick runUntil(Tick limit);

    /**
     * Execute the next event. Queue must not be empty. The callback runs
     * in place (no event is moved or copied); destroying or resetting the
     * queue from inside a callback is not supported.
     */
    void step();

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    /** Far-future event as stored in the overflow heap. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        Event(Tick w, std::uint64_t s, Callback c)
            : when(w), seq(s), cb(std::move(c))
        {}
    };

    /**
     * One calendar bucket: ordering keys and callbacks in parallel
     * arrays, so the per-step min-scan touches only the compact 16-byte
     * keys, never the fat callback storage.
     */
    struct Bucket
    {
        struct Key
        {
            Tick when;
            std::uint64_t seq;
        };
        std::vector<Key> keys;
        std::vector<Callback> cbs;
        std::uint32_t consumed = 0; ///< executed entries awaiting cleanup

        bool empty() const { return keys.empty(); }
        void
        clear()
        {
            keys.clear();
            cbs.clear();
            consumed = 0;
        }
    };

    // Geometry tuned on the paper-grid profile: buckets narrow enough
    // that the min-scan sees a handful of events, a window wide enough
    // (~0.5 us) that DRAM/NoC latencies land inside the calendar.
    static constexpr unsigned kBucketBits = 12; ///< 4096 buckets
    static constexpr std::size_t kNumBuckets = std::size_t{1} << kBucketBits;
    static constexpr unsigned kWidthBits = 7; ///< 128 ticks (ps) each
    static constexpr Tick kWidth = Tick{1} << kWidthBits;
    /** Window the calendar covers ahead of base_ (~0.5 us). */
    static constexpr Tick kHorizon = kWidth * kNumBuckets;

    static std::size_t bucketIndexOf(Tick t)
    {
        return static_cast<std::size_t>(t >> kWidthBits) & (kNumBuckets - 1);
    }

    [[noreturn]] void schedulePastPanic(Tick when) const;

    /** File an event into its bucket or the overflow heap. */
    template <typename F>
    void
    place(Tick when, std::uint64_t seq, F &&cb)
    {
        // Everything at or below the current bucket's range joins the
        // current bucket: the pop-side min-scan handles mixed ticks
        // within a bucket, and this keeps "the global minimum lives in
        // the current bucket" true even when the window has been
        // advanced past a just-scheduled tick (possible after runUntil
        // peeks ahead).
        std::size_t idx;
        if (when < base_ + kWidth) {
            idx = bucketIndexOf(base_);
        } else {
            std::uint64_t rel =
                (when >> kWidthBits) - (base_ >> kWidthBits);
            if (rel >= kNumBuckets) {
                placeOverflow(when, seq, std::forward<F>(cb));
                return;
            }
            idx = bucketIndexOf(when);
        }
        Bucket &b = buckets_[idx];
        b.keys.push_back(Bucket::Key{when, seq});
        b.cbs.emplace_back(std::forward<F>(cb));
        occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++nearCount_;
    }

    void placeOverflow(Tick when, std::uint64_t seq, Callback &&cb);

    /** Migrate overflow events that now fall inside the window. */
    void pullOverflow();

    /** Marks an executed event awaiting bucket cleanup. */
    static constexpr std::uint64_t kConsumed = ~std::uint64_t{0};

    /** Advance base_ to the first bucket with live events (nearCount_>0). */
    void advanceToOccupied();

    /**
     * Position the window on the bucket holding the minimal live event
     * and return its index within that bucket. Queue must not be empty.
     */
    std::size_t findMin();

    /** Tick of the next event; queue must not be empty. */
    Tick headWhen();

    std::vector<Bucket> buckets_;         ///< kNumBuckets rings
    std::vector<std::uint64_t> occupied_; ///< bitmap over buckets
    std::vector<Event> overflow_;         ///< min-heap beyond horizon
    Tick base_ = 0;           ///< start tick of the current bucket
    std::size_t nearCount_ = 0; ///< live events currently in buckets
    std::size_t size_ = 0;      ///< total pending events
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;
};

/**
 * A clock domain converts between cycles and ticks for a component running
 * at a fixed frequency (CPU 2 GHz, NMP cores 1 GHz, DRAM 625 MHz, ...).
 */
class ClockDomain
{
  public:
    /** @param period_ticks clock period in ticks (ps). */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks) {}

    Tick period() const { return period_; }

    /** Ticks covering @p cycles whole cycles. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * period_; }

    /** Whole cycles elapsed by @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

    /** Next clock edge at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        Tick rem = t % period_;
        return rem == 0 ? t : t + (period_ - rem);
    }

  private:
    Tick period_;
};

} // namespace mondrian

#endif // MONDRIAN_SIM_EVENT_QUEUE_HH
