/**
 * @file
 * Small-buffer-optimized move-only callable wrapper for hot paths.
 *
 * The simulator schedules millions of events and memory-completion
 * callbacks per run; wrapping each in a std::function costs a heap
 * allocation whenever the capture exceeds the library's tiny SSO buffer.
 * InlineFunction stores the callable inline in a caller-chosen buffer, so
 * the common capture sizes (a `this` pointer, a few PODs, a nested
 * completion callback) never touch the allocator. Oversized or
 * over-aligned callables fall back to the heap transparently, so the type
 * is always correct and only ever *faster* than std::function.
 *
 * Differences from std::function, all deliberate:
 *  - move-only (so it can carry move-only captures, which the event and
 *    completion paths use to hand callbacks through without copies);
 *  - no target()/target_type() RTTI;
 *  - calling an empty InlineFunction is undefined (callers check bool()).
 */

#ifndef MONDRIAN_SIM_INLINE_FUNCTION_HH
#define MONDRIAN_SIM_INLINE_FUNCTION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace mondrian {

namespace detail {
// Relaxed is enough: the tally is a diagnostic, never a synchronization
// edge. Hot paths never touch it — only the (supposedly cold) fallback
// branches below increment it.
inline std::atomic<std::uint64_t> inline_function_heap_fallbacks{0};
} // namespace detail

/**
 * Process-wide count of InlineFunction constructions that spilled to the
 * heap because the callable exceeded its inline buffer. The simulator's
 * hot paths are contractually allocation-free, so for any smoke run this
 * must stay zero; Machine::heapFallbacks() exposes the per-run delta and
 * tests assert it (scripts/check_invariants.sh backs the same rule at
 * compile time).
 */
inline std::uint64_t
inlineFunctionHeapFallbacks()
{
    return detail::inline_function_heap_fallbacks.load(
        std::memory_order_relaxed);
}

template <typename Signature, std::size_t InlineBytes>
class InlineFunction; // primary template; only the partial spec exists

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes>
{
  public:
    static constexpr std::size_t kInlineBytes = InlineBytes;

    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f) // NOLINT: implicit, like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            detail::inline_function_heap_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
            ::new (static_cast<void *>(buf_))
                (Fn *)(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    /**
     * Destroy the current target (if any) and construct a new one in
     * place — the storage-reuse path: event-queue slots recycle their
     * InlineFunction without routing the new callable through a
     * temporary object and a relocate call.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    void
    emplace(F &&f)
    {
        destroy();
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            detail::inline_function_heap_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
            ::new (static_cast<void *>(buf_))
                (Fn *)(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t)
    {
        destroy();
        ops_ = nullptr;
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { destroy(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke. Undefined when empty (callers test operator bool first). */
    R
    operator()(Args... args) const
    {
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

    /** Whether a callable of type @p Fn is stored without allocating. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t);
    }

  private:
    /**
     * Per-callable-type vtable (invoke / relocate / destroy). The
     * relocate and destroy slots are null when the stored callable is
     * trivially copyable / trivially destructible: the common simulator
     * capture (a couple of pointers and PODs) then moves with one
     * inline memcpy and destructs for free, with no indirect call on
     * either path.
     */
    struct Ops
    {
        R (*invoke)(unsigned char *, Args &&...);
        /** Move-construct into @p dst from @p src, destroying @p src.
         *  Null means "memcpy the whole inline buffer". */
        void (*relocate)(unsigned char *dst, unsigned char *src);
        /** Null means trivially destructible: nothing to run. */
        void (*destroy)(unsigned char *);
    };

    template <typename Fn>
    static Fn *
    inlinePtr(unsigned char *buf)
    {
        return std::launder(reinterpret_cast<Fn *>(buf));
    }

    template <typename Fn>
    static Fn *&
    heapPtr(unsigned char *buf)
    {
        return *std::launder(reinterpret_cast<Fn **>(buf));
    }

    template <typename Fn>
    static R
    invokeInline(unsigned char *buf, Args &&...args)
    {
        return (*inlinePtr<Fn>(buf))(std::forward<Args>(args)...);
    }

    template <typename Fn>
    static void
    relocateInline(unsigned char *dst, unsigned char *src)
    {
        Fn *from = inlinePtr<Fn>(src);
        ::new (static_cast<void *>(dst)) Fn(std::move(*from));
        from->~Fn();
    }

    template <typename Fn>
    static void
    destroyInline(unsigned char *buf)
    {
        inlinePtr<Fn>(buf)->~Fn();
    }

    template <typename Fn>
    static R
    invokeHeap(unsigned char *buf, Args &&...args)
    {
        return (*heapPtr<Fn>(buf))(std::forward<Args>(args)...);
    }

    template <typename Fn>
    static void
    destroyHeap(unsigned char *buf)
    {
        delete heapPtr<Fn>(buf);
    }

    template <typename Fn>
    static constexpr Ops inlineOps{
        &invokeInline<Fn>,
        &relocateInline<Fn>,
        std::is_trivially_destructible_v<Fn> ? nullptr
                                             : &destroyInline<Fn>};

    // Heap targets relocate by moving the owning pointer, which the
    // buffer memcpy fallback already does — relocate stays null.
    template <typename Fn>
    static constexpr Ops heapOps{&invokeHeap<Fn>, nullptr,
                                 &destroyHeap<Fn>};

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            if (ops_->relocate)
                ops_->relocate(buf_, other.buf_);
            else
                __builtin_memcpy(buf_, other.buf_, InlineBytes);
            other.ops_ = nullptr;
        }
    }

    void
    destroy()
    {
        if (ops_ && ops_->destroy)
            ops_->destroy(buf_);
    }

    // The buffer leads so no padding precedes it: with a 16-byte-aligned
    // buffer, an ops_-first layout would insert 8 dead bytes and round
    // sizeof up a whole alignment quantum — enough to push a nested
    // callback capture past its outer buffer and onto the heap.
    alignas(std::max_align_t) mutable unsigned char buf_[InlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * Compile-time layout pin: true iff InlineFunction type @p IF has its
 * minimal packed size — the inline buffer immediately followed by the ops
 * pointer, rounded up to the buffer alignment. Any padding inserted ahead
 * of the buffer (the PR 8 regression: 8 dead bytes that pushed nested
 * captures to the heap) grows sizeof past this bound. static_assert it
 * next to every hot-path Callback alias.
 */
template <typename IF>
inline constexpr bool kInlineFunctionPacked =
    sizeof(IF) ==
    (IF::kInlineBytes + sizeof(void *) + alignof(std::max_align_t) - 1) /
        alignof(std::max_align_t) * alignof(std::max_align_t);

} // namespace mondrian

#endif // MONDRIAN_SIM_INLINE_FUNCTION_HH
