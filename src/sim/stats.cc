#include "sim/stats.hh"

namespace mondrian {

std::uint64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::uint64_t
StatRegistry::sumBySuffix(const std::string &suffix) const
{
    std::uint64_t sum = 0;
    for (const auto &[name, ctr] : counters_) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            sum += ctr.value();
        }
    }
    return sum;
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (const auto &[name, ctr] : counters_) {
        if (name.compare(0, prefix.size(), prefix) == 0)
            sum += ctr.value();
    }
    return sum;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, ctr] : counters_)
        out.emplace_back(name, ctr.value());
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
}

} // namespace mondrian
