#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

namespace mondrian {

void
LatencySample::sortSamples() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
LatencySample::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (Tick t : samples_)
        sum += static_cast<double>(t);
    return sum / static_cast<double>(samples_.size());
}

Tick
LatencySample::max() const
{
    if (samples_.empty())
        return 0;
    sortSamples();
    return samples_.back();
}

Tick
LatencySample::percentile(double p) const
{
    if (samples_.empty())
        return 0;
    sortSamples();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
    rank = std::clamp<std::size_t>(rank, 1, samples_.size());
    return samples_[rank - 1];
}

std::uint64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::uint64_t
StatRegistry::sumBySuffix(const std::string &suffix) const
{
    std::uint64_t sum = 0;
    for (const auto &[name, ctr] : counters_) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            sum += ctr.value();
        }
    }
    return sum;
}

std::uint64_t
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (const auto &[name, ctr] : counters_) {
        if (name.compare(0, prefix.size(), prefix) == 0)
            sum += ctr.value();
    }
    return sum;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, ctr] : counters_)
        out.emplace_back(name, ctr.value());
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
}

} // namespace mondrian
