/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register counters under hierarchical names
 * ("vault03.rowActivations"); reports and the energy model read them back.
 */

#ifndef MONDRIAN_SIM_STATS_HH
#define MONDRIAN_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mondrian {

/** A single accumulating statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Accumulates duration samples (ticks) and answers order statistics.
 *
 * Percentiles use the nearest-rank definition — rank = ceil(p/100 * N),
 * the value at 1-based index `rank` of the sorted samples — so every
 * reported percentile is an actual observed sample, and the result is
 * exactly reproducible from the sample list (no interpolation).
 */
class LatencySample
{
  public:
    void
    record(Tick t)
    {
        samples_.push_back(t);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }

    /** Mean over all samples; 0 when empty. */
    double mean() const;

    /** Largest sample; 0 when empty. */
    Tick max() const;

    /** Nearest-rank percentile for @p p in (0, 100]; 0 when empty. */
    Tick percentile(double p) const;

  private:
    void sortSamples() const;

    mutable std::vector<Tick> samples_;
    mutable bool sorted_ = true;
};

/** Registry mapping hierarchical names to counters. */
class StatRegistry
{
  public:
    /** Get (creating if needed) the counter called @p name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Read a counter's value; 0 if absent. */
    std::uint64_t value(const std::string &name) const;

    /** Sum of all counters whose name ends with @p suffix. */
    std::uint64_t sumBySuffix(const std::string &suffix) const;

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumByPrefix(const std::string &prefix) const;

    /** All (name, value) pairs in name order. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

    /** Reset every counter to zero. */
    void resetAll();

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace mondrian

#endif // MONDRIAN_SIM_STATS_HH
