#include "sim/thread_pool.hh"

#include <algorithm>

namespace mondrian {

ThreadPool::ThreadPool(unsigned threads)
{
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (workers_.empty()) {
        job(); // inline mode
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

unsigned
ThreadPool::resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(1u, hw);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace mondrian
