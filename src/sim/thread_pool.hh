/**
 * @file
 * Fixed-size thread pool for campaign execution.
 *
 * Simulation campaigns are embarrassingly parallel: every job builds its
 * own MemoryPool, Machine and workload, so jobs share no mutable state.
 * The pool therefore needs no futures or work stealing — just a queue of
 * closures drained by N worker threads, plus a wait() barrier.
 *
 * With threads == 0 the pool runs jobs inline on the submitting thread
 * (useful for --jobs 1 determinism baselines and for debugging under a
 * single-threaded sanitizer).
 */

#ifndef MONDRIAN_SIM_THREAD_POOL_HH
#define MONDRIAN_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mondrian {

/** N worker threads draining a FIFO of closures. */
class ThreadPool
{
  public:
    /** @p threads worker threads; 0 = run jobs inline in submit(). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not be called concurrently with wait(). */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw, the
     * first captured exception is rethrown here (remaining jobs still ran
     * to completion or failure; only the first error is kept).
     */
    void wait();

    unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

    /** Threads to use for @p requested jobs ("0" = hardware concurrency). */
    static unsigned resolveThreads(unsigned requested);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    unsigned inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
    std::exception_ptr firstError_; ///< first job exception, for wait()
};

} // namespace mondrian

#endif // MONDRIAN_SIM_THREAD_POOL_HH
