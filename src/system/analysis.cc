#include "system/analysis.hh"

#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "common/json.hh"
#include "system/report.hh"

namespace mondrian {

namespace {

/** Baseline run per comparison group (the ReportModel twin of
 *  baselineIndex()). */
std::map<std::string, const ReportRun *>
baselineRuns(const ReportModel &m, const std::string &baseline)
{
    std::map<std::string, const ReportRun *> base;
    for (const ReportRun &r : m.runs) {
        if (r.system == baseline)
            base[r.groupKey()] = &r;
    }
    return base;
}

/** Per-(row label, system) comparison accumulator. */
struct CellAccum
{
    std::size_t total = 0;
    std::vector<double> speedups;
    std::vector<double> perfPerWatt;
};

/**
 * Shared accumulation for sensitivity tables and the recomputed summary:
 * group non-baseline runs by @p rowLabel, pair each with the baseline
 * run of its comparison group, and reduce every group to geomean cells.
 * Row order is first appearance in the runs (grid order); cell order is
 * the report's system order.
 */
std::vector<SensitivityRow>
accumulateRows(const ReportModel &m, const std::string &baseline,
               const std::function<std::string(const ReportRun &)> &rowLabel)
{
    auto base = baselineRuns(m, baseline);

    std::vector<std::string> row_order;
    std::map<std::string, std::map<std::string, CellAccum>> cells;
    for (const ReportRun &r : m.runs) {
        if (r.system == baseline)
            continue;
        std::string row = rowLabel(r);
        if (cells.find(row) == cells.end())
            row_order.push_back(row);
        CellAccum &acc = cells[row][r.system];
        ++acc.total;
        auto it = base.find(r.groupKey());
        if (it == base.end())
            continue; // unpaired: counted in total only
        acc.speedups.push_back(overallSpeedup(it->second->result, r.result));
        acc.perfPerWatt.push_back(
            efficiencyImprovement(it->second->result, r.result));
    }

    std::vector<SensitivityRow> rows;
    rows.reserve(row_order.size());
    for (const std::string &label : row_order) {
        SensitivityRow row;
        row.value = label;
        for (const std::string &sys : m.systems) {
            auto it = cells[label].find(sys);
            if (it == cells[label].end())
                continue;
            const CellAccum &acc = it->second;
            SensitivityCell cell;
            cell.system = sys;
            cell.total = acc.total;
            cell.paired = acc.speedups.size();
            GeomeanStats sp = geomeanStats(acc.speedups);
            GeomeanStats pw = geomeanStats(acc.perfPerWatt);
            cell.geomeanSpeedup = sp.value;
            cell.geomeanPerfPerWatt = pw.value;
            cell.droppedSpeedups = sp.dropped;
            cell.droppedPerfPerWatt = pw.dropped;
            row.cells.push_back(std::move(cell));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/** |a-b| / max(|a|,|b|); 0 when both sides are exactly 0. */
double
relErr(double a, double b)
{
    double d = std::fabs(a - b);
    if (d == 0.0)
        return 0.0;
    double m = std::max(std::fabs(a), std::fabs(b));
    return d / m;
}

/** Diff accumulation helpers bound to one (where, rtol, out) context. */
struct FieldDiffer
{
    const std::string &where;
    double rtol;
    ReportDiff &out;

    void
    approx(const char *field, double a, double b) const
    {
        double e = relErr(a, b);
        if (e > rtol)
            out.numeric.push_back({where, field, a, b, e});
    }

    /** Exact-integer fields (functional outputs, run counts): any
     *  difference is a mismatch regardless of magnitude. */
    void
    exact(const char *field, std::uint64_t a, std::uint64_t b) const
    {
        if (a != b) {
            out.numeric.push_back({where, field, static_cast<double>(a),
                                   static_cast<double>(b),
                                   relErr(static_cast<double>(a),
                                          static_cast<double>(b))});
        }
    }
};

void
diffPhaseList(const std::string &where, const std::string &prefix,
              const std::vector<PhaseResult> &a,
              const std::vector<PhaseResult> &b, double rtol,
              ReportDiff &out)
{
    if (a.size() != b.size()) {
        out.structural.push_back(where + ": " + std::to_string(a.size()) +
                                 " " + prefix + " vs " +
                                 std::to_string(b.size()));
        return;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const PhaseResult &pa = a[i];
        const PhaseResult &pb = b[i];
        const std::string tag = prefix + "[" + std::to_string(i) + "]";
        if (pa.name != pb.name || pa.kind != pb.kind) {
            out.structural.push_back(where + ": " + tag + " is " + pa.name +
                                     " vs " + pb.name);
            continue;
        }
        FieldDiffer pd{where, rtol, out};
        const std::string time_f = tag + ".time_ps";
        const std::string bytes_f = tag + ".dram_bytes";
        const std::string act_f = tag + ".activations";
        pd.approx(time_f.c_str(), static_cast<double>(pa.time),
                  static_cast<double>(pb.time));
        pd.approx(bytes_f.c_str(), static_cast<double>(pa.dramBytes),
                  static_cast<double>(pb.dramBytes));
        pd.approx(act_f.c_str(), static_cast<double>(pa.activations),
                  static_cast<double>(pb.activations));
    }
}

void
diffEnergy(const FieldDiffer &d, const std::string &tag,
           const EnergyBreakdown &a, const EnergyBreakdown &b)
{
    d.approx((tag + ".dram_dynamic").c_str(), a.dramDynamic,
             b.dramDynamic);
    d.approx((tag + ".dram_static").c_str(), a.dramStatic, b.dramStatic);
    d.approx((tag + ".cores").c_str(), a.cores, b.cores);
    d.approx((tag + ".network").c_str(), a.network, b.network);
}

void
diffRunResult(const std::string &where, const RunResult &a,
              const RunResult &b, double rtol, ReportDiff &out)
{
    FieldDiffer d{where, rtol, out};
    d.approx("total_time_ps", static_cast<double>(a.totalTime),
             static_cast<double>(b.totalTime));
    d.approx("partition_time_ps", static_cast<double>(a.partitionTime),
             static_cast<double>(b.partitionTime));
    d.approx("probe_time_ps", static_cast<double>(a.probeTime),
             static_cast<double>(b.probeTime));
    d.approx("partition_vault_bw_gbps", a.partitionVaultBWGBps,
             b.partitionVaultBWGBps);
    d.approx("probe_vault_bw_gbps", a.probeVaultBWGBps, b.probeVaultBWGBps);
    // Exact by the output-identity contract: the perf transforms must
    // not move a single event, so any drift here is a real bug.
    d.exact("sim_events", a.simEvents, b.simEvents);
    diffEnergy(d, "energy_j", a.energy, b.energy);
    d.exact("functional.scan_matches", a.scanMatches, b.scanMatches);
    d.exact("functional.join_matches", a.joinMatches, b.joinMatches);
    d.exact("functional.group_count", a.groupCount, b.groupCount);
    d.exact("functional.agg_checksum", a.aggChecksum, b.aggChecksum);

    if (a.served.valid != b.served.valid) {
        out.structural.push_back(
            where + ": served metrics " +
            (a.served.valid ? "only in first" : "only in second"));
    } else if (a.served.valid) {
        // Admission accounting is deterministic — any difference is a
        // mismatch; rates, latencies and energy compare at tolerance.
        d.exact("served.offered", a.served.offered, b.served.offered);
        d.exact("served.admitted", a.served.admitted, b.served.admitted);
        d.exact("served.rejected", a.served.rejected, b.served.rejected);
        d.exact("served.completed", a.served.completed,
                b.served.completed);
        d.exact("served.measured_completed", a.served.measuredCompleted,
                b.served.measuredCompleted);
        d.approx("served.window_ps", static_cast<double>(a.served.window),
                 static_cast<double>(b.served.window));
        d.approx("served.sustained_qps", a.served.sustainedQps,
                 b.served.sustainedQps);
        d.approx("served.latency_p50_ps",
                 static_cast<double>(a.served.latencyP50),
                 static_cast<double>(b.served.latencyP50));
        d.approx("served.latency_p95_ps",
                 static_cast<double>(a.served.latencyP95),
                 static_cast<double>(b.served.latencyP95));
        d.approx("served.latency_p99_ps",
                 static_cast<double>(a.served.latencyP99),
                 static_cast<double>(b.served.latencyP99));
        d.approx("served.latency_max_ps",
                 static_cast<double>(a.served.latencyMax),
                 static_cast<double>(b.served.latencyMax));
        d.approx("served.latency_mean_ps", a.served.latencyMeanPs,
                 b.served.latencyMeanPs);
        d.approx("served.energy_per_query_j", a.served.energyPerQueryJ,
                 b.served.energyPerQueryJ);
    }

    if (a.stages.size() != b.stages.size()) {
        out.structural.push_back(where + ": " +
                                 std::to_string(a.stages.size()) +
                                 " stages vs " +
                                 std::to_string(b.stages.size()));
    } else {
        for (std::size_t i = 0; i < a.stages.size(); ++i) {
            const StageResult &sa = a.stages[i];
            const StageResult &sb = b.stages[i];
            const std::string tag = "stages[" + std::to_string(i) + "]";
            if (sa.stage != sb.stage || sa.op != sb.op) {
                out.structural.push_back(
                    where + ": " + tag + " is " + sa.stage + "(" + sa.op +
                    ") vs " + sb.stage + "(" + sb.op + ")");
                continue;
            }
            FieldDiffer sd{where, rtol, out};
            sd.approx((tag + ".total_time_ps").c_str(),
                      static_cast<double>(sa.totalTime),
                      static_cast<double>(sb.totalTime));
            sd.approx((tag + ".partition_time_ps").c_str(),
                      static_cast<double>(sa.partitionTime),
                      static_cast<double>(sb.partitionTime));
            sd.approx((tag + ".probe_time_ps").c_str(),
                      static_cast<double>(sa.probeTime),
                      static_cast<double>(sb.probeTime));
            sd.approx((tag + ".partition_vault_bw_gbps").c_str(),
                      sa.partitionVaultBWGBps, sb.partitionVaultBWGBps);
            sd.approx((tag + ".probe_vault_bw_gbps").c_str(),
                      sa.probeVaultBWGBps, sb.probeVaultBWGBps);
            diffEnergy(sd, tag + ".energy_j", sa.energy, sb.energy);
            sd.exact((tag + ".input_tuples").c_str(), sa.inputTuples,
                     sb.inputTuples);
            sd.exact((tag + ".output_tuples").c_str(), sa.outputTuples,
                     sb.outputTuples);
            sd.exact((tag + ".scan_matches").c_str(), sa.scanMatches,
                     sb.scanMatches);
            sd.exact((tag + ".join_matches").c_str(), sa.joinMatches,
                     sb.joinMatches);
            sd.exact((tag + ".group_count").c_str(), sa.groupCount,
                     sb.groupCount);
            sd.exact((tag + ".agg_checksum").c_str(), sa.aggChecksum,
                     sb.aggChecksum);
            diffPhaseList(where, tag + ".phases", sa.phases, sb.phases,
                          rtol, out);
        }
    }

    diffPhaseList(where, "phases", a.phases, b.phases, rtol, out);
}

} // namespace

const char *
axisName(Axis axis)
{
    switch (axis) {
      case Axis::kGeometry: return "geometry";
      case Axis::kExec: return "exec";
      case Axis::kZipfTheta: return "zipf-theta";
      case Axis::kScale: return "scale";
      case Axis::kScenario: return "scenario";
      case Axis::kSeed: return "seed";
      case Axis::kTraffic: return "traffic";
    }
    return "?";
}

bool
axisFromName(const std::string &name, Axis &out)
{
    // Legacy alias: v1/v2 reports called the scenario axis "op".
    if (name == "op") {
        out = Axis::kScenario;
        return true;
    }
    for (Axis axis : allAxes()) {
        if (name == axisName(axis)) {
            out = axis;
            return true;
        }
    }
    return false;
}

const std::vector<Axis> &
allAxes()
{
    static const std::vector<Axis> axes = {
        Axis::kGeometry, Axis::kExec,     Axis::kZipfTheta, Axis::kScale,
        Axis::kScenario, Axis::kSeed,     Axis::kTraffic};
    return axes;
}

std::string
axisValueLabel(const ReportRun &run, Axis axis)
{
    switch (axis) {
      case Axis::kGeometry: return run.geometry;
      case Axis::kExec: return run.exec;
      case Axis::kZipfTheta: return JsonWriter::doubleString(run.zipfTheta);
      case Axis::kScale: return "2^" + std::to_string(run.log2Tuples);
      case Axis::kScenario: return run.scenario;
      case Axis::kSeed: return std::to_string(run.seed);
      case Axis::kTraffic: return run.traffic;
    }
    return "?";
}

SensitivityTable
sensitivity(const ReportModel &m, Axis axis, const std::string &baseline)
{
    SensitivityTable t;
    t.axis = axis;
    t.baseline = baseline;
    t.rows = accumulateRows(m, baseline, [axis](const ReportRun &r) {
        return axisValueLabel(r, axis);
    });
    return t;
}

std::string
renderSensitivityMarkdown(const SensitivityTable &t)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({axisName(t.axis), "system", "paired",
                    "geomean speedup", "geomean perf/W"});
    for (const SensitivityRow &row : t.rows) {
        for (const SensitivityCell &c : row.cells) {
            rows.push_back(
                {row.value, c.system, pairedCountLabel(c.paired, c.total),
                 geomeanCellLabel(c.geomeanSpeedup, c.droppedSpeedups, 4),
                 geomeanCellLabel(c.geomeanPerfPerWatt,
                                  c.droppedPerfPerWatt, 4)});
        }
    }
    return renderMarkdownTable(rows);
}

std::string
sensitivityCsv(const SensitivityTable &t)
{
    std::string out = "axis,value,system,paired,total,dropped_speedups,"
                      "dropped_perf_per_watt,geomean_speedup,"
                      "geomean_perf_per_watt\n";
    for (const SensitivityRow &row : t.rows) {
        for (const SensitivityCell &c : row.cells) {
            out += std::string(axisName(t.axis)) + "," + row.value + "," +
                   c.system + "," + std::to_string(c.paired) + "," +
                   std::to_string(c.total) + "," +
                   std::to_string(c.droppedSpeedups) + "," +
                   std::to_string(c.droppedPerfPerWatt) + ",";
            JsonWriter::appendDouble(out, c.geomeanSpeedup);
            out += ",";
            JsonWriter::appendDouble(out, c.geomeanPerfPerWatt);
            out += "\n";
        }
    }
    return out;
}

AnalysisSummary
recomputeSummary(const ReportModel &m, const std::string &baseline)
{
    AnalysisSummary s;
    s.baseline = baseline;
    auto rows = accumulateRows(
        m, baseline, [](const ReportRun &) { return std::string("all"); });
    if (!rows.empty())
        s.systems = std::move(rows.front().cells);
    return s;
}

std::string
renderSummaryMarkdown(const AnalysisSummary &s)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"system", "paired runs", "geomean speedup",
                    "geomean perf/W"});
    for (const SensitivityCell &c : s.systems) {
        rows.push_back(
            {c.system, pairedCountLabel(c.paired, c.total),
             geomeanCellLabel(c.geomeanSpeedup, c.droppedSpeedups, 4),
             geomeanCellLabel(c.geomeanPerfPerWatt, c.droppedPerfPerWatt,
                              4)});
    }
    return renderMarkdownTable(rows);
}

ReportDiff
diffReports(const ReportModel &a, const ReportModel &b, double rtol)
{
    ReportDiff out;
    if (a.baseline != b.baseline) {
        out.structural.push_back("baseline: '" + a.baseline + "' vs '" +
                                 b.baseline + "'");
    }

    // Group both sides by point key so duplicates — a report with two
    // runs at one grid point is corrupt — surface structurally instead
    // of being silently collapsed by a last-wins map.
    std::map<std::string, std::vector<const ReportRun *>> a_runs, b_runs;
    for (const ReportRun &r : a.runs)
        a_runs[r.pointKey()].push_back(&r);
    for (const ReportRun &r : b.runs)
        b_runs[r.pointKey()].push_back(&r);
    auto noteDuplicates = [&out](const auto &by_key, const char *which) {
        for (const auto &[key, runs] : by_key) {
            if (runs.size() > 1) {
                out.structural.push_back(
                    "run " + key + " appears " +
                    std::to_string(runs.size()) + " times in " + which +
                    " report");
            }
        }
    };
    noteDuplicates(a_runs, "first");
    noteDuplicates(b_runs, "second");

    for (const auto &[key, runs] : a_runs) {
        auto it = b_runs.find(key);
        if (it == b_runs.end()) {
            out.structural.push_back("run " + key +
                                     " only in first report");
            continue;
        }
        diffRunResult("run " + key, runs.front()->result,
                      it->second.front()->result, rtol, out);
    }
    for (const auto &[key, runs] : b_runs) {
        if (a_runs.find(key) == a_runs.end()) {
            out.structural.push_back("run " + key +
                                     " only in second report");
        }
    }

    std::map<std::string, const ReportSummaryRow *> b_summary;
    for (const ReportSummaryRow &row : b.summaries)
        b_summary[row.system] = &row;
    std::set<std::string> summary_matched;
    for (const ReportSummaryRow &row : a.summaries) {
        auto it = b_summary.find(row.system);
        if (it == b_summary.end()) {
            out.structural.push_back("summary " + row.system +
                                     " only in first report");
            continue;
        }
        summary_matched.insert(row.system);
        const std::string where = "summary " + row.system;
        FieldDiffer d{where, rtol, out};
        d.exact("runs", row.runs, it->second->runs);
        d.approx("geomean_speedup", row.geomeanSpeedup,
                 it->second->geomeanSpeedup);
        d.approx("geomean_perf_per_watt", row.geomeanPerfPerWatt,
                 it->second->geomeanPerfPerWatt);
    }
    for (const ReportSummaryRow &row : b.summaries) {
        if (summary_matched.find(row.system) == summary_matched.end()) {
            out.structural.push_back("summary " + row.system +
                                     " only in second report");
        }
    }
    return out;
}

std::string
renderDiff(const ReportDiff &d)
{
    std::string out;
    for (const std::string &s : d.structural)
        out += s + "\n";
    for (const DiffEntry &e : d.numeric) {
        out += e.where + " " + e.field + ": ";
        JsonWriter::appendDouble(out, e.a);
        out += " vs ";
        JsonWriter::appendDouble(out, e.b);
        out += " (rel err ";
        JsonWriter::appendDouble(out, e.relErr);
        out += ")\n";
    }
    return out;
}

std::string
runsCsv(const ReportModel &m, const std::string &baseline)
{
    auto base = baselineRuns(m, baseline);

    bool any_served = false;
    for (const ReportRun &r : m.runs)
        any_served = any_served || r.result.served.valid;

    std::string out =
        "index,system,scenario,log2_tuples,seed,geometry,exec,zipf_theta,"
        "total_time_ps,partition_time_ps,probe_time_ps,seconds,"
        "sim_events,energy_total_j,energy_dram_dynamic_j,energy_dram_static_j,"
        "energy_cores_j,energy_network_j,partition_vault_bw_gbps,"
        "probe_vault_bw_gbps,speedup_vs_baseline,perf_per_watt_vs_baseline";
    if (any_served) {
        out += ",traffic,served_offered,served_admitted,served_rejected,"
               "served_completed,served_measured_completed,"
               "served_window_ps,served_sustained_qps,"
               "served_latency_p50_ps,served_latency_p95_ps,"
               "served_latency_p99_ps,served_latency_max_ps,"
               "served_latency_mean_ps,served_energy_per_query_j";
    }
    out += "\n";
    for (const ReportRun &r : m.runs) {
        out += std::to_string(r.index) + "," + r.system + "," +
               r.scenario + "," + std::to_string(r.log2Tuples) + "," +
               std::to_string(r.seed) + "," + r.geometry + "," + r.exec +
               ",";
        JsonWriter::appendDouble(out, r.zipfTheta);
        out += "," + std::to_string(r.result.totalTime) + "," +
               std::to_string(r.result.partitionTime) + "," +
               std::to_string(r.result.probeTime) + ",";
        JsonWriter::appendDouble(out, r.result.seconds());
        out += "," + std::to_string(r.result.simEvents) + ",";
        JsonWriter::appendDouble(out, r.result.energy.total());
        out += ",";
        JsonWriter::appendDouble(out, r.result.energy.dramDynamic);
        out += ",";
        JsonWriter::appendDouble(out, r.result.energy.dramStatic);
        out += ",";
        JsonWriter::appendDouble(out, r.result.energy.cores);
        out += ",";
        JsonWriter::appendDouble(out, r.result.energy.network);
        out += ",";
        JsonWriter::appendDouble(out, r.result.partitionVaultBWGBps);
        out += ",";
        JsonWriter::appendDouble(out, r.result.probeVaultBWGBps);
        // Pairing columns stay empty for the baseline's own runs, for
        // unpaired grid points, and when no baseline was requested.
        std::string speedup, ppw;
        if (!baseline.empty() && r.system != baseline) {
            auto it = base.find(r.groupKey());
            if (it != base.end()) {
                JsonWriter::appendDouble(
                    speedup, overallSpeedup(it->second->result, r.result));
                JsonWriter::appendDouble(
                    ppw, efficiencyImprovement(it->second->result,
                                               r.result));
            }
        }
        out += "," + speedup + "," + ppw;
        if (any_served) {
            const ServedMetrics &s = r.result.served;
            out += "," + r.traffic;
            if (s.valid) {
                out += "," + std::to_string(s.offered) + "," +
                       std::to_string(s.admitted) + "," +
                       std::to_string(s.rejected) + "," +
                       std::to_string(s.completed) + "," +
                       std::to_string(s.measuredCompleted) + "," +
                       std::to_string(s.window) + ",";
                JsonWriter::appendDouble(out, s.sustainedQps);
                out += "," + std::to_string(s.latencyP50) + "," +
                       std::to_string(s.latencyP95) + "," +
                       std::to_string(s.latencyP99) + "," +
                       std::to_string(s.latencyMax) + ",";
                JsonWriter::appendDouble(out, s.latencyMeanPs);
                out += ",";
                JsonWriter::appendDouble(out, s.energyPerQueryJ);
            } else {
                out += ",,,,,,,,,,,,,";
            }
        }
        out += "\n";
    }
    return out;
}

std::string
renderServedMarkdown(const ReportModel &m)
{
    std::vector<std::vector<std::string>> table;
    table.push_back({"system", "scenario", "traffic", "offered", "adm",
                     "rej", "done", "QPS", "p50 us", "p95 us", "p99 us",
                     "J/query"});
    auto us = [](Tick ps) {
        std::string s;
        JsonWriter::appendDouble(s, static_cast<double>(ps) / 1e6);
        return s;
    };
    for (const ReportRun &r : m.runs) {
        const ServedMetrics &s = r.result.served;
        if (!s.valid)
            continue;
        std::string qps, epq;
        JsonWriter::appendDouble(qps, s.sustainedQps);
        JsonWriter::appendDouble(epq, s.energyPerQueryJ);
        table.push_back({r.system, r.scenario, r.traffic,
                         std::to_string(s.offered),
                         std::to_string(s.admitted),
                         std::to_string(s.rejected),
                         std::to_string(s.completed), qps,
                         us(s.latencyP50), us(s.latencyP95),
                         us(s.latencyP99), epq});
    }
    if (table.size() == 1)
        return "";
    return renderMarkdownTable(table);
}

std::string
stagesCsv(const ReportModel &m)
{
    std::string out =
        "index,system,scenario,log2_tuples,seed,geometry,exec,zipf_theta,"
        "stage_index,stage,stage_op,input,total_time_ps,partition_time_ps,"
        "probe_time_ps,energy_total_j,partition_vault_bw_gbps,"
        "probe_vault_bw_gbps,input_tuples,output_tuples,scan_matches,"
        "join_matches,group_count,agg_checksum\n";
    for (const ReportRun &r : m.runs) {
        for (std::size_t i = 0; i < r.result.stages.size(); ++i) {
            const StageResult &s = r.result.stages[i];
            out += std::to_string(r.index) + "," + r.system + "," +
                   r.scenario + "," + std::to_string(r.log2Tuples) + "," +
                   std::to_string(r.seed) + "," + r.geometry + "," +
                   r.exec + ",";
            JsonWriter::appendDouble(out, r.zipfTheta);
            out += "," + std::to_string(i) + "," + s.stage + "," + s.op +
                   "," + s.input + "," + std::to_string(s.totalTime) +
                   "," + std::to_string(s.partitionTime) + "," +
                   std::to_string(s.probeTime) + ",";
            JsonWriter::appendDouble(out, s.energy.total());
            out += ",";
            JsonWriter::appendDouble(out, s.partitionVaultBWGBps);
            out += ",";
            JsonWriter::appendDouble(out, s.probeVaultBWGBps);
            out += "," + std::to_string(s.inputTuples) + "," +
                   std::to_string(s.outputTuples) + "," +
                   std::to_string(s.scanMatches) + "," +
                   std::to_string(s.joinMatches) + "," +
                   std::to_string(s.groupCount) + "," +
                   std::to_string(s.aggChecksum) + "\n";
        }
    }
    return out;
}

std::vector<StageBreakdownRow>
stageBreakdown(const ReportModel &m, const std::string &baseline)
{
    auto base = baselineRuns(m, baseline);

    // Row identity: (scenario, stage index). Cells accumulate per
    // system, pairing each run's stage with the baseline run's stage at
    // the same grid point (same index — scenarios fix the stage list).
    std::vector<StageBreakdownRow> rows;
    auto rowFor = [&rows](const ReportRun &r,
                          std::size_t stage_idx) -> StageBreakdownRow & {
        for (StageBreakdownRow &row : rows) {
            if (row.scenario == r.scenario && row.stageIndex == stage_idx)
                return row;
        }
        StageBreakdownRow row;
        row.scenario = r.scenario;
        row.stageIndex = stage_idx;
        row.stage = r.result.stages[stage_idx].stage;
        row.op = r.result.stages[stage_idx].op;
        rows.push_back(std::move(row));
        return rows.back();
    };

    std::map<std::pair<std::string, std::string>, CellAccum> accums;
    for (const ReportRun &r : m.runs) {
        if (r.system == baseline)
            continue;
        const ReportRun *b = nullptr;
        if (auto it = base.find(r.groupKey()); it != base.end())
            b = it->second;
        for (std::size_t i = 0; i < r.result.stages.size(); ++i) {
            rowFor(r, i); // establish row order by first appearance
            CellAccum &acc =
                accums[{r.scenario + "|" + std::to_string(i), r.system}];
            ++acc.total;
            if (!b || b->result.stages.size() != r.result.stages.size())
                continue;
            const StageResult &ss = r.result.stages[i];
            const StageResult &bs = b->result.stages[i];
            acc.speedups.push_back(
                ss.totalTime > 0
                    ? static_cast<double>(bs.totalTime) /
                          static_cast<double>(ss.totalTime)
                    : 0.0);
            acc.perfPerWatt.push_back(
                ss.energy.total() > 0.0
                    ? bs.energy.total() / ss.energy.total()
                    : 0.0);
        }
    }

    for (StageBreakdownRow &row : rows) {
        for (const std::string &sys : m.systems) {
            auto it = accums.find(
                {row.scenario + "|" + std::to_string(row.stageIndex), sys});
            if (it == accums.end())
                continue;
            const CellAccum &acc = it->second;
            SensitivityCell cell;
            cell.system = sys;
            cell.total = acc.total;
            cell.paired = acc.speedups.size();
            GeomeanStats sp = geomeanStats(acc.speedups);
            GeomeanStats pw = geomeanStats(acc.perfPerWatt);
            cell.geomeanSpeedup = sp.value;
            cell.geomeanPerfPerWatt = pw.value;
            cell.droppedSpeedups = sp.dropped;
            cell.droppedPerfPerWatt = pw.dropped;
            row.cells.push_back(std::move(cell));
        }
    }
    return rows;
}

std::string
renderStageBreakdownMarkdown(const std::vector<StageBreakdownRow> &rows)
{
    std::vector<std::vector<std::string>> table;
    table.push_back({"scenario", "stage", "op", "system", "paired",
                     "geomean speedup", "geomean perf/W"});
    for (const StageBreakdownRow &row : rows) {
        for (const SensitivityCell &c : row.cells) {
            table.push_back(
                {row.scenario,
                 std::to_string(row.stageIndex) + ":" + row.stage, row.op,
                 c.system, pairedCountLabel(c.paired, c.total),
                 geomeanCellLabel(c.geomeanSpeedup, c.droppedSpeedups, 4),
                 geomeanCellLabel(c.geomeanPerfPerWatt,
                                  c.droppedPerfPerWatt, 4)});
        }
    }
    return renderMarkdownTable(table);
}

} // namespace mondrian
