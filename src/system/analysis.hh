/**
 * @file
 * Axis-aware analysis of campaign reports.
 *
 * The campaign's headline claims are design-space comparisons — speedup
 * and perf/W of NMP variants across geometries, exec ablations, key skew,
 * scales and operators. This module turns a loaded ReportModel into:
 *
 *  - per-axis sensitivity tables: for each value of one axis, pair every
 *    run with the baseline run at the same point of all *other* axes and
 *    geomean the speedup / perf-per-watt per system — the table a
 *    "sweep theta, how does the edge erode?" question reads directly;
 *  - a recomputed summary with paired/total run counts and dropped
 *    (non-positive) comparison counts, the corrected form of the
 *    report's stored rollup;
 *  - a report-vs-report diff (per-run and per-summary) under a relative
 *    tolerance, for golden-report regression gates;
 *  - chart-ready CSV of runs and sensitivity tables.
 *
 * All numbers recompute from the runs themselves, never from the stored
 * summary block, so analysis inherits none of the summary's history.
 */

#ifndef MONDRIAN_SYSTEM_ANALYSIS_HH
#define MONDRIAN_SYSTEM_ANALYSIS_HH

#include <string>
#include <vector>

#include "system/report_model.hh"

namespace mondrian {

/** The sweepable report axes (system is the compared quantity, not an
 *  axis you hold fixed). */
enum class Axis
{
    kGeometry,
    kExec,
    kZipfTheta,
    kScale,
    kScenario,
    kSeed,
    kTraffic
};

/** Printable axis name ("geometry", "exec", "zipf-theta", ...). */
const char *axisName(Axis axis);

/** Parse an axis name as printed by axisName(). "op" is accepted as a
 *  legacy alias for "scenario" (the axis label of v1/v2 reports). */
bool axisFromName(const std::string &name, Axis &out);

/** All axes, in report order. */
const std::vector<Axis> &allAxes();

/** The label of @p run's value on @p axis (theta at 12-digit encoding). */
std::string axisValueLabel(const ReportRun &run, Axis axis);

/** One (axis value, system) cell of a sensitivity table. */
struct SensitivityCell
{
    std::string system;
    std::size_t paired = 0; ///< baseline-paired runs in the geomeans
    std::size_t total = 0;  ///< all runs of the system at this axis value
    /** Paired comparisons dropped from the speedup geomean because the
     *  speedup was non-positive (a broken run). */
    std::size_t droppedSpeedups = 0;
    /** Same, for the perf/W geomean. */
    std::size_t droppedPerfPerWatt = 0;
    double geomeanSpeedup = 0.0;
    double geomeanPerfPerWatt = 0.0;
};

/** One axis value: its label and one cell per non-baseline system. */
struct SensitivityRow
{
    std::string value;
    std::vector<SensitivityCell> cells;
};

/** Per-axis sensitivity of every system vs. the baseline. */
struct SensitivityTable
{
    Axis axis = Axis::kGeometry;
    std::string baseline;
    std::vector<SensitivityRow> rows; ///< axis values in report order
};

/**
 * Compute the sensitivity table of @p axis: rows are the axis values
 * present in the report, cells pair each system's runs at that value
 * with @p baseline runs in the same comparison group (all other axes
 * equal) and geomean the comparisons.
 */
SensitivityTable sensitivity(const ReportModel &m, Axis axis,
                             const std::string &baseline);

/** Markdown rendering of a sensitivity table. */
std::string renderSensitivityMarkdown(const SensitivityTable &t);

/** Chart-ready CSV of a sensitivity table (one line per cell). */
std::string sensitivityCsv(const SensitivityTable &t);

/** Summary recomputed from the runs: one cell per non-baseline system
 *  over the whole report. */
struct AnalysisSummary
{
    std::string baseline;
    std::vector<SensitivityCell> systems;
};

AnalysisSummary recomputeSummary(const ReportModel &m,
                                 const std::string &baseline);

/** Markdown rendering of a recomputed summary. */
std::string renderSummaryMarkdown(const AnalysisSummary &s);

/** One numeric mismatch between two reports. */
struct DiffEntry
{
    std::string where; ///< run point key or "summary <system>"
    std::string field; ///< e.g. "total_time_ps", "geomean_speedup"
    double a = 0.0;
    double b = 0.0;
    double relErr = 0.0;
};

/** Everything two reports disagree on. */
struct ReportDiff
{
    /** Non-numeric disagreements: runs present on one side only,
     *  mismatched phase structure, differing baselines. */
    std::vector<std::string> structural;
    /** Numeric fields whose relative error exceeds the tolerance. */
    std::vector<DiffEntry> numeric;

    bool empty() const { return structural.empty() && numeric.empty(); }
};

/**
 * Compare two reports field by field: runs are matched by point key
 * (every axis coordinate), then every timing/energy/functional/phase
 * metric and every stored summary geomean is compared at relative
 * tolerance @p rtol (|a-b| / max(|a|,|b|); exact-zero pairs match).
 */
ReportDiff diffReports(const ReportModel &a, const ReportModel &b,
                       double rtol);

/** Human-readable rendering of a diff ("" when empty). */
std::string renderDiff(const ReportDiff &d);

/**
 * Chart-ready CSV of every run: axis coordinates, headline metrics and —
 * when @p baseline is non-empty and the paired run exists — speedup and
 * perf/W vs. the baseline at the same grid point. When any run carries
 * served metrics (v4 traffic sweeps), a traffic column and the served
 * columns (sustained QPS, latency percentiles, energy per query) are
 * appended; they stay empty on runs without served metrics, and the CSV
 * of a servedless report is byte-identical to the pre-traffic layout.
 */
std::string runsCsv(const ReportModel &m, const std::string &baseline);

/**
 * Markdown table of every run with served metrics: traffic coordinates,
 * admission accounting, sustained QPS, latency percentiles and energy
 * per query. "" when the report has no served runs.
 */
std::string renderServedMarkdown(const ReportModel &m);

/**
 * Chart-ready CSV of every stage of every scenario run (one row per
 * (run, stage)): axis coordinates plus per-stage timing, energy, tuple
 * flow and functional columns. Runs without stage sub-results
 * (degenerate scenarios, v1/v2 reports) contribute no rows.
 */
std::string stagesCsv(const ReportModel &m);

/** One (scenario, stage) row of the per-stage breakdown: cells pair
 *  each system's stage with the baseline's same stage at the same grid
 *  point and geomean stage-time speedup / stage perf-per-watt. */
struct StageBreakdownRow
{
    std::string scenario;
    std::size_t stageIndex = 0;
    std::string stage; ///< stage token ("filter")
    std::string op;    ///< basic op it lowered onto
    std::vector<SensitivityCell> cells;
};

/**
 * Per-stage breakdown of every pipeline scenario in the report vs.
 * @p baseline. Empty when no run carries stage sub-results.
 */
std::vector<StageBreakdownRow> stageBreakdown(const ReportModel &m,
                                              const std::string &baseline);

/** Markdown rendering of the per-stage breakdown. */
std::string
renderStageBreakdownMarkdown(const std::vector<StageBreakdownRow> &rows);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_ANALYSIS_HH
