#include "system/campaign.hh"

#include <charconv>
#include <cstdio>
#include <map>
#include <mutex>
#include <tuple>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "sim/thread_pool.hh"
#include "system/report.hh"

namespace mondrian {

CampaignGrid
paperGrid(unsigned log2_tuples)
{
    CampaignGrid grid;
    grid.systems = allSystemKinds();
    grid.ops = allOpKinds();
    grid.log2Tuples = {log2_tuples};
    grid.seeds = {42};
    return grid;
}

CampaignGrid
smokeGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp, SystemKind::kMondrian};
    grid.ops = {OpKind::kScan, OpKind::kJoin};
    grid.log2Tuples = {10};
    grid.seeds = {42};
    return grid;
}

WorkloadConfig
CampaignJob::workload() const
{
    if (log2Tuples > 32)
        fatal("log2Tuples %u out of range (max 32)", log2Tuples);
    WorkloadConfig wl;
    wl.tuples = std::uint64_t{1} << log2Tuples;
    wl.seed = seed;
    wl.zipfTheta = zipfTheta;
    return wl;
}

std::vector<CampaignJob>
expandGrid(const CampaignGrid &grid)
{
    std::vector<CampaignJob> jobs;
    jobs.reserve(grid.size());
    for (std::uint64_t seed : grid.seeds) {
        for (unsigned log2 : grid.log2Tuples) {
            for (OpKind op : grid.ops) {
                for (SystemKind sys : grid.systems) {
                    CampaignJob job;
                    job.index = jobs.size();
                    job.system = sys;
                    job.op = op;
                    job.log2Tuples = log2;
                    job.seed = seed;
                    job.zipfTheta = grid.zipfTheta;
                    jobs.push_back(job);
                }
            }
        }
    }
    return jobs;
}

GridGroupKey
gridGroupKey(const CampaignRun &run)
{
    return {run.job.seed, run.job.log2Tuples, run.result.op};
}

std::map<GridGroupKey, const CampaignRun *>
baselineIndex(const std::vector<CampaignRun> &runs, SystemKind baseline)
{
    std::map<GridGroupKey, const CampaignRun *> base;
    for (const auto &r : runs) {
        if (r.job.system == baseline)
            base[gridGroupKey(r)] = &r;
    }
    return base;
}

namespace {

/** Baseline system for summaries: the first kCpu entry, if present. */
bool
findBaseline(const CampaignGrid &grid, SystemKind &out)
{
    for (SystemKind k : grid.systems) {
        if (k == SystemKind::kCpu) {
            out = k;
            return true;
        }
    }
    return false;
}

/** Compute per-system geomean rollups vs. the baseline. */
std::vector<SystemSummary>
summarize(const CampaignGrid &grid, const std::vector<CampaignRun> &runs,
          SystemKind baseline)
{
    auto base = baselineIndex(runs, baseline);

    std::vector<SystemSummary> out;
    for (SystemKind sys : grid.systems) {
        if (sys == baseline)
            continue;
        std::vector<double> speedups, perfPerWatt;
        std::size_t n = 0;
        for (const auto &r : runs) {
            if (r.job.system != sys)
                continue;
            ++n;
            auto it = base.find(gridGroupKey(r));
            if (it == base.end())
                continue;
            speedups.push_back(overallSpeedup(it->second->result, r.result));
            perfPerWatt.push_back(
                efficiencyImprovement(it->second->result, r.result));
        }
        SystemSummary s;
        s.system = systemKindName(sys);
        s.runs = n;
        s.geomeanSpeedup = geomean(speedups);
        s.geomeanPerfPerWatt = geomean(perfPerWatt);
        out.push_back(s);
    }
    return out;
}

} // namespace

std::string
ResumeCache::gridPointHash(const std::string &system, const std::string &op,
                           unsigned log2_tuples, std::uint64_t seed,
                           double zipf_theta)
{
    // Canonical identity string; 17 significant digits round-trip
    // doubles exactly, so equal thetas hash equally whether parsed from
    // a report or the CLI. std::to_chars keeps it locale-independent.
    char zbuf[40];
    auto zres = std::to_chars(zbuf, zbuf + sizeof(zbuf), zipf_theta,
                              std::chars_format::general, 17);
    std::string key = system + "|" + op + "|" +
                      std::to_string(log2_tuples) + "|" +
                      std::to_string(seed) + "|";
    key.append(zbuf, zres.ptr);

    std::uint64_t h = 1469598103934665603ull; // FNV-1a 64
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char out[17];
    std::snprintf(out, sizeof(out), "%016llx",
                  static_cast<unsigned long long>(h));
    return out;
}

const ResumeCache::Entry *
ResumeCache::find(const std::string &hash) const
{
    auto it = entries_.find(hash);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
ResumeCache::load(const std::string &json_text, std::string &error)
{
    entries_.clear();
    JsonValue doc;
    if (!parseJson(json_text, doc, error))
        return false;
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "mondrian-campaign-v1") {
        error = "not a mondrian-campaign-v1 report";
        return false;
    }
    double zipf = 0.0;
    if (const JsonValue *grid = doc.find("grid"))
        if (const JsonValue *z = grid->find("zipf_theta"))
            zipf = z->asDouble();
    const JsonValue *runs = doc.find("runs");
    if (!runs || !runs->isArray()) {
        error = "report has no runs array";
        return false;
    }
    for (const JsonValue &r : runs->items) {
        const JsonValue *sys = r.find("system");
        const JsonValue *op = r.find("op");
        const JsonValue *log2 = r.find("log2_tuples");
        const JsonValue *seed = r.find("seed");
        const JsonValue *result = r.find("result");
        if (!sys || !op || !log2 || !seed || !result)
            continue; // malformed entry: simply not cached
        Entry e;
        if (!readRunResult(*result, e.result))
            continue;
        e.rawResultJson =
            json_text.substr(result->begin, result->end - result->begin);
        entries_[gridPointHash(sys->asString(), op->asString(),
                               static_cast<unsigned>(log2->asU64()),
                               seed->asU64(), zipf)] = std::move(e);
    }
    return true;
}

CampaignReport
CampaignRunner::run(unsigned jobs)
{
    const std::vector<CampaignJob> grid_jobs = expandGrid(grid_);

    CampaignReport report;
    report.grid = grid_;
    report.runs.resize(grid_jobs.size());

    // Each worker writes only its own grid slot; the mutex guards the
    // progress callback, not the results.
    std::mutex progress_mutex;
    {
        // jobs == 1 -> inline execution on this thread (no workers).
        ThreadPool pool(jobs == 1 ? 0 : ThreadPool::resolveThreads(jobs));
        for (const CampaignJob &job : grid_jobs) {
            if (resume_) {
                const ResumeCache::Entry *hit =
                    resume_->find(ResumeCache::gridPointHash(
                        systemKindName(job.system), opKindName(job.op),
                        job.log2Tuples, job.seed, job.zipfTheta));
                if (hit) {
                    CampaignRun &slot = report.runs[job.index];
                    slot.job = job;
                    slot.result = hit->result;
                    slot.rawResultJson = hit->rawResultJson;
                    slot.cached = true;
                    report.cachedRuns++;
                    continue;
                }
            }
            pool.submit([this, job, &report, &progress_mutex] {
                Runner runner(job.workload());
                CampaignRun &slot = report.runs[job.index];
                slot.job = job;
                slot.result = runner.run(job.system, job.op);
                if (progress_) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    progress_(slot);
                }
            });
        }
        pool.wait();
    }

    SystemKind baseline;
    if (findBaseline(grid_, baseline)) {
        report.baseline = systemKindName(baseline);
        report.summaries = summarize(grid_, report.runs, baseline);
    }
    return report;
}

std::string
campaignReportJson(const CampaignReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.member("schema", "mondrian-campaign-v1");
    w.member("paper", "conf_isca_DrumondDMUPFGP17");

    w.key("grid").beginObject();
    w.key("systems").beginArray();
    for (SystemKind k : report.grid.systems)
        w.value(systemKindName(k));
    w.endArray();
    w.key("ops").beginArray();
    for (OpKind op : report.grid.ops)
        w.value(opKindName(op));
    w.endArray();
    w.key("log2_tuples").beginArray();
    for (unsigned l : report.grid.log2Tuples)
        w.value(std::uint64_t{l});
    w.endArray();
    w.key("seeds").beginArray();
    for (std::uint64_t s : report.grid.seeds)
        w.value(s);
    w.endArray();
    w.member("zipf_theta", report.grid.zipfTheta);
    w.member("total_runs", std::uint64_t{report.runs.size()});
    w.endObject();

    w.key("runs").beginArray();
    for (const auto &r : report.runs) {
        w.beginObject();
        w.member("index", std::uint64_t{r.job.index});
        w.member("system", systemKindName(r.job.system));
        w.member("op", opKindName(r.job.op));
        w.member("log2_tuples", std::uint64_t{r.job.log2Tuples});
        w.member("seed", r.job.seed);
        w.key("result");
        if (!r.rawResultJson.empty())
            w.rawValue(r.rawResultJson); // cached: splice byte-identically
        else
            writeRunResult(w, r.result);
        w.endObject();
    }
    w.endArray();

    w.key("summary").beginObject();
    w.member("baseline", report.baseline);
    w.key("systems").beginArray();
    for (const auto &s : report.summaries) {
        w.beginObject();
        w.member("system", s.system);
        w.member("runs", std::uint64_t{s.runs});
        w.member("geomean_speedup", s.geomeanSpeedup);
        w.member("geomean_perf_per_watt", s.geomeanPerfPerWatt);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
campaignSummaryTable(const CampaignReport &report)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"system", "runs", "geomean speedup", "geomean perf/W"});
    for (const auto &s : report.summaries) {
        rows.push_back({s.system, std::to_string(s.runs),
                        fmt(s.geomeanSpeedup, 2) + "x",
                        fmt(s.geomeanPerfPerWatt, 2) + "x"});
    }
    return renderTable(rows);
}

} // namespace mondrian
