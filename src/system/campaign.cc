#include "system/campaign.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "sim/thread_pool.hh"
#include "system/report.hh"

namespace mondrian {

namespace {

/**
 * Render a double exactly as report JSON does (JsonWriter's canonical
 * 12-significant-digit encoding). Keying through this encoding makes a
 * theta parsed back from a report hash identically to the CLI-parsed
 * original; thetas that differ only beyond the report precision are
 * already indistinguishable in the report itself.
 */
void
appendDouble(std::string &key, double v)
{
    JsonWriter::appendDouble(key, v);
}

} // namespace

CampaignGrid
paperGrid(unsigned log2_tuples)
{
    CampaignGrid grid;
    grid.systems = allSystemKinds();
    for (OpKind op : allOpKinds())
        grid.scenarios.push_back(degenerateScenario(op));
    grid.log2Tuples = {log2_tuples};
    grid.seeds = {42};
    return grid;
}

CampaignGrid
smokeGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan),
                      degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {10};
    grid.seeds = {42};
    return grid;
}

bool
gridHasPipelines(const CampaignGrid &grid)
{
    for (const Scenario &sc : grid.scenarios) {
        if (!sc.degenerate())
            return true;
    }
    return false;
}

bool
gridHasTraffic(const CampaignGrid &grid)
{
    for (const TrafficSpec &t : grid.traffics) {
        if (!t.degenerate())
            return true;
    }
    return false;
}

bool
validateGrid(const CampaignGrid &grid, std::string &error)
{
    if (grid.systems.empty()) {
        error = "systems axis is empty";
        return false;
    }
    if (grid.scenarios.empty()) {
        error = "scenario axis is empty";
        return false;
    }
    std::set<std::string> scenario_names;
    for (const Scenario &sc : grid.scenarios) {
        if (sc.stages.empty()) {
            error = "scenario '" + sc.name + "' has no stages";
            return false;
        }
        if (!scenario_names.insert(sc.name).second) {
            error = "duplicate scenario '" + sc.name + "'";
            return false;
        }
    }
    if (grid.log2Tuples.empty()) {
        error = "log2-tuples axis is empty";
        return false;
    }
    if (grid.seeds.empty()) {
        error = "seeds axis is empty";
        return false;
    }
    if (grid.geometries.empty()) {
        error = "geometry axis is empty";
        return false;
    }
    if (grid.execOverrides.empty()) {
        error = "exec-ablation axis is empty";
        return false;
    }
    if (grid.zipfThetas.empty()) {
        error = "zipf-theta axis is empty";
        return false;
    }
    if (grid.traffics.empty()) {
        error = "traffic axis is empty";
        return false;
    }
    std::set<std::string> traffic_names;
    for (const TrafficSpec &t : grid.traffics) {
        std::string t_error = validateTrafficSpec(t);
        if (!t_error.empty()) {
            error = "invalid traffic point " + t.name() + ": " + t_error;
            return false;
        }
        if (!traffic_names.insert(t.name()).second) {
            error = "duplicate traffic point " + t.name();
            return false;
        }
    }
    for (unsigned l : grid.log2Tuples) {
        if (l > 32) {
            error = "log2-tuples " + std::to_string(l) + " out of range";
            return false;
        }
    }
    std::set<std::string> theta_names;
    for (double z : grid.zipfThetas) {
        if (!(z >= 0.0) || z >= 2.0) {
            error = "zipf theta must be in [0, 2)";
            return false;
        }
        // Thetas are labeled (and resume-keyed) at the report's 12-digit
        // encoding; values identical at that precision would share one
        // axis label and cache identity, so reject them as duplicates.
        std::string name;
        appendDouble(name, z);
        if (!theta_names.insert(name).second) {
            error = "duplicate zipf-theta axis value " + name +
                    " (identical at the report's 12-digit precision)";
            return false;
        }
    }
    std::set<std::string> geo_names;
    for (const MemGeometry &geo : grid.geometries) {
        std::string geo_error;
        if (!validateGeometry(geo, geo_error)) {
            error = "invalid geometry " + geometryName(geo) + ": " +
                    geo_error;
            return false;
        }
        if (!geo_names.insert(geometryName(geo)).second) {
            error = "duplicate geometry " + geometryName(geo);
            return false;
        }
    }
    std::set<std::string> exec_names;
    for (const ExecOverride &ov : grid.execOverrides) {
        std::string ov_error;
        if (!validateExecOverride(ov, ov_error)) {
            error = "invalid exec-ablation point " + ov.name() + ": " +
                    ov_error;
            return false;
        }
        if (!exec_names.insert(ov.name()).second) {
            error = "duplicate exec-ablation point " + ov.name();
            return false;
        }
    }
    for (const MemGeometry &geo : grid.geometries) {
        // A stream fetch is served from one row activation, so a read
        // chunk wider than the row buffer is physically meaningless
        // (presets clamp to the row size; overrides must not un-clamp).
        for (const ExecOverride &ov : grid.execOverrides) {
            if (ov.readChunkBytes > 0 &&
                static_cast<std::uint64_t>(ov.readChunkBytes) >
                    geo.rowBytes) {
                error = "exec-ablation " + ov.name() + " read chunk "
                        "exceeds the " + std::to_string(geo.rowBytes) +
                        " B row buffer of geometry " + geometryName(geo);
                return false;
            }
        }
        // Fail fast on scales that cannot fit the swept pool instead of
        // aborting mid-campaign in the vault allocator. Heuristic upper
        // bound per stage on the footprint in units of the 16 B/tuple
        // input: scan reads in place (2x slack); sort adds a shuffled
        // copy with 1.7x headroom (4x); group-by/join add the R side,
        // hash tables and outputs (6x). Pipeline scenarios accumulate:
        // allocations are never freed within a run, so a scenario's
        // footprint is the SUM of its stage factors plus 2x per
        // materialized intermediate relation — scan stages are
        // pass-through and materialize nothing, and the final stage's
        // output is only counted, never materialized — plus the fixed
        // page-table/cursor blocks (~4 MiB). The allocator remains the
        // hard guard.
        auto scenario_factor = [](const Scenario &sc) {
            std::uint64_t f = 0;
            for (std::size_t i = 0; i < sc.stages.size(); ++i) {
                switch (sc.stages[i].op) {
                  case OpKind::kScan:
                    f += 2;
                    break;
                  case OpKind::kSort:
                    f += 4;
                    break;
                  case OpKind::kGroupBy:
                  case OpKind::kJoin:
                    f += 6;
                    break;
                }
                if (i + 1 < sc.stages.size() &&
                    sc.stages[i].op != OpKind::kScan)
                    f += 2; // materialized intermediate for the successor
            }
            return f;
        };
        std::uint64_t factor = 0;
        for (const Scenario &sc : grid.scenarios)
            factor = std::max(factor, scenario_factor(sc));
        // A served run with a traffic mix prepares EVERY mix scenario
        // into the one shared pool, so its footprint is the sum over the
        // mix, independent of the grid's scenario axis.
        for (const TrafficSpec &t : grid.traffics) {
            if (t.mix.empty())
                continue;
            std::uint64_t f = 0;
            for (const TrafficMixEntry &e : t.mix)
                f += scenario_factor(e.scenario);
            factor = std::max(factor, f);
        }
        for (unsigned l : grid.log2Tuples) {
            const std::uint64_t footprint =
                (std::uint64_t{1} << l) * 16 * factor + 4 * kMiB;
            if (footprint > geo.totalBytes()) {
                error = "scale 2^" + std::to_string(l) + " does not fit "
                        "geometry " + geometryName(geo) + " (needs ~" +
                        std::to_string(footprint / kMiB) + " MiB, pool is " +
                        std::to_string(geo.totalBytes() / kMiB) + " MiB)";
                return false;
            }
        }
    }
    return true;
}

WorkloadConfig
CampaignJob::workload() const
{
    if (log2Tuples > 32)
        fatal("log2Tuples %u out of range (max 32)", log2Tuples);
    WorkloadConfig wl;
    wl.tuples = std::uint64_t{1} << log2Tuples;
    wl.seed = seed;
    wl.zipfTheta = zipfTheta;
    return wl;
}

SystemConfig
CampaignJob::systemConfig() const
{
    SystemConfig cfg = makeSystem(system, geometry);
    exec.apply(cfg.exec);
    return cfg;
}

RunResult
executeCampaignJob(const CampaignJob &job)
{
    if (job.traffic.degenerate()) {
        Runner runner(job.workload());
        return runner.run(job.systemConfig(), job.scenario);
    }
    ServedRunner served(job.workload(), job.traffic);
    return served.run(job.systemConfig(), job.scenario);
}

std::vector<CampaignJob>
expandGrid(const CampaignGrid &grid)
{
    std::vector<CampaignJob> jobs;
    jobs.reserve(grid.size());
    for (const TrafficSpec &traffic : grid.traffics) {
        for (const MemGeometry &geo : grid.geometries) {
            for (const ExecOverride &exec : grid.execOverrides) {
                for (double theta : grid.zipfThetas) {
                    for (std::uint64_t seed : grid.seeds) {
                        for (unsigned log2 : grid.log2Tuples) {
                            for (const Scenario &sc : grid.scenarios) {
                                for (SystemKind sys : grid.systems) {
                                    CampaignJob job;
                                    job.index = jobs.size();
                                    job.system = sys;
                                    job.scenario = sc;
                                    job.log2Tuples = log2;
                                    job.seed = seed;
                                    job.geometry = geo;
                                    job.exec = exec;
                                    job.zipfTheta = theta;
                                    job.traffic = traffic;
                                    jobs.push_back(job);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

GridGroupKey
gridGroupKey(const CampaignJob &job)
{
    return {geometryName(job.geometry), job.exec.name(), job.zipfTheta,
            job.seed, job.log2Tuples, job.scenario.name,
            job.traffic.name()};
}

GridGroupKey
gridGroupKey(const CampaignRun &run)
{
    // RunResult::op always equals job.scenario.name (the runner sets it
    // and the resume identity includes it), so keying by the job alone
    // is equivalent.
    return gridGroupKey(run.job);
}

std::map<GridGroupKey, const CampaignRun *>
baselineIndex(const std::vector<CampaignRun> &runs, SystemKind baseline)
{
    std::map<GridGroupKey, const CampaignRun *> base;
    for (const auto &r : runs) {
        if (!r.failed && r.job.system == baseline)
            base[gridGroupKey(r)] = &r;
    }
    return base;
}

namespace {

/** Baseline system for summaries: the first kCpu entry, if present. */
bool
findBaseline(const CampaignGrid &grid, SystemKind &out)
{
    for (SystemKind k : grid.systems) {
        if (k == SystemKind::kCpu) {
            out = k;
            return true;
        }
    }
    return false;
}

} // namespace

std::vector<SystemSummary>
summarizeRuns(const CampaignGrid &grid, const std::vector<CampaignRun> &runs,
              SystemKind baseline)
{
    auto base = baselineIndex(runs, baseline);

    std::vector<SystemSummary> out;
    for (SystemKind sys : grid.systems) {
        if (sys == baseline)
            continue;
        std::vector<double> speedups, perfPerWatt;
        std::size_t paired = 0, total = 0;
        for (const auto &r : runs) {
            if (r.failed || r.job.system != sys)
                continue;
            ++total;
            auto it = base.find(gridGroupKey(r));
            if (it == base.end())
                continue; // unpaired: no comparison to roll up
            ++paired;
            speedups.push_back(overallSpeedup(it->second->result, r.result));
            perfPerWatt.push_back(
                efficiencyImprovement(it->second->result, r.result));
        }
        SystemSummary s;
        s.system = systemKindName(sys);
        s.runs = paired;
        s.totalRuns = total;
        GeomeanStats sp = geomeanStats(speedups);
        GeomeanStats pw = geomeanStats(perfPerWatt);
        s.geomeanSpeedup = sp.value;
        s.geomeanPerfPerWatt = pw.value;
        s.droppedSpeedups = sp.dropped;
        s.droppedPerfPerWatt = pw.dropped;
        out.push_back(s);
    }
    return out;
}

std::string
ResumeCache::gridPointHash(const std::string &system, const std::string &op,
                           unsigned log2_tuples, std::uint64_t seed,
                           double zipf_theta, const MemGeometry &geo,
                           const ExecOverride &exec,
                           const std::string &traffic)
{
    // Canonical identity string: every axis field at a fixed, delimited
    // position, so the key is injective over grid points — two distinct
    // axis points cannot collide by construction. The key itself is the
    // cache identity (no lossy digest in the identity path); theta is
    // canonicalized to the report's 12-digit encoding first (see
    // appendDouble).
    std::string key = system + "|" + op + "|" +
                      std::to_string(log2_tuples) + "|" +
                      std::to_string(seed) + "|";
    appendDouble(key, zipf_theta);
    key += "|" + std::to_string(geo.numStacks) + "|" +
           std::to_string(geo.vaultsPerStack) + "|" +
           std::to_string(geo.banksPerVault) + "|" +
           std::to_string(geo.rowBytes) + "|" +
           std::to_string(geo.vaultBytes) + "|" +
           std::to_string(exec.radixBits) + "|" +
           std::to_string(exec.readChunkBytes) + "|" +
           std::to_string(exec.tlbEntries) + "|" + traffic;
    return key;
}

const ResumeCache::Entry *
ResumeCache::find(const std::string &hash) const
{
    auto it = entries_.find(hash);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
ResumeCache::load(const std::string &json_text, std::string &error)
{
    entries_.clear();
    JsonValue doc;
    if (!parseJson(json_text, doc, error))
        return false;
    const JsonValue *schema = doc.find("schema");
    const std::string schema_name = schema ? schema->asString() : "";
    const bool v4 = schema_name == "mondrian-campaign-v4";
    const bool v3 = v4 || schema_name == "mondrian-campaign-v3";
    const bool v2 = v3 || schema_name == "mondrian-campaign-v2";
    if (!v2 && schema_name != "mondrian-campaign-v1") {
        error = "not a mondrian-campaign-v1/v2/v3/v4 report";
        return false;
    }

    // Axis tables. v1 reports have none: every run is at the default
    // geometry and the "base" exec point, with the campaign-wide theta.
    std::map<std::string, MemGeometry> geometries;
    std::map<std::string, ExecOverride> overrides;
    // v3: scenario label -> full cache identity (name + stage
    // structure), resolved from the grid's scenarios table so a renamed
    // or restructured pipeline can never satisfy a stale cache entry.
    std::map<std::string, std::string> scenario_identities;
    double v1_zipf = 0.0;
    const JsonValue *grid = doc.find("grid");
    if (v2) {
        if (!grid) {
            error = "v2/v3 report has no grid block";
            return false;
        }
        if (const JsonValue *scs = grid->find("scenarios")) {
            for (const JsonValue &sv : scs->items) {
                const JsonValue *name = sv.find("name");
                const JsonValue *stages = sv.find("stages");
                if (!name || !stages || !stages->isArray())
                    continue;
                Scenario sc;
                sc.name = name->asString();
                bool ok = true;
                for (const JsonValue &st : stages->items) {
                    const JsonValue *spark = st.find("stage");
                    const JsonValue *op = st.find("op");
                    const JsonValue *input = st.find("input");
                    ScenarioStage stage;
                    if (!spark || !op || !input ||
                        !opKindFromName(op->asString(), stage.op)) {
                        ok = false;
                        break;
                    }
                    stage.spark = spark->asString();
                    stage.input = input->asString() == "generated"
                                      ? StageInput::kGenerated
                                      : StageInput::kPrevOutput;
                    sc.stages.push_back(std::move(stage));
                }
                if (ok && !sc.stages.empty())
                    scenario_identities[sc.name] = scenarioIdentity(sc);
            }
        }
        if (const JsonValue *gs = grid->find("geometries")) {
            for (const JsonValue &g : gs->items) {
                const JsonValue *name = g.find("name");
                const JsonValue *stacks = g.find("stacks");
                const JsonValue *vaults = g.find("vaults_per_stack");
                const JsonValue *banks = g.find("banks_per_vault");
                const JsonValue *row = g.find("row_bytes");
                const JsonValue *cap = g.find("vault_bytes");
                if (!name || !stacks || !vaults || !banks || !row || !cap)
                    continue;
                MemGeometry geo;
                geo.numStacks = static_cast<unsigned>(stacks->asU64());
                geo.vaultsPerStack = static_cast<unsigned>(vaults->asU64());
                geo.banksPerVault = static_cast<unsigned>(banks->asU64());
                geo.rowBytes = row->asU64();
                geo.vaultBytes = cap->asU64();
                geometries[name->asString()] = geo;
            }
        }
        if (const JsonValue *os = grid->find("exec_overrides")) {
            for (const JsonValue &o : os->items) {
                const JsonValue *name = o.find("name");
                if (!name)
                    continue;
                ExecOverride ov;
                if (const JsonValue *r = o.find("radix_bits"))
                    ov.radixBits = static_cast<int>(r->asDouble());
                if (const JsonValue *c = o.find("read_chunk_bytes"))
                    ov.readChunkBytes = static_cast<int>(c->asDouble());
                if (const JsonValue *t = o.find("tlb_entries"))
                    ov.tlbEntries = static_cast<int>(t->asDouble());
                overrides[name->asString()] = ov;
            }
        }
    } else if (grid) {
        if (const JsonValue *z = grid->find("zipf_theta"))
            v1_zipf = z->asDouble();
    }

    const JsonValue *runs = doc.find("runs");
    if (!runs || !runs->isArray()) {
        error = "report has no runs array";
        return false;
    }
    std::size_t run_no = 0;
    for (const JsonValue &r : runs->items) {
        // Label for skip warnings: as much of the grid point as the
        // entry actually carries, falling back to its array position —
        // a corrupt entry must be named, never silently dropped or
        // spliced as garbage.
        const std::size_t this_run = run_no++;
        auto run_label = [&r, v3, this_run]() {
            std::string l = "run #" + std::to_string(this_run);
            const JsonValue *sys = r.find("system");
            const JsonValue *op = v3 ? r.find("scenario") : r.find("op");
            const JsonValue *log2 = r.find("log2_tuples");
            const JsonValue *seed = r.find("seed");
            if (sys && sys->isString())
                l += " (" + sys->asString() +
                     (op && op->isString() ? "|" + op->asString() : "") +
                     (log2 ? "|2^" + std::to_string(log2->asU64()) : "") +
                     (seed ? "|seed " + std::to_string(seed->asU64()) : "") +
                     ")";
            return l;
        };
        const JsonValue *sys = r.find("system");
        // v3 runs are labeled by scenario; v1/v2 "op" labels ARE the
        // degenerate scenario names, so both key identically.
        const JsonValue *op = v3 ? r.find("scenario") : r.find("op");
        const JsonValue *log2 = r.find("log2_tuples");
        const JsonValue *seed = r.find("seed");
        const JsonValue *result = r.find("result");
        if (!sys || !op || !log2 || !seed || !result) {
            warn("resume: skipping malformed %s: missing run members",
                 run_label().c_str());
            continue; // malformed entry: simply not cached
        }
        MemGeometry geo = defaultGeometry();
        ExecOverride exec;
        double zipf = v1_zipf;
        // v1/v2 "op" labels are degenerate scenario names, which ARE
        // their own identity; v3 labels resolve through the scenarios
        // table to the full stage-structure identity.
        std::string scenario_id = op->asString();
        // Pre-v4 reports are all single-query runs: the degenerate
        // "none" traffic point. TrafficSpec::name() is the full spec
        // identity, so v4 runs key by their label verbatim.
        std::string traffic_id = "none";
        if (v2) {
            const JsonValue *gname = r.find("geometry");
            const JsonValue *ename = r.find("exec");
            const JsonValue *z = r.find("zipf_theta");
            if (!gname || !ename || !z) {
                warn("resume: skipping %s: missing geometry/exec/"
                     "zipf_theta labels", run_label().c_str());
                continue;
            }
            auto git = geometries.find(gname->asString());
            auto eit = overrides.find(ename->asString());
            if (git == geometries.end() || eit == overrides.end()) {
                // label without an axis-table entry: not cached
                warn("resume: skipping %s: axis label '%s' has no grid "
                     "table entry", run_label().c_str(),
                     (git == geometries.end() ? gname : ename)
                         ->asString().c_str());
                continue;
            }
            geo = git->second;
            exec = eit->second;
            zipf = z->asDouble();
            if (v3) {
                auto sit = scenario_identities.find(op->asString());
                if (sit == scenario_identities.end()) {
                    warn("resume: skipping %s: scenario '%s' has no grid "
                         "table entry", run_label().c_str(),
                         op->asString().c_str());
                    continue;
                }
                scenario_id = sit->second;
            }
            if (v4) {
                const JsonValue *t = r.find("traffic");
                if (!t) {
                    warn("resume: skipping %s: v4 run has no traffic "
                         "label", run_label().c_str());
                    continue;
                }
                traffic_id = t->asString();
            }
        }
        Entry e;
        if (!readRunResult(*result, e.result)) {
            warn("resume: skipping %s: unreadable result subtree",
                 run_label().c_str());
            continue;
        }
        e.rawResultJson =
            json_text.substr(result->begin, result->end - result->begin);
        entries_[gridPointHash(sys->asString(), scenario_id,
                               static_cast<unsigned>(log2->asU64()),
                               seed->asU64(), zipf, geo, exec,
                               traffic_id)] = std::move(e);
    }
    return true;
}

std::size_t
ResumeCache::loadJournal(const std::string &text)
{
    std::size_t added = 0, lineno = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const bool torn = nl == std::string::npos; // no trailing newline
        std::string line =
            text.substr(pos, torn ? std::string::npos : nl - pos);
        pos = torn ? text.size() : nl + 1;
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;

        // Best-effort grid key for warnings: the key member leads every
        // line, so even a torn tail usually names its grid point.
        auto key_hint = [&line]() {
            const std::string prefix = "{\"key\": \"";
            if (line.rfind(prefix, 0) != 0)
                return std::string();
            const std::size_t end = line.find('"', prefix.size());
            if (end == std::string::npos)
                return std::string();
            return " (grid key " +
                   line.substr(prefix.size(), end - prefix.size()) + ")";
        };

        JsonValue doc;
        std::string parse_error;
        if (!parseJson(line, doc, parse_error)) {
            // A torn final line is the expected artifact of a killed
            // writer; anything else is corruption. Either way: skip
            // loudly, never splice.
            warn("journal: skipping %s line %zu%s: %s",
                 torn ? "torn" : "corrupt", lineno, key_hint().c_str(),
                 parse_error.c_str());
            continue;
        }
        const JsonValue *key = doc.find("key");
        const JsonValue *result = doc.find("result");
        if (!key || !key->isString() || key->asString().empty() ||
            !result) {
            warn("journal: skipping line %zu%s: missing key or result",
                 lineno, key_hint().c_str());
            continue;
        }
        Entry e;
        if (!readRunResult(*result, e.result)) {
            warn("journal: skipping line %zu (grid key %s): unreadable "
                 "result", lineno, key->asString().c_str());
            continue;
        }
        // No rawResultJson: journal doubles are exact (shortest round
        // trip), so re-serializing through the canonical report writer
        // reproduces a fresh run's bytes — no splicing needed.
        entries_[key->asString()] = std::move(e);
        ++added;
    }
    return added;
}

std::string
campaignJobKey(const CampaignJob &job)
{
    return ResumeCache::gridPointHash(
        systemKindName(job.system), scenarioIdentity(job.scenario),
        job.log2Tuples, job.seed, job.zipfTheta, job.geometry, job.exec,
        job.traffic.name());
}

std::string
campaignJournalLine(const CampaignJob &job, const RunResult &result)
{
    JsonWriter w;
    w.setPreciseDoubles(true);
    w.beginObject();
    w.member("key", campaignJobKey(job));
    w.member("index", std::uint64_t{job.index});
    w.key("result");
    writeRunResult(w, result);
    w.endObject();
    return JsonWriter::compact(w.str()) + "\n";
}

CampaignReport
CampaignRunner::run(unsigned jobs)
{
    std::string grid_error;
    if (!validateGrid(grid_, grid_error))
        throw std::invalid_argument("invalid campaign grid: " + grid_error);

    const std::vector<CampaignJob> grid_jobs = expandGrid(grid_);

    CampaignReport report;
    report.grid = grid_;
    report.runs.resize(grid_jobs.size());

    // Each worker writes only its own grid slot; the mutex guards the
    // progress callback, not the results.
    std::mutex progress_mutex;
    {
        // jobs == 1 -> inline execution on this thread (no workers).
        ThreadPool pool(jobs == 1 ? 0 : ThreadPool::resolveThreads(jobs));
        for (const CampaignJob &job : grid_jobs) {
            if (resume_) {
                const ResumeCache::Entry *hit =
                    resume_->find(campaignJobKey(job));
                if (hit) {
                    CampaignRun &slot = report.runs[job.index];
                    slot.job = job;
                    slot.result = hit->result;
                    slot.rawResultJson = hit->rawResultJson;
                    slot.cached = true;
                    report.cachedRuns++;
                    continue;
                }
            }
            if (abort_ && abort_->load()) {
                // Interrupted: don't start new work; mark the slot so
                // the partial report never misreads it as a result.
                CampaignRun &slot = report.runs[job.index];
                slot.job = job;
                slot.failed = true;
                continue;
            }
            pool.submit([this, job, &report, &progress_mutex] {
                CampaignRun &slot = report.runs[job.index];
                slot.job = job;
                if (abort_ && abort_->load()) {
                    slot.failed = true;
                    return;
                }
                slot.result = executeCampaignJob(job);
                if (progress_) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    progress_(slot);
                }
            });
        }
        pool.wait();
    }
    if (abort_ && abort_->load())
        report.aborted = true;

    SystemKind baseline;
    if (findBaseline(grid_, baseline)) {
        report.baseline = systemKindName(baseline);
        report.summaries = summarizeRuns(grid_, report.runs, baseline);
    }
    return report;
}

std::string
campaignReportJson(const CampaignReport &report)
{
    // Degenerate-only grids write the historical v2 document bit-for-bit
    // (the nightly golden gate depends on it); pipeline scenarios
    // upgrade the schema to v3, which adds the scenario axis table,
    // per-run "scenario" labels and stage sub-results; a traffic axis
    // upgrades to v4, which adds the traffics table, per-run "traffic"
    // labels and served metrics.
    const bool v4 = gridHasTraffic(report.grid);
    const bool v3 = v4 || gridHasPipelines(report.grid);

    JsonWriter w;
    w.beginObject();
    w.member("schema", v4   ? "mondrian-campaign-v4"
                       : v3 ? "mondrian-campaign-v3"
                            : "mondrian-campaign-v2");
    w.member("paper", "conf_isca_DrumondDMUPFGP17");

    w.key("grid").beginObject();
    w.key("systems").beginArray();
    for (SystemKind k : report.grid.systems)
        w.value(systemKindName(k));
    w.endArray();
    if (v3) {
        w.key("scenarios").beginArray();
        for (const Scenario &sc : report.grid.scenarios) {
            w.beginObject();
            w.member("name", sc.name);
            w.key("stages").beginArray();
            for (const ScenarioStage &st : sc.stages) {
                w.beginObject();
                w.member("stage", st.spark);
                w.member("op", opKindName(st.op));
                w.member("input", stageInputName(st.input));
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    } else {
        w.key("ops").beginArray();
        for (const Scenario &sc : report.grid.scenarios)
            w.value(sc.name);
        w.endArray();
    }
    w.key("log2_tuples").beginArray();
    for (unsigned l : report.grid.log2Tuples)
        w.value(std::uint64_t{l});
    w.endArray();
    w.key("seeds").beginArray();
    for (std::uint64_t s : report.grid.seeds)
        w.value(s);
    w.endArray();
    w.key("geometries").beginArray();
    for (const MemGeometry &geo : report.grid.geometries) {
        w.beginObject();
        w.member("name", geometryName(geo));
        w.member("stacks", std::uint64_t{geo.numStacks});
        w.member("vaults_per_stack", std::uint64_t{geo.vaultsPerStack});
        w.member("banks_per_vault", std::uint64_t{geo.banksPerVault});
        w.member("row_bytes", geo.rowBytes);
        w.member("vault_bytes", geo.vaultBytes);
        w.endObject();
    }
    w.endArray();
    w.key("exec_overrides").beginArray();
    for (const ExecOverride &ov : report.grid.execOverrides) {
        w.beginObject();
        w.member("name", ov.name());
        // Only overridden knobs appear; absent means "inherit preset".
        if (ov.radixBits >= 0)
            w.member("radix_bits", std::int64_t{ov.radixBits});
        if (ov.readChunkBytes >= 0)
            w.member("read_chunk_bytes", std::int64_t{ov.readChunkBytes});
        if (ov.tlbEntries >= 0)
            w.member("tlb_entries", std::int64_t{ov.tlbEntries});
        w.endObject();
    }
    w.endArray();
    w.key("zipf_thetas").beginArray();
    for (double z : report.grid.zipfThetas)
        w.value(z);
    w.endArray();
    if (v4) {
        w.key("traffics").beginArray();
        for (const TrafficSpec &t : report.grid.traffics) {
            w.beginObject();
            w.member("name", t.name());
            if (!t.degenerate()) {
                w.member("process", arrivalProcessName(t.process));
                w.member("lambda_qps", t.lambdaQps);
                w.member("queries", t.queries);
                w.member("warmup", t.warmup);
                w.member("max_in_flight", t.maxInFlight);
                w.member("seed", t.seed);
                if (!t.mix.empty()) {
                    w.key("mix").beginArray();
                    for (const TrafficMixEntry &m : t.mix) {
                        w.beginObject();
                        w.member("scenario", m.scenario.name);
                        w.member("weight", m.weight);
                        w.endObject();
                    }
                    w.endArray();
                    w.member("mix_zipf_theta", t.mixZipfTheta);
                }
            }
            w.endObject();
        }
        w.endArray();
    }
    w.member("total_runs", std::uint64_t{report.runs.size()});
    w.endObject();

    w.key("runs").beginArray();
    for (const auto &r : report.runs) {
        if (r.failed)
            continue; // no result to report; listed under failed_runs
        w.beginObject();
        w.member("index", std::uint64_t{r.job.index});
        w.member("system", systemKindName(r.job.system));
        if (v3)
            w.member("scenario", r.job.scenario.name);
        else
            w.member("op", r.job.scenario.name);
        w.member("log2_tuples", std::uint64_t{r.job.log2Tuples});
        w.member("seed", r.job.seed);
        w.member("geometry", geometryName(r.job.geometry));
        w.member("exec", r.job.exec.name());
        w.member("zipf_theta", r.job.zipfTheta);
        if (v4)
            w.member("traffic", r.job.traffic.name());
        w.key("result");
        // report-precision: canonical 12-digit (the committed report
        // format; IPC/journal writers use setPreciseDoubles instead).
        if (!r.rawResultJson.empty())
            w.rawValue(r.rawResultJson); // cached: splice byte-identically
        else
            writeRunResult(w, r.result);
        w.endObject();
    }
    w.endArray();

    // Only irregular (fault-afflicted) reports carry this block, so a
    // clean campaign's JSON is byte-identical to the historical writer.
    if (!report.failedRuns.empty()) {
        w.key("failed_runs").beginArray();
        for (const FailedRun &f : report.failedRuns) {
            const CampaignRun &r = report.runs[f.index];
            w.beginObject();
            w.member("index", std::uint64_t{r.job.index});
            w.member("system", systemKindName(r.job.system));
            if (v3)
                w.member("scenario", r.job.scenario.name);
            else
                w.member("op", r.job.scenario.name);
            w.member("log2_tuples", std::uint64_t{r.job.log2Tuples});
            w.member("seed", r.job.seed);
            w.member("geometry", geometryName(r.job.geometry));
            w.member("exec", r.job.exec.name());
            w.member("zipf_theta", r.job.zipfTheta);
            if (v4)
                w.member("traffic", r.job.traffic.name());
            w.member("attempts", std::uint64_t{f.attempts});
            w.member("error", f.error);
            w.endObject();
        }
        w.endArray();
    }

    w.key("summary").beginObject();
    w.member("baseline", report.baseline);
    w.key("systems").beginArray();
    for (const auto &s : report.summaries) {
        w.beginObject();
        w.member("system", s.system);
        w.member("runs", std::uint64_t{s.runs});
        // Extra provenance appears only on irregular reports, so a full
        // cross-product grid's JSON is unchanged: "runs_total" when some
        // runs are unpaired (partial/resumed grids), "dropped_*" when a
        // non-positive comparison was excluded from a geomean.
        if (s.totalRuns != s.runs)
            w.member("runs_total", std::uint64_t{s.totalRuns});
        if (s.droppedSpeedups > 0)
            w.member("dropped_speedups", std::uint64_t{s.droppedSpeedups});
        if (s.droppedPerfPerWatt > 0)
            w.member("dropped_perf_per_watt",
                     std::uint64_t{s.droppedPerfPerWatt});
        w.member("geomean_speedup", s.geomeanSpeedup);
        w.member("geomean_perf_per_watt", s.geomeanPerfPerWatt);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
campaignSummaryTable(const CampaignReport &report)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"system", "runs", "geomean speedup", "geomean perf/W"});
    for (const auto &s : report.summaries) {
        rows.push_back(
            {s.system, pairedCountLabel(s.runs, s.totalRuns),
             geomeanCellLabel(s.geomeanSpeedup, s.droppedSpeedups),
             geomeanCellLabel(s.geomeanPerfPerWatt,
                              s.droppedPerfPerWatt)});
    }
    return renderTable(rows);
}

std::string
campaignDryRun(const CampaignGrid &grid, const ResumeCache *resume)
{
    std::string grid_error;
    if (!validateGrid(grid, grid_error))
        throw std::invalid_argument("invalid campaign grid: " + grid_error);

    const std::vector<CampaignJob> jobs = expandGrid(grid);
    const bool show_traffic = gridHasTraffic(grid);

    // Baseline pairing: index of the kCpu job in each comparison group.
    std::map<GridGroupKey, std::size_t> base;
    for (const CampaignJob &job : jobs) {
        if (job.system == SystemKind::kCpu)
            base[gridGroupKey(job)] = job.index;
    }

    std::string out;
    std::size_t cached = 0, paired = 0;
    for (const CampaignJob &job : jobs) {
        auto it = base.find(gridGroupKey(job));
        const bool is_baseline =
            it != base.end() && it->second == job.index;
        if (it != base.end() && !is_baseline)
            ++paired;

        bool hit = false;
        if (resume) {
            hit = resume->find(campaignJobKey(job)) != nullptr;
            if (hit)
                ++cached;
        }

        std::string pairing = "no-baseline";
        if (is_baseline)
            pairing = "baseline";
        else if (it != base.end())
            pairing = "vs [" + std::to_string(it->second) + "]";

        std::string traffic_col;
        if (show_traffic)
            traffic_col = "traffic=" + job.traffic.name() + " ";

        char line[512];
        std::snprintf(line, sizeof(line),
                      "[%4zu] %-8s %-15s 2^%-2u seed=%-6llu geo=%-18s "
                      "exec=%-12s zipf=%-5g %s%s%s\n",
                      job.index, job.scenario.name.c_str(),
                      systemKindName(job.system), job.log2Tuples,
                      static_cast<unsigned long long>(job.seed),
                      geometryName(job.geometry).c_str(),
                      job.exec.name().c_str(), job.zipfTheta,
                      traffic_col.c_str(), pairing.c_str(),
                      hit ? " (cached)" : "");
        out += line;
    }
    std::string traffic_dim;
    if (show_traffic) {
        traffic_dim =
            " x " + std::to_string(grid.traffics.size()) + " traffics";
    }
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  "%zu runs (%zu systems x %zu scenarios x %zu scales x "
                  "%zu seeds x %zu geometries x %zu exec points x %zu "
                  "thetas%s), %zu baseline-paired, %zu cached\n",
                  jobs.size(), grid.systems.size(), grid.scenarios.size(),
                  grid.log2Tuples.size(), grid.seeds.size(),
                  grid.geometries.size(), grid.execOverrides.size(),
                  grid.zipfThetas.size(), traffic_dim.c_str(), paired,
                  cached);
    out += tail;
    return out;
}

} // namespace mondrian
