/**
 * @file
 * CampaignRunner: parallel execution of a declarative simulation grid.
 *
 * The paper's evaluation (Figs. 6-9, Tables 1/5) is a cross-product of
 * {system, operator, scale, seed} runs at one fixed memory geometry and
 * one execution configuration per system. A CampaignGrid generalizes that
 * into an eight-axis design space:
 *
 *   {traffic x geometry x exec-override x zipf-theta x seed x scale x
 *    scenario x system}
 *
 * Geometry points are full MemGeometry variants (cubes, vaults/cube,
 * vault capacity, row-buffer size); exec overrides are named ExecConfig
 * deltas (radix bits, read chunk, TLB reach); zipf-theta sweeps key skew.
 * The scenario axis holds whole analytics pipelines (system/scenario.hh):
 * the four degenerate single-op scenarios reproduce the classic operator
 * runs byte-for-byte, and multi-stage scenarios ("sessions", arbitrary
 * `a>b>c` chains) run as one pipeline per grid point. The traffic axis
 * (system/traffic.hh) drives grid points as served open-loop workloads —
 * a non-degenerate TrafficSpec runs its point through the ServedRunner
 * and the report gains QPS/latency-percentile/energy-per-query metrics.
 * Reports stay schema mondrian-campaign-v2 for degenerate-only grids
 * (bit-compatible with the historical writer, including the nightly
 * golden), become mondrian-campaign-v3 — a superset adding the scenario
 * axis table and per-run stage sub-results — once any pipeline scenario
 * is swept, and mondrian-campaign-v4 — adding the traffics axis table,
 * per-run "traffic" labels and "served" result objects — once any
 * non-degenerate traffic point is swept.
 * expandGrid() flattens the cross-product into an ordered job list and
 * CampaignRunner executes the jobs on a thread pool. Each job builds a
 * fresh MemoryPool/Machine, so jobs share no mutable state and the
 * campaign is embarrassingly parallel.
 *
 * Determinism contract: results are aggregated by grid index, never by
 * completion order, and report JSON contains no wall-clock or host state.
 * A campaign run with --jobs N is therefore byte-identical to --jobs 1
 * for the same grid. CI enforces this (scripts/check_determinism.sh).
 */

#ifndef MONDRIAN_SYSTEM_CAMPAIGN_HH
#define MONDRIAN_SYSTEM_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "system/config.hh"
#include "system/runner.hh"
#include "system/traffic.hh"

namespace mondrian {

/** Declarative cross-product of runs. */
struct CampaignGrid
{
    /** Systems to evaluate; the first kCpu entry (if any) is the baseline. */
    std::vector<SystemKind> systems;
    /** Scenario axis; degenerate entries are the classic single ops. */
    std::vector<Scenario> scenarios;
    /** Scale factors: log2 of |S| tuples. */
    std::vector<unsigned> log2Tuples;
    std::vector<std::uint64_t> seeds;
    /** Memory geometry axis; labeled by geometryName() in reports. */
    std::vector<MemGeometry> geometries = {defaultGeometry()};
    /** Exec-config ablation axis; the default single point is "base". */
    std::vector<ExecOverride> execOverrides = {ExecOverride{}};
    /** Key-skew axis (0 = uniform, as in the paper). */
    std::vector<double> zipfThetas = {0.0};
    /** Open-loop traffic axis; the default single point is the
     *  degenerate "none" spec (one query, classic Runner semantics). */
    std::vector<TrafficSpec> traffics = {TrafficSpec{}};

    /** Number of jobs the grid expands to. */
    std::size_t
    size() const
    {
        return systems.size() * scenarios.size() * log2Tuples.size() *
               seeds.size() * geometries.size() * execOverrides.size() *
               zipfThetas.size() * traffics.size();
    }
};

/**
 * True when @p grid sweeps any non-degenerate (pipeline) scenario —
 * i.e. when its report must use at least schema mondrian-campaign-v3.
 */
bool gridHasPipelines(const CampaignGrid &grid);

/**
 * True when @p grid sweeps any non-degenerate (served) traffic point —
 * i.e. when its report must use schema mondrian-campaign-v4.
 */
bool gridHasTraffic(const CampaignGrid &grid);

/**
 * Check that every axis is non-empty and every axis value is valid
 * (geometries pass validateGeometry(), no duplicate axis points).
 * @return false with @p error naming the offending axis otherwise.
 */
bool validateGrid(const CampaignGrid &grid, std::string &error);

/** The paper's full evaluation grid (4 ops x 7 systems) at @p log2_tuples. */
CampaignGrid paperGrid(unsigned log2_tuples = 15);

/** Tiny grid for CI smoke runs: 3 systems x 2 ops at 2^10 tuples. */
CampaignGrid smokeGrid();

/** One expanded grid point. */
struct CampaignJob
{
    std::size_t index = 0; ///< position in grid order (aggregation key)
    SystemKind system = SystemKind::kCpu;
    Scenario scenario = degenerateScenario(OpKind::kScan);
    unsigned log2Tuples = 15;
    std::uint64_t seed = 42;
    MemGeometry geometry = defaultGeometry();
    ExecOverride exec;
    double zipfTheta = 0.0;
    /** Open-loop traffic; degenerate = classic single-query run. */
    TrafficSpec traffic;

    /** Workload this job runs. */
    WorkloadConfig workload() const;

    /** Preset for (system, geometry) with the exec override applied. */
    SystemConfig systemConfig() const;
};

/**
 * Flatten @p grid in deterministic order: traffics outermost, then
 * geometries, exec overrides, thetas, seeds, scales, scenarios, and
 * systems innermost — so one (traffic, geometry, exec, theta, seed,
 * scale, scenario) group's systems are contiguous and baseline
 * comparisons read naturally in the report.
 */
std::vector<CampaignJob> expandGrid(const CampaignGrid &grid);

/**
 * Execute one expanded grid point: the single place that maps a job
 * onto a Runner (degenerate traffic) or ServedRunner (open-loop
 * traffic). Shared by the in-process CampaignRunner, the distributed
 * worker loop and the coordinator's degraded in-process fallback, so
 * the three can never diverge.
 */
RunResult executeCampaignJob(const CampaignJob &job);

/**
 * The injective identity key of a job's grid point — the
 * ResumeCache::gridPointHash of its fields. The single currency of every
 * result cache (the --resume journal cache and the worker-side
 * --worker-cache): two jobs share a key iff they are the same grid
 * point.
 */
std::string campaignJobKey(const CampaignJob &job);

/** One finished grid point. */
struct CampaignRun
{
    CampaignJob job;
    RunResult result;
    /**
     * When the run was satisfied from a resume cache, the prior report's
     * verbatim "result" JSON subtree; campaignReportJson splices it so a
     * resumed report is byte-identical to a fresh one. Empty for runs
     * executed in this campaign.
     */
    std::string rawResultJson;
    bool cached = false;
    /**
     * The run never produced a result: its job exhausted the
     * coordinator's retry budget, or the campaign was interrupted before
     * the job ran. Failed slots are excluded from the report's runs
     * array, the summaries and baseline pairing; permanently failed jobs
     * are listed in CampaignReport::failedRuns instead.
     */
    bool failed = false;
};

/** One grid point that exhausted its retry budget (coordinator mode). */
struct FailedRun
{
    std::size_t index = 0; ///< grid index of the job
    unsigned attempts = 0; ///< attempts made (1 + retries)
    std::string error;     ///< last failure observed
};

/**
 * Comparison group of a run: baseline matching is per (geometry, exec,
 * theta, seed, scale, scenario, traffic), so speedups always compare two
 * systems at the same axis point. Shared by the campaign summary and
 * table-rendering callers so the two never drift when the grid grows new
 * axes.
 */
using GridGroupKey = std::tuple<std::string, std::string, double,
                                std::uint64_t, unsigned, std::string,
                                std::string>;

GridGroupKey gridGroupKey(const CampaignJob &job);
GridGroupKey gridGroupKey(const CampaignRun &run);

/** Baseline run per comparison group (runs whose system == @p baseline). */
std::map<GridGroupKey, const CampaignRun *>
baselineIndex(const std::vector<CampaignRun> &runs, SystemKind baseline);

/** Campaign-level rollup for one system (vs. the baseline runs). */
struct SystemSummary
{
    std::string system;
    /**
     * Baseline-paired runs: grid points where both this system and the
     * baseline ran, i.e. the comparisons the geomeans are over. On a
     * full cross-product grid this equals totalRuns; on a partial or
     * resumed report it can be smaller.
     */
    std::size_t runs = 0;
    /** All runs of this system, paired or not. */
    std::size_t totalRuns = 0;
    /** Paired comparisons excluded from the speedup geomean because the
     *  speedup was non-positive (a broken run). */
    std::size_t droppedSpeedups = 0;
    /** Same, for the perf/W geomean. */
    std::size_t droppedPerfPerWatt = 0;
    /** Geomean of total-time speedup vs. baseline over paired runs. */
    double geomeanSpeedup = 0.0;
    /** Geomean of perf/W improvement vs. baseline (Fig. 9 rollup). */
    double geomeanPerfPerWatt = 0.0;
};

/**
 * Per-system geomean rollups of @p runs against the @p baseline system's
 * runs, pairing within comparison groups (gridGroupKey). The `runs`
 * column counts only paired runs — a grid point whose baseline is
 * missing (partial/resumed report) contributes to totalRuns but not to
 * runs or the geomeans.
 */
std::vector<SystemSummary>
summarizeRuns(const CampaignGrid &grid, const std::vector<CampaignRun> &runs,
              SystemKind baseline);

/** Everything a campaign produced, in grid order. */
struct CampaignReport
{
    CampaignGrid grid;
    std::vector<CampaignRun> runs;          ///< ordered by job index
    std::string baseline;                   ///< "" when no baseline in grid
    std::vector<SystemSummary> summaries;   ///< empty when no baseline
    std::size_t cachedRuns = 0;             ///< grid points reused (resume)
    /** Jobs that exhausted their retry budget (coordinator mode);
     *  written to the report as a "failed_runs" array when non-empty. */
    std::vector<FailedRun> failedRuns;
    /** True when execution stopped early on an abort flag (SIGINT/
     *  SIGTERM); the report is partial and should not be written. */
    bool aborted = false;
    /**
     * Results that workers answered from their --worker-cache instead
     * of re-simulating (coordinator mode). Diagnostic only — NOT
     * serialized into the report JSON, which stays byte-identical
     * whether results were simulated or cache hits.
     */
    std::size_t workerCacheHits = 0;
};

/**
 * Cache of finished grid points loaded from a prior campaign report.
 *
 * Keyed by the (config, workload) identity hash of a grid point —
 * (system, scenario, log2 tuples, seed, zipf theta, memory geometry,
 * exec override) — which is everything that determines a run's result. The
 * hash input encodes every numeric geometry/override field at a fixed
 * position, so two distinct axis points can never collide by
 * construction. A CampaignRunner consults the cache before executing
 * each job and reuses the stored result for hits, so incremental reruns
 * only simulate new grid points (ROADMAP "incremental reruns"). Cached
 * run entries splice back into reports byte-identically (verbatim
 * subtree copy); the summary rollups are recomputed from values that
 * round-tripped the writer's 12-significant-digit encoding, so a
 * resumed summary could in principle differ from a fresh one in the
 * final printed digit of a geomean.
 *
 * Schema compatibility: loads mondrian-campaign-v4 reports (per-run
 * traffic labels; older runs cache at the degenerate "none" traffic
 * point), v3 reports (runs labeled
 * by scenario), v2 reports (per-run geometry/exec/zipf_theta labels,
 * resolved against the grid's axis tables) and legacy v1 reports. A
 * v1/v2 run's "op" label maps onto the degenerate scenario of the same
 * name — the identical identity string — so old single-op reports
 * resume seamlessly into scenario sweeps, splicing byte-identically. A
 * v1 report carries no geometry or exec axes, so its runs are cached at
 * the default geometry, the "base" exec point and the report's
 * campaign-wide zipf_theta — exactly the points a v1 campaign simulated.
 */
class ResumeCache
{
  public:
    /**
     * Load entries from a prior report's JSON text (schema
     * mondrian-campaign-v3/-v2, or legacy v1 as described above).
     * Replaces the current contents.
     *
     * Corrupt entries inside an otherwise-parseable report (a malformed
     * run object, a label without an axis-table entry, an unreadable
     * result subtree) are skipped with a warn() naming the bad grid
     * point — never cached as garbage. A truncated report fails the
     * top-level parse and returns false.
     * @return false with @p error set on parse/schema problems.
     */
    bool load(const std::string &json_text, std::string &error);

    /**
     * Merge entries from a crash-safe campaign journal (newline-
     * delimited {"key", "index", "result"} lines as written by
     * campaignJournalLine()) into the cache. Existing contents are
     * kept; a key present in both is overwritten by the journal (the
     * journal is the fresher artifact). Torn or corrupt lines — the
     * expected artifact of a killed coordinator — are skipped with a
     * warn() naming the line and, when recoverable, its grid key.
     * @return the number of entries added or replaced.
     */
    std::size_t loadJournal(const std::string &text);

    std::size_t size() const { return entries_.size(); }

    /**
     * Canonical key identifying one (config, workload) grid point: the
     * injective delimited-field encoding of every axis coordinate (no
     * lossy digest — distinct points cannot collide). @p scenario is
     * the scenarioIdentity() string — the bare name for degenerate
     * scenarios (v1/v2 "op" labels ARE those identities, so the key is
     * version-independent) and name + stage structure for pipelines, so
     * a renamed or restructured pipeline can never satisfy a stale
     * cache entry.
     */
    static std::string gridPointHash(const std::string &system,
                                     const std::string &scenario,
                                     unsigned log2_tuples,
                                     std::uint64_t seed, double zipf_theta,
                                     const MemGeometry &geo,
                                     const ExecOverride &exec,
                                     const std::string &traffic);

    struct Entry
    {
        RunResult result;         ///< parsed (for summaries and progress)
        std::string rawResultJson; ///< verbatim subtree (for splicing)
    };

    /** Lookup by grid-point hash; nullptr on miss. */
    const Entry *find(const std::string &hash) const;

  private:
    std::map<std::string, Entry> entries_;
};

/** Expands a grid and executes it on a thread pool. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(const CampaignGrid &grid) : grid_(grid) {}

    /**
     * Execute the campaign on @p jobs worker threads (1 = serial on the
     * calling thread; 0 = one per hardware thread). Blocks until done.
     * @throw std::invalid_argument when the grid fails validateGrid().
     */
    CampaignReport run(unsigned jobs = 1);

    /**
     * Observe finished runs as they complete (any thread, serialized by
     * the runner). Completion order is nondeterministic — only use this
     * for progress output, never for aggregation.
     */
    void onRunDone(std::function<void(const CampaignRun &)> cb)
    {
        progress_ = std::move(cb);
    }

    const CampaignGrid &grid() const { return grid_; }

    /**
     * Reuse results from @p cache: grid points whose (config, workload)
     * hash is cached are not executed. The cache must outlive run().
     */
    void setResume(const ResumeCache *cache) { resume_ = cache; }

    /**
     * Cooperative cancellation (SIGINT/SIGTERM): once @p flag reads
     * true, jobs that have not started are skipped (marked failed) and
     * run() returns a partial report with aborted set. Jobs already
     * executing finish — a simulation cannot be interrupted midway.
     * The flag must outlive run().
     */
    void setAbort(const std::atomic<bool> *flag) { abort_ = flag; }

  private:
    CampaignGrid grid_;
    std::function<void(const CampaignRun &)> progress_;
    const ResumeCache *resume_ = nullptr;
    const std::atomic<bool> *abort_ = nullptr;
};

/**
 * One append-only journal line recording a completed run: compact JSON
 * {"key": <grid-point hash>, "index": N, "result": {...}} with a
 * trailing newline. Result doubles are written in exact shortest-
 * round-trip form so a journal-resumed report re-serializes
 * byte-identically to a fresh run (no splicing needed). Appended (and
 * flushed) after every fresh completion when --journal is active, so a
 * killed campaign loses at most the runs still in flight.
 */
std::string campaignJournalLine(const CampaignJob &job,
                                const RunResult &result);

/**
 * Render a campaign report as a deterministic JSON document (the CI
 * artifact). Degenerate-only grids emit schema mondrian-campaign-v2,
 * byte-compatible with the historical writer; grids sweeping pipeline
 * scenarios emit mondrian-campaign-v3 (scenario axis table + per-run
 * "scenario" labels + stage sub-results). Same report, same bytes,
 * regardless of thread count.
 */
std::string campaignReportJson(const CampaignReport &report);

/** Render the summary table (one row per system) for terminal output. */
std::string campaignSummaryTable(const CampaignReport &report);

/**
 * Render the expanded job list without simulating anything (--dry-run):
 * one line per job with every axis value, the job's baseline pairing
 * (the cpu run of its comparison group, if any), whether a resume cache
 * would satisfy it, and a trailing count summary.
 * @throw std::invalid_argument when the grid fails validateGrid().
 */
std::string campaignDryRun(const CampaignGrid &grid,
                           const ResumeCache *resume = nullptr);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_CAMPAIGN_HH
