/**
 * @file
 * CampaignRunner: parallel execution of a declarative simulation grid.
 *
 * The paper's evaluation (Figs. 6-9, Tables 1/5) is a cross-product of
 * {system, operator, scale, seed} runs. A CampaignGrid declares that
 * cross-product; expandGrid() flattens it into an ordered job list; and
 * CampaignRunner executes the jobs on a thread pool. Each job builds a
 * fresh MemoryPool/Machine, so jobs share no mutable state and the
 * campaign is embarrassingly parallel.
 *
 * Determinism contract: results are aggregated by grid index, never by
 * completion order, and report JSON contains no wall-clock or host state.
 * A campaign run with --jobs N is therefore byte-identical to --jobs 1
 * for the same grid. CI enforces this (scripts/check_determinism.sh).
 */

#ifndef MONDRIAN_SYSTEM_CAMPAIGN_HH
#define MONDRIAN_SYSTEM_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "system/config.hh"
#include "system/runner.hh"

namespace mondrian {

/** Declarative cross-product of runs. */
struct CampaignGrid
{
    /** Systems to evaluate; the first kCpu entry (if any) is the baseline. */
    std::vector<SystemKind> systems;
    std::vector<OpKind> ops;
    /** Scale factors: log2 of |S| tuples. */
    std::vector<unsigned> log2Tuples;
    std::vector<std::uint64_t> seeds;
    /** Key skew for the whole campaign (0 = uniform, as in the paper). */
    double zipfTheta = 0.0;

    /** Number of jobs the grid expands to. */
    std::size_t
    size() const
    {
        return systems.size() * ops.size() * log2Tuples.size() * seeds.size();
    }
};

/** The paper's full evaluation grid (4 ops x 7 systems) at @p log2_tuples. */
CampaignGrid paperGrid(unsigned log2_tuples = 15);

/** Tiny grid for CI smoke runs: 3 systems x 2 ops at 2^10 tuples. */
CampaignGrid smokeGrid();

/** One expanded grid point. */
struct CampaignJob
{
    std::size_t index = 0; ///< position in grid order (aggregation key)
    SystemKind system = SystemKind::kCpu;
    OpKind op = OpKind::kScan;
    unsigned log2Tuples = 15;
    std::uint64_t seed = 42;
    double zipfTheta = 0.0;

    /** Workload this job runs. */
    WorkloadConfig workload() const;
};

/**
 * Flatten @p grid in deterministic order: seeds outermost, then scales,
 * then ops, then systems — so one (seed, scale, op) group's systems are
 * contiguous and baseline comparisons read naturally in the report.
 */
std::vector<CampaignJob> expandGrid(const CampaignGrid &grid);

/** One finished grid point. */
struct CampaignRun
{
    CampaignJob job;
    RunResult result;
};

/**
 * Comparison group of a run: baseline matching is per (seed, scale, op).
 * Shared by the campaign summary and table-rendering callers so the two
 * never drift when the grid grows new axes.
 */
using GridGroupKey = std::tuple<std::uint64_t, unsigned, std::string>;

GridGroupKey gridGroupKey(const CampaignRun &run);

/** Baseline run per comparison group (runs whose system == @p baseline). */
std::map<GridGroupKey, const CampaignRun *>
baselineIndex(const std::vector<CampaignRun> &runs, SystemKind baseline);

/** Campaign-level rollup for one system (vs. the baseline runs). */
struct SystemSummary
{
    std::string system;
    std::size_t runs = 0;
    /** Geomean of total-time speedup vs. baseline over matching runs. */
    double geomeanSpeedup = 0.0;
    /** Geomean of perf/W improvement vs. baseline (Fig. 9 rollup). */
    double geomeanPerfPerWatt = 0.0;
};

/** Everything a campaign produced, in grid order. */
struct CampaignReport
{
    CampaignGrid grid;
    std::vector<CampaignRun> runs;          ///< ordered by job index
    std::string baseline;                   ///< "" when no baseline in grid
    std::vector<SystemSummary> summaries;   ///< empty when no baseline
};

/** Expands a grid and executes it on a thread pool. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(const CampaignGrid &grid) : grid_(grid) {}

    /**
     * Execute the campaign on @p jobs worker threads (1 = serial on the
     * calling thread; 0 = one per hardware thread). Blocks until done.
     */
    CampaignReport run(unsigned jobs = 1);

    /**
     * Observe finished runs as they complete (any thread, serialized by
     * the runner). Completion order is nondeterministic — only use this
     * for progress output, never for aggregation.
     */
    void onRunDone(std::function<void(const CampaignRun &)> cb)
    {
        progress_ = std::move(cb);
    }

    const CampaignGrid &grid() const { return grid_; }

  private:
    CampaignGrid grid_;
    std::function<void(const CampaignRun &)> progress_;
};

/**
 * Render a campaign report as a deterministic JSON document (the CI
 * artifact). Same report, same bytes, regardless of thread count.
 */
std::string campaignReportJson(const CampaignReport &report);

/** Render the summary table (one row per system) for terminal output. */
std::string campaignSummaryTable(const CampaignReport &report);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_CAMPAIGN_HH
