/**
 * @file
 * CampaignRunner: parallel execution of a declarative simulation grid.
 *
 * The paper's evaluation (Figs. 6-9, Tables 1/5) is a cross-product of
 * {system, operator, scale, seed} runs. A CampaignGrid declares that
 * cross-product; expandGrid() flattens it into an ordered job list; and
 * CampaignRunner executes the jobs on a thread pool. Each job builds a
 * fresh MemoryPool/Machine, so jobs share no mutable state and the
 * campaign is embarrassingly parallel.
 *
 * Determinism contract: results are aggregated by grid index, never by
 * completion order, and report JSON contains no wall-clock or host state.
 * A campaign run with --jobs N is therefore byte-identical to --jobs 1
 * for the same grid. CI enforces this (scripts/check_determinism.sh).
 */

#ifndef MONDRIAN_SYSTEM_CAMPAIGN_HH
#define MONDRIAN_SYSTEM_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "system/config.hh"
#include "system/runner.hh"

namespace mondrian {

/** Declarative cross-product of runs. */
struct CampaignGrid
{
    /** Systems to evaluate; the first kCpu entry (if any) is the baseline. */
    std::vector<SystemKind> systems;
    std::vector<OpKind> ops;
    /** Scale factors: log2 of |S| tuples. */
    std::vector<unsigned> log2Tuples;
    std::vector<std::uint64_t> seeds;
    /** Key skew for the whole campaign (0 = uniform, as in the paper). */
    double zipfTheta = 0.0;

    /** Number of jobs the grid expands to. */
    std::size_t
    size() const
    {
        return systems.size() * ops.size() * log2Tuples.size() * seeds.size();
    }
};

/** The paper's full evaluation grid (4 ops x 7 systems) at @p log2_tuples. */
CampaignGrid paperGrid(unsigned log2_tuples = 15);

/** Tiny grid for CI smoke runs: 3 systems x 2 ops at 2^10 tuples. */
CampaignGrid smokeGrid();

/** One expanded grid point. */
struct CampaignJob
{
    std::size_t index = 0; ///< position in grid order (aggregation key)
    SystemKind system = SystemKind::kCpu;
    OpKind op = OpKind::kScan;
    unsigned log2Tuples = 15;
    std::uint64_t seed = 42;
    double zipfTheta = 0.0;

    /** Workload this job runs. */
    WorkloadConfig workload() const;
};

/**
 * Flatten @p grid in deterministic order: seeds outermost, then scales,
 * then ops, then systems — so one (seed, scale, op) group's systems are
 * contiguous and baseline comparisons read naturally in the report.
 */
std::vector<CampaignJob> expandGrid(const CampaignGrid &grid);

/** One finished grid point. */
struct CampaignRun
{
    CampaignJob job;
    RunResult result;
    /**
     * When the run was satisfied from a resume cache, the prior report's
     * verbatim "result" JSON subtree; campaignReportJson splices it so a
     * resumed report is byte-identical to a fresh one. Empty for runs
     * executed in this campaign.
     */
    std::string rawResultJson;
    bool cached = false;
};

/**
 * Comparison group of a run: baseline matching is per (seed, scale, op).
 * Shared by the campaign summary and table-rendering callers so the two
 * never drift when the grid grows new axes.
 */
using GridGroupKey = std::tuple<std::uint64_t, unsigned, std::string>;

GridGroupKey gridGroupKey(const CampaignRun &run);

/** Baseline run per comparison group (runs whose system == @p baseline). */
std::map<GridGroupKey, const CampaignRun *>
baselineIndex(const std::vector<CampaignRun> &runs, SystemKind baseline);

/** Campaign-level rollup for one system (vs. the baseline runs). */
struct SystemSummary
{
    std::string system;
    std::size_t runs = 0;
    /** Geomean of total-time speedup vs. baseline over matching runs. */
    double geomeanSpeedup = 0.0;
    /** Geomean of perf/W improvement vs. baseline (Fig. 9 rollup). */
    double geomeanPerfPerWatt = 0.0;
};

/** Everything a campaign produced, in grid order. */
struct CampaignReport
{
    CampaignGrid grid;
    std::vector<CampaignRun> runs;          ///< ordered by job index
    std::string baseline;                   ///< "" when no baseline in grid
    std::vector<SystemSummary> summaries;   ///< empty when no baseline
    std::size_t cachedRuns = 0;             ///< grid points reused (resume)
};

/**
 * Cache of finished grid points loaded from a prior campaign report.
 *
 * Keyed by the (config, workload) identity hash of a grid point —
 * (system, op, log2 tuples, seed, zipf theta) — which is everything that
 * determines a run's result. A CampaignRunner consults the cache before
 * executing each job and reuses the stored result for hits, so
 * incremental reruns only simulate new grid points (ROADMAP "incremental
 * reruns"). Cached run entries splice back into reports byte-identically
 * (verbatim subtree copy); the summary rollups are recomputed from
 * values that round-tripped the writer's 12-significant-digit encoding,
 * so a resumed summary could in principle differ from a fresh one in the
 * final printed digit of a geomean.
 */
class ResumeCache
{
  public:
    /**
     * Load entries from a prior report's JSON text (schema
     * mondrian-campaign-v1). Replaces the current contents.
     * @return false with @p error set on parse/schema problems.
     */
    bool load(const std::string &json_text, std::string &error);

    std::size_t size() const { return entries_.size(); }

    /** FNV-1a hash identifying one (config, workload) grid point. */
    static std::string gridPointHash(const std::string &system,
                                     const std::string &op,
                                     unsigned log2_tuples,
                                     std::uint64_t seed, double zipf_theta);

    struct Entry
    {
        RunResult result;         ///< parsed (for summaries and progress)
        std::string rawResultJson; ///< verbatim subtree (for splicing)
    };

    /** Lookup by grid-point hash; nullptr on miss. */
    const Entry *find(const std::string &hash) const;

  private:
    std::map<std::string, Entry> entries_;
};

/** Expands a grid and executes it on a thread pool. */
class CampaignRunner
{
  public:
    explicit CampaignRunner(const CampaignGrid &grid) : grid_(grid) {}

    /**
     * Execute the campaign on @p jobs worker threads (1 = serial on the
     * calling thread; 0 = one per hardware thread). Blocks until done.
     */
    CampaignReport run(unsigned jobs = 1);

    /**
     * Observe finished runs as they complete (any thread, serialized by
     * the runner). Completion order is nondeterministic — only use this
     * for progress output, never for aggregation.
     */
    void onRunDone(std::function<void(const CampaignRun &)> cb)
    {
        progress_ = std::move(cb);
    }

    const CampaignGrid &grid() const { return grid_; }

    /**
     * Reuse results from @p cache: grid points whose (config, workload)
     * hash is cached are not executed. The cache must outlive run().
     */
    void setResume(const ResumeCache *cache) { resume_ = cache; }

  private:
    CampaignGrid grid_;
    std::function<void(const CampaignRun &)> progress_;
    const ResumeCache *resume_ = nullptr;
};

/**
 * Render a campaign report as a deterministic JSON document (the CI
 * artifact). Same report, same bytes, regardless of thread count.
 */
std::string campaignReportJson(const CampaignReport &report);

/** Render the summary table (one row per system) for terminal output. */
std::string campaignSummaryTable(const CampaignReport &report);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_CAMPAIGN_HH
