#include "system/campaign_spec.hh"

#include "common/json.hh"
#include "common/json_parse.hh"
#include "system/scenario.hh"

namespace mondrian {

std::string
campaignSpecJson(const CampaignGrid &grid)
{
    JsonWriter w;
    w.setPreciseDoubles(true);
    w.beginObject();
    w.member("schema", "mondrian-campaign-spec-v1");

    w.key("systems").beginArray();
    for (SystemKind k : grid.systems)
        w.value(systemKindName(k));
    w.endArray();

    // A scenario's name is its spec (ops, presets, '>'-chains), so the
    // axis round-trips through scenarioFromSpec.
    w.key("scenarios").beginArray();
    for (const Scenario &sc : grid.scenarios)
        w.value(sc.name);
    w.endArray();

    w.key("log2_tuples").beginArray();
    for (unsigned l : grid.log2Tuples)
        w.value(std::uint64_t{l});
    w.endArray();

    w.key("seeds").beginArray();
    for (std::uint64_t s : grid.seeds)
        w.value(s);
    w.endArray();

    w.key("geometries").beginArray();
    for (const MemGeometry &geo : grid.geometries) {
        w.beginObject();
        w.member("stacks", std::uint64_t{geo.numStacks});
        w.member("vaults_per_stack", std::uint64_t{geo.vaultsPerStack});
        w.member("banks_per_vault", std::uint64_t{geo.banksPerVault});
        w.member("row_bytes", geo.rowBytes);
        w.member("vault_bytes", geo.vaultBytes);
        w.endObject();
    }
    w.endArray();

    w.key("exec_overrides").beginArray();
    for (const ExecOverride &ov : grid.execOverrides) {
        w.beginObject();
        w.member("radix_bits", std::int64_t{ov.radixBits});
        w.member("read_chunk_bytes", std::int64_t{ov.readChunkBytes});
        w.member("tlb_entries", std::int64_t{ov.tlbEntries});
        w.endObject();
    }
    w.endArray();

    w.key("zipf_thetas").beginArray();
    for (double z : grid.zipfThetas)
        w.value(z);
    w.endArray();

    w.key("traffics").beginArray();
    for (const TrafficSpec &t : grid.traffics) {
        w.beginObject();
        w.member("process", arrivalProcessName(t.process));
        w.member("lambda_qps", t.lambdaQps);
        w.member("queries", t.queries);
        w.member("warmup", t.warmup);
        w.member("max_in_flight", t.maxInFlight);
        w.member("seed", t.seed);
        if (!t.mix.empty()) {
            w.key("mix").beginArray();
            for (const TrafficMixEntry &m : t.mix) {
                w.beginObject();
                w.member("scenario", m.scenario.name);
                w.member("weight", m.weight);
                w.endObject();
            }
            w.endArray();
        }
        w.member("mix_zipf_theta", t.mixZipfTheta);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    return w.str();
}

namespace {

bool
specInt(const JsonValue &obj, const char *key, std::int64_t &out,
        std::string &error)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber()) {
        error = std::string("spec member '") + key + "' missing or not a "
                "number";
        return false;
    }
    out = static_cast<std::int64_t>(v->asDouble());
    return true;
}

} // namespace

bool
parseCampaignSpec(const std::string &json_text, CampaignGrid &grid,
                  std::string &error)
{
    grid = CampaignGrid{};
    grid.geometries.clear();
    grid.execOverrides.clear();
    grid.zipfThetas.clear();
    grid.traffics.clear();

    JsonValue doc;
    if (!parseJson(json_text, doc, error))
        return false;
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->asString() != "mondrian-campaign-spec-v1") {
        error = "not a mondrian-campaign-spec-v1 document";
        return false;
    }

    auto axis = [&](const char *name, const JsonValue *&out) {
        out = doc.find(name);
        if (!out || !out->isArray()) {
            error = std::string("spec axis '") + name +
                    "' missing or not an array";
            return false;
        }
        return true;
    };

    const JsonValue *systems, *scenarios, *log2s, *seeds, *geos, *execs,
        *thetas, *traffics;
    if (!axis("systems", systems) || !axis("scenarios", scenarios) ||
        !axis("log2_tuples", log2s) || !axis("seeds", seeds) ||
        !axis("geometries", geos) || !axis("exec_overrides", execs) ||
        !axis("zipf_thetas", thetas) || !axis("traffics", traffics))
        return false;

    for (const JsonValue &v : systems->items) {
        SystemKind k;
        if (!systemKindFromName(v.asString(), k)) {
            error = "unknown system '" + v.asString() + "'";
            return false;
        }
        grid.systems.push_back(k);
    }
    for (const JsonValue &v : scenarios->items) {
        Scenario sc;
        std::string sc_error;
        if (!scenarioFromSpec(v.asString(), sc, sc_error)) {
            error = "scenario '" + v.asString() + "': " + sc_error;
            return false;
        }
        grid.scenarios.push_back(std::move(sc));
    }
    for (const JsonValue &v : log2s->items)
        grid.log2Tuples.push_back(static_cast<unsigned>(v.asU64()));
    for (const JsonValue &v : seeds->items)
        grid.seeds.push_back(v.asU64());

    for (const JsonValue &v : geos->items) {
        std::int64_t stacks, vaults, banks, row, cap;
        if (!specInt(v, "stacks", stacks, error) ||
            !specInt(v, "vaults_per_stack", vaults, error) ||
            !specInt(v, "banks_per_vault", banks, error) ||
            !specInt(v, "row_bytes", row, error) ||
            !specInt(v, "vault_bytes", cap, error))
            return false;
        MemGeometry geo;
        geo.numStacks = static_cast<unsigned>(stacks);
        geo.vaultsPerStack = static_cast<unsigned>(vaults);
        geo.banksPerVault = static_cast<unsigned>(banks);
        geo.rowBytes = v.find("row_bytes")->asU64();
        geo.vaultBytes = v.find("vault_bytes")->asU64();
        grid.geometries.push_back(geo);
    }

    for (const JsonValue &v : execs->items) {
        std::int64_t radix, chunk, tlb;
        if (!specInt(v, "radix_bits", radix, error) ||
            !specInt(v, "read_chunk_bytes", chunk, error) ||
            !specInt(v, "tlb_entries", tlb, error))
            return false;
        ExecOverride ov;
        ov.radixBits = static_cast<int>(radix);
        ov.readChunkBytes = static_cast<int>(chunk);
        ov.tlbEntries = static_cast<int>(tlb);
        grid.execOverrides.push_back(ov);
    }

    for (const JsonValue &v : thetas->items)
        grid.zipfThetas.push_back(v.asDouble());

    for (const JsonValue &v : traffics->items) {
        TrafficSpec t;
        const JsonValue *proc = v.find("process");
        if (!proc || !proc->isString()) {
            error = "traffic entry has no process";
            return false;
        }
        if (proc->asString() == "poisson") {
            t.process = ArrivalProcess::kPoisson;
        } else if (proc->asString() == "fixed") {
            t.process = ArrivalProcess::kFixed;
        } else {
            error = "unknown arrival process '" + proc->asString() + "'";
            return false;
        }
        if (const JsonValue *p = v.find("lambda_qps"))
            t.lambdaQps = p->asDouble();
        if (const JsonValue *p = v.find("queries"))
            t.queries = p->asU64();
        if (const JsonValue *p = v.find("warmup"))
            t.warmup = p->asU64();
        if (const JsonValue *p = v.find("max_in_flight"))
            t.maxInFlight = p->asU64();
        if (const JsonValue *p = v.find("seed"))
            t.seed = p->asU64();
        if (const JsonValue *mix = v.find("mix"); mix && mix->isArray()) {
            for (const JsonValue &mv : mix->items) {
                const JsonValue *name = mv.find("scenario");
                const JsonValue *weight = mv.find("weight");
                if (!name || !weight) {
                    error = "traffic mix entry needs scenario and weight";
                    return false;
                }
                TrafficMixEntry e;
                std::string sc_error;
                if (!scenarioFromSpec(name->asString(), e.scenario,
                                      sc_error)) {
                    error = "mix scenario '" + name->asString() + "': " +
                            sc_error;
                    return false;
                }
                e.weight = weight->asDouble();
                t.mix.push_back(std::move(e));
            }
        }
        if (const JsonValue *p = v.find("mix_zipf_theta"))
            t.mixZipfTheta = p->asDouble();
        grid.traffics.push_back(std::move(t));
    }

    return true;
}

} // namespace mondrian
