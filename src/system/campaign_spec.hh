/**
 * @file
 * campaign.json: the declarative job-spec format shared by the CLI and
 * the distributed coordinator.
 *
 * A spec document serializes a CampaignGrid — every axis, in axis order —
 * so that a worker process can re-expand the identical job list from a
 * file instead of re-parsing CLI flags. Expansion order is part of the
 * contract: job index N in the coordinator IS job index N in every
 * worker, which is what lets the wire protocol ship bare indices.
 *
 * Doubles (zipf thetas, traffic rates, mix weights) are written in exact
 * shortest-round-trip form, not the report's 12-significant-digit
 * canonical form: a worker must reconstruct bit-identical WorkloadConfig
 * values or its results would diverge from an in-process run of the same
 * grid and break the merged-report byte-identity oracle.
 *
 * Scenarios serialize as their spec strings (a scenario's name is its
 * spec: single ops, presets, '>'-joined chains — scenarioFromSpec is the
 * inverse). Geometries and exec overrides serialize field-by-field, like
 * the report's axis tables.
 */

#ifndef MONDRIAN_SYSTEM_CAMPAIGN_SPEC_HH
#define MONDRIAN_SYSTEM_CAMPAIGN_SPEC_HH

#include <string>

#include "system/campaign.hh"

namespace mondrian {

/** Serialize @p grid as a mondrian-campaign-spec-v1 JSON document. */
std::string campaignSpecJson(const CampaignGrid &grid);

/**
 * Parse a spec document produced by campaignSpecJson() (or hand-written)
 * into @p grid. Structural parse only — callers still run
 * validateGrid() before expanding.
 * @return false with @p error set on malformed documents.
 */
bool parseCampaignSpec(const std::string &json_text, CampaignGrid &grid,
                       std::string &error);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_CAMPAIGN_SPEC_HH
