#include "system/config.hh"

#include <algorithm>
#include <cstdlib>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace mondrian {

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kCpu:
        return "cpu";
      case SystemKind::kNmp:
        return "nmp";
      case SystemKind::kNmpPerm:
        return "nmp-perm";
      case SystemKind::kNmpRand:
        return "nmp-rand";
      case SystemKind::kNmpSeq:
        return "nmp-seq";
      case SystemKind::kMondrianNoperm:
        return "mondrian-noperm";
      case SystemKind::kMondrian:
        return "mondrian";
    }
    return "?";
}

bool
systemKindFromName(const std::string &name, SystemKind &out)
{
    for (SystemKind k : allSystemKinds()) {
        if (name == systemKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const std::vector<SystemKind> &
allSystemKinds()
{
    static const std::vector<SystemKind> kinds = {
        SystemKind::kCpu,     SystemKind::kNmp,
        SystemKind::kNmpPerm, SystemKind::kNmpRand,
        SystemKind::kNmpSeq,  SystemKind::kMondrianNoperm,
        SystemKind::kMondrian};
    return kinds;
}

MemGeometry
defaultGeometry()
{
    MemGeometry geo;
    geo.numStacks = 4;
    geo.vaultsPerStack = 16;
    geo.banksPerVault = 8;
    geo.rowBytes = 256;      // HMC row buffer (§3.1)
    geo.vaultBytes = 8 * kMiB; // scaled stand-in for 512 MB vaults
    return geo;
}

std::string
geometryName(const MemGeometry &geo)
{
    auto sizeLabel = [](std::uint64_t bytes) {
        if (bytes >= kMiB && bytes % kMiB == 0)
            return std::to_string(bytes / kMiB) + "MiB";
        if (bytes >= kKiB && bytes % kKiB == 0)
            return std::to_string(bytes / kKiB) + "KiB";
        return std::to_string(bytes) + "B";
    };
    return std::to_string(geo.numStacks) + "x" +
           std::to_string(geo.vaultsPerStack) + "x" +
           std::to_string(geo.banksPerVault) + "-" +
           sizeLabel(geo.vaultBytes) + "-r" + std::to_string(geo.rowBytes);
}

bool
parseGeometrySpec(const std::string &spec, MemGeometry &out, std::string &error)
{
    out = defaultGeometry();
    if (spec == "default")
        return true;
    if (spec.empty()) {
        error = "empty geometry spec";
        return false;
    }

    auto parseUnsigned = [](const std::string &s, std::uint64_t &v,
                            bool allow_suffix) {
        char *end = nullptr;
        unsigned long long raw = std::strtoull(s.c_str(), &end, 10);
        // Cap before scaling so a suffix cannot overflow the multiply.
        if (end == s.c_str() || s[0] == '-' || s[0] == '+' ||
            raw > 64 * kGiB)
            return false;
        std::string suffix(end);
        std::uint64_t scale = 1;
        if (suffix == "KiB" && allow_suffix)
            scale = kKiB;
        else if (suffix == "MiB" && allow_suffix)
            scale = kMiB;
        else if (!suffix.empty())
            return false;
        v = static_cast<std::uint64_t>(raw) * scale;
        return true;
    };

    // Leading "SxV[xB]" shape, then ":"-separated knobs.
    std::size_t colon = spec.find(':');
    std::string shape = spec.substr(0, colon);
    std::vector<std::uint64_t> dims;
    std::size_t pos = 0;
    while (pos <= shape.size()) {
        std::size_t x = shape.find('x', pos);
        std::string tok = shape.substr(
            pos, x == std::string::npos ? std::string::npos : x - pos);
        std::uint64_t v = 0;
        if (!parseUnsigned(tok, v, /*allow_suffix=*/false) || v == 0 ||
            v > (std::uint64_t{1} << 20)) {
            error = "geometry shape '" + shape + "' is not SxV[xB]";
            return false;
        }
        dims.push_back(v);
        if (x == std::string::npos)
            break;
        pos = x + 1;
    }
    if (dims.size() < 2 || dims.size() > 3) {
        error = "geometry shape '" + shape + "' is not SxV[xB]";
        return false;
    }
    out.numStacks = static_cast<unsigned>(dims[0]);
    out.vaultsPerStack = static_cast<unsigned>(dims[1]);
    if (dims.size() == 3)
        out.banksPerVault = static_cast<unsigned>(dims[2]);

    while (colon != std::string::npos) {
        std::size_t next = spec.find(':', colon + 1);
        std::string knob = spec.substr(
            colon + 1,
            next == std::string::npos ? std::string::npos : next - colon - 1);
        std::size_t eq = knob.find('=');
        std::string key = eq == std::string::npos ? knob : knob.substr(0, eq);
        std::uint64_t v = 0;
        if (eq == std::string::npos ||
            !parseUnsigned(knob.substr(eq + 1), v, /*allow_suffix=*/true) ||
            v == 0 || v > 64 * kGiB) {
            error = "geometry knob '" + knob + "' is not row=N or vault=N "
                    "in (0, 64 GiB]";
            return false;
        }
        if (key == "row")
            out.rowBytes = v;
        else if (key == "vault")
            out.vaultBytes = v;
        else {
            error = "unknown geometry knob '" + key +
                    "' (expected row/vault)";
            return false;
        }
        colon = next;
    }
    return validateGeometry(out, error);
}

namespace {

/** Largest power of two <= @p v, clamped to [@p lo, @p hi]. */
std::uint64_t
pow2Clamp(std::uint64_t v, std::uint64_t lo, std::uint64_t hi)
{
    v = std::max(v, std::uint64_t{1});
    return std::clamp(std::uint64_t{1} << floorLog2(v), lo, hi);
}

/**
 * Scaled private L1: preserves "working sets exceed the L1" ratios by
 * scaling with per-vault capacity (default 8 MiB vault -> 4 KiB L1).
 */
CacheConfig
scaledL1(const MemGeometry &geo)
{
    CacheConfig l1;
    l1.sizeBytes = pow2Clamp(geo.vaultBytes / 2048, kKiB, 64 * kKiB);
    l1.associativity = 2;
    l1.lineBytes = 64;
    l1.hitLatency = 2;
    l1.prefetchDepth = 3; // next-line prefetcher, 3 lines (§6)
    return l1;
}

/**
 * Scaled shared LLC (CPU-centric only): scales with total pool capacity
 * (default 512 MiB pool -> 64 KiB LLC).
 */
CacheConfig
scaledLlc(const MemGeometry &geo)
{
    CacheConfig llc;
    llc.sizeBytes = pow2Clamp(geo.totalBytes() / 8192, 16 * kKiB, 8 * kMiB);
    llc.associativity = 16;
    llc.lineBytes = 64;
    llc.hitLatency = 24; // 4-cycle bank + NUCA mesh hops
    llc.prefetchDepth = 0;
    return llc;
}

} // namespace

SystemConfig
makeSystem(SystemKind kind, const MemGeometry &geo)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.name = systemKindName(kind);
    cfg.geo = geo;
    const unsigned vaults = geo.totalVaults();

    switch (kind) {
      case SystemKind::kCpu:
        cfg.topo = Topology::kStarCpu;
        cfg.core = cortexA57();
        cfg.hasL1 = true;
        cfg.hasLlc = true;
        cfg.l1 = scaledL1(geo);
        cfg.llc = scaledLlc(geo);
        cfg.exec = cpuExec(vaults);
        break;

      case SystemKind::kNmp:
      case SystemKind::kNmpRand:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = krait400();
        cfg.hasL1 = true;
        cfg.l1 = scaledL1(geo);
        cfg.exec = nmpExec(vaults, /*permutable=*/false,
                           /*sort_probe=*/false);
        break;

      case SystemKind::kNmpPerm:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = krait400();
        cfg.hasL1 = true;
        cfg.l1 = scaledL1(geo);
        cfg.exec = nmpExec(vaults, /*permutable=*/true,
                           /*sort_probe=*/false);
        break;

      case SystemKind::kNmpSeq:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = krait400();
        cfg.hasL1 = true;
        cfg.l1 = scaledL1(geo);
        cfg.exec = nmpExec(vaults, /*permutable=*/false,
                           /*sort_probe=*/true);
        break;

      case SystemKind::kMondrianNoperm:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = cortexA35Simd();
        cfg.exec = mondrianExec(vaults, /*permutable=*/false);
        break;

      case SystemKind::kMondrian:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = cortexA35Simd();
        cfg.exec = mondrianExec(vaults, /*permutable=*/true);
        break;
    }
    // Mondrian's stream-buffer fetch granularity is row-sized; geometries
    // with rows narrower than the 256 B preset fetch whole rows instead.
    if (cfg.exec.readChunkBytes > geo.rowBytes)
        cfg.exec.readChunkBytes = static_cast<std::uint32_t>(geo.rowBytes);
    return cfg;
}

SystemConfig
makeSystem(SystemKind kind)
{
    return makeSystem(kind, defaultGeometry());
}

} // namespace mondrian
