#include "system/config.hh"

#include "common/logging.hh"

namespace mondrian {

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kCpu:
        return "cpu";
      case SystemKind::kNmp:
        return "nmp";
      case SystemKind::kNmpPerm:
        return "nmp-perm";
      case SystemKind::kNmpRand:
        return "nmp-rand";
      case SystemKind::kNmpSeq:
        return "nmp-seq";
      case SystemKind::kMondrianNoperm:
        return "mondrian-noperm";
      case SystemKind::kMondrian:
        return "mondrian";
    }
    return "?";
}

bool
systemKindFromName(const std::string &name, SystemKind &out)
{
    for (SystemKind k : allSystemKinds()) {
        if (name == systemKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const std::vector<SystemKind> &
allSystemKinds()
{
    static const std::vector<SystemKind> kinds = {
        SystemKind::kCpu,     SystemKind::kNmp,
        SystemKind::kNmpPerm, SystemKind::kNmpRand,
        SystemKind::kNmpSeq,  SystemKind::kMondrianNoperm,
        SystemKind::kMondrian};
    return kinds;
}

MemGeometry
defaultGeometry()
{
    MemGeometry geo;
    geo.numStacks = 4;
    geo.vaultsPerStack = 16;
    geo.banksPerVault = 8;
    geo.rowBytes = 256;      // HMC row buffer (§3.1)
    geo.vaultBytes = 8 * kMiB; // scaled stand-in for 512 MB vaults
    return geo;
}

namespace {

/** Scaled private L1: preserves "working sets exceed the L1" ratios. */
CacheConfig
scaledL1()
{
    CacheConfig l1;
    l1.sizeBytes = 4 * kKiB;
    l1.associativity = 2;
    l1.lineBytes = 64;
    l1.hitLatency = 2;
    l1.prefetchDepth = 3; // next-line prefetcher, 3 lines (§6)
    return l1;
}

/** Scaled shared LLC (CPU-centric only). */
CacheConfig
scaledLlc()
{
    CacheConfig llc;
    llc.sizeBytes = 64 * kKiB;
    llc.associativity = 16;
    llc.lineBytes = 64;
    llc.hitLatency = 24; // 4-cycle bank + NUCA mesh hops
    llc.prefetchDepth = 0;
    return llc;
}

} // namespace

SystemConfig
makeSystem(SystemKind kind, const MemGeometry &geo)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.name = systemKindName(kind);
    cfg.geo = geo;
    const unsigned vaults = geo.totalVaults();

    switch (kind) {
      case SystemKind::kCpu:
        cfg.topo = Topology::kStarCpu;
        cfg.core = cortexA57();
        cfg.hasL1 = true;
        cfg.hasLlc = true;
        cfg.l1 = scaledL1();
        cfg.llc = scaledLlc();
        cfg.exec = cpuExec(vaults);
        break;

      case SystemKind::kNmp:
      case SystemKind::kNmpRand:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = krait400();
        cfg.hasL1 = true;
        cfg.l1 = scaledL1();
        cfg.exec = nmpExec(vaults, /*permutable=*/false,
                           /*sort_probe=*/false);
        break;

      case SystemKind::kNmpPerm:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = krait400();
        cfg.hasL1 = true;
        cfg.l1 = scaledL1();
        cfg.exec = nmpExec(vaults, /*permutable=*/true,
                           /*sort_probe=*/false);
        break;

      case SystemKind::kNmpSeq:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = krait400();
        cfg.hasL1 = true;
        cfg.l1 = scaledL1();
        cfg.exec = nmpExec(vaults, /*permutable=*/false,
                           /*sort_probe=*/true);
        break;

      case SystemKind::kMondrianNoperm:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = cortexA35Simd();
        cfg.exec = mondrianExec(vaults, /*permutable=*/false);
        break;

      case SystemKind::kMondrian:
        cfg.topo = Topology::kFullyConnectedNmp;
        cfg.core = cortexA35Simd();
        cfg.exec = mondrianExec(vaults, /*permutable=*/true);
        break;
    }
    return cfg;
}

SystemConfig
makeSystem(SystemKind kind)
{
    return makeSystem(kind, defaultGeometry());
}

} // namespace mondrian
