/**
 * @file
 * Full system configurations for the six evaluated machines (§6).
 *
 * A SystemConfig bundles the memory geometry, interconnect topology, core
 * microarchitecture, cache hierarchy and execution style. Presets mirror
 * Table 3:
 *
 *  - kCpu:            16 OoO A57 cores @ 2 GHz, L1 + shared LLC,
 *                     star-connected passive cubes (Fig. 5)
 *  - kNmp / kNmpPerm / kNmpRand / kNmpSeq:
 *                     one Krait400-class OoO core per vault, L1 only,
 *                     fully connected active cubes
 *  - kMondrianNoperm / kMondrian:
 *                     one A35+SIMD tile per vault with stream buffers
 *
 * Cache sizes scale with the memory geometry (DESIGN.md §5): the default
 * modeled pool is 512 MiB (64 x 8 MiB vaults) instead of 32 GB, and the
 * caches shrink so the dataset/cache ratios that drive the paper's
 * behavior are preserved. Sweeping the geometry axis (campaign
 * design-space exploration) re-derives the cache sizes from the same
 * ratios, so a 2x-capacity pool also doubles the caches.
 */

#ifndef MONDRIAN_SYSTEM_CONFIG_HH
#define MONDRIAN_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "core/cache.hh"
#include "core/core_model.hh"
#include "dram/timing.hh"
#include "engine/exec_config.hh"
#include "mem/address_map.hh"
#include "noc/network.hh"

namespace mondrian {

/** The evaluated system variants (§6, "Evaluated configurations"). */
enum class SystemKind
{
    kCpu,            ///< CPU-centric baseline
    kNmp,            ///< NMP baseline (exact shuffle + hash probe)
    kNmpPerm,        ///< NMP + permutable shuffle
    kNmpRand,        ///< NMP with hash (random-access) probe
    kNmpSeq,         ///< NMP with sort (sequential) probe
    kMondrianNoperm, ///< Mondrian tiles without permutability
    kMondrian        ///< the full Mondrian Data Engine
};

const char *systemKindName(SystemKind kind);

/** Parse a system name as printed by systemKindName(). */
bool systemKindFromName(const std::string &name, SystemKind &out);

/** All evaluated systems, in Table 3 order. */
const std::vector<SystemKind> &allSystemKinds();

/** Everything needed to build a Machine. */
struct SystemConfig
{
    std::string name;
    SystemKind kind = SystemKind::kMondrian;

    MemGeometry geo;
    Topology topo = Topology::kFullyConnectedNmp;
    DramTiming dram;
    unsigned vaultWindow = 16; ///< FR-FCFS scheduling window

    CoreConfig core;
    bool hasL1 = false;
    bool hasLlc = false;
    CacheConfig l1;
    CacheConfig llc;

    ExecConfig exec;
};

/** Default scaled memory geometry: 4 cubes x 16 vaults x 8 MiB. */
MemGeometry defaultGeometry();

/**
 * Canonical geometry label, e.g. "4x16x8-8MiB-r256" for the default
 * (stacks x vaults/stack x banks/vault - vault capacity - row bytes).
 * Bijective over valid geometries: equal names imply equal geometries, so
 * the name doubles as the axis label in campaign reports and the resume
 * identity.
 */
std::string geometryName(const MemGeometry &geo);

/**
 * Parse a geometry spec into @p out, starting from defaultGeometry().
 *
 * Spec grammar: "default", or "SxV[xB]" (stacks x vaults/stack
 * [x banks/vault], plain integers) optionally followed by ":"-separated
 * knobs "row=BYTES" and "vault=SIZE" (knob values accept KiB/MiB
 * suffixes). Examples: "2x8", "8x32", "4x16:row=2048",
 * "4x16:vault=256KiB".
 *
 * The result is validated with validateGeometry().
 * @return false with @p error set on malformed or invalid specs.
 */
bool parseGeometrySpec(const std::string &spec, MemGeometry &out,
                       std::string &error);

/** Build the preset configuration for @p kind over @p geo. */
SystemConfig makeSystem(SystemKind kind, const MemGeometry &geo);

/** Build with the default geometry. */
SystemConfig makeSystem(SystemKind kind);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_CONFIG_HH
