/**
 * @file
 * Full system configurations for the six evaluated machines (§6).
 *
 * A SystemConfig bundles the memory geometry, interconnect topology, core
 * microarchitecture, cache hierarchy and execution style. Presets mirror
 * Table 3:
 *
 *  - kCpu:            16 OoO A57 cores @ 2 GHz, L1 + shared LLC,
 *                     star-connected passive cubes (Fig. 5)
 *  - kNmp / kNmpPerm / kNmpRand / kNmpSeq:
 *                     one Krait400-class OoO core per vault, L1 only,
 *                     fully connected active cubes
 *  - kMondrianNoperm / kMondrian:
 *                     one A35+SIMD tile per vault with stream buffers
 *
 * Cache sizes default to the geometrically scaled system (DESIGN.md §5):
 * the modeled pool is 512 MiB (64 x 8 MiB vaults) instead of 32 GB, and
 * the caches shrink so the dataset/cache ratios that drive the paper's
 * behavior are preserved.
 */

#ifndef MONDRIAN_SYSTEM_CONFIG_HH
#define MONDRIAN_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "core/cache.hh"
#include "core/core_model.hh"
#include "dram/timing.hh"
#include "engine/exec_config.hh"
#include "mem/address_map.hh"
#include "noc/network.hh"

namespace mondrian {

/** The evaluated system variants (§6, "Evaluated configurations"). */
enum class SystemKind
{
    kCpu,            ///< CPU-centric baseline
    kNmp,            ///< NMP baseline (exact shuffle + hash probe)
    kNmpPerm,        ///< NMP + permutable shuffle
    kNmpRand,        ///< NMP with hash (random-access) probe
    kNmpSeq,         ///< NMP with sort (sequential) probe
    kMondrianNoperm, ///< Mondrian tiles without permutability
    kMondrian        ///< the full Mondrian Data Engine
};

const char *systemKindName(SystemKind kind);

/** Parse a system name as printed by systemKindName(). */
bool systemKindFromName(const std::string &name, SystemKind &out);

/** All evaluated systems, in Table 3 order. */
const std::vector<SystemKind> &allSystemKinds();

/** Everything needed to build a Machine. */
struct SystemConfig
{
    std::string name;
    SystemKind kind = SystemKind::kMondrian;

    MemGeometry geo;
    Topology topo = Topology::kFullyConnectedNmp;
    DramTiming dram;
    unsigned vaultWindow = 16; ///< FR-FCFS scheduling window

    CoreConfig core;
    bool hasL1 = false;
    bool hasLlc = false;
    CacheConfig l1;
    CacheConfig llc;

    ExecConfig exec;
};

/** Default scaled memory geometry: 4 cubes x 16 vaults x 8 MiB. */
MemGeometry defaultGeometry();

/** Build the preset configuration for @p kind over @p geo. */
SystemConfig makeSystem(SystemKind kind, const MemGeometry &geo);

/** Build with the default geometry. */
SystemConfig makeSystem(SystemKind kind);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_CONFIG_HH
