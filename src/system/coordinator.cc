#include "system/coordinator.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "sim/thread_pool.hh"
#include "system/campaign_spec.hh"
#include "system/report.hh"

namespace mondrian {

const char *
faultKindName(FaultInjection::Kind kind)
{
    switch (kind) {
      case FaultInjection::Kind::kCrash: return "crash";
      case FaultInjection::Kind::kHang: return "hang";
      case FaultInjection::Kind::kCorrupt: return "corrupt";
    }
    return "crash";
}

bool
parseFaultInject(const std::string &spec, std::vector<FaultInjection> &out,
                 std::string &error)
{
    out.clear();
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t at = item.find('@');
        if (at == std::string::npos) {
            error = "fault '" + item + "': expected kind@index";
            return false;
        }
        FaultInjection f;
        const std::string kind = item.substr(0, at);
        if (kind == "crash") {
            f.kind = FaultInjection::Kind::kCrash;
        } else if (kind == "hang") {
            f.kind = FaultInjection::Kind::kHang;
        } else if (kind == "corrupt") {
            f.kind = FaultInjection::Kind::kCorrupt;
        } else {
            error = "fault '" + item + "': unknown kind '" + kind +
                    "' (crash, hang, corrupt)";
            return false;
        }
        std::string idx = item.substr(at + 1);
        if (!idx.empty() && idx.back() == '!') {
            f.sticky = true;
            idx.pop_back();
        }
        if (idx.empty() ||
            idx.find_first_not_of("0123456789") != std::string::npos) {
            error = "fault '" + item + "': '" + idx +
                    "' is not a job index";
            return false;
        }
        f.index = static_cast<std::size_t>(
            std::strtoull(idx.c_str(), nullptr, 10));
        out.push_back(f);
    }
    if (out.empty()) {
        error = "empty fault-injection spec";
        return false;
    }
    return true;
}

std::vector<std::vector<std::size_t>>
planShards(const std::vector<std::size_t> &indices, unsigned workers)
{
    if (workers == 0)
        workers = 1;
    std::vector<std::vector<std::size_t>> shards(workers);
    for (std::size_t i = 0; i < indices.size(); ++i)
        shards[i % workers].push_back(indices[i]);
    return shards;
}

std::string
shardPlanListing(const CampaignGrid &grid, unsigned workers,
                 const ResumeCache *resume)
{
    const std::vector<CampaignJob> jobs = expandGrid(grid);
    std::vector<std::size_t> pending;
    for (const CampaignJob &job : jobs) {
        if (resume &&
            resume->find(ResumeCache::gridPointHash(
                systemKindName(job.system), scenarioIdentity(job.scenario),
                job.log2Tuples, job.seed, job.zipfTheta, job.geometry,
                job.exec, job.traffic.name())))
            continue;
        pending.push_back(job.index);
    }
    auto shards = planShards(pending, workers);

    std::string out = "shard plan: " + std::to_string(workers) +
                      " workers, round-robin over " +
                      std::to_string(pending.size()) + " pending jobs\n";
    for (std::size_t w = 0; w < shards.size(); ++w) {
        out += "  worker " + std::to_string(w) + " (" +
               std::to_string(shards[w].size()) + " jobs):";
        for (std::size_t idx : shards[w])
            out += " [" + std::to_string(idx) + "]";
        out += "\n";
    }
    out += "(runtime assignment is dynamic pull-based; a failed worker's "
           "jobs are reassigned)\n";
    return out;
}

namespace {

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** "<len>\n<payload>\n" — the worker->coordinator frame format. */
std::string
frameString(const std::string &payload)
{
    return std::to_string(payload.size()) + "\n" + payload + "\n";
}

/**
 * Extract the next complete frame from @p buf (consuming it).
 * @return 1 on a frame (payload in @p payload), 0 when more bytes are
 * needed, -1 on a framing violation (stream desync).
 */
int
nextFrame(std::string &buf, std::string &payload)
{
    const std::size_t nl = buf.find('\n');
    if (nl == std::string::npos)
        return buf.size() > 32 ? -1 : 0; // a length line is short
    const std::string len_text = buf.substr(0, nl);
    if (len_text.empty() ||
        len_text.find_first_not_of("0123456789") != std::string::npos)
        return -1;
    const std::size_t len = static_cast<std::size_t>(
        std::strtoull(len_text.c_str(), nullptr, 10));
    if (len > (std::size_t{64} << 20))
        return -1; // nonsense length: desync
    if (buf.size() < nl + 1 + len + 1)
        return 0;
    if (buf[nl + 1 + len] != '\n')
        return -1;
    payload = buf.substr(nl + 1, len);
    buf.erase(0, nl + 1 + len + 1);
    return 1;
}

std::string
selfExecutable()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0)
        return std::string(buf, static_cast<std::size_t>(n));
    return "/proc/self/exe";
}

/** Find a fault for @p index that has not fired yet (or is sticky). */
const FaultInjection *
pickFault(std::vector<FaultInjection> &faults, std::vector<bool> &fired,
          std::size_t index)
{
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (faults[i].index != index)
            continue;
        if (faults[i].sticky || !fired[i]) {
            fired[i] = true;
            return &faults[i];
        }
    }
    return nullptr;
}

} // namespace

// ------------------------------------------------------------------ worker

namespace {

/** Serialized writer of length-prefixed frames on stdout. */
class FrameSender
{
  public:
    void
    send(const std::string &payload)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::string frame = frameString(payload);
        std::fwrite(frame.data(), 1, frame.size(), stdout);
        std::fflush(stdout);
    }

  private:
    std::mutex mutex_;
};

} // namespace

int
runCampaignWorker(const std::string &spec_path,
                  double heartbeat_interval_sec)
{
    std::ifstream in(spec_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "worker: cannot open spec '%s'\n",
                     spec_path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    CampaignGrid grid;
    std::string error;
    if (!parseCampaignSpec(ss.str(), grid, error) ||
        !validateGrid(grid, error)) {
        std::fprintf(stderr, "worker: bad spec '%s': %s\n",
                     spec_path.c_str(), error.c_str());
        return 2;
    }
    const std::vector<CampaignJob> jobs = expandGrid(grid);

    // Standalone fault-injection path (tests, manual chaos): the same
    // grammar as --fault-inject, scoped to this process's attempts.
    std::vector<FaultInjection> env_faults;
    if (const char *env = std::getenv("MONDRIAN_FAULT_INJECT");
        env && *env) {
        std::string fault_error;
        if (!parseFaultInject(env, env_faults, fault_error)) {
            std::fprintf(stderr, "worker: MONDRIAN_FAULT_INJECT: %s\n",
                         fault_error.c_str());
            return 2;
        }
    }
    std::vector<bool> env_fired(env_faults.size(), false);

    FrameSender sender;
    {
        JsonWriter w;
        w.beginObject();
        w.member("type", "hello");
        w.member("pid", std::uint64_t(::getpid()));
        w.member("jobs", std::uint64_t{jobs.size()});
        w.endObject();
        sender.send(JsonWriter::compact(w.str()));
    }

    // Heartbeats come from a dedicated thread so a long-running
    // simulation never reads as a hang; the "hang" fault suppresses
    // them to exercise exactly that coordinator path.
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::atomic<bool> hb_suppress{false};
    std::thread heartbeat([&] {
        std::unique_lock<std::mutex> lock(hb_mutex);
        while (!hb_stop) {
            hb_cv.wait_for(lock, std::chrono::duration<double>(
                                     heartbeat_interval_sec));
            if (hb_stop)
                break;
            if (hb_suppress.load())
                continue;
            JsonWriter w;
            w.beginObject();
            w.member("type", "heartbeat");
            w.endObject();
            sender.send(JsonWriter::compact(w.str()));
        }
    });
    auto stop_heartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            hb_stop = true;
        }
        hb_cv.notify_all();
        heartbeat.join();
    };

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue msg;
        std::string parse_error;
        if (!parseJson(line, msg, parse_error)) {
            std::fprintf(stderr, "worker: bad message: %s\n",
                         parse_error.c_str());
            break;
        }
        const JsonValue *type = msg.find("type");
        if (!type || type->asString() == "exit")
            break;
        if (type->asString() != "job")
            continue;
        const JsonValue *idx = msg.find("index");
        if (!idx || idx->asU64() >= jobs.size()) {
            std::fprintf(stderr, "worker: job index out of range\n");
            break;
        }
        const std::size_t index =
            static_cast<std::size_t>(idx->asU64());

        // Fault to apply on this attempt: the coordinator's directive
        // wins; otherwise the env-var path.
        std::string fault;
        if (const JsonValue *f = msg.find("fault"))
            fault = f->asString();
        if (fault.empty()) {
            if (const FaultInjection *f =
                    pickFault(env_faults, env_fired, index))
                fault = faultKindName(f->kind);
        }
        if (fault == "crash") {
            // Die without a result or an exit frame — exactly what an
            // OOM kill or a segfault looks like from the coordinator.
            std::_Exit(70);
        }
        if (fault == "hang") {
            // Wedge: stop heartbeating and never answer. The
            // coordinator's heartbeat timeout must kill us.
            hb_suppress.store(true);
            for (;;)
                std::this_thread::sleep_for(std::chrono::hours(1));
        }
        if (fault == "corrupt") {
            // A well-formed frame whose result subtree fails
            // readRunResult validation.
            JsonWriter w;
            w.beginObject();
            w.member("type", "result");
            w.member("index", std::uint64_t{index});
            w.key("result").beginObject();
            w.member("corrupt", true);
            w.endObject();
            w.endObject();
            sender.send(JsonWriter::compact(w.str()));
            continue;
        }

        try {
            const RunResult result = executeCampaignJob(jobs[index]);
            JsonWriter w;
            // Exact doubles: the coordinator re-parses this into a
            // bit-identical RunResult, so the merged report matches an
            // in-process run byte-for-byte.
            w.setPreciseDoubles(true);
            w.beginObject();
            w.member("type", "result");
            w.member("index", std::uint64_t{index});
            w.key("result");
            writeRunResult(w, result);
            w.endObject();
            sender.send(JsonWriter::compact(w.str()));
        } catch (const std::exception &e) {
            JsonWriter w;
            w.beginObject();
            w.member("type", "error");
            w.member("index", std::uint64_t{index});
            w.member("message", std::string(e.what()));
            w.endObject();
            sender.send(JsonWriter::compact(w.str()));
        }
    }

    stop_heartbeat();
    return 0;
}

// ------------------------------------------------------------- coordinator

namespace {

struct WorkerProc
{
    unsigned id = 0;
    pid_t pid = -1;
    int in = -1;  ///< coordinator -> worker stdin
    int out = -1; ///< worker stdout -> coordinator
    std::string buf;
    bool alive = false;
    bool hello = false;
    double lastSeen = 0.0;
    double jobStart = 0.0;
    std::ptrdiff_t job = -1; ///< assigned grid index, -1 when idle
};

/** Temp file that unlinks itself. */
struct SpecFile
{
    std::string path;

    ~SpecFile()
    {
        if (!path.empty())
            ::unlink(path.c_str());
    }

    bool
    create(const std::string &text, std::string &error)
    {
        char tmpl[] = "/tmp/mondrian-campaign-XXXXXX";
        const int fd = ::mkstemp(tmpl);
        if (fd < 0) {
            error = std::string("mkstemp: ") + std::strerror(errno);
            return false;
        }
        path = tmpl;
        const bool ok = writeAll(fd, text);
        ::close(fd);
        if (!ok)
            error = "cannot write job spec " + path;
        return ok;
    }
};

} // namespace

CampaignReport
CampaignCoordinator::run()
{
    std::string grid_error;
    if (!validateGrid(grid_, grid_error))
        throw std::invalid_argument("invalid campaign grid: " + grid_error);

    const std::vector<CampaignJob> jobs = expandGrid(grid_);

    CampaignReport report;
    report.grid = grid_;
    report.runs.resize(jobs.size());
    for (const CampaignJob &job : jobs)
        report.runs[job.index].job = job;

    std::vector<bool> done(jobs.size(), false);
    std::deque<std::pair<std::size_t, double>> pending; // (index, readyAt)
    for (const CampaignJob &job : jobs) {
        if (resume_) {
            const ResumeCache::Entry *hit =
                resume_->find(ResumeCache::gridPointHash(
                    systemKindName(job.system),
                    scenarioIdentity(job.scenario), job.log2Tuples,
                    job.seed, job.zipfTheta, job.geometry, job.exec,
                    job.traffic.name()));
            if (hit) {
                CampaignRun &slot = report.runs[job.index];
                slot.result = hit->result;
                slot.rawResultJson = hit->rawResultJson;
                slot.cached = true;
                done[job.index] = true;
                report.cachedRuns++;
                continue;
            }
        }
        pending.push_back({job.index, 0.0});
    }

    const std::size_t target = pending.size();
    std::size_t completed = 0, failed = 0;
    std::vector<unsigned> attempts(jobs.size(), 0);
    std::vector<FaultInjection> faults = config_.faults;
    std::vector<bool> fault_fired(faults.size(), false);

    auto finalize = [&] {
        SystemKind baseline;
        for (SystemKind k : grid_.systems) {
            if (k == SystemKind::kCpu) {
                baseline = k;
                report.baseline = systemKindName(baseline);
                report.summaries =
                    summarizeRuns(grid_, report.runs, baseline);
                break;
            }
        }
        return report;
    };
    if (target == 0)
        return finalize();

    // Progress callback serialization for the degraded thread-pool path
    // (the event loop itself is single-threaded).
    std::mutex progress_mutex;
    auto run_done = [&](std::size_t index) {
        done[index] = true;
        ++completed;
        if (progress_) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress_(report.runs[index]);
        }
    };

    // Degraded in-process execution of every unresolved job (spawn
    // failure fallback); also reused when the worker population proves
    // unusable mid-campaign.
    auto run_inline = [&] {
        // Snapshot the unresolved slots before anything is submitted:
        // pool workers flip bits of `done` (std::vector<bool> packs
        // sixty-four slots per word, so done[i] and done[j] share
        // storage) and this loop must not keep reading it concurrently —
        // a data race TSan flagged on the degraded --workers path.
        std::vector<std::size_t> todo;
        for (const CampaignJob &job : jobs)
            if (!done[job.index] && !report.runs[job.index].failed)
                todo.push_back(job.index);
        ThreadPool pool(config_.workers <= 1
                            ? 0
                            : ThreadPool::resolveThreads(config_.workers));
        for (std::size_t index : todo) {
            const CampaignJob &job = jobs[index];
            if (abort_ && abort_->load()) {
                report.runs[job.index].failed = true;
                report.aborted = true;
                continue;
            }
            pool.submit([&, job] {
                if (abort_ && abort_->load()) {
                    report.runs[job.index].failed = true;
                    return;
                }
                report.runs[job.index].result = executeCampaignJob(job);
                std::lock_guard<std::mutex> lock(progress_mutex);
                done[job.index] = true;
                ++completed;
                if (progress_)
                    progress_(report.runs[job.index]);
            });
        }
        pool.wait();
        if (abort_ && abort_->load())
            report.aborted = true;
    };

    // --------------------------------------------------- spawn machinery
    std::string spec_error;
    SpecFile spec;
    if (!spec.create(campaignSpecJson(grid_), spec_error))
        throw std::runtime_error(spec_error);

    std::vector<std::string> argv_prefix = config_.workerCommand;
    if (argv_prefix.empty())
        argv_prefix = {selfExecutable()};
    const double hb_interval =
        std::min(1.0, std::max(0.02, config_.heartbeatTimeoutSec / 4.0));
    std::vector<std::string> argv_tail = {
        "--worker", spec.path, "--heartbeat-interval",
        JsonWriter::doubleString(hb_interval)};

    // A write to a freshly dead worker must fail with EPIPE, not kill
    // the coordinator.
    struct sigaction ignore_pipe{}, old_pipe{};
    ignore_pipe.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    std::vector<WorkerProc> workers;
    unsigned next_worker_id = 0;
    bool any_hello_ever = false;
    unsigned no_hello_deaths = 0;
    unsigned consecutive_failures = 0;
    bool degraded = false;

    auto spawn_worker = [&]() -> bool {
        int to_child[2], from_child[2];
        if (::pipe(to_child) < 0)
            return false;
        if (::pipe(from_child) < 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            return false;
        }
        if (pid == 0) {
            ::dup2(to_child[0], STDIN_FILENO);
            ::dup2(from_child[1], STDOUT_FILENO);
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            // Faults are the coordinator's to deliver (one-shot, via
            // job messages); a user-level env fault must not also
            // re-fire inside every respawned worker.
            ::unsetenv("MONDRIAN_FAULT_INJECT");
            std::vector<std::string> args = argv_prefix;
            args.insert(args.end(), argv_tail.begin(), argv_tail.end());
            std::vector<char *> argv;
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::_Exit(127);
        }
        ::close(to_child[0]);
        ::close(from_child[1]);
        ::fcntl(from_child[0], F_SETFL, O_NONBLOCK);
        WorkerProc w;
        w.id = next_worker_id++;
        w.pid = pid;
        w.in = to_child[1];
        w.out = from_child[0];
        w.alive = true;
        w.lastSeen = monotonicSeconds();
        workers.push_back(w);
        return true;
    };

    auto close_worker_fds = [](WorkerProc &w) {
        if (w.in >= 0)
            ::close(w.in);
        if (w.out >= 0)
            ::close(w.out);
        w.in = w.out = -1;
    };

    auto reap_worker = [&](WorkerProc &w) {
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
        close_worker_fds(w);
        w.alive = false;
    };

    auto attempt_failed = [&](std::size_t index, const std::string &why) {
        ++attempts[index];
        if (attempts[index] > config_.maxRetries) {
            report.runs[index].failed = true;
            report.failedRuns.push_back({index, attempts[index], why});
            ++failed;
            warn("coordinator: job %zu failed permanently after %u "
                 "attempts: %s", index, attempts[index], why.c_str());
        } else {
            const double backoff =
                attempts[index] * config_.retryBackoffSec;
            pending.push_back({index, monotonicSeconds() + backoff});
            inform("coordinator: job %zu attempt %u failed (%s); "
                   "retrying in %.1fs", index, attempts[index],
                   why.c_str(), backoff);
        }
    };

    auto worker_lost = [&](WorkerProc &w, const std::string &why) {
        reap_worker(w);
        ++consecutive_failures;
        if (!w.hello)
            ++no_hello_deaths;
        if (w.job >= 0) {
            attempt_failed(static_cast<std::size_t>(w.job),
                           "worker " + std::to_string(w.id) + " " + why);
            w.job = -1;
        }
    };

    // ------------------------------------------------------- event loop
    while (completed + failed < target) {
        if (abort_ && abort_->load()) {
            report.aborted = true;
            break;
        }
        const double t = monotonicSeconds();

        // Kill wedged or overrunning workers.
        for (WorkerProc &w : workers) {
            if (!w.alive)
                continue;
            if (w.job >= 0 && t - w.jobStart > config_.jobTimeoutSec) {
                warn("coordinator: worker %u exceeded the %.1fs job "
                     "timeout on job %td; killing it", w.id,
                     config_.jobTimeoutSec, w.job);
                worker_lost(w, "hit the job timeout");
            } else if (t - w.lastSeen > config_.heartbeatTimeoutSec) {
                warn("coordinator: worker %u silent for %.1fs "
                     "(heartbeat timeout); killing it", w.id,
                     t - w.lastSeen);
                worker_lost(w, "stopped heartbeating");
            }
        }

        // Unusable-population safety nets -> degrade to in-process.
        if (!any_hello_ever && no_hello_deaths >= config_.workers) {
            warn("coordinator: workers cannot spawn (%u died before "
                 "hello); degrading to in-process execution",
                 no_hello_deaths);
            degraded = true;
        }
        if (consecutive_failures >
            config_.workers * (config_.maxRetries + 1) + 4) {
            warn("coordinator: %u consecutive worker failures; "
                 "degrading to in-process execution",
                 consecutive_failures);
            degraded = true;
        }
        if (degraded)
            break;

        // Keep the population at min(workers, outstanding jobs).
        const std::size_t outstanding = target - completed - failed;
        std::size_t alive = 0;
        for (const WorkerProc &w : workers)
            alive += w.alive ? 1 : 0;
        while (alive < std::min<std::size_t>(config_.workers, outstanding)) {
            if (!spawn_worker()) {
                warn("coordinator: cannot spawn worker (%s); degrading "
                     "to in-process execution", std::strerror(errno));
                degraded = true;
                break;
            }
            ++alive;
        }
        if (degraded)
            break;

        // Assign ready pending jobs to idle workers.
        for (WorkerProc &w : workers) {
            if (!w.alive || w.job >= 0 || pending.empty())
                continue;
            // Jobs in backoff stay queued until their readyAt passes.
            auto ready = pending.end();
            for (auto it = pending.begin(); it != pending.end(); ++it) {
                if (it->second <= t) {
                    ready = it;
                    break;
                }
            }
            if (ready == pending.end())
                continue;
            const std::size_t index = ready->first;
            pending.erase(ready);

            JsonWriter msg;
            msg.beginObject();
            msg.member("type", "job");
            msg.member("index", std::uint64_t{index});
            if (const FaultInjection *f =
                    pickFault(faults, fault_fired, index))
                msg.member("fault", faultKindName(f->kind));
            msg.endObject();
            w.job = static_cast<std::ptrdiff_t>(index);
            w.jobStart = t;
            if (!writeAll(w.in, JsonWriter::compact(msg.str()) + "\n")) {
                // Dead before the assignment landed: requeue with no
                // attempt penalty, recycle the worker.
                w.job = -1;
                pending.push_front({index, t});
                worker_lost(w, "rejected a job assignment");
            }
        }

        // Wait for worker traffic (bounded so timeouts/abort stay live).
        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_worker;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            fds.push_back({workers[i].out, POLLIN, 0});
            fd_worker.push_back(i);
        }
        if (fds.empty())
            continue;
        ::poll(fds.data(), fds.size(), 100);

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerProc &w = workers[fd_worker[i]];
            bool eof = false;
            char chunk[65536];
            for (;;) {
                const ssize_t n = ::read(w.out, chunk, sizeof(chunk));
                if (n > 0) {
                    w.buf.append(chunk, static_cast<std::size_t>(n));
                    continue;
                }
                if (n == 0) {
                    eof = true;
                    break;
                }
                if (errno == EINTR)
                    continue;
                break; // EAGAIN: drained
            }

            // Parse every complete frame.
            bool desync = false;
            std::string payload;
            int st;
            while ((st = nextFrame(w.buf, payload)) == 1) {
                JsonValue msg;
                std::string parse_error;
                if (!parseJson(payload, msg, parse_error)) {
                    desync = true;
                    break;
                }
                const JsonValue *type = msg.find("type");
                const std::string kind = type ? type->asString() : "";
                w.lastSeen = monotonicSeconds();
                if (kind == "hello") {
                    w.hello = true;
                    any_hello_ever = true;
                } else if (kind == "heartbeat") {
                    // lastSeen refresh above is the whole point
                } else if (kind == "result" || kind == "error") {
                    const JsonValue *idx = msg.find("index");
                    if (!idx ||
                        idx->asU64() >= jobs.size() ||
                        w.job !=
                            static_cast<std::ptrdiff_t>(idx->asU64())) {
                        desync = true;
                        break;
                    }
                    const std::size_t index =
                        static_cast<std::size_t>(idx->asU64());
                    w.job = -1;
                    if (kind == "error") {
                        const JsonValue *m = msg.find("message");
                        attempt_failed(index,
                                       m ? m->asString()
                                         : "worker error");
                        continue;
                    }
                    const JsonValue *result = msg.find("result");
                    RunResult parsed;
                    if (!result || !readRunResult(*result, parsed)) {
                        attempt_failed(index, "corrupt result frame");
                        continue;
                    }
                    report.runs[index].result = std::move(parsed);
                    consecutive_failures = 0;
                    run_done(index);
                } else {
                    desync = true;
                    break;
                }
            }
            if (st < 0)
                desync = true;
            if (desync) {
                warn("coordinator: worker %u broke the frame protocol; "
                     "killing it", w.id);
                worker_lost(w, "broke the frame protocol");
                continue;
            }
            if (eof)
                worker_lost(w, "exited unexpectedly");
        }
    }

    // ------------------------------------------------------- shutdown
    for (WorkerProc &w : workers) {
        if (!w.alive)
            continue;
        writeAll(w.in, "{\"type\": \"exit\"}\n");
        if (w.in >= 0) {
            ::close(w.in);
            w.in = -1;
        }
    }
    const double shutdown_start = monotonicSeconds();
    for (WorkerProc &w : workers) {
        while (w.alive && w.pid > 0) {
            const pid_t r = ::waitpid(w.pid, nullptr, WNOHANG);
            if (r == w.pid || (r < 0 && errno == ECHILD)) {
                w.pid = -1;
                close_worker_fds(w);
                w.alive = false;
                break;
            }
            if (monotonicSeconds() - shutdown_start > 2.0) {
                reap_worker(w);
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    if (degraded)
        run_inline();

    return finalize();
}

} // namespace mondrian
