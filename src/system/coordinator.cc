#include "system/coordinator.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "common/logging.hh"
#include "net/transport.hh"
#include "sim/thread_pool.hh"
#include "system/campaign_spec.hh"
#include "system/report.hh"

namespace mondrian {

const char *
faultKindName(FaultInjection::Kind kind)
{
    switch (kind) {
      case FaultInjection::Kind::kCrash: return "crash";
      case FaultInjection::Kind::kHang: return "hang";
      case FaultInjection::Kind::kCorrupt: return "corrupt";
      case FaultInjection::Kind::kDisconnect: return "disconnect";
    }
    return "crash";
}

bool
parseFaultInject(const std::string &spec, std::vector<FaultInjection> &out,
                 std::string &error)
{
    out.clear();
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const std::size_t at = item.find('@');
        if (at == std::string::npos) {
            error = "fault '" + item + "': expected kind@index";
            return false;
        }
        FaultInjection f;
        const std::string kind = item.substr(0, at);
        if (kind == "crash") {
            f.kind = FaultInjection::Kind::kCrash;
        } else if (kind == "hang") {
            f.kind = FaultInjection::Kind::kHang;
        } else if (kind == "corrupt") {
            f.kind = FaultInjection::Kind::kCorrupt;
        } else if (kind == "disconnect") {
            f.kind = FaultInjection::Kind::kDisconnect;
        } else {
            error = "fault '" + item + "': unknown kind '" + kind +
                    "' (crash, hang, corrupt, disconnect)";
            return false;
        }
        std::string idx = item.substr(at + 1);
        if (!idx.empty() && idx.back() == '!') {
            f.sticky = true;
            idx.pop_back();
        }
        if (idx.empty() ||
            idx.find_first_not_of("0123456789") != std::string::npos) {
            error = "fault '" + item + "': '" + idx +
                    "' is not a job index";
            return false;
        }
        f.index = static_cast<std::size_t>(
            std::strtoull(idx.c_str(), nullptr, 10));
        out.push_back(f);
    }
    if (out.empty()) {
        error = "empty fault-injection spec";
        return false;
    }
    return true;
}

std::vector<std::vector<std::size_t>>
planShards(const std::vector<std::size_t> &indices, unsigned workers)
{
    if (workers == 0)
        workers = 1;
    std::vector<std::vector<std::size_t>> shards(workers);
    for (std::size_t i = 0; i < indices.size(); ++i)
        shards[i % workers].push_back(indices[i]);
    return shards;
}

std::string
shardPlanListing(const CampaignGrid &grid, unsigned workers,
                 const ResumeCache *resume)
{
    const std::vector<CampaignJob> jobs = expandGrid(grid);
    std::vector<std::size_t> pending;
    for (const CampaignJob &job : jobs) {
        if (resume && resume->find(campaignJobKey(job)))
            continue;
        pending.push_back(job.index);
    }
    auto shards = planShards(pending, workers);

    std::string out = "shard plan: " + std::to_string(workers) +
                      " workers, round-robin over " +
                      std::to_string(pending.size()) + " pending jobs\n";
    for (std::size_t w = 0; w < shards.size(); ++w) {
        out += "  worker " + std::to_string(w) + " (" +
               std::to_string(shards[w].size()) + " jobs):";
        for (std::size_t idx : shards[w])
            out += " [" + std::to_string(idx) + "]";
        out += "\n";
    }
    out += "(runtime assignment is dynamic pull-based; a failed worker's "
           "jobs are reassigned)\n";
    return out;
}

namespace {

double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
selfExecutable()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0)
        return std::string(buf, static_cast<std::size_t>(n));
    return "/proc/self/exe";
}

/** Find a fault for @p index that has not fired yet (or is sticky). */
const FaultInjection *
pickFault(std::vector<FaultInjection> &faults, std::vector<bool> &fired,
          std::size_t index)
{
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (faults[i].index != index)
            continue;
        if (faults[i].sticky || !fired[i]) {
            fired[i] = true;
            return &faults[i];
        }
    }
    return nullptr;
}

/**
 * Block until one complete protocol message arrives on @p t.
 * @return false when the channel hit EOF, a read error, or a framing
 * violation — from a worker's point of view all three mean "the
 * coordinator is gone", and reconnect-or-exit is the caller's call.
 */
bool
awaitMessage(Transport &t, std::string &payload)
{
    for (;;) {
        const int st = t.next(payload);
        if (st > 0)
            return true;
        if (st < 0)
            return false;
        const Transport::Pump p = t.pump();
        if (p == Transport::Pump::kEof || p == Transport::Pump::kError)
            return false;
    }
}

} // namespace

// ------------------------------------------------- worker-side result cache

namespace {

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

/**
 * Cache entry path: the filename is a hash of the injective grid-point
 * key (keys embed scenario structure and can be long); the key itself
 * is stored INSIDE the entry and verified on read, so a hash collision
 * degrades to a miss, never a wrong result.
 */
std::string
workerCachePath(const std::string &dir, const std::string &key)
{
    return dir + "/" + hex16(fnv1a64(key)) + ".json";
}

bool
ensureWorkerCacheDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    std::fprintf(stderr,
                 "worker: cannot create cache dir '%s' (%s); caching "
                 "disabled\n",
                 dir.c_str(), std::strerror(errno));
    return false;
}

/**
 * Look @p key up in the cache at @p dir. On a hit, @p raw_result gets
 * the stored result subtree VERBATIM — exact-double JSON written by
 * workerCacheStore — so forwarding it upstream is byte-equivalent to
 * re-running the simulation. Unreadable, corrupt, or mismatched entries
 * are misses.
 */
bool
workerCacheLookup(const std::string &dir, const std::string &key,
                  std::string &raw_result)
{
    const std::string path = workerCachePath(dir, key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    JsonValue root;
    std::string parse_error;
    if (!parseJson(text, root, parse_error)) {
        std::fprintf(stderr, "worker: ignoring corrupt cache entry %s\n",
                     path.c_str());
        return false;
    }
    const JsonValue *stored_key = root.find("key");
    if (!stored_key || !stored_key->isString() ||
        stored_key->asString() != key)
        return false; // filename-hash collision or stale entry: a miss
    const JsonValue *result = root.find("result");
    RunResult parsed;
    if (!result || !readRunResult(*result, parsed)) {
        std::fprintf(stderr, "worker: ignoring unreadable cache entry %s\n",
                     path.c_str());
        return false;
    }
    raw_result = text.substr(result->begin, result->end - result->begin);
    return true;
}

/** Persist one finished job (atomically: tmp file + rename). The entry
 *  is exactly a campaign journal line, key and exact doubles included. */
void
workerCacheStore(const std::string &dir, const CampaignJob &job,
                 const RunResult &result)
{
    const std::string path = workerCachePath(dir, campaignJobKey(job));
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out)
        out << campaignJournalLine(job, result);
    out.close();
    if (!out || ::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "worker: cannot write cache entry %s (%s)\n",
                     path.c_str(), std::strerror(errno));
        ::unlink(tmp.c_str());
    }
}

} // namespace

// ------------------------------------------------------------------ worker

namespace {

/** How serveCampaignJobs() ended. */
enum class ServeStatus
{
    kExit,           ///< coordinator sent an orderly exit message
    kEof,            ///< channel hit EOF or a read error
    kDesync,         ///< unparseable traffic from the coordinator
    kDisconnectFault ///< an injected disconnect fault fired
};

/** Everything a worker's serve loop needs besides the channel. */
struct ServeContext
{
    const std::vector<CampaignJob> *jobs = nullptr;
    double heartbeatIntervalSec = 1.0;
    std::string cacheDir; ///< empty = no result cache
    /** Env-var fault plan (standalone chaos path) and its fired state;
     *  owned by the caller so stickiness survives TCP reconnects. */
    std::vector<FaultInjection> *envFaults = nullptr;
    std::vector<bool> *envFired = nullptr;
};

/**
 * The worker serve loop, shared verbatim by pipe workers (--worker) and
 * TCP workers (--worker-connect): answer job messages with result
 * frames, beat a heartbeat from a dedicated thread, apply injected
 * faults, and serve repeats from the result cache when one is
 * configured.
 */
ServeStatus
serveCampaignJobs(Transport &t, ServeContext &ctx)
{
    const std::vector<CampaignJob> &jobs = *ctx.jobs;
    const bool cache_ok =
        !ctx.cacheDir.empty() && ensureWorkerCacheDir(ctx.cacheDir);

    // Heartbeats come from a dedicated thread so a long-running
    // simulation never reads as a hang; the "hang" fault suppresses
    // them to exercise exactly that coordinator path.
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::atomic<bool> hb_suppress{false};
    std::thread heartbeat([&] {
        std::unique_lock<std::mutex> lock(hb_mutex);
        while (!hb_stop) {
            hb_cv.wait_for(lock, std::chrono::duration<double>(
                                     ctx.heartbeatIntervalSec));
            if (hb_stop)
                break;
            if (hb_suppress.load())
                continue;
            t.send("{\"type\": \"heartbeat\"}");
        }
    });
    auto stop_heartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            hb_stop = true;
        }
        hb_cv.notify_all();
        heartbeat.join();
    };

    ServeStatus status = ServeStatus::kEof;
    std::string payload;
    for (;;) {
        if (!awaitMessage(t, payload)) {
            status = ServeStatus::kEof;
            break;
        }
        JsonValue msg;
        std::string parse_error;
        if (!parseJson(payload, msg, parse_error)) {
            std::fprintf(stderr, "worker: bad message: %s\n",
                         parse_error.c_str());
            status = ServeStatus::kDesync;
            break;
        }
        const JsonValue *type = msg.find("type");
        if (!type || type->asString() == "exit") {
            status = ServeStatus::kExit;
            break;
        }
        if (type->asString() != "job")
            continue;
        const JsonValue *idx = msg.find("index");
        if (!idx || idx->asU64() >= jobs.size()) {
            std::fprintf(stderr, "worker: job index out of range\n");
            status = ServeStatus::kDesync;
            break;
        }
        const std::size_t index = static_cast<std::size_t>(idx->asU64());

        // Fault to apply on this attempt: the coordinator's directive
        // wins; otherwise the env-var path.
        std::string fault;
        if (const JsonValue *f = msg.find("fault"))
            fault = f->asString();
        if (fault.empty() && ctx.envFaults) {
            if (const FaultInjection *f =
                    pickFault(*ctx.envFaults, *ctx.envFired, index))
                fault = faultKindName(f->kind);
        }
        if (fault == "crash") {
            // Die without a result or an exit frame — exactly what an
            // OOM kill or a segfault looks like from the coordinator.
            std::_Exit(70);
        }
        if (fault == "hang") {
            // Wedge: stop heartbeating and never answer. The
            // coordinator's heartbeat timeout must kill us.
            hb_suppress.store(true);
            for (;;)
                std::this_thread::sleep_for(std::chrono::hours(1));
        }
        if (fault == "disconnect") {
            // Drop the channel mid-job without a result — what a cable
            // pull looks like. A pipe worker just exits (the
            // coordinator sees EOF and respawns); a --worker-connect
            // worker reconnects and rejoins as a fresh worker.
            status = ServeStatus::kDisconnectFault;
            break;
        }
        if (fault == "corrupt") {
            // A well-formed frame whose result subtree fails
            // readRunResult validation.
            JsonWriter w;
            w.beginObject();
            w.member("type", "result");
            w.member("index", std::uint64_t{index});
            w.key("result").beginObject();
            w.member("corrupt", true);
            w.endObject();
            w.endObject();
            t.send(JsonWriter::compact(w.str()));
            continue;
        }

        if (cache_ok) {
            std::string raw;
            if (workerCacheLookup(ctx.cacheDir, campaignJobKey(jobs[index]),
                                  raw)) {
                // The stored subtree carries exact doubles, so splicing
                // it verbatim is byte-equivalent to re-simulating.
                std::fprintf(stderr, "worker: cache hit for job %zu\n",
                             index);
                t.send("{\"type\": \"result\", \"index\": " +
                       std::to_string(index) +
                       ", \"cached\": true, \"result\": " + raw + "}");
                continue;
            }
        }

        try {
            const RunResult result = executeCampaignJob(jobs[index]);
            JsonWriter w;
            // Exact doubles: the coordinator re-parses this into a
            // bit-identical RunResult, so the merged report matches an
            // in-process run byte-for-byte.
            w.setPreciseDoubles(true);
            w.beginObject();
            w.member("type", "result");
            w.member("index", std::uint64_t{index});
            w.key("result");
            writeRunResult(w, result);
            w.endObject();
            t.send(JsonWriter::compact(w.str()));
            if (cache_ok)
                workerCacheStore(ctx.cacheDir, jobs[index], result);
        } catch (const std::exception &e) {
            JsonWriter w;
            w.beginObject();
            w.member("type", "error");
            w.member("index", std::uint64_t{index});
            w.member("message", std::string(e.what()));
            w.endObject();
            t.send(JsonWriter::compact(w.str()));
        }
    }

    stop_heartbeat();
    return status;
}

/** Parse MONDRIAN_FAULT_INJECT; false (with a message) on bad grammar. */
bool
loadEnvFaults(std::vector<FaultInjection> &out)
{
    if (const char *env = std::getenv("MONDRIAN_FAULT_INJECT");
        env && *env) {
        std::string fault_error;
        if (!parseFaultInject(env, out, fault_error)) {
            std::fprintf(stderr, "worker: MONDRIAN_FAULT_INJECT: %s\n",
                         fault_error.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
runCampaignWorker(const std::string &spec_path,
                  double heartbeat_interval_sec,
                  const std::string &cache_dir)
{
    // Writes to a dead coordinator must fail with EPIPE, not a signal.
    ::signal(SIGPIPE, SIG_IGN);

    std::ifstream in(spec_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "worker: cannot open spec '%s'\n",
                     spec_path.c_str());
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    CampaignGrid grid;
    std::string error;
    if (!parseCampaignSpec(ss.str(), grid, error) ||
        !validateGrid(grid, error)) {
        std::fprintf(stderr, "worker: bad spec '%s': %s\n",
                     spec_path.c_str(), error.c_str());
        return 2;
    }
    const std::vector<CampaignJob> jobs = expandGrid(grid);

    std::vector<FaultInjection> env_faults;
    if (!loadEnvFaults(env_faults))
        return 2;
    std::vector<bool> env_fired(env_faults.size(), false);

    PipeTransport t(Transport::Role::kWorker, STDIN_FILENO, STDOUT_FILENO,
                    false);
    {
        JsonWriter w;
        w.beginObject();
        w.member("type", "hello");
        w.member("pid", std::uint64_t(::getpid()));
        w.member("jobs", std::uint64_t{jobs.size()});
        w.endObject();
        t.send(JsonWriter::compact(w.str()));
    }

    ServeContext ctx;
    ctx.jobs = &jobs;
    ctx.heartbeatIntervalSec = heartbeat_interval_sec;
    ctx.cacheDir = cache_dir;
    ctx.envFaults = &env_faults;
    ctx.envFired = &env_fired;
    serveCampaignJobs(t, ctx);
    return 0;
}

int
runConnectWorker(const std::string &endpoint_spec,
                 const ConnectWorkerOptions &options)
{
    ::signal(SIGPIPE, SIG_IGN);

    Endpoint ep;
    std::string error;
    if (!parseEndpoint(endpoint_spec, ep, error)) {
        std::fprintf(stderr, "worker: %s\n", error.c_str());
        return 2;
    }

    std::vector<FaultInjection> env_faults;
    if (!loadEnvFaults(env_faults))
        return 2;
    std::vector<bool> env_fired(env_faults.size(), false);

    // Consecutive connect/rejoin failures; reset by a successful join so
    // a long campaign tolerates any number of isolated drops.
    unsigned failures = 0;
    auto fail_retry = [&](const std::string &why) -> bool {
        ++failures;
        if (failures > options.reconnectAttempts) {
            std::fprintf(stderr, "worker: %s; giving up after %u "
                         "consecutive failures\n", why.c_str(), failures);
            return false;
        }
        const double backoff = failures * options.reconnectBackoffSec;
        std::fprintf(stderr, "worker: %s; retrying in %.1fs (%u/%u)\n",
                     why.c_str(), backoff, failures,
                     options.reconnectAttempts);
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        return true;
    };

    std::vector<CampaignJob> jobs;
    for (;;) {
        Socket conn = Socket::connect(ep, error);
        if (!conn.valid()) {
            if (!fail_retry(error))
                return kExitNetwork;
            continue;
        }
        TcpTransport t(std::move(conn));

        // ---- handshake: hello(token) -> spec -> ready(job count)
        {
            JsonWriter w;
            w.beginObject();
            w.member("type", "hello");
            w.member("pid", std::uint64_t(::getpid()));
            w.member("token", options.helloToken);
            w.endObject();
            if (!t.send(JsonWriter::compact(w.str()))) {
                if (!fail_retry("connection dropped during hello"))
                    return kExitNetwork;
                continue;
            }
        }

        std::string payload;
        if (!awaitMessage(t, payload)) {
            if (!fail_retry("connection dropped before the campaign spec "
                            "arrived"))
                return kExitNetwork;
            continue;
        }
        JsonValue msg;
        if (!parseJson(payload, msg, error)) {
            std::fprintf(stderr, "worker: bad handshake message: %s\n",
                         error.c_str());
            return kExitNetwork;
        }
        const JsonValue *type = msg.find("type");
        const std::string kind = type ? type->asString() : "";
        if (kind == "reject") {
            const JsonValue *reason = msg.find("reason");
            std::fprintf(stderr, "worker: coordinator rejected us: %s\n",
                         reason ? reason->asString().c_str()
                                : "no reason given");
            return kExitNetwork; // final: a retry would be rejected too
        }
        if (kind != "spec") {
            std::fprintf(stderr, "worker: expected a spec message, got "
                         "'%s'\n", kind.c_str());
            return kExitNetwork;
        }
        const JsonValue *spec_text = msg.find("spec");
        const JsonValue *hb = msg.find("heartbeat_interval");
        CampaignGrid grid;
        if (!spec_text || !spec_text->isString() ||
            !parseCampaignSpec(spec_text->asString(), grid, error) ||
            !validateGrid(grid, error)) {
            std::fprintf(stderr, "worker: bad campaign spec over the "
                         "wire: %s\n", error.c_str());
            return kExitNetwork;
        }
        jobs = expandGrid(grid);

        {
            JsonWriter w;
            w.beginObject();
            w.member("type", "ready");
            w.member("jobs", std::uint64_t{jobs.size()});
            w.endObject();
            if (!t.send(JsonWriter::compact(w.str()))) {
                if (!fail_retry("connection dropped during the ready "
                                "reply"))
                    return kExitNetwork;
                continue;
            }
        }
        std::fprintf(stderr, "worker: joined %s (%zu jobs in the grid)\n",
                     ep.name().c_str(), jobs.size());
        failures = 0;

        ServeContext ctx;
        ctx.jobs = &jobs;
        ctx.heartbeatIntervalSec =
            hb && hb->isNumber() ? hb->asDouble() : 1.0;
        ctx.cacheDir = options.cacheDir;
        ctx.envFaults = &env_faults;
        ctx.envFired = &env_fired;
        const ServeStatus st = serveCampaignJobs(t, ctx);
        t.close();
        if (st == ServeStatus::kExit)
            return 0; // orderly campaign end
        const char *why = st == ServeStatus::kDisconnectFault
                              ? "injected disconnect fault"
                              : "connection to the coordinator lost";
        if (!fail_retry(why))
            return kExitNetwork;
    }
}

// ------------------------------------------------------------- coordinator

namespace {

/** One worker channel — a local subprocess over pipes or a remote TCP
 *  connection; the event loop treats them uniformly via Transport. */
struct WorkerChan
{
    unsigned id = 0;
    std::unique_ptr<Transport> transport;
    pid_t pid = -1; ///< local subprocess pid; -1 for remote workers
    bool remote = false;
    bool alive = false;
    bool hello = false;
    /** Assignable: local workers from spawn, remote workers only after
     *  the hello/spec/ready handshake completed. */
    bool ready = false;
    double lastSeen = 0.0;
    double jobStart = 0.0;
    std::ptrdiff_t job = -1; ///< assigned grid index, -1 when idle
};

/** Temp file that unlinks itself. */
struct SpecFile
{
    std::string path;

    ~SpecFile()
    {
        if (!path.empty())
            ::unlink(path.c_str());
    }

    bool
    create(const std::string &text, std::string &error)
    {
        char tmpl[] = "/tmp/mondrian-campaign-XXXXXX";
        const int fd = ::mkstemp(tmpl);
        if (fd < 0) {
            error = std::string("mkstemp: ") + std::strerror(errno);
            return false;
        }
        path = tmpl;
        const bool ok = writeAll(fd, text);
        ::close(fd);
        if (!ok)
            error = "cannot write job spec " + path;
        return ok;
    }
};

} // namespace

bool
CampaignCoordinator::listen(std::string &error)
{
    if (config_.listenEndpoint.empty() || listenSocket_.valid())
        return true;
    Endpoint ep;
    if (!parseEndpoint(config_.listenEndpoint, ep, error))
        return false;
    Socket s = Socket::listen(ep, error);
    if (!s.valid() || !s.setNonBlocking(error))
        return false;
    listenSocket_ = std::move(s);
    inform("coordinator: listening for remote workers on %s (port %u)",
           ep.name().c_str(), unsigned{listenSocket_.localPort()});
    return true;
}

std::uint16_t
CampaignCoordinator::listenPort() const
{
    return listenSocket_.valid() ? listenSocket_.localPort() : 0;
}

CampaignReport
CampaignCoordinator::run()
{
    std::string grid_error;
    if (!validateGrid(grid_, grid_error))
        throw std::invalid_argument("invalid campaign grid: " + grid_error);

    if (!config_.listenEndpoint.empty() && !listenSocket_.valid()) {
        std::string listen_error;
        if (!listen(listen_error))
            throw std::runtime_error(listen_error);
    }
    const bool listening = listenSocket_.valid();

    const std::vector<CampaignJob> jobs = expandGrid(grid_);

    CampaignReport report;
    report.grid = grid_;
    report.runs.resize(jobs.size());
    for (const CampaignJob &job : jobs)
        report.runs[job.index].job = job;

    std::vector<bool> done(jobs.size(), false);
    std::deque<std::pair<std::size_t, double>> pending; // (index, readyAt)
    for (const CampaignJob &job : jobs) {
        if (resume_) {
            const ResumeCache::Entry *hit =
                resume_->find(campaignJobKey(job));
            if (hit) {
                CampaignRun &slot = report.runs[job.index];
                slot.result = hit->result;
                slot.rawResultJson = hit->rawResultJson;
                slot.cached = true;
                done[job.index] = true;
                report.cachedRuns++;
                continue;
            }
        }
        pending.push_back({job.index, 0.0});
    }

    const std::size_t target = pending.size();
    std::size_t completed = 0, failed = 0;
    std::vector<unsigned> attempts(jobs.size(), 0);
    std::vector<FaultInjection> faults = config_.faults;
    std::vector<bool> fault_fired(faults.size(), false);

    auto finalize = [&] {
        SystemKind baseline;
        for (SystemKind k : grid_.systems) {
            if (k == SystemKind::kCpu) {
                baseline = k;
                report.baseline = systemKindName(baseline);
                report.summaries =
                    summarizeRuns(grid_, report.runs, baseline);
                break;
            }
        }
        return report;
    };
    if (target == 0)
        return finalize();

    // Progress callback serialization for the degraded thread-pool path
    // (the event loop itself is single-threaded).
    std::mutex progress_mutex;
    auto run_done = [&](std::size_t index) {
        done[index] = true;
        ++completed;
        if (progress_) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress_(report.runs[index]);
        }
    };

    // Degraded in-process execution of every unresolved job (spawn
    // failure fallback); also reused when the worker population proves
    // unusable mid-campaign.
    auto run_inline = [&] {
        // Snapshot the unresolved slots before anything is submitted:
        // pool workers flip bits of `done` (std::vector<bool> packs
        // sixty-four slots per word, so done[i] and done[j] share
        // storage) and this loop must not keep reading it concurrently —
        // a data race TSan flagged on the degraded --workers path.
        std::vector<std::size_t> todo;
        for (const CampaignJob &job : jobs)
            if (!done[job.index] && !report.runs[job.index].failed)
                todo.push_back(job.index);
        ThreadPool pool(config_.workers <= 1
                            ? 0
                            : ThreadPool::resolveThreads(config_.workers));
        for (std::size_t index : todo) {
            const CampaignJob &job = jobs[index];
            if (abort_ && abort_->load()) {
                report.runs[job.index].failed = true;
                report.aborted = true;
                continue;
            }
            pool.submit([&, job] {
                if (abort_ && abort_->load()) {
                    report.runs[job.index].failed = true;
                    return;
                }
                report.runs[job.index].result = executeCampaignJob(job);
                std::lock_guard<std::mutex> lock(progress_mutex);
                done[job.index] = true;
                ++completed;
                if (progress_)
                    progress_(report.runs[job.index]);
            });
        }
        pool.wait();
        if (abort_ && abort_->load())
            report.aborted = true;
    };

    // Nothing to run workers with and nobody to wait for: execute
    // in-process rather than spinning forever.
    if (!listening && config_.workers == 0) {
        run_inline();
        return finalize();
    }

    // --------------------------------------------------- spawn machinery
    const std::string spec_json = campaignSpecJson(grid_);
    std::string spec_error;
    SpecFile spec;
    if (!spec.create(spec_json, spec_error))
        throw std::runtime_error(spec_error);

    std::vector<std::string> argv_prefix = config_.workerCommand;
    if (argv_prefix.empty())
        argv_prefix = {selfExecutable()};
    const double hb_interval =
        std::min(1.0, std::max(0.02, config_.heartbeatTimeoutSec / 4.0));
    std::vector<std::string> argv_tail = {
        "--worker", spec.path, "--heartbeat-interval",
        JsonWriter::doubleString(hb_interval)};
    if (!config_.workerCacheDir.empty()) {
        argv_tail.push_back("--worker-cache");
        argv_tail.push_back(config_.workerCacheDir);
    }

    // A write to a freshly dead worker must fail with EPIPE, not kill
    // the coordinator.
    struct sigaction ignore_pipe{}, old_pipe{};
    ignore_pipe.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    std::vector<WorkerChan> workers;
    unsigned next_worker_id = 0;
    bool any_hello_ever = false;
    unsigned no_hello_deaths = 0;
    unsigned consecutive_failures = 0;
    bool degraded = false;

    auto spawn_worker = [&]() -> bool {
        int to_child[2], from_child[2];
        if (::pipe(to_child) < 0)
            return false;
        if (::pipe(from_child) < 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            return false;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            return false;
        }
        if (pid == 0) {
            ::dup2(to_child[0], STDIN_FILENO);
            ::dup2(from_child[1], STDOUT_FILENO);
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            // Faults are the coordinator's to deliver (one-shot, via
            // job messages); a user-level env fault must not also
            // re-fire inside every respawned worker.
            ::unsetenv("MONDRIAN_FAULT_INJECT");
            std::vector<std::string> args = argv_prefix;
            args.insert(args.end(), argv_tail.begin(), argv_tail.end());
            std::vector<char *> argv;
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::_Exit(127);
        }
        ::close(to_child[0]);
        ::close(from_child[1]);
        ::fcntl(from_child[0], F_SETFL, O_NONBLOCK);
        WorkerChan w;
        w.id = next_worker_id++;
        w.pid = pid;
        w.transport = std::make_unique<PipeTransport>(
            Transport::Role::kCoordinator, from_child[0], to_child[1],
            true);
        w.alive = true;
        w.ready = true; // pipe workers are assignable from spawn
        w.lastSeen = monotonicSeconds();
        workers.push_back(std::move(w));
        return true;
    };

    auto reap_worker = [&](WorkerChan &w) {
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
        if (w.transport)
            w.transport->close();
        w.alive = false;
        w.ready = false;
    };

    auto attempt_failed = [&](std::size_t index, const std::string &why) {
        ++attempts[index];
        if (attempts[index] > config_.maxRetries) {
            report.runs[index].failed = true;
            report.failedRuns.push_back({index, attempts[index], why});
            ++failed;
            warn("coordinator: job %zu failed permanently after %u "
                 "attempts: %s", index, attempts[index], why.c_str());
        } else {
            const double backoff =
                attempts[index] * config_.retryBackoffSec;
            pending.push_back({index, monotonicSeconds() + backoff});
            inform("coordinator: job %zu attempt %u failed (%s); "
                   "retrying in %.1fs", index, attempts[index],
                   why.c_str(), backoff);
        }
    };

    auto worker_lost = [&](WorkerChan &w, const std::string &why) {
        // Only local subprocess deaths feed the degradation counters: a
        // remote worker dropping off the network says nothing about
        // whether THIS host can run workers.
        const bool local = !w.remote;
        const bool had_hello = w.hello;
        reap_worker(w);
        if (local) {
            ++consecutive_failures;
            if (!had_hello)
                ++no_hello_deaths;
        }
        if (w.job >= 0) {
            attempt_failed(static_cast<std::size_t>(w.job),
                           "worker " + std::to_string(w.id) + " " + why);
            w.job = -1;
        }
    };

    // ------------------------------------------------------- event loop
    while (completed + failed < target) {
        if (abort_ && abort_->load()) {
            report.aborted = true;
            break;
        }
        const double t = monotonicSeconds();

        // Kill wedged or overrunning workers.
        for (WorkerChan &w : workers) {
            if (!w.alive)
                continue;
            if (w.job >= 0 && t - w.jobStart > config_.jobTimeoutSec) {
                warn("coordinator: worker %u exceeded the %.1fs job "
                     "timeout on job %td; killing it", w.id,
                     config_.jobTimeoutSec, w.job);
                worker_lost(w, "hit the job timeout");
            } else if (t - w.lastSeen > config_.heartbeatTimeoutSec) {
                warn("coordinator: worker %u silent for %.1fs "
                     "(heartbeat timeout); killing it", w.id,
                     t - w.lastSeen);
                worker_lost(w, "stopped heartbeating");
            }
        }

        // Unusable-population safety nets -> degrade to in-process.
        // Disabled while listening: with remote workers expected, the
        // right behavior is to keep waiting for them, not to silently
        // run the campaign on the coordinator host.
        if (!listening) {
            if (!any_hello_ever && config_.workers > 0 &&
                no_hello_deaths >= config_.workers) {
                warn("coordinator: workers cannot spawn (%u died before "
                     "hello); degrading to in-process execution",
                     no_hello_deaths);
                degraded = true;
            }
            if (consecutive_failures >
                config_.workers * (config_.maxRetries + 1) + 4) {
                warn("coordinator: %u consecutive worker failures; "
                     "degrading to in-process execution",
                     consecutive_failures);
                degraded = true;
            }
            if (degraded)
                break;
        }

        // Keep the LOCAL population at min(workers, outstanding jobs);
        // remote workers add capacity beyond that.
        const std::size_t outstanding = target - completed - failed;
        std::size_t local_alive = 0;
        for (const WorkerChan &w : workers)
            local_alive += (w.alive && !w.remote) ? 1 : 0;
        while (local_alive <
               std::min<std::size_t>(config_.workers, outstanding)) {
            if (!spawn_worker()) {
                if (listening) {
                    warn("coordinator: cannot spawn local worker (%s); "
                         "relying on remote workers",
                         std::strerror(errno));
                    break;
                }
                warn("coordinator: cannot spawn worker (%s); degrading "
                     "to in-process execution", std::strerror(errno));
                degraded = true;
                break;
            }
            ++local_alive;
        }
        if (degraded)
            break;

        // Assign ready pending jobs to idle workers.
        for (WorkerChan &w : workers) {
            if (!w.alive || !w.ready || w.job >= 0 || pending.empty())
                continue;
            // Jobs in backoff stay queued until their readyAt passes.
            auto ready = pending.end();
            for (auto it = pending.begin(); it != pending.end(); ++it) {
                if (it->second <= t) {
                    ready = it;
                    break;
                }
            }
            if (ready == pending.end())
                continue;
            const std::size_t index = ready->first;
            pending.erase(ready);

            JsonWriter msg;
            msg.beginObject();
            msg.member("type", "job");
            msg.member("index", std::uint64_t{index});
            if (const FaultInjection *f =
                    pickFault(faults, fault_fired, index))
                msg.member("fault", faultKindName(f->kind));
            msg.endObject();
            w.job = static_cast<std::ptrdiff_t>(index);
            w.jobStart = t;
            if (!w.transport->send(JsonWriter::compact(msg.str()))) {
                // Dead before the assignment landed: requeue with no
                // attempt penalty, recycle the worker.
                w.job = -1;
                pending.push_front({index, t});
                worker_lost(w, "rejected a job assignment");
            }
        }

        // Wait for worker traffic (bounded so timeouts/abort stay live).
        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_worker; // SIZE_MAX = the listener
        if (listening) {
            fds.push_back({listenSocket_.fd(), POLLIN, 0});
            fd_worker.push_back(SIZE_MAX);
        }
        for (std::size_t i = 0; i < workers.size(); ++i) {
            if (!workers[i].alive)
                continue;
            fds.push_back({workers[i].transport->fd(), POLLIN, 0});
            fd_worker.push_back(i);
        }
        if (fds.empty())
            continue;
        ::poll(fds.data(), fds.size(), 100);

        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            if (fd_worker[i] == SIZE_MAX) {
                // Accept every pending remote connection; each is a new
                // worker that must still pass the hello handshake.
                for (;;) {
                    std::string accept_error;
                    Socket conn = listenSocket_.accept(accept_error);
                    if (!conn.valid()) {
                        if (!accept_error.empty())
                            warn("coordinator: %s", accept_error.c_str());
                        break;
                    }
                    std::string nb_error;
                    if (!conn.setNonBlocking(nb_error)) {
                        warn("coordinator: dropping connection: %s",
                             nb_error.c_str());
                        continue;
                    }
                    WorkerChan w;
                    w.id = next_worker_id++;
                    w.remote = true;
                    w.alive = true;
                    w.transport =
                        std::make_unique<TcpTransport>(std::move(conn));
                    w.lastSeen = monotonicSeconds();
                    inform("coordinator: remote worker %u connected",
                           w.id);
                    workers.push_back(std::move(w));
                }
                continue;
            }
            WorkerChan &w = workers[fd_worker[i]];
            const Transport::Pump pumped = w.transport->pump();
            const bool gone = pumped == Transport::Pump::kEof ||
                              pumped == Transport::Pump::kError;

            // Parse every complete message.
            bool desync = false, rejected = false;
            std::string payload;
            int st;
            while ((st = w.transport->next(payload)) == 1) {
                JsonValue msg;
                std::string parse_error;
                if (!parseJson(payload, msg, parse_error)) {
                    desync = true;
                    break;
                }
                const JsonValue *type = msg.find("type");
                const std::string kind = type ? type->asString() : "";
                w.lastSeen = monotonicSeconds();
                if (kind == "hello") {
                    if (w.remote) {
                        const JsonValue *tok = msg.find("token");
                        const std::string token =
                            tok && tok->isString() ? tok->asString() : "";
                        if (token != config_.helloToken) {
                            warn("coordinator: remote worker %u sent a "
                                 "bad hello token; rejecting it", w.id);
                            w.transport->send(
                                "{\"type\": \"reject\", \"reason\": "
                                "\"bad hello token\"}");
                            rejected = true;
                            break;
                        }
                        w.hello = true;
                        any_hello_ever = true;
                        // A remote worker has no spec file: ship the
                        // spec (and the beat period) over the wire.
                        JsonWriter sm;
                        sm.beginObject();
                        sm.member("type", "spec");
                        sm.member("spec", spec_json);
                        sm.member("heartbeat_interval", hb_interval);
                        sm.endObject();
                        if (!w.transport->send(
                                JsonWriter::compact(sm.str()))) {
                            desync = true;
                            break;
                        }
                    } else {
                        w.hello = true;
                        any_hello_ever = true;
                    }
                } else if (kind == "ready") {
                    // The worker expanded the spec we shipped; a job
                    // count mismatch means we would be assigning indices
                    // into a DIFFERENT grid — never assign to it.
                    const JsonValue *count = msg.find("jobs");
                    if (!w.remote || !count ||
                        count->asU64() != jobs.size()) {
                        desync = true;
                        break;
                    }
                    w.ready = true;
                    inform("coordinator: remote worker %u ready", w.id);
                } else if (kind == "heartbeat") {
                    // lastSeen refresh above is the whole point
                } else if (kind == "result" || kind == "error") {
                    const JsonValue *idx = msg.find("index");
                    if (!idx ||
                        idx->asU64() >= jobs.size() ||
                        w.job !=
                            static_cast<std::ptrdiff_t>(idx->asU64())) {
                        desync = true;
                        break;
                    }
                    const std::size_t index =
                        static_cast<std::size_t>(idx->asU64());
                    w.job = -1;
                    if (kind == "error") {
                        const JsonValue *m = msg.find("message");
                        attempt_failed(index,
                                       m ? m->asString()
                                         : "worker error");
                        continue;
                    }
                    const JsonValue *result = msg.find("result");
                    RunResult parsed;
                    if (!result || !readRunResult(*result, parsed)) {
                        attempt_failed(index, "corrupt result frame");
                        continue;
                    }
                    const JsonValue *cached = msg.find("cached");
                    if (cached && cached->kind == JsonValue::Kind::kBool &&
                        cached->boolean)
                        ++report.workerCacheHits;
                    report.runs[index].result = std::move(parsed);
                    consecutive_failures = 0;
                    run_done(index);
                } else {
                    desync = true;
                    break;
                }
            }
            if (st < 0)
                desync = true;
            if (rejected) {
                // Not a worker failure: it never held a job, and its
                // death must not feed the degradation counters.
                reap_worker(w);
                continue;
            }
            if (desync) {
                warn("coordinator: worker %u broke the frame protocol; "
                     "dropping it", w.id);
                worker_lost(w, "broke the frame protocol");
                continue;
            }
            if (gone)
                worker_lost(w, w.remote ? "disconnected"
                                        : "exited unexpectedly");
        }
    }

    // ------------------------------------------------------- shutdown
    for (WorkerChan &w : workers) {
        if (!w.alive || !w.transport)
            continue;
        w.transport->send("{\"type\": \"exit\"}");
        w.transport->shutdownSend();
    }
    const double shutdown_start = monotonicSeconds();
    for (WorkerChan &w : workers) {
        if (w.remote) {
            if (w.alive) {
                w.transport->close();
                w.alive = false;
            }
            continue;
        }
        while (w.alive && w.pid > 0) {
            const pid_t r = ::waitpid(w.pid, nullptr, WNOHANG);
            if (r == w.pid || (r < 0 && errno == ECHILD)) {
                w.pid = -1;
                w.transport->close();
                w.alive = false;
                break;
            }
            if (monotonicSeconds() - shutdown_start > 2.0) {
                reap_worker(w);
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    if (degraded)
        run_inline();

    return finalize();
}

} // namespace mondrian
