/**
 * @file
 * CampaignCoordinator: fault-tolerant distributed campaign execution.
 *
 * The coordinator shards an expanded campaign grid across local worker
 * subprocesses (`mondrian_campaign --worker <campaign.json>`), assigns
 * jobs dynamically (pull-based: an idle worker gets the next pending
 * grid index), and merges results by grid index — never completion
 * order — so the merged report is byte-identical to the same grid run
 * in-process with any `--jobs` value.
 *
 * Wire protocol (docs/distributed.md has the full description):
 *  - coordinator -> worker stdin: newline-delimited compact JSON
 *    messages: {"type": "job", "index": N[, "fault": "..."]} and
 *    {"type": "exit"}.
 *  - worker stdout -> coordinator: length-prefixed frames
 *    "<decimal payload length>\n<payload>\n", payload a compact JSON
 *    message: hello, heartbeat, result (with an exact-double RunResult
 *    subtree), or error.
 *
 * Failure model — every failure mode maps to a bounded retry:
 *  - worker crash (EOF/death): its in-flight job is requeued with
 *    backoff; a replacement worker is spawned.
 *  - worker hang (no heartbeat for heartbeatTimeoutSec, or a job
 *    exceeding jobTimeoutSec): the worker is SIGKILLed, the job
 *    requeued, a replacement spawned.
 *  - corrupt result (frame parses, RunResult doesn't): counted as a
 *    failed attempt, job requeued.
 *  - a job failing more than maxRetries times is marked permanently
 *    failed: the campaign continues, the report lists it under
 *    "failed_runs", and the process exits non-zero.
 *  - workers that die before ever saying hello (bad binary, exec
 *    failure) trip graceful degradation: the remaining jobs run
 *    in-process on the thread pool instead.
 *
 * Determinism: workers serialize RunResult JSON with exact (shortest
 * round-trip) doubles; the coordinator parses them back into bit-exact
 * RunResults and the ordinary report writer re-emits the canonical
 * 12-digit form — so a campaign that crashed, hung, retried and
 * reassigned still produces the byte-identical report, which is the
 * chaos oracle CI enforces.
 */

#ifndef MONDRIAN_SYSTEM_COORDINATOR_HH
#define MONDRIAN_SYSTEM_COORDINATOR_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "system/campaign.hh"

namespace mondrian {

/**
 * One deterministic fault to inject, for tests and CI chaos runs.
 * Faults are delivered to workers inside job-assignment messages; by
 * default each fires on the job's FIRST attempt only, so the retry
 * machinery recovers and the merged report stays byte-identical to a
 * clean run. A sticky fault fires on every attempt — the way to drive a
 * job into retry exhaustion and the report's failed_runs array.
 */
struct FaultInjection
{
    enum class Kind
    {
        kCrash,  ///< worker exits without a result
        kHang,   ///< worker wedges and stops heartbeating
        kCorrupt ///< worker emits a well-formed frame with garbage result
    };

    Kind kind = Kind::kCrash;
    std::size_t index = 0; ///< grid index of the job to afflict
    bool sticky = false;   ///< re-inject on every attempt
};

const char *faultKindName(FaultInjection::Kind kind);

/**
 * Parse a --fault-inject spec: comma-separated `kind@index` items with
 * kind in {crash, hang, corrupt} and an optional `!` suffix for sticky
 * faults, e.g. "crash@2,hang@5,corrupt@1" or "crash@0!".
 * @return false with @p error set on malformed specs.
 */
bool parseFaultInject(const std::string &spec,
                      std::vector<FaultInjection> &out, std::string &error);

/** Knobs of a coordinator run (CLI flags of the same names). */
struct CoordinatorConfig
{
    unsigned workers = 2;            ///< worker subprocesses to keep alive
    double jobTimeoutSec = 600.0;    ///< per-attempt wall-clock budget
    double heartbeatTimeoutSec = 30.0; ///< silence before a kill
    unsigned maxRetries = 2;         ///< attempts per job = 1 + maxRetries
    double retryBackoffSec = 0.1;    ///< backoff = attempt * this
    /**
     * argv prefix of the worker binary; "--worker <spec>" plus the
     * heartbeat interval are appended. Empty = this executable
     * (/proc/self/exe). Tests point it at a nonexistent path to
     * exercise graceful degradation.
     */
    std::vector<std::string> workerCommand;
    /** Faults to inject (tests/CI); empty in production use. */
    std::vector<FaultInjection> faults;
};

/**
 * Static round-robin plan: pending job @p indices dealt over @p workers
 * (worker w gets indices[w], indices[w + workers], ...). The runtime
 * assignment is dynamic (pull-based) — this is the inspectable --dry-run
 * approximation of it.
 */
std::vector<std::vector<std::size_t>>
planShards(const std::vector<std::size_t> &indices, unsigned workers);

/**
 * Render the planned shard assignment for --dry-run: one line per
 * worker listing its round-robin share of the jobs a @p resume cache
 * would not satisfy.
 */
std::string shardPlanListing(const CampaignGrid &grid, unsigned workers,
                             const ResumeCache *resume = nullptr);

/** Runs a campaign grid across worker subprocesses (see file header). */
class CampaignCoordinator
{
  public:
    CampaignCoordinator(const CampaignGrid &grid,
                        const CoordinatorConfig &config)
        : grid_(grid), config_(config)
    {}

    /**
     * Execute the campaign. Blocks until every job completed, failed
     * permanently, or an abort was requested.
     * @throw std::invalid_argument when the grid fails validateGrid().
     * @throw std::runtime_error when the job spec cannot be written.
     */
    CampaignReport run();

    /** Progress callback, as CampaignRunner::onRunDone (coordinator
     *  thread; also invoked for journaling by the CLI). */
    void onRunDone(std::function<void(const CampaignRun &)> cb)
    {
        progress_ = std::move(cb);
    }

    /** Reuse cached grid points, as CampaignRunner::setResume. */
    void setResume(const ResumeCache *cache) { resume_ = cache; }

    /** Cooperative cancellation, as CampaignRunner::setAbort: workers
     *  are killed, the partial report returns with aborted set. */
    void setAbort(const std::atomic<bool> *flag) { abort_ = flag; }

  private:
    CampaignGrid grid_;
    CoordinatorConfig config_;
    std::function<void(const CampaignRun &)> progress_;
    const ResumeCache *resume_ = nullptr;
    const std::atomic<bool> *abort_ = nullptr;
};

/**
 * Worker main loop (`mondrian_campaign --worker <spec>`): expand the
 * grid from @p spec_path, then serve job messages from stdin, streaming
 * heartbeats and results to stdout until an exit message or EOF.
 * @p heartbeat_interval_sec is the beat period. The
 * MONDRIAN_FAULT_INJECT environment variable (same grammar as
 * --fault-inject) injects faults on this worker's own attempts —
 * the standalone-testing path; coordinator-driven faults arrive inside
 * job messages instead.
 * @return the process exit code.
 */
int runCampaignWorker(const std::string &spec_path,
                      double heartbeat_interval_sec);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_COORDINATOR_HH
