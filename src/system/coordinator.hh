/**
 * @file
 * CampaignCoordinator: fault-tolerant distributed campaign execution.
 *
 * The coordinator shards an expanded campaign grid across workers —
 * local subprocesses (`mondrian_campaign --worker <campaign.json>`) and,
 * with `--listen HOST:PORT`, remote TCP workers that dial in
 * (`mondrian_campaign --worker-connect HOST:PORT`). Jobs are assigned
 * dynamically (pull-based: an idle worker gets the next pending grid
 * index), and results merge by grid index — never completion order — so
 * the merged report is byte-identical to the same grid run in-process
 * with any `--jobs` value, whatever mix of transports carried it.
 *
 * Wire protocol (docs/distributed.md has the full description): the
 * protocol MESSAGES are transport-agnostic; the framing comes from
 * src/net/transport.hh. Over pipes, commands are newline-delimited
 * compact JSON on worker stdin and replies are length-prefixed frames
 * on worker stdout (the PR 7 format, unchanged). Over TCP, both
 * directions carry CRC32-checked frames, and the handshake grows two
 * messages: the worker's hello carries a shared-secret token
 * (`--hello-token`), and the coordinator answers with the campaign spec
 * inline (a remote worker has no spec file) plus the heartbeat
 * interval; the worker replies "ready" with its expanded job count.
 *
 * Failure model — every failure mode maps to a bounded retry:
 *  - worker crash (EOF/death) or mid-frame disconnect: its in-flight
 *    job is requeued with backoff; local workers are respawned, remote
 *    workers may reconnect and rejoin as fresh workers.
 *  - worker hang (no heartbeat for heartbeatTimeoutSec, or a job
 *    exceeding jobTimeoutSec): the worker is killed (SIGKILL locally,
 *    connection dropped remotely), the job requeued.
 *  - corrupt result (frame parses, RunResult doesn't) or a CRC
 *    mismatch / short read / framing violation on the channel: counted
 *    as a failed attempt, job requeued, channel dropped.
 *  - a job failing more than maxRetries times is marked permanently
 *    failed: the campaign continues, the report lists it under
 *    "failed_runs", and the process exits non-zero.
 *  - local workers that die before ever saying hello (bad binary, exec
 *    failure) trip graceful degradation to in-process execution —
 *    unless the coordinator is listening for remote workers, in which
 *    case it keeps waiting for them instead of silently running local.
 *
 * Determinism: workers serialize RunResult JSON with exact (shortest
 * round-trip) doubles; the coordinator parses them back into bit-exact
 * RunResults and the ordinary report writer re-emits the canonical
 * 12-digit form — so a campaign that crashed, hung, retried and
 * reassigned still produces the byte-identical report, which is the
 * chaos oracle CI enforces. Worker-side result caching (`--worker-cache
 * DIR`) rides on the same property: a cached result is the stored
 * exact-double JSON, so a warm re-dispatch splices byte-identically.
 */

#ifndef MONDRIAN_SYSTEM_COORDINATOR_HH
#define MONDRIAN_SYSTEM_COORDINATOR_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/socket.hh"
#include "system/campaign.hh"

namespace mondrian {

/**
 * Exit code for network-setup and handshake failures (bind/listen
 * failed, connect refused after retries, hello token rejected) —
 * distinct from the 0/1/2/3/4 campaign exit-code contract so scripts
 * can tell "the campaign failed" from "the campaign never formed".
 */
constexpr int kExitNetwork = 5;

/**
 * One deterministic fault to inject, for tests and CI chaos runs.
 * Faults are delivered to workers inside job-assignment messages; by
 * default each fires on the job's FIRST attempt only, so the retry
 * machinery recovers and the merged report stays byte-identical to a
 * clean run. A sticky fault fires on every attempt — the way to drive a
 * job into retry exhaustion and the report's failed_runs array.
 */
struct FaultInjection
{
    enum class Kind
    {
        kCrash,      ///< worker exits without a result
        kHang,       ///< worker wedges and stops heartbeating
        kCorrupt,    ///< worker emits a well-formed frame with garbage result
        kDisconnect, ///< worker drops its channel mid-job (then a
                     ///< --worker-connect worker reconnects and rejoins)
    };

    Kind kind = Kind::kCrash;
    std::size_t index = 0; ///< grid index of the job to afflict
    bool sticky = false;   ///< re-inject on every attempt
};

const char *faultKindName(FaultInjection::Kind kind);

/**
 * Parse a --fault-inject spec: comma-separated `kind@index` items with
 * kind in {crash, hang, corrupt, disconnect} and an optional `!` suffix
 * for sticky faults, e.g. "crash@2,hang@5,corrupt@1" or "crash@0!".
 * @return false with @p error set on malformed specs.
 */
bool parseFaultInject(const std::string &spec,
                      std::vector<FaultInjection> &out, std::string &error);

/** Knobs of a coordinator run (CLI flags of the same names). */
struct CoordinatorConfig
{
    unsigned workers = 2;            ///< local worker subprocesses to keep alive
    double jobTimeoutSec = 600.0;    ///< per-attempt wall-clock budget
    double heartbeatTimeoutSec = 30.0; ///< silence before a kill
    unsigned maxRetries = 2;         ///< attempts per job = 1 + maxRetries
    double retryBackoffSec = 0.1;    ///< backoff = attempt * this
    /**
     * HOST:PORT to accept remote `--worker-connect` workers on; empty =
     * local subprocess workers only. With a listen endpoint and
     * workers == 0 the campaign is remote-only and waits for workers to
     * dial in.
     */
    std::string listenEndpoint;
    /**
     * Shared secret remote hellos must present; a mismatch gets a
     * reject message and a closed connection. Empty accepts only
     * token-less (or empty-token) hellos — fine on a trusted loopback,
     * set one for anything cross-machine.
     */
    std::string helloToken;
    /**
     * Result-cache directory forwarded to spawned local workers as
     * `--worker-cache DIR` (remote workers configure their own). Empty
     * = no cache.
     */
    std::string workerCacheDir;
    /**
     * argv prefix of the worker binary; "--worker <spec>" plus the
     * heartbeat interval are appended. Empty = this executable
     * (/proc/self/exe). Tests point it at a nonexistent path to
     * exercise graceful degradation.
     */
    std::vector<std::string> workerCommand;
    /** Faults to inject (tests/CI); empty in production use. */
    std::vector<FaultInjection> faults;
};

/**
 * Static round-robin plan: pending job @p indices dealt over @p workers
 * (worker w gets indices[w], indices[w + workers], ...). The runtime
 * assignment is dynamic (pull-based) — this is the inspectable --dry-run
 * approximation of it.
 */
std::vector<std::vector<std::size_t>>
planShards(const std::vector<std::size_t> &indices, unsigned workers);

/**
 * Render the planned shard assignment for --dry-run: one line per
 * worker listing its round-robin share of the jobs a @p resume cache
 * would not satisfy.
 */
std::string shardPlanListing(const CampaignGrid &grid, unsigned workers,
                             const ResumeCache *resume = nullptr);

/** Runs a campaign grid across workers (see file header). */
class CampaignCoordinator
{
  public:
    CampaignCoordinator(const CampaignGrid &grid,
                        const CoordinatorConfig &config)
        : grid_(grid), config_(config)
    {}

    /**
     * Bind the remote-worker listener on config.listenEndpoint (no-op
     * when the endpoint is empty). Callable before run() so CLI/test
     * callers can map a bind failure to kExitNetwork and read the
     * actual port of a port-0 bind via listenPort().
     * @return false with @p error set when the endpoint is malformed or
     * the bind/listen fails.
     */
    bool listen(std::string &error);

    /** Bound listener port (0 when not listening). */
    std::uint16_t listenPort() const;

    /**
     * Execute the campaign. Blocks until every job completed, failed
     * permanently, or an abort was requested.
     * @throw std::invalid_argument when the grid fails validateGrid().
     * @throw std::runtime_error when the job spec cannot be written or
     * a configured listen endpoint cannot be bound.
     */
    CampaignReport run();

    /** Progress callback, as CampaignRunner::onRunDone (coordinator
     *  thread; also invoked for journaling by the CLI). */
    void onRunDone(std::function<void(const CampaignRun &)> cb)
    {
        progress_ = std::move(cb);
    }

    /** Reuse cached grid points, as CampaignRunner::setResume. */
    void setResume(const ResumeCache *cache) { resume_ = cache; }

    /** Cooperative cancellation, as CampaignRunner::setAbort: workers
     *  are killed, the partial report returns with aborted set. */
    void setAbort(const std::atomic<bool> *flag) { abort_ = flag; }

  private:
    CampaignGrid grid_;
    CoordinatorConfig config_;
    std::function<void(const CampaignRun &)> progress_;
    const ResumeCache *resume_ = nullptr;
    const std::atomic<bool> *abort_ = nullptr;
    Socket listenSocket_;
};

/**
 * Worker main loop (`mondrian_campaign --worker <spec>`): expand the
 * grid from @p spec_path, then serve job messages from stdin, streaming
 * heartbeats and results to stdout until an exit message or EOF.
 * @p heartbeat_interval_sec is the beat period; @p cache_dir (may be
 * empty) enables the worker-side result cache. The
 * MONDRIAN_FAULT_INJECT environment variable (same grammar as
 * --fault-inject) injects faults on this worker's own attempts —
 * the standalone-testing path; coordinator-driven faults arrive inside
 * job messages instead.
 * @return the process exit code.
 */
int runCampaignWorker(const std::string &spec_path,
                      double heartbeat_interval_sec,
                      const std::string &cache_dir = std::string());

/** Knobs of a `--worker-connect` remote worker. */
struct ConnectWorkerOptions
{
    std::string helloToken;  ///< must match the coordinator's token
    std::string cacheDir;    ///< worker-side result cache; empty = off
    /** Consecutive connect/rejoin failures tolerated before giving up
     *  (0 = exit on the first drop). A successful rejoin resets the
     *  count, so a long campaign survives any number of isolated
     *  disconnects. */
    unsigned reconnectAttempts = 3;
    double reconnectBackoffSec = 0.5; ///< backoff = attempt * this
};

/**
 * Remote-worker main loop (`mondrian_campaign --worker-connect
 * HOST:PORT`): dial the coordinator, present the hello token, receive
 * the campaign spec over the wire, then serve jobs exactly as a pipe
 * worker does. A dropped connection (coordinator kill, network fault,
 * an injected disconnect) triggers reconnection with backoff; the
 * rejoined connection is a brand-new worker to the coordinator. An
 * explicit exit message or hello rejection is final (no reconnect).
 * @return the process exit code (kExitNetwork for connect/handshake
 * failures).
 */
int runConnectWorker(const std::string &endpoint_spec,
                     const ConnectWorkerOptions &options);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_COORDINATOR_HH
