#include "system/machine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mondrian {

/**
 * Per-unit memory path: caches (when configured) in front of the
 * network + vault controllers.
 *
 * Cacheability: CPU cores cache everything (one coherent hierarchy).
 * NMP units cache only their local vault -- remote vaults are accessed
 * uncached, which sidesteps inter-tile coherence exactly as the paper's
 * partitioned execution model does. Permutable stores always bypass the
 * caches (they are destined for the remote append engine).
 */
class Machine::Path : public MemoryPath
{
  public:
    Path(Machine &m, unsigned unit) : m_(m), unit_(unit) {}

    Result
    request(Tick when, Addr addr, std::uint32_t size, bool is_write,
            bool sequential, bool permutable, DoneFn done) override
    {
        (void)sequential;
        const unsigned home = m_.nodeOfUnit(unit_);
        const unsigned target = m_.pool_.map().vaultOf(addr);
        Cache *l1 = unit_ < m_.l1s_.size() ? m_.l1s_[unit_].get() : nullptr;

        const bool cacheable =
            !permutable && l1 &&
            (m_.cfg_.exec.cpuStyle || target == unit_);

        if (!cacheable) {
            // Uncached: straight to the target vault through the network.
            m_.issueDram(when, home, addr, size, is_write,
                         /*need_response=*/!is_write, std::move(done));
            return Result{false, 0};
        }

        const unsigned line = l1->config().lineBytes;
        auto r1 = l1->access(addr, is_write);

        // Next-line prefetches triggered by this access.
        for (Addr pf : r1.prefetchFills) {
            if (pf >= m_.pool_.store().capacity())
                continue;
            if (!l1->insertPrefetch(pf))
                continue; // already resident: no fill traffic
            if (m_.llc_) {
                auto rp = m_.llc_->access(pf, false);
                if (rp.writebackAddr)
                    m_.asyncDram(when, home, *rp.writebackAddr, line, true);
                if (rp.hit)
                    continue; // fill served on-chip
            }
            m_.asyncDram(when, home, pf, line, false);
        }

        if (r1.hit) {
            // A rolling prefetch stream lands lines before the demand
            // touch; charge a short in-flight allowance over the L1 hit.
            Cycles lat = r1.prefetchHit
                             ? Cycles{5}
                             : l1->config().hitLatency;
            return Result{true, lat, !r1.prefetchHit};
        }

        // L1 miss: dirty victim spills to the next level.
        if (r1.writebackAddr) {
            if (m_.llc_) {
                auto rw = m_.llc_->access(*r1.writebackAddr, true);
                if (rw.writebackAddr)
                    m_.asyncDram(when, home, *rw.writebackAddr, line, true);
            } else {
                m_.asyncDram(when, home, *r1.writebackAddr, line, true);
            }
        }

        if (m_.llc_) {
            auto r2 = m_.llc_->access(addr, false);
            if (r2.writebackAddr)
                m_.asyncDram(when, home, *r2.writebackAddr, line, true);
            if (r2.hit)
                return Result{true, m_.llc_->config().hitLatency};
        }

        // Full miss: fetch the line from DRAM (read-for-ownership covers
        // store misses too; the dirty data leaves later as a writeback).
        Addr line_addr = addr & ~static_cast<Addr>(line - 1);
        m_.issueDram(when, home, line_addr, line, /*is_write=*/false,
                     /*need_response=*/true, std::move(done));
        return Result{false, 0};
    }

    RunHits
    requestRun(Tick when, Addr addr, std::uint32_t size, std::uint32_t n,
               bool is_write, bool sequential, bool permutable) override
    {
        (void)when;
        (void)sequential;
        Cache *l1 = unit_ < m_.l1s_.size() ? m_.l1s_[unit_].get() : nullptr;
        if (permutable || !l1)
            return RunHits{}; // uncacheable: per-access path models it
        // NMP units cache only their local vault; batch only the prefix
        // of accesses homed there (CPU-style paths cache everything).
        // Vault ranges are contiguous, so the prefix ends at the vault
        // boundary: count the starts below it instead of probing the
        // address map per element.
        std::uint32_t limit = n;
        if (!m_.cfg_.exec.cpuStyle) {
            const AddressMap &map = m_.pool_.map();
            if (map.vaultOf(addr) != unit_)
                return RunHits{};
            const Addr vend = map.vaultBase(unit_) +
                              map.geometry().vaultBytes;
            const Addr fit = (vend - addr + size - 1) / size;
            if (fit < limit)
                limit = static_cast<std::uint32_t>(fit);
            if (limit == 0)
                return RunHits{};
        }
        RunHits rh;
        rh.consumed = l1->accessRun(addr, size, limit, is_write);
        rh.latency = l1->config().hitLatency;
        return rh;
    }

  private:
    Machine &m_;
    unsigned unit_;
};

Machine::Machine(const SystemConfig &cfg, MemoryPool &pool)
    : cfg_(cfg), pool_(pool)
{
    // Event-count-reduction toggles (docs/perf.md): each transform is
    // output-identical, so these only select the fast or the reference
    // execution strategy for the same event stream.
    eq_.setCoalescing(cfg_.exec.coalesceCompletions);
    eq_.setSkipAhead(cfg_.exec.queueSkipAhead);
    cfg_.core.rleRunBatching = cfg_.exec.rleRunBatching;

    pendingArrivals_.assign(cfg_.geo.totalVaults(), 0);

    net_ = std::make_unique<Network>(cfg_.geo, cfg_.topo);

    const unsigned vaults = cfg_.geo.totalVaults();
    vaults_.reserve(vaults);
    for (unsigned v = 0; v < vaults; ++v) {
        vaults_.push_back(std::make_unique<VaultController>(
            eq_, pool_.map(), v, cfg_.dram, cfg_.vaultWindow));
    }

    if (cfg_.hasL1) {
        for (unsigned u = 0; u < cfg_.exec.numUnits; ++u)
            l1s_.push_back(std::make_unique<Cache>(cfg_.l1));
    }
    if (cfg_.hasLlc)
        llc_ = std::make_unique<Cache>(cfg_.llc);

    for (unsigned u = 0; u < cfg_.exec.numUnits; ++u)
        paths_.push_back(std::make_unique<Path>(*this, u));

    // Permutable-append row flushes carry no completion callback; the
    // vault's drain hook is how the phase logic sees their retirement.
    auto drained = [this]() { checkPhaseQuiesce(); };
    static_assert(VaultController::DrainFn::fitsInline<decltype(drained)>(),
                  "drain hook closure must fit the inline buffer");
    for (auto &v : vaults_)
        v->onDrained = drained;
}

Machine::~Machine() = default;

unsigned
Machine::nodeOfUnit(unsigned unit) const
{
    return cfg_.exec.cpuStyle ? Network::kCpuNode : unit;
}

Machine::Flight *
Machine::allocFlight()
{
    ++flightsInAir_;
    if (freeFlight_) {
        Flight *f = freeFlight_;
        freeFlight_ = f->nextFree;
        return f;
    }
    flightArena_.emplace_back();
    return &flightArena_.back();
}

void
Machine::freeFlight(Flight *f)
{
    --flightsInAir_;
    f->done = nullptr;
    f->nextFree = freeFlight_;
    freeFlight_ = f;
}

void
Machine::deliverFlight(Flight *f)
{
    MemRequest req;
    req.addr = f->addr;
    req.size = f->size;
    req.isWrite = f->isWrite;
    auto on_complete = [f](Tick t) { f->m->completeFlight(f, t); };
    static_assert(MemRequest::Callback::fitsInline<decltype(on_complete)>(),
                  "hot-path completion closure must fit the inline buffer");
    req.onComplete = std::move(on_complete);
    vaults_[f->dv]->enqueue(std::move(req));
}

void
Machine::completeFlight(Flight *f, Tick t)
{
    if (!f->done) { // fire-and-forget traffic: nothing to notify
        freeFlight(f);
        checkPhaseQuiesce();
        return;
    }
    if (!f->needResponse || f->local) {
        MemoryPath::DoneFn done = std::move(f->done);
        freeFlight(f);
        done(t);
        checkPhaseQuiesce();
        return;
    }
    // Response payload crosses the network back to the requester. Routed
    // through the coalescer: responses released by one burst share a tick.
    Tick back = net_->delay(f->dv, f->srcNode, f->size, t);
    auto respond = [f, back]() {
        Machine *m = f->m;
        MemoryPath::DoneFn done = std::move(f->done);
        m->freeFlight(f);
        done(back);
        m->checkPhaseQuiesce();
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(respond)>(),
                  "hot-path response closure must fit the inline buffer");
    eq_.scheduleCoalesced(back, std::move(respond));
}

void
Machine::issueDram(Tick when, unsigned src_node, Addr addr,
                   std::uint32_t size, bool is_write, bool need_response,
                   MemoryPath::DoneFn done)
{
    const unsigned dv = pool_.map().vaultOf(addr);
    const bool local = src_node == dv;
    // Request message: stores carry the payload, loads just the header.
    Tick arrive = local
                      ? when
                      : net_->delay(src_node, dv, is_write ? size : 0, when);
    Flight *f = allocFlight();
    f->m = this;
    f->addr = addr;
    f->size = size;
    f->dv = dv;
    f->srcNode = src_node;
    f->isWrite = is_write;
    f->needResponse = need_response;
    f->local = local;
    f->done = std::move(done);
    // Eager local issue: a local request that would arrive "now" at an
    // idle vault skips its arrival event and delivers synchronously.
    // This is exact — the arrival event's only effect is enqueue(), and
    // under the guard nothing that runs between this call and that event
    // could interact with the vault: pending arrivals are excluded by
    // the counter (an earlier-sequence arrival issues first and issue
    // order fixes bank/bus state), pending completions never touch bank
    // or bus state, and events scheduled after this call sort after the
    // elided arrival anyway. One queue event per local request gone; the
    // toggle prices it (ExecOverride "eager").
    if (local && cfg_.exec.eagerLocalIssue && arrive <= eq_.now() &&
        pendingArrivals_[dv] == 0 &&
        vaults_[dv]->readyForImmediateIssue()) {
        ++eagerIssues_;
        deliverFlight(f);
        return;
    }
    ++pendingArrivals_[dv];
    auto arrival = [f]() {
        Machine *m = f->m;
        --m->pendingArrivals_[f->dv];
        m->deliverFlight(f);
    };
    static_assert(EventQueue::Callback::fitsInline<decltype(arrival)>(),
                  "hot-path arrival closure must fit the inline buffer");
    eq_.schedule(std::max(arrive, eq_.now()), std::move(arrival));
}

void
Machine::asyncDram(Tick when, unsigned src_node, Addr addr,
                   std::uint32_t size, bool is_write)
{
    // Fire-and-forget traffic still reserves bandwidth everywhere; for
    // reads the response payload crosses the network too.
    if (!is_write) {
        issueDram(when, src_node, addr, size, false, true,
                  MemoryPath::DoneFn{});
        return;
    }
    issueDram(when, src_node, addr, size, true, false,
              MemoryPath::DoneFn{});
}

std::uint64_t
Machine::totalActivations() const
{
    std::uint64_t n = 0;
    for (const auto &v : vaults_)
        n += v->stats().rowActivations;
    return n;
}

std::uint64_t
Machine::totalDramBytes() const
{
    std::uint64_t n = 0;
    for (const auto &v : vaults_)
        n += v->stats().bytesRead + v->stats().bytesWritten;
    return n;
}

std::uint64_t
Machine::llcAccesses() const
{
    return llc_ ? llc_->stats().accesses : 0;
}

void
Machine::beginPhase(const PhaseExec &phase, PhaseDoneFn done)
{
    sim_assert(phase.traces.size() == cfg_.exec.numUnits);
    sim_assert(phaseStage_ == PhaseStage::kIdle);

    phase_ = &phase;
    phaseDone_ = std::move(done);
    phaseStart_ = eq_.now();
    phaseAct0_ = totalActivations();
    phaseBytes0_ = totalDramBytes();
    barrierFired_ = false;

    for (const auto &[v, region] : phase.arming)
        vaults_[v]->armPermutable(region);

    if (cores_.empty()) {
        cores_.reserve(cfg_.exec.numUnits);
        for (unsigned u = 0; u < cfg_.exec.numUnits; ++u) {
            auto core = std::make_unique<TraceCore>(eq_, cfg_.core,
                                                    *paths_[u], u);
            core->onFinish = [this](unsigned, Tick) {
                ++finished_;
                checkPhaseQuiesce();
            };
            cores_.push_back(std::move(core));
        }
    }
    finished_ = 0;
    for (unsigned u = 0; u < phase.traces.size(); ++u)
        cores_[u]->setTrace(&phase.traces[u]);
    phaseStage_ = PhaseStage::kRunning;
    for (auto &core : cores_)
        core->start();
    // onFinish is always delivered through a scheduled event, so the
    // phase cannot complete before control returns to the event loop.
}

void
Machine::checkPhaseQuiesce()
{
    if (phaseStage_ == PhaseStage::kIdle)
        return;

    if (phaseStage_ == PhaseStage::kRunning) {
        if (finished_ != cores_.size() || flightsInAir_ != 0)
            return;
        for (const auto &v : vaults_)
            if (v->outstanding() != 0)
                return;
        // Every unit finished and no request is queued, issued or on the
        // network: this tick is exactly where the historical
        // drain-to-empty loop stopped.
        const PhaseExec &phase = *phase_;
        for (const auto &[v, region] : phase.arming)
            vaults_[v]->disarmPermutable();
        if (phase.barriers > 0) {
            // Global barriers (histogram exchange, shuffle-end MSI): one
            // all-to-all notification round each (§5.4: expensive but
            // amortized over long phases). The phase ends once the
            // barrier has fired AND the disarm's trailing row flushes
            // have drained, whichever is later.
            Tick barrier = net_->baseLatency(
                0, cfg_.geo.totalVaults() - 1, 8);
            phaseStage_ = PhaseStage::kBarrier;
            auto fire = [this]() {
                barrierFired_ = true;
                checkPhaseQuiesce();
            };
            static_assert(EventQueue::Callback::fitsInline<decltype(fire)>(),
                          "barrier closure must fit the inline buffer");
            eq_.schedule(eq_.now() + phase.barriers * 2 * barrier,
                         std::move(fire));
            return;
        }
        // No barrier: the phase result is computed before the disarm's
        // flush traffic retires (it was scheduled just now, above); the
        // trailing completions bill to whatever runs next, as they
        // always have.
        finalizePhase();
        return;
    }

    // kBarrier: wait for the barrier event and the flush drain.
    if (!barrierFired_ || flightsInAir_ != 0)
        return;
    for (const auto &v : vaults_)
        if (v->outstanding() != 0)
            return;
    finalizePhase();
}

void
Machine::finalizePhase()
{
    const PhaseExec &phase = *phase_;

    PhaseResult res;
    res.name = phase.name;
    res.kind = phase.kind;
    res.time = eq_.now() - phaseStart_;
    res.activations = totalActivations() - phaseAct0_;
    res.dramBytes = totalDramBytes() - phaseBytes0_;
    if (res.time > 0) {
        res.avgVaultBWGBps =
            bytesPerTickToGBps(static_cast<double>(res.dramBytes) /
                                   static_cast<double>(vaults_.size()),
                               res.time);
    }

    double util_sum = 0.0, st_store = 0.0, st_stream = 0.0, st_load = 0.0,
           st_fence = 0.0;
    for (const auto &core : cores_) {
        const auto &s = core->stats();
        Tick span = s.finishedAt > phaseStart_ ? s.finishedAt - phaseStart_
                                               : 0;
        coreBusyTicks_ += s.computeTicks;
        coreElapsedSum_ += span;
        if (span > 0) {
            double d = static_cast<double>(span);
            util_sum += static_cast<double>(s.computeTicks) / d;
            st_store += static_cast<double>(s.stallStoreTicks) / d;
            st_stream += static_cast<double>(s.stallStreamTicks) / d;
            st_load += static_cast<double>(s.stallLoadTicks) / d;
            st_fence += static_cast<double>(s.stallFenceTicks) / d;
        }
    }
    if (!cores_.empty()) {
        double n = static_cast<double>(cores_.size());
        res.coreUtilization = util_sum / n;
        res.stallStore = st_store / n;
        res.stallStream = st_stream / n;
        res.stallLoad = st_load / n;
        res.stallFence = st_fence / n;
    }

    // Reset the phase state before invoking the callback: it may begin
    // the next phase at this very tick.
    PhaseDoneFn done = std::move(phaseDone_);
    phase_ = nullptr;
    phaseDone_ = nullptr;
    phaseStage_ = PhaseStage::kIdle;
    done(res);
}

PhaseResult
Machine::runPhase(const PhaseExec &phase)
{
    PhaseResult result;
    bool got = false;
    beginPhase(phase, [this, &result, &got](const PhaseResult &r) {
        result = r;
        got = true;
        // Stop the loop here, leaving any trailing flush completions
        // pending for the next phase — the historical stop point.
        eq_.requestStop();
    });
    eq_.run();

    if (!got)
        panic("phase '%s': %u of %zu units deadlocked", phase.name.c_str(),
              static_cast<unsigned>(cores_.size() - finished_),
              cores_.size());
    return result;
}

std::vector<PhaseResult>
Machine::run(const OperatorExecution &exec)
{
    std::vector<PhaseResult> results;
    results.reserve(exec.phases.size());
    for (const auto &phase : exec.phases)
        results.push_back(runPhase(phase));
    return results;
}

EnergyActivity
Machine::energyActivity() const
{
    EnergyActivity a;
    a.elapsed = eq_.now();
    a.numCubes = cfg_.geo.numStacks;
    a.numSerdesLinks = net_->serdesLinkCount();
    a.numCores = cfg_.exec.numUnits;
    a.rowActivations = totalActivations();
    a.dramBitsMoved = totalDramBytes() * 8;
    auto ns = net_->stats();
    a.serdesBusyBits = ns.serdesBusyBits;
    a.meshBitHops = ns.meshBitHops;
    a.llcAccesses = llcAccesses();
    a.hasLlc = llc_ != nullptr;
    a.corePeakWattsEach = cfg_.core.peakPowerWatts;
    if (a.elapsed > 0 && a.numCores > 0) {
        a.coreUtilization =
            static_cast<double>(coreBusyTicks_) /
            (static_cast<double>(a.elapsed) *
             static_cast<double>(a.numCores));
    }
    return a;
}

EnergyBreakdown
Machine::energy() const
{
    return EnergyModel{}.compute(energyActivity());
}

} // namespace mondrian
