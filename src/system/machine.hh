/**
 * @file
 * Machine: one fully wired system instance (cores + caches + network +
 * vault controllers) that replays operator phases.
 *
 * The machine owns the timing state; the functional data lives in the
 * MemoryPool shared with the engine. Phases run back-to-back on the same
 * event queue, so DRAM bank state, cache contents and link reservations
 * carry over between phases exactly as they would in hardware.
 */

#ifndef MONDRIAN_SYSTEM_MACHINE_HH
#define MONDRIAN_SYSTEM_MACHINE_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cache.hh"
#include "core/core_model.hh"
#include "dram/vault.hh"
#include "energy/energy_model.hh"
#include "engine/operator.hh"
#include "engine/relation.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "system/config.hh"

namespace mondrian {

/** Timing outcome of one phase. */
struct PhaseResult
{
    std::string name;
    PhaseKind kind = PhaseKind::kProbe;
    Tick time = 0;                 ///< wall-clock ticks for the phase
    std::uint64_t dramBytes = 0;   ///< bytes moved at the row buffers
    std::uint64_t activations = 0; ///< row activations during the phase
    double avgVaultBWGBps = 0.0;   ///< mean per-vault bus bandwidth
    double coreUtilization = 0.0;  ///< mean compute fraction across units
    /** Mean stall fractions across units, by cause. */
    double stallStore = 0.0;
    double stallStream = 0.0;
    double stallLoad = 0.0;
    double stallFence = 0.0;
};

/** A wired system instance. */
class Machine
{
  public:
    Machine(const SystemConfig &cfg, MemoryPool &pool);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Phase-completion callback for beginPhase(). */
    using PhaseDoneFn = std::function<void(const PhaseResult &)>;

    /**
     * Start replaying one phase without driving the event loop. The
     * machine detects quiescence (all units finished, no requests in
     * flight, every vault drained) from within the event stream, models
     * the phase's global barriers, and invokes @p done with the timing
     * result inside the event that completes the phase — at exactly the
     * tick the historical drain-to-empty runPhase() observed.
     *
     * The caller drives eq() — either to quiescence (runPhase) or
     * continuously with other work interleaved (ServedRunner, which
     * begins the next phase of another scenario instance from inside
     * @p done). Only one phase can be active at a time; @p done may
     * start the next one.
     */
    void beginPhase(const PhaseExec &phase, PhaseDoneFn done);

    /** Replay one phase to quiescence; returns its timing result. */
    PhaseResult runPhase(const PhaseExec &phase);

    /** Run all phases of an operator execution in order. */
    std::vector<PhaseResult> run(const OperatorExecution &exec);

    /** The machine's event queue (drivers of beginPhase() run it). */
    EventQueue &eq() { return eq_; }

    /** Total elapsed simulated time across the phases run so far. */
    Tick elapsed() const { return eq_.now(); }

    /** Aggregate energy activity since construction. */
    EnergyActivity energyActivity() const;

    /** Energy breakdown for everything run so far. */
    EnergyBreakdown energy() const;

    const SystemConfig &config() const { return cfg_; }
    const Network &network() const { return *net_; }
    const VaultController &vault(unsigned v) const { return *vaults_[v]; }
    unsigned numVaults() const { return static_cast<unsigned>(vaults_.size()); }

    /** Sum of row activations across vaults. */
    std::uint64_t totalActivations() const;

    /** Sum of bytes read+written at the vaults' row buffers. */
    std::uint64_t totalDramBytes() const;

    /** LLC accesses (0 when the system has no LLC). */
    std::uint64_t llcAccesses() const;

    /** Events popped from the queue since construction. */
    std::uint64_t eventsExecuted() const { return eq_.executed(); }

    /** Completion callbacks absorbed into same-tick batches. */
    std::uint64_t eventsCoalesced() const { return eq_.coalesced(); }

    /** Local request arrivals issued synchronously (no arrival event). */
    std::uint64_t eventsElided() const { return eagerIssues_; }

    /**
     * Simulated-event count: queue pops, plus coalesced completions,
     * plus eagerly issued local arrivals. Each transform trades a queue
     * pop for one unit of the other two counters (a coalesced batch of k
     * is 1 executed event + k-1 coalesced; an eager local issue is the
     * arrival event that never got scheduled), so this sum is invariant
     * under every perf toggle — it counts the logical event stream, not
     * the physical one, which is what lets it live in the report without
     * breaking the ablation byte-identity oracle.
     */
    std::uint64_t simEvents() const
    {
        return eq_.executed() + eq_.coalesced() + eagerIssues_;
    }

    /**
     * InlineFunction heap fallbacks observed process-wide since this
     * Machine was constructed. The hot path is contractually
     * allocation-free, so tests assert this stays zero across a run
     * (diagnostic only — never serialized into reports, which keeps the
     * byte-identity oracle untouched).
     */
    std::uint64_t heapFallbacks() const
    {
        return inlineFunctionHeapFallbacks() - heapFallbackBase_;
    }

  private:
    class Path; // per-core MemoryPath implementation
    friend class Path;

    /**
     * One DRAM request in flight. All routing context and the completion
     * callback live here, pooled and recycled, so the event closures along
     * the request's path capture a single pointer — the hot path performs
     * no per-request allocation and events stay small.
     */
    struct Flight
    {
        Machine *m = nullptr;
        Addr addr = 0;
        std::uint32_t size = 0;
        unsigned dv = 0;
        unsigned srcNode = 0;
        bool isWrite = false;
        bool needResponse = false;
        bool local = false;
        MemoryPath::DoneFn done;
        Flight *nextFree = nullptr;
    };

    Flight *allocFlight();
    void freeFlight(Flight *f);
    /** Present the flight's request to its vault (arrival tick). */
    void deliverFlight(Flight *f);
    /** Vault finished the burst at @p t: respond / complete / recycle. */
    void completeFlight(Flight *f, Tick t);

    /** Route a request to its vault; optional response and completion. */
    void issueDram(Tick when, unsigned src_node, Addr addr,
                   std::uint32_t size, bool is_write, bool need_response,
                   MemoryPath::DoneFn done);

    /** Issue a fire-and-forget DRAM access (prefetch fill, writeback). */
    void asyncDram(Tick when, unsigned src_node, Addr addr,
                   std::uint32_t size, bool is_write);

    /** Home network node of unit @p unit. */
    unsigned nodeOfUnit(unsigned unit) const;

    /**
     * Re-evaluate the active phase's quiescence / barrier-drain
     * condition. Called from every event that can retire the last piece
     * of in-flight work: core finish, flight completion, vault drain and
     * the barrier event.
     */
    void checkPhaseQuiesce();

    /** Compute the active phase's result and hand it to the callback. */
    void finalizePhase();

    SystemConfig cfg_;
    MemoryPool &pool_;
    EventQueue eq_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<VaultController>> vaults_;
    std::vector<std::unique_ptr<Cache>> l1s_; ///< per unit, if configured
    std::unique_ptr<Cache> llc_;              ///< shared, CPU only
    std::vector<std::unique_ptr<Path>> paths_;

    std::deque<Flight> flightArena_; ///< stable storage for the pool
    Flight *freeFlight_ = nullptr;   ///< intrusive free list

    /**
     * Arrival events in flight per vault. Nonzero blocks the eager
     * local-issue shortcut: a pending arrival with a smaller sequence
     * number would issue first in event order, and issue order is what
     * determines bank and bus state.
     */
    std::vector<std::uint32_t> pendingArrivals_;
    /** Local arrivals issued synchronously instead of via an event. */
    std::uint64_t eagerIssues_ = 0;
    /** inlineFunctionHeapFallbacks() snapshot at construction. */
    std::uint64_t heapFallbackBase_ = inlineFunctionHeapFallbacks();

    // Cumulative activity for the energy model.
    Tick coreBusyTicks_ = 0;  ///< sum over units of compute ticks
    Tick coreElapsedSum_ = 0; ///< sum over units of per-phase durations
    unsigned finished_ = 0;

    /**
     * Persistent trace cores, one per unit, created on the first
     * beginPhase() and re-armed with setTrace() each phase. Reuse (vs.
     * the historical fresh-cores-per-phase) keeps the per-phase closure
     * wiring out of the phase loop and gives callback-driven execution a
     * stable object to finish into.
     */
    std::vector<std::unique_ptr<TraceCore>> cores_;

    /** DRAM requests allocated but not yet recycled (any kind). */
    std::uint64_t flightsInAir_ = 0;

    /** Active-phase bookkeeping (one phase at a time). */
    enum class PhaseStage
    {
        kIdle,    ///< no phase active
        kRunning, ///< cores executing / draining
        kBarrier  ///< post-quiesce barrier + disarm-flush drain
    };
    PhaseStage phaseStage_ = PhaseStage::kIdle;
    const PhaseExec *phase_ = nullptr;
    PhaseDoneFn phaseDone_;
    Tick phaseStart_ = 0;
    std::uint64_t phaseAct0_ = 0;
    std::uint64_t phaseBytes0_ = 0;
    bool barrierFired_ = false;
};

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_MACHINE_HH
