/**
 * @file
 * Machine: one fully wired system instance (cores + caches + network +
 * vault controllers) that replays operator phases.
 *
 * The machine owns the timing state; the functional data lives in the
 * MemoryPool shared with the engine. Phases run back-to-back on the same
 * event queue, so DRAM bank state, cache contents and link reservations
 * carry over between phases exactly as they would in hardware.
 */

#ifndef MONDRIAN_SYSTEM_MACHINE_HH
#define MONDRIAN_SYSTEM_MACHINE_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/cache.hh"
#include "core/core_model.hh"
#include "dram/vault.hh"
#include "energy/energy_model.hh"
#include "engine/operator.hh"
#include "engine/relation.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "system/config.hh"

namespace mondrian {

/** Timing outcome of one phase. */
struct PhaseResult
{
    std::string name;
    PhaseKind kind = PhaseKind::kProbe;
    Tick time = 0;                 ///< wall-clock ticks for the phase
    std::uint64_t dramBytes = 0;   ///< bytes moved at the row buffers
    std::uint64_t activations = 0; ///< row activations during the phase
    double avgVaultBWGBps = 0.0;   ///< mean per-vault bus bandwidth
    double coreUtilization = 0.0;  ///< mean compute fraction across units
    /** Mean stall fractions across units, by cause. */
    double stallStore = 0.0;
    double stallStream = 0.0;
    double stallLoad = 0.0;
    double stallFence = 0.0;
};

/** A wired system instance. */
class Machine
{
  public:
    Machine(const SystemConfig &cfg, MemoryPool &pool);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Replay one phase; returns its timing result. */
    PhaseResult runPhase(const PhaseExec &phase);

    /** Run all phases of an operator execution in order. */
    std::vector<PhaseResult> run(const OperatorExecution &exec);

    /** Total elapsed simulated time across the phases run so far. */
    Tick elapsed() const { return eq_.now(); }

    /** Aggregate energy activity since construction. */
    EnergyActivity energyActivity() const;

    /** Energy breakdown for everything run so far. */
    EnergyBreakdown energy() const;

    const SystemConfig &config() const { return cfg_; }
    const Network &network() const { return *net_; }
    const VaultController &vault(unsigned v) const { return *vaults_[v]; }
    unsigned numVaults() const { return static_cast<unsigned>(vaults_.size()); }

    /** Sum of row activations across vaults. */
    std::uint64_t totalActivations() const;

    /** Sum of bytes read+written at the vaults' row buffers. */
    std::uint64_t totalDramBytes() const;

    /** LLC accesses (0 when the system has no LLC). */
    std::uint64_t llcAccesses() const;

  private:
    class Path; // per-core MemoryPath implementation
    friend class Path;

    /**
     * One DRAM request in flight. All routing context and the completion
     * callback live here, pooled and recycled, so the event closures along
     * the request's path capture a single pointer — the hot path performs
     * no per-request allocation and events stay small.
     */
    struct Flight
    {
        Machine *m = nullptr;
        Addr addr = 0;
        std::uint32_t size = 0;
        unsigned dv = 0;
        unsigned srcNode = 0;
        bool isWrite = false;
        bool needResponse = false;
        bool local = false;
        MemoryPath::DoneFn done;
        Flight *nextFree = nullptr;
    };

    Flight *allocFlight();
    void freeFlight(Flight *f);
    /** Present the flight's request to its vault (arrival tick). */
    void deliverFlight(Flight *f);
    /** Vault finished the burst at @p t: respond / complete / recycle. */
    void completeFlight(Flight *f, Tick t);

    /** Route a request to its vault; optional response and completion. */
    void issueDram(Tick when, unsigned src_node, Addr addr,
                   std::uint32_t size, bool is_write, bool need_response,
                   MemoryPath::DoneFn done);

    /** Issue a fire-and-forget DRAM access (prefetch fill, writeback). */
    void asyncDram(Tick when, unsigned src_node, Addr addr,
                   std::uint32_t size, bool is_write);

    /** Home network node of unit @p unit. */
    unsigned nodeOfUnit(unsigned unit) const;

    SystemConfig cfg_;
    MemoryPool &pool_;
    EventQueue eq_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<VaultController>> vaults_;
    std::vector<std::unique_ptr<Cache>> l1s_; ///< per unit, if configured
    std::unique_ptr<Cache> llc_;              ///< shared, CPU only
    std::vector<std::unique_ptr<Path>> paths_;

    std::deque<Flight> flightArena_; ///< stable storage for the pool
    Flight *freeFlight_ = nullptr;   ///< intrusive free list

    // Cumulative activity for the energy model.
    Tick coreBusyTicks_ = 0;  ///< sum over units of compute ticks
    Tick coreElapsedSum_ = 0; ///< sum over units of per-phase durations
    unsigned finished_ = 0;
};

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_MACHINE_HH
