#include "system/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mondrian {

namespace {

double
ratio(double base, double sys)
{
    return sys > 0.0 ? base / sys : 0.0;
}

} // namespace

double
overallSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.totalTime),
                 static_cast<double>(sys.totalTime));
}

double
partitionSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.partitionTime),
                 static_cast<double>(sys.partitionTime));
}

double
probeSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.probeTime),
                 static_cast<double>(sys.probeTime));
}

double
efficiencyImprovement(const RunResult &base, const RunResult &sys)
{
    // perf/W = (1/T) / (E/T) = 1/E; both runs do identical work.
    return ratio(base.energy.total(), sys.energy.total());
}

EnergyShares
energyShares(const RunResult &run)
{
    EnergyShares s;
    double total = run.energy.total();
    if (total <= 0.0)
        return s;
    s.dramDynamic = run.energy.dramDynamic / total;
    s.dramStatic = run.energy.dramStatic / total;
    s.cores = run.energy.cores / total;
    s.network = run.energy.network / total;
    return s;
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
renderTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return "";
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            out << rows[r][c];
            if (c + 1 < rows[r].size())
                out << std::string(widths[c] - rows[r][c].size() + 2, ' ');
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

std::string
pairedCountLabel(std::size_t paired, std::size_t total)
{
    std::string out = std::to_string(paired);
    if (total != paired)
        out += "/" + std::to_string(total);
    return out;
}

std::string
geomeanCellLabel(double v, std::size_t dropped, int digits)
{
    std::string out = fmt(v, digits) + "x";
    if (dropped > 0)
        out += " (" + std::to_string(dropped) + " dropped)";
    return out;
}

std::string
renderMarkdownTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return "";
    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out << '|';
        for (const std::string &cell : rows[r])
            out << ' ' << cell << " |";
        out << '\n';
        if (r == 0) {
            out << '|';
            for (std::size_t c = 0; c < rows[0].size(); ++c)
                out << "---|";
            out << '\n';
        }
    }
    return out.str();
}

std::string
describeRun(const RunResult &run)
{
    std::ostringstream out;
    out << run.op << " on " << run.system << ": total "
        << fmt(ticksToSeconds(run.totalTime) * 1e3, 3) << " ms";
    if (run.partitionTime > 0) {
        out << " (partition "
            << fmt(ticksToSeconds(run.partitionTime) * 1e3, 3)
            << " ms @ " << fmt(run.partitionVaultBWGBps) << " GB/s/vault"
            << ", probe " << fmt(ticksToSeconds(run.probeTime) * 1e3, 3)
            << " ms @ " << fmt(run.probeVaultBWGBps) << " GB/s/vault)";
    }
    out << ", energy " << fmt(run.energy.total() * 1e3, 3) << " mJ";
    return out.str();
}

const char *
phaseKindName(PhaseKind kind)
{
    return kind == PhaseKind::kPartition ? "partition" : "probe";
}

namespace {

void
writeEnergy(JsonWriter &w, const EnergyBreakdown &e)
{
    w.key("energy_j").beginObject();
    w.member("dram_dynamic", e.dramDynamic);
    w.member("dram_static", e.dramStatic);
    w.member("cores", e.cores);
    w.member("network", e.network);
    w.member("total", e.total());
    w.endObject();
}

void
writePhases(JsonWriter &w, const std::vector<PhaseResult> &phases)
{
    w.key("phases").beginArray();
    for (const auto &p : phases) {
        w.beginObject();
        w.member("name", p.name);
        w.member("kind", phaseKindName(p.kind));
        w.member("time_ps", p.time);
        w.member("dram_bytes", p.dramBytes);
        w.member("activations", p.activations);
        w.member("avg_vault_bw_gbps", p.avgVaultBWGBps);
        w.member("core_utilization", p.coreUtilization);
        w.key("stalls").beginObject();
        w.member("store", p.stallStore);
        w.member("stream", p.stallStream);
        w.member("load", p.stallLoad);
        w.member("fence", p.stallFence);
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

} // namespace

void
writeRunResult(JsonWriter &w, const RunResult &run)
{
    w.beginObject();
    w.member("system", run.system);
    w.member("op", run.op);
    w.member("total_time_ps", run.totalTime);
    w.member("partition_time_ps", run.partitionTime);
    w.member("probe_time_ps", run.probeTime);
    w.member("seconds", run.seconds());
    w.member("partition_vault_bw_gbps", run.partitionVaultBWGBps);
    w.member("probe_vault_bw_gbps", run.probeVaultBWGBps);
    w.member("sim_events", run.simEvents);

    writeEnergy(w, run.energy);

    w.key("functional").beginObject();
    w.member("scan_matches", run.scanMatches);
    w.member("join_matches", run.joinMatches);
    w.member("group_count", run.groupCount);
    w.member("agg_checksum", run.aggChecksum);
    w.endObject();

    // Served metrics appear only on non-degenerate traffic runs, so
    // single-query run JSON is byte-identical to the pre-traffic writer.
    if (run.served.valid) {
        const ServedMetrics &s = run.served;
        w.key("served").beginObject();
        w.member("offered", s.offered);
        w.member("admitted", s.admitted);
        w.member("rejected", s.rejected);
        w.member("completed", s.completed);
        w.member("measured_completed", s.measuredCompleted);
        w.member("window_ps", s.window);
        w.member("sustained_qps", s.sustainedQps);
        w.member("latency_p50_ps", s.latencyP50);
        w.member("latency_p95_ps", s.latencyP95);
        w.member("latency_p99_ps", s.latencyP99);
        w.member("latency_max_ps", s.latencyMax);
        w.member("latency_mean_ps", s.latencyMeanPs);
        w.member("energy_per_query_j", s.energyPerQueryJ);
        w.endObject();
    }

    // Per-stage sub-results appear only on multi-stage scenario runs, so
    // classic single-op run JSON is byte-identical to the pre-scenario
    // writer (and v2 resume splices stay verbatim).
    if (!run.stages.empty()) {
        w.key("stages").beginArray();
        for (const StageResult &s : run.stages) {
            w.beginObject();
            w.member("stage", s.stage);
            w.member("op", s.op);
            w.member("input", s.input);
            w.member("total_time_ps", s.totalTime);
            w.member("partition_time_ps", s.partitionTime);
            w.member("probe_time_ps", s.probeTime);
            w.member("partition_vault_bw_gbps", s.partitionVaultBWGBps);
            w.member("probe_vault_bw_gbps", s.probeVaultBWGBps);
            w.member("input_tuples", s.inputTuples);
            w.member("output_tuples", s.outputTuples);
            writeEnergy(w, s.energy);
            w.key("functional").beginObject();
            w.member("scan_matches", s.scanMatches);
            w.member("join_matches", s.joinMatches);
            w.member("group_count", s.groupCount);
            w.member("agg_checksum", s.aggChecksum);
            w.endObject();
            writePhases(w, s.phases);
            w.endObject();
        }
        w.endArray();
    }

    writePhases(w, run.phases);
    w.endObject();
}

namespace {

void
readU64(const JsonValue &obj, const char *k, std::uint64_t &dst)
{
    if (const JsonValue *p = obj.find(k))
        dst = p->asU64();
}

void
readDbl(const JsonValue &obj, const char *k, double &dst)
{
    if (const JsonValue *p = obj.find(k))
        dst = p->asDouble();
}

void
readEnergy(const JsonValue &v, EnergyBreakdown &out)
{
    if (const JsonValue *e = v.find("energy_j")) {
        readDbl(*e, "dram_dynamic", out.dramDynamic);
        readDbl(*e, "dram_static", out.dramStatic);
        readDbl(*e, "cores", out.cores);
        readDbl(*e, "network", out.network);
    }
}

void
readPhases(const JsonValue &v, std::vector<PhaseResult> &out)
{
    const JsonValue *phases = v.find("phases");
    if (!phases || !phases->isArray())
        return;
    for (const JsonValue &pv : phases->items) {
        PhaseResult ph;
        if (const JsonValue *p = pv.find("name"))
            ph.name = p->asString();
        if (const JsonValue *p = pv.find("kind")) {
            ph.kind = p->asString() == "partition" ? PhaseKind::kPartition
                                                   : PhaseKind::kProbe;
        }
        readU64(pv, "time_ps", ph.time);
        readU64(pv, "dram_bytes", ph.dramBytes);
        readU64(pv, "activations", ph.activations);
        readDbl(pv, "avg_vault_bw_gbps", ph.avgVaultBWGBps);
        readDbl(pv, "core_utilization", ph.coreUtilization);
        if (const JsonValue *s = pv.find("stalls")) {
            readDbl(*s, "store", ph.stallStore);
            readDbl(*s, "stream", ph.stallStream);
            readDbl(*s, "load", ph.stallLoad);
            readDbl(*s, "fence", ph.stallFence);
        }
        out.push_back(std::move(ph));
    }
}

} // namespace

bool
readRunResult(const JsonValue &v, RunResult &out)
{
    if (!v.isObject())
        return false;
    out = RunResult{};

    if (const JsonValue *p = v.find("system"))
        out.system = p->asString();
    if (const JsonValue *p = v.find("op"))
        out.op = p->asString();
    if (out.system.empty() || out.op.empty())
        return false;
    readU64(v, "total_time_ps", out.totalTime);
    readU64(v, "partition_time_ps", out.partitionTime);
    readU64(v, "probe_time_ps", out.probeTime);
    readDbl(v, "partition_vault_bw_gbps", out.partitionVaultBWGBps);
    readDbl(v, "probe_vault_bw_gbps", out.probeVaultBWGBps);
    readU64(v, "sim_events", out.simEvents); // absent pre-PR-8: stays 0
    readEnergy(v, out.energy);

    if (const JsonValue *f = v.find("functional")) {
        readU64(*f, "scan_matches", out.scanMatches);
        readU64(*f, "join_matches", out.joinMatches);
        readU64(*f, "group_count", out.groupCount);
        readU64(*f, "agg_checksum", out.aggChecksum);
    }
    if (const JsonValue *sv = v.find("served")) {
        ServedMetrics &s = out.served;
        s.valid = true;
        readU64(*sv, "offered", s.offered);
        readU64(*sv, "admitted", s.admitted);
        readU64(*sv, "rejected", s.rejected);
        readU64(*sv, "completed", s.completed);
        readU64(*sv, "measured_completed", s.measuredCompleted);
        readU64(*sv, "window_ps", s.window);
        readDbl(*sv, "sustained_qps", s.sustainedQps);
        readU64(*sv, "latency_p50_ps", s.latencyP50);
        readU64(*sv, "latency_p95_ps", s.latencyP95);
        readU64(*sv, "latency_p99_ps", s.latencyP99);
        readU64(*sv, "latency_max_ps", s.latencyMax);
        readDbl(*sv, "latency_mean_ps", s.latencyMeanPs);
        readDbl(*sv, "energy_per_query_j", s.energyPerQueryJ);
    }
    if (const JsonValue *stages = v.find("stages");
        stages && stages->isArray()) {
        for (const JsonValue &sv : stages->items) {
            StageResult s;
            if (const JsonValue *p = sv.find("stage"))
                s.stage = p->asString();
            if (const JsonValue *p = sv.find("op"))
                s.op = p->asString();
            if (const JsonValue *p = sv.find("input"))
                s.input = p->asString();
            readU64(sv, "total_time_ps", s.totalTime);
            readU64(sv, "partition_time_ps", s.partitionTime);
            readU64(sv, "probe_time_ps", s.probeTime);
            readDbl(sv, "partition_vault_bw_gbps", s.partitionVaultBWGBps);
            readDbl(sv, "probe_vault_bw_gbps", s.probeVaultBWGBps);
            readU64(sv, "input_tuples", s.inputTuples);
            readU64(sv, "output_tuples", s.outputTuples);
            readEnergy(sv, s.energy);
            if (const JsonValue *f = sv.find("functional")) {
                readU64(*f, "scan_matches", s.scanMatches);
                readU64(*f, "join_matches", s.joinMatches);
                readU64(*f, "group_count", s.groupCount);
                readU64(*f, "agg_checksum", s.aggChecksum);
            }
            readPhases(sv, s.phases);
            out.stages.push_back(std::move(s));
        }
    }
    readPhases(v, out.phases);
    return true;
}

std::string
runResultJson(const RunResult &run)
{
    JsonWriter w;
    // report-precision: canonical 12-digit (human-facing JSON helper).
    writeRunResult(w, run);
    return w.str();
}

std::string
runResultsJson(const std::vector<RunResult> &runs)
{
    JsonWriter w;
    w.beginArray();
    // report-precision: canonical 12-digit (human-facing JSON helper).
    for (const auto &r : runs)
        writeRunResult(w, r);
    w.endArray();
    return w.str();
}

GeomeanStats
geomeanStats(const std::vector<double> &values)
{
    GeomeanStats stats;
    double sum = 0.0;
    for (double v : values) {
        if (v > 0.0) {
            sum += std::log(v);
            ++stats.used;
        } else {
            ++stats.dropped;
        }
    }
    if (stats.used > 0)
        stats.value = std::exp(sum / static_cast<double>(stats.used));
    return stats;
}

double
geomean(const std::vector<double> &values)
{
    return geomeanStats(values).value;
}

} // namespace mondrian
