#include "system/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mondrian {

namespace {

double
ratio(double base, double sys)
{
    return sys > 0.0 ? base / sys : 0.0;
}

} // namespace

double
overallSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.totalTime),
                 static_cast<double>(sys.totalTime));
}

double
partitionSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.partitionTime),
                 static_cast<double>(sys.partitionTime));
}

double
probeSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.probeTime),
                 static_cast<double>(sys.probeTime));
}

double
efficiencyImprovement(const RunResult &base, const RunResult &sys)
{
    // perf/W = (1/T) / (E/T) = 1/E; both runs do identical work.
    return ratio(base.energy.total(), sys.energy.total());
}

EnergyShares
energyShares(const RunResult &run)
{
    EnergyShares s;
    double total = run.energy.total();
    if (total <= 0.0)
        return s;
    s.dramDynamic = run.energy.dramDynamic / total;
    s.dramStatic = run.energy.dramStatic / total;
    s.cores = run.energy.cores / total;
    s.network = run.energy.network / total;
    return s;
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
renderTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return "";
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            out << rows[r][c];
            if (c + 1 < rows[r].size())
                out << std::string(widths[c] - rows[r][c].size() + 2, ' ');
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

std::string
pairedCountLabel(std::size_t paired, std::size_t total)
{
    std::string out = std::to_string(paired);
    if (total != paired)
        out += "/" + std::to_string(total);
    return out;
}

std::string
geomeanCellLabel(double v, std::size_t dropped, int digits)
{
    std::string out = fmt(v, digits) + "x";
    if (dropped > 0)
        out += " (" + std::to_string(dropped) + " dropped)";
    return out;
}

std::string
renderMarkdownTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return "";
    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        out << '|';
        for (const std::string &cell : rows[r])
            out << ' ' << cell << " |";
        out << '\n';
        if (r == 0) {
            out << '|';
            for (std::size_t c = 0; c < rows[0].size(); ++c)
                out << "---|";
            out << '\n';
        }
    }
    return out.str();
}

std::string
describeRun(const RunResult &run)
{
    std::ostringstream out;
    out << run.op << " on " << run.system << ": total "
        << fmt(ticksToSeconds(run.totalTime) * 1e3, 3) << " ms";
    if (run.partitionTime > 0) {
        out << " (partition "
            << fmt(ticksToSeconds(run.partitionTime) * 1e3, 3)
            << " ms @ " << fmt(run.partitionVaultBWGBps) << " GB/s/vault"
            << ", probe " << fmt(ticksToSeconds(run.probeTime) * 1e3, 3)
            << " ms @ " << fmt(run.probeVaultBWGBps) << " GB/s/vault)";
    }
    out << ", energy " << fmt(run.energy.total() * 1e3, 3) << " mJ";
    return out.str();
}

const char *
phaseKindName(PhaseKind kind)
{
    return kind == PhaseKind::kPartition ? "partition" : "probe";
}

void
writeRunResult(JsonWriter &w, const RunResult &run)
{
    w.beginObject();
    w.member("system", run.system);
    w.member("op", run.op);
    w.member("total_time_ps", run.totalTime);
    w.member("partition_time_ps", run.partitionTime);
    w.member("probe_time_ps", run.probeTime);
    w.member("seconds", run.seconds());
    w.member("partition_vault_bw_gbps", run.partitionVaultBWGBps);
    w.member("probe_vault_bw_gbps", run.probeVaultBWGBps);

    w.key("energy_j").beginObject();
    w.member("dram_dynamic", run.energy.dramDynamic);
    w.member("dram_static", run.energy.dramStatic);
    w.member("cores", run.energy.cores);
    w.member("network", run.energy.network);
    w.member("total", run.energy.total());
    w.endObject();

    w.key("functional").beginObject();
    w.member("scan_matches", run.scanMatches);
    w.member("join_matches", run.joinMatches);
    w.member("group_count", run.groupCount);
    w.member("agg_checksum", run.aggChecksum);
    w.endObject();

    w.key("phases").beginArray();
    for (const auto &p : run.phases) {
        w.beginObject();
        w.member("name", p.name);
        w.member("kind", phaseKindName(p.kind));
        w.member("time_ps", p.time);
        w.member("dram_bytes", p.dramBytes);
        w.member("activations", p.activations);
        w.member("avg_vault_bw_gbps", p.avgVaultBWGBps);
        w.member("core_utilization", p.coreUtilization);
        w.key("stalls").beginObject();
        w.member("store", p.stallStore);
        w.member("stream", p.stallStream);
        w.member("load", p.stallLoad);
        w.member("fence", p.stallFence);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

bool
readRunResult(const JsonValue &v, RunResult &out)
{
    if (!v.isObject())
        return false;
    out = RunResult{};

    auto u64 = [&](const JsonValue &obj, const char *k,
                   std::uint64_t &dst) {
        if (const JsonValue *p = obj.find(k))
            dst = p->asU64();
    };
    auto dbl = [&](const JsonValue &obj, const char *k, double &dst) {
        if (const JsonValue *p = obj.find(k))
            dst = p->asDouble();
    };

    if (const JsonValue *p = v.find("system"))
        out.system = p->asString();
    if (const JsonValue *p = v.find("op"))
        out.op = p->asString();
    if (out.system.empty() || out.op.empty())
        return false;
    u64(v, "total_time_ps", out.totalTime);
    u64(v, "partition_time_ps", out.partitionTime);
    u64(v, "probe_time_ps", out.probeTime);
    dbl(v, "partition_vault_bw_gbps", out.partitionVaultBWGBps);
    dbl(v, "probe_vault_bw_gbps", out.probeVaultBWGBps);

    if (const JsonValue *e = v.find("energy_j")) {
        dbl(*e, "dram_dynamic", out.energy.dramDynamic);
        dbl(*e, "dram_static", out.energy.dramStatic);
        dbl(*e, "cores", out.energy.cores);
        dbl(*e, "network", out.energy.network);
    }
    if (const JsonValue *f = v.find("functional")) {
        u64(*f, "scan_matches", out.scanMatches);
        u64(*f, "join_matches", out.joinMatches);
        u64(*f, "group_count", out.groupCount);
        u64(*f, "agg_checksum", out.aggChecksum);
    }
    if (const JsonValue *phases = v.find("phases");
        phases && phases->isArray()) {
        for (const JsonValue &pv : phases->items) {
            PhaseResult ph;
            if (const JsonValue *p = pv.find("name"))
                ph.name = p->asString();
            if (const JsonValue *p = pv.find("kind")) {
                ph.kind = p->asString() == "partition"
                              ? PhaseKind::kPartition
                              : PhaseKind::kProbe;
            }
            u64(pv, "time_ps", ph.time);
            u64(pv, "dram_bytes", ph.dramBytes);
            u64(pv, "activations", ph.activations);
            dbl(pv, "avg_vault_bw_gbps", ph.avgVaultBWGBps);
            dbl(pv, "core_utilization", ph.coreUtilization);
            if (const JsonValue *s = pv.find("stalls")) {
                dbl(*s, "store", ph.stallStore);
                dbl(*s, "stream", ph.stallStream);
                dbl(*s, "load", ph.stallLoad);
                dbl(*s, "fence", ph.stallFence);
            }
            out.phases.push_back(std::move(ph));
        }
    }
    return true;
}

std::string
runResultJson(const RunResult &run)
{
    JsonWriter w;
    writeRunResult(w, run);
    return w.str();
}

std::string
runResultsJson(const std::vector<RunResult> &runs)
{
    JsonWriter w;
    w.beginArray();
    for (const auto &r : runs)
        writeRunResult(w, r);
    w.endArray();
    return w.str();
}

GeomeanStats
geomeanStats(const std::vector<double> &values)
{
    GeomeanStats stats;
    double sum = 0.0;
    for (double v : values) {
        if (v > 0.0) {
            sum += std::log(v);
            ++stats.used;
        } else {
            ++stats.dropped;
        }
    }
    if (stats.used > 0)
        stats.value = std::exp(sum / static_cast<double>(stats.used));
    return stats;
}

double
geomean(const std::vector<double> &values)
{
    return geomeanStats(values).value;
}

} // namespace mondrian
