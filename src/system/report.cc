#include "system/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mondrian {

namespace {

double
ratio(double base, double sys)
{
    return sys > 0.0 ? base / sys : 0.0;
}

} // namespace

double
overallSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.totalTime),
                 static_cast<double>(sys.totalTime));
}

double
partitionSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.partitionTime),
                 static_cast<double>(sys.partitionTime));
}

double
probeSpeedup(const RunResult &base, const RunResult &sys)
{
    return ratio(static_cast<double>(base.probeTime),
                 static_cast<double>(sys.probeTime));
}

double
efficiencyImprovement(const RunResult &base, const RunResult &sys)
{
    // perf/W = (1/T) / (E/T) = 1/E; both runs do identical work.
    return ratio(base.energy.total(), sys.energy.total());
}

EnergyShares
energyShares(const RunResult &run)
{
    EnergyShares s;
    double total = run.energy.total();
    if (total <= 0.0)
        return s;
    s.dramDynamic = run.energy.dramDynamic / total;
    s.dramStatic = run.energy.dramStatic / total;
    s.cores = run.energy.cores / total;
    s.network = run.energy.network / total;
    return s;
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
renderTable(const std::vector<std::vector<std::string>> &rows)
{
    if (rows.empty())
        return "";
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            out << rows[r][c];
            if (c + 1 < rows[r].size())
                out << std::string(widths[c] - rows[r][c].size() + 2, ' ');
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

std::string
describeRun(const RunResult &run)
{
    std::ostringstream out;
    out << run.op << " on " << run.system << ": total "
        << fmt(ticksToSeconds(run.totalTime) * 1e3, 3) << " ms";
    if (run.partitionTime > 0) {
        out << " (partition "
            << fmt(ticksToSeconds(run.partitionTime) * 1e3, 3)
            << " ms @ " << fmt(run.partitionVaultBWGBps) << " GB/s/vault"
            << ", probe " << fmt(ticksToSeconds(run.probeTime) * 1e3, 3)
            << " ms @ " << fmt(run.probeVaultBWGBps) << " GB/s/vault)";
    }
    out << ", energy " << fmt(run.energy.total() * 1e3, 3) << " mJ";
    return out.str();
}

} // namespace mondrian
