/**
 * @file
 * Report helpers: the tables and figure series of the paper's evaluation,
 * rendered as text from RunResults.
 */

#ifndef MONDRIAN_SYSTEM_REPORT_HH
#define MONDRIAN_SYSTEM_REPORT_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "system/runner.hh"

namespace mondrian {

/** Speedup of @p sys over @p base on total time. */
double overallSpeedup(const RunResult &base, const RunResult &sys);

/** Speedup restricted to partition phases (Table 5). */
double partitionSpeedup(const RunResult &base, const RunResult &sys);

/** Speedup restricted to probe phases (Fig. 6). */
double probeSpeedup(const RunResult &base, const RunResult &sys);

/**
 * Efficiency (performance per watt) improvement over @p base (Fig. 9):
 * equal work per run, so perf/W ratio reduces to the inverse energy ratio.
 */
double efficiencyImprovement(const RunResult &base, const RunResult &sys);

/** Fig. 8 row: fractional energy breakdown of one run. */
struct EnergyShares
{
    double dramDynamic = 0.0;
    double dramStatic = 0.0;
    double cores = 0.0;
    double network = 0.0;
};
EnergyShares energyShares(const RunResult &run);

/** Render one run as a human-readable block. */
std::string describeRun(const RunResult &run);

/** Printable name for a phase kind ("partition" / "probe"). */
const char *phaseKindName(PhaseKind kind);

/**
 * Serialize one run as a JSON object into @p w (deterministic: same run,
 * same bytes). Shared by the campaign CLI, the benches and tests.
 */
void writeRunResult(JsonWriter &w, const RunResult &run);

/** One run as a standalone JSON document. */
std::string runResultJson(const RunResult &run);

/**
 * Inverse of writeRunResult: reconstruct a RunResult from its parsed JSON
 * object (campaign --resume). Timing fields are exact (integers);
 * double-valued fields round-trip through the writer's 12-significant-
 * digit encoding. @return false when @p v is not a run-result object.
 */
bool readRunResult(const JsonValue &v, RunResult &out);

/**
 * Serialize a homogeneous list of runs as a JSON array. Used by benches
 * to dump raw figure data next to the rendered tables.
 */
std::string runResultsJson(const std::vector<RunResult> &runs);

/** Geometric mean of @p values (ignores non-positive entries). */
double geomean(const std::vector<double> &values);

/**
 * Geometric mean with provenance: how many entries contributed and how
 * many were dropped as non-positive. A zero/negative speedup is a broken
 * run, not a data point — callers surface @c dropped so corrupt runs
 * can't silently vanish from a rollup.
 */
struct GeomeanStats
{
    double value = 0.0;    ///< geomean of the positive entries (0 if none)
    std::size_t used = 0;  ///< positive entries that contributed
    std::size_t dropped = 0; ///< non-positive entries excluded
};
GeomeanStats geomeanStats(const std::vector<double> &values);

/** Render a fixed-width table; first row is the header. */
std::string renderTable(const std::vector<std::vector<std::string>> &rows);

/** Render a GitHub-flavored markdown table; first row is the header. */
std::string
renderMarkdownTable(const std::vector<std::vector<std::string>> &rows);

/** Format @p v with @p digits decimals. */
std::string fmt(double v, int digits = 2);

/**
 * Run-count cell of a rollup table: "paired", or "paired/total" when
 * some runs had no baseline to compare against.
 */
std::string pairedCountLabel(std::size_t paired, std::size_t total);

/**
 * Geomean cell of a rollup table: "1.23x", with " (N dropped)" appended
 * when @p dropped non-positive comparisons were excluded.
 */
std::string geomeanCellLabel(double v, std::size_t dropped, int digits = 2);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_REPORT_HH
