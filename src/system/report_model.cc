#include "system/report_model.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "system/config.hh"
#include "system/report.hh"

namespace mondrian {

namespace {

/** Append @p v to @p axis if it is not already present. */
template <typename T>
void
noteAxisValue(std::vector<T> &axis, const T &v)
{
    if (std::find(axis.begin(), axis.end(), v) == axis.end())
        axis.push_back(v);
}

} // namespace

std::string
ReportRun::groupKey() const
{
    // Theta at the report's canonical 12-digit encoding (see json.hh).
    return scenario + "|" + std::to_string(log2Tuples) + "|" +
           std::to_string(seed) + "|" + geometry + "|" + exec + "|" +
           JsonWriter::doubleString(zipfTheta) + "|" + traffic;
}

std::string
ReportRun::pointKey() const
{
    return system + "|" + groupKey();
}

bool
loadReportModel(const std::string &json_text, ReportModel &out,
                std::string &error)
{
    out = ReportModel{};
    JsonValue doc;
    if (!parseJson(json_text, doc, error))
        return false;

    const JsonValue *schema = doc.find("schema");
    const std::string schema_name = schema ? schema->asString() : "";
    if (schema_name == "mondrian-campaign-v4") {
        out.schemaVersion = 4;
    } else if (schema_name == "mondrian-campaign-v3") {
        out.schemaVersion = 3;
    } else if (schema_name == "mondrian-campaign-v2") {
        out.schemaVersion = 2;
    } else if (schema_name == "mondrian-campaign-v1") {
        out.schemaVersion = 1;
    } else {
        error = "not a mondrian-campaign-v1/v2/v3/v4 report (schema '" +
                schema_name + "')";
        return false;
    }
    if (const JsonValue *paper = doc.find("paper"))
        out.paper = paper->asString();

    // v1 reports have one campaign-wide theta in the grid block and no
    // geometry/exec axes.
    double v1_zipf = 0.0;
    if (out.schemaVersion == 1) {
        if (const JsonValue *grid = doc.find("grid"))
            if (const JsonValue *z = grid->find("zipf_theta"))
                v1_zipf = z->asDouble();
    }
    const std::string default_geometry = geometryName(defaultGeometry());

    const JsonValue *runs = doc.find("runs");
    if (!runs || !runs->isArray()) {
        error = "report has no runs array";
        return false;
    }
    out.runs.reserve(runs->items.size());
    std::set<std::string> seen_points;
    for (const JsonValue &r : runs->items) {
        ReportRun run;
        const JsonValue *sys = r.find("system");
        // v3 labels runs by scenario; v1/v2 "op" labels are exactly the
        // degenerate scenario names, so both load into run.scenario.
        const JsonValue *op = out.schemaVersion >= 3 ? r.find("scenario")
                                                     : r.find("op");
        const JsonValue *log2 = r.find("log2_tuples");
        const JsonValue *seed = r.find("seed");
        const JsonValue *result = r.find("result");
        // Wrong-typed coordinates would silently decode as 0/"" and
        // corrupt every point key downstream — fail loudly instead
        // (asU64()/asDouble() cannot distinguish 0 from absent).
        if (!sys || !op || !log2 || !seed || !result ||
            !sys->isString() || !op->isString() || !log2->isNumber() ||
            !seed->isNumber()) {
            error = "run " + std::to_string(out.runs.size()) +
                    " is missing a required field (or has a wrong-typed "
                    "one)";
            return false;
        }
        run.index = out.runs.size();
        if (const JsonValue *idx = r.find("index"); idx && idx->isNumber())
            run.index = idx->asU64();
        run.system = sys->asString();
        run.scenario = op->asString();
        run.log2Tuples = static_cast<unsigned>(log2->asU64());
        run.seed = seed->asU64();
        if (out.schemaVersion >= 2) {
            const JsonValue *geo = r.find("geometry");
            const JsonValue *exec = r.find("exec");
            const JsonValue *z = r.find("zipf_theta");
            if (!geo || !exec || !z || !geo->isString() ||
                !exec->isString() || !z->isNumber()) {
                error = "v2/v3 run " + std::to_string(out.runs.size()) +
                        " is missing an axis label (or has a wrong-typed "
                        "one)";
                return false;
            }
            run.geometry = geo->asString();
            run.exec = exec->asString();
            run.zipfTheta = z->asDouble();
            if (out.schemaVersion >= 4) {
                const JsonValue *t = r.find("traffic");
                if (!t || !t->isString()) {
                    error = "v4 run " + std::to_string(out.runs.size()) +
                            " is missing its traffic label (or has a "
                            "wrong-typed one)";
                    return false;
                }
                run.traffic = t->asString();
            }
        } else {
            run.geometry = default_geometry;
            run.exec = "base";
            run.zipfTheta = v1_zipf;
        }
        if (!readRunResult(*result, run.result)) {
            error = "run " + std::to_string(out.runs.size()) +
                    " has a malformed result object";
            return false;
        }
        // Two runs at one grid point make every per-point analysis
        // ambiguous — corrupt report, not a recoverable condition.
        if (!seen_points.insert(run.pointKey()).second) {
            error = "duplicate run at grid point " + run.pointKey();
            return false;
        }

        noteAxisValue(out.systems, run.system);
        noteAxisValue(out.scenarios, run.scenario);
        noteAxisValue(out.log2Tuples, run.log2Tuples);
        noteAxisValue(out.seeds, run.seed);
        noteAxisValue(out.geometries, run.geometry);
        noteAxisValue(out.execs, run.exec);
        noteAxisValue(out.zipfThetas, run.zipfTheta);
        noteAxisValue(out.traffics, run.traffic);
        out.runs.push_back(std::move(run));
    }

    if (const JsonValue *summary = doc.find("summary")) {
        if (const JsonValue *base = summary->find("baseline"))
            out.baseline = base->asString();
        if (const JsonValue *systems = summary->find("systems");
            systems && systems->isArray()) {
            for (const JsonValue &s : systems->items) {
                ReportSummaryRow row;
                if (const JsonValue *n = s.find("system"))
                    row.system = n->asString();
                if (const JsonValue *n = s.find("runs"))
                    row.runs = n->asU64();
                if (const JsonValue *n = s.find("geomean_speedup"))
                    row.geomeanSpeedup = n->asDouble();
                if (const JsonValue *n = s.find("geomean_perf_per_watt"))
                    row.geomeanPerfPerWatt = n->asDouble();
                out.summaries.push_back(std::move(row));
            }
        }
    }
    return true;
}

bool
loadReportFile(const std::string &path, ReportModel &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    if (!loadReportModel(ss.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

} // namespace mondrian
