/**
 * @file
 * ReportModel: typed in-memory model of campaign report JSON.
 *
 * The campaign CLI writes schema mondrian-campaign-v2 documents for
 * degenerate single-op grids, mondrian-campaign-v3 for scenario
 * (pipeline) sweeps and mondrian-campaign-v4 for grids with a traffic
 * axis — and wrote v1 before the axis generalization; this
 * module parses any of them back into plain structs so analysis code —
 * sensitivity tables, report diffs, CSV export — never touches raw
 * JSON. A v1/v2 run's "op" label loads as its scenario label: the old
 * operator names are exactly the degenerate scenario names. Parsing goes through
 * common/json_parse (full string unescaping via jsonUnescape), and every
 * run keeps its grid coordinates as the canonical axis labels the report
 * itself used, so run identity is stable across loads.
 *
 * Unlike ResumeCache::load — which silently skips entries it cannot use,
 * because a resume cache is best-effort — loading a model fails loudly on
 * malformed runs: an analysis over a half-parsed report would produce
 * confidently wrong numbers.
 */

#ifndef MONDRIAN_SYSTEM_REPORT_MODEL_HH
#define MONDRIAN_SYSTEM_REPORT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "system/runner.hh"

namespace mondrian {

/** One run of a loaded report: grid coordinates plus the parsed result. */
struct ReportRun
{
    std::size_t index = 0;
    std::string system;
    /** Scenario axis label; for v1/v2 reports (and degenerate v3 runs)
     *  this is the classic operator name. */
    std::string scenario;
    unsigned log2Tuples = 0;
    std::uint64_t seed = 0;
    /** Geometry axis label (geometryName form, e.g. "4x16x8-8MiB-r256"). */
    std::string geometry;
    /** Exec-ablation axis label ("base" when no override). */
    std::string exec;
    double zipfTheta = 0.0;
    /** Traffic axis label (TrafficSpec::name() form); "none" on pre-v4
     *  reports and degenerate v4 runs. */
    std::string traffic = "none";
    RunResult result;

    /**
     * Identity of this run's grid point: every axis coordinate at a
     * fixed delimited position (theta canonicalized to the report's
     * 12-digit encoding). Two runs of one well-formed report never share
     * a point key.
     */
    std::string pointKey() const;

    /**
     * Identity of the run's comparison group — all axes except system —
     * i.e. the key a baseline run is looked up under. Mirrors the
     * campaign's GridGroupKey pairing.
     */
    std::string groupKey() const;
};

/** One row of the report's stored summary block. */
struct ReportSummaryRow
{
    std::string system;
    std::size_t runs = 0; ///< baseline-paired runs in the geomeans
    double geomeanSpeedup = 0.0;
    double geomeanPerfPerWatt = 0.0;
};

/** A whole campaign report, parsed. */
struct ReportModel
{
    int schemaVersion = 2; ///< 1 (legacy), 2, 3 (scenarios), 4 (traffic)
    std::string paper;
    std::string baseline; ///< "" when the report has no baseline system

    /**
     * Axis values actually present in the runs, in first-appearance
     * (grid) order. Derived from the runs rather than the grid echo so
     * the model is faithful to the data even for hand-edited or
     * truncated reports.
     */
    std::vector<std::string> systems;
    std::vector<std::string> scenarios;
    std::vector<unsigned> log2Tuples;
    std::vector<std::uint64_t> seeds;
    std::vector<std::string> geometries;
    std::vector<std::string> execs;
    std::vector<double> zipfThetas;
    std::vector<std::string> traffics;

    std::vector<ReportRun> runs;
    std::vector<ReportSummaryRow> summaries; ///< as stored in the report
};

/**
 * Parse report JSON (schema mondrian-campaign-v1 through -v4) into
 * @p out. v1 runs carry no axis labels; they land at the default
 * geometry, the "base" exec point and the report's campaign-wide
 * zipf_theta — the axes a v1 campaign actually simulated. v3 runs are
 * labeled by scenario and may carry per-stage sub-results (loaded into
 * RunResult::stages). v4 runs are additionally labeled by traffic spec
 * and may carry served metrics (RunResult::served); pre-v4 runs load at
 * the degenerate "none" traffic point.
 * @return false with a human-readable @p error on parse/schema problems.
 */
bool loadReportModel(const std::string &json_text, ReportModel &out,
                     std::string &error);

/** Read @p path and loadReportModel() its contents. */
bool loadReportFile(const std::string &path, ReportModel &out,
                    std::string &error);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_REPORT_MODEL_HH
