#include "system/runner.hh"

#include "common/logging.hh"
#include "engine/ops.hh"

namespace mondrian {

const char *
opKindName(OpKind op)
{
    switch (op) {
      case OpKind::kScan:
        return "scan";
      case OpKind::kSort:
        return "sort";
      case OpKind::kGroupBy:
        return "groupby";
      case OpKind::kJoin:
        return "join";
    }
    return "?";
}

bool
opKindFromName(const std::string &name, OpKind &out)
{
    for (OpKind op : allOpKinds()) {
        if (name == opKindName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

const std::vector<OpKind> &
allOpKinds()
{
    static const std::vector<OpKind> ops = {OpKind::kScan, OpKind::kSort,
                                            OpKind::kGroupBy, OpKind::kJoin};
    return ops;
}

RunResult
Runner::run(SystemKind kind, OpKind op)
{
    return run(makeSystem(kind), op);
}

RunResult
Runner::run(const SystemConfig &sys, OpKind op)
{
    MemoryPool pool(sys.geo);
    WorkloadGenerator gen(workload_);

    // Functional execution + trace recording.
    OperatorExecution exec;
    switch (op) {
      case OpKind::kScan: {
        Relation rel = gen.makeUniform(pool, workload_.tuples);
        // Probe for a key that exists: the generator draws keys from
        // [0, 4n), so key 1 is almost surely present but selectivity is
        // tiny, matching a needle-in-haystack scan.
        exec = runScan(pool, sys.exec, rel, 1);
        break;
      }
      case OpKind::kSort: {
        Relation rel = gen.makeUniform(pool, workload_.tuples);
        exec = runSort(pool, sys.exec, rel);
        break;
      }
      case OpKind::kGroupBy: {
        Relation rel = gen.makeGroupBy(pool, workload_.tuples);
        exec = runGroupBy(pool, sys.exec, rel);
        break;
      }
      case OpKind::kJoin: {
        auto pair = gen.makeJoinPair(pool);
        exec = runJoin(pool, sys.exec, pair.r, pair.s);
        break;
      }
    }

    // Timed replay.
    Machine machine(sys, pool);
    auto phases = machine.run(exec);

    RunResult res;
    res.system = sys.name;
    res.op = opKindName(op);
    res.phases = phases;

    std::uint64_t part_bytes = 0, probe_bytes = 0;
    for (const auto &p : phases) {
        res.totalTime += p.time;
        if (p.kind == PhaseKind::kPartition) {
            res.partitionTime += p.time;
            part_bytes += p.dramBytes;
        } else {
            res.probeTime += p.time;
            probe_bytes += p.dramBytes;
        }
    }
    const double vaults = static_cast<double>(sys.geo.totalVaults());
    if (res.partitionTime > 0) {
        res.partitionVaultBWGBps = bytesPerTickToGBps(
            static_cast<double>(part_bytes) / vaults, res.partitionTime);
    }
    if (res.probeTime > 0) {
        res.probeVaultBWGBps = bytesPerTickToGBps(
            static_cast<double>(probe_bytes) / vaults, res.probeTime);
    }

    res.activity = machine.energyActivity();
    res.energy = machine.energy();
    res.scanMatches = exec.scanMatches;
    res.joinMatches = exec.joinMatches;
    res.groupCount = exec.groupCount;
    res.aggChecksum = exec.aggChecksum;
    return res;
}

} // namespace mondrian
