#include "system/runner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "engine/ops.hh"
#include "engine/spark.hh"

namespace mondrian {

namespace {

/** Probe key for scan/filter stages: the generator draws keys from a
 *  space larger than the tuple count, so key 1 is almost surely present
 *  but selectivity is tiny — a needle-in-haystack scan. */
constexpr std::uint64_t kScanProbeKey = 1;

EnergyBreakdown
energyDelta(const EnergyBreakdown &now, const EnergyBreakdown &prev)
{
    EnergyBreakdown d;
    d.dramDynamic = now.dramDynamic - prev.dramDynamic;
    d.dramStatic = now.dramStatic - prev.dramStatic;
    d.cores = now.cores - prev.cores;
    d.network = now.network - prev.network;
    return d;
}

/** Sum @p phases into partition/probe buckets and derive per-vault BW. */
void
aggregatePhases(const std::vector<PhaseResult> &phases, double vaults,
                Tick &partition, Tick &probe, Tick &total,
                double &part_bw, double &probe_bw)
{
    std::uint64_t part_bytes = 0, probe_bytes = 0;
    for (const auto &p : phases) {
        total += p.time;
        if (p.kind == PhaseKind::kPartition) {
            partition += p.time;
            part_bytes += p.dramBytes;
        } else {
            probe += p.time;
            probe_bytes += p.dramBytes;
        }
    }
    if (partition > 0) {
        part_bw = bytesPerTickToGBps(
            static_cast<double>(part_bytes) / vaults, partition);
    }
    if (probe > 0) {
        probe_bw = bytesPerTickToGBps(
            static_cast<double>(probe_bytes) / vaults, probe);
    }
}

/**
 * Collect a finished stage's output tuples in a canonical order. The
 * canonical order (key, then payload) is system-independent, so the next
 * stage's input — and therefore its functional results — are identical
 * on every evaluated system even when execution styles emit their
 * outputs in different partition orders.
 */
std::vector<Tuple>
stageOutputTuples(MemoryPool &pool, const OperatorExecution &exec,
                  OpKind op)
{
    std::vector<Tuple> out;
    switch (op) {
      case OpKind::kScan:
        // Scan models predicate evaluation over the flowing relation;
        // the surviving relation is the input itself (pass-through).
        break;
      case OpKind::kSort:
        out = exec.output.gatherAll(pool);
        break;
      case OpKind::kJoin:
        // Join match tuples are materialized in the output regions.
        for (const auto &[addr, bytes] : exec.outputRegions) {
            for (std::uint64_t off = 0; off + kTupleBytes <= bytes;
                 off += kTupleBytes) {
                out.push_back(
                    pool.store().readValue<Tuple>(addr + off));
            }
        }
        break;
      case OpKind::kGroupBy:
        // Group records (64 B) flow onward as (group key, sum) tuples.
        for (const auto &[addr, bytes] : exec.outputRegions) {
            for (std::uint64_t off = 0;
                 off + sizeof(GroupRecord) <= bytes;
                 off += sizeof(GroupRecord)) {
                GroupRecord g =
                    pool.store().readValue<GroupRecord>(addr + off);
                out.push_back(Tuple{g.key, g.sum});
            }
        }
        break;
    }
    std::sort(out.begin(), out.end(), [](const Tuple &a, const Tuple &b) {
        return a.key != b.key ? a.key < b.key : a.payload < b.payload;
    });
    return out;
}

/** Count a stage's output tuples from sizes alone (no data reads) —
 *  for final stages, whose output nothing consumes. */
std::uint64_t
countOutputTuples(const OperatorExecution &exec, OpKind op)
{
    std::uint64_t bytes = 0;
    switch (op) {
      case OpKind::kScan:
        return 0; // handled by the pass-through path
      case OpKind::kSort:
        return exec.output.totalTuples();
      case OpKind::kJoin:
        for (const auto &[addr, region_bytes] : exec.outputRegions)
            bytes += region_bytes;
        return bytes / kTupleBytes;
      case OpKind::kGroupBy:
        for (const auto &[addr, region_bytes] : exec.outputRegions)
            bytes += region_bytes;
        return bytes / sizeof(GroupRecord);
    }
    return 0;
}

/** Materialize @p tuples as a fresh relation, round-robin across all
 *  vaults (the same canonical layout the workload generator uses). */
Relation
materializeRelation(MemoryPool &pool, const std::vector<Tuple> &tuples)
{
    const unsigned vaults = pool.geometry().totalVaults();
    Relation rel =
        Relation::allocAcrossAll(pool, tuples.size() + vaults);
    std::vector<std::vector<Tuple>> buckets(rel.numPartitions());
    for (std::size_t i = 0; i < tuples.size(); ++i)
        buckets[i % buckets.size()].push_back(tuples[i]);
    for (std::size_t p = 0; p < buckets.size(); ++p)
        rel.scatter(pool, p, buckets[p]);
    return rel;
}

} // namespace

RunResult
Runner::run(SystemKind kind, const Scenario &scenario)
{
    return run(makeSystem(kind), scenario);
}

RunResult
Runner::run(SystemKind kind, OpKind op)
{
    return run(makeSystem(kind), degenerateScenario(op));
}

RunResult
Runner::run(const SystemConfig &sys, OpKind op)
{
    return run(sys, degenerateScenario(op));
}

PreparedScenario
prepareScenario(MemoryPool &pool, const WorkloadConfig &workload,
                const SystemConfig &sys, const Scenario &scenario)
{
    if (scenario.stages.empty())
        fatal("scenario '%s' has no stages", scenario.name.c_str());

    WorkloadGenerator gen(workload);
    SparkContext ctx(pool, sys.exec);

    PreparedScenario ps;
    ps.scenario = scenario;
    ps.multi = !scenario.degenerate();

    // A chain with a join stage anywhere runs over a generated join
    // pair: the R side is the scenario's dimension relation, the S side
    // seeds the flowing relation.
    bool needs_pair = false;
    for (const ScenarioStage &st : scenario.stages)
        needs_pair = needs_pair || st.op == OpKind::kJoin;

    // Functional execution + trace recording, stage by stage. The
    // flowing relation chains each stage to its predecessor's output.
    Relation dim;     ///< join build side (valid when needs_pair)
    Relation current; ///< the flowing relation
    ps.execs.reserve(scenario.stages.size());

    for (std::size_t i = 0; i < scenario.stages.size(); ++i) {
        const ScenarioStage &stage = scenario.stages[i];
        if (stage.input == StageInput::kGenerated) {
            if (needs_pair) {
                auto pair = gen.makeJoinPair(pool);
                dim = pair.r;
                current = pair.s;
            } else if (stage.op == OpKind::kGroupBy) {
                current = gen.makeGroupBy(pool, workload.tuples);
            } else {
                current = gen.makeUniform(pool, workload.tuples);
            }
        }
        ps.inputTuples.push_back(current.totalTuples());

        SparkContext::Lowered lowered;
        switch (stage.op) {
          case OpKind::kScan:
            lowered = ctx.filter(current, kScanProbeKey);
            break;
          case OpKind::kSort:
            lowered = ctx.sortByKey(current);
            break;
          case OpKind::kGroupBy:
            lowered = ctx.reduceByKey(current);
            break;
          case OpKind::kJoin:
            lowered = ctx.join(dim, current);
            break;
        }

        // Chain the output forward when a successor consumes it.
        const bool has_successor = i + 1 < scenario.stages.size();
        if (stage.op == OpKind::kScan) {
            // Pass-through: the surviving relation is the input.
            ps.outputTuples.push_back(current.totalTuples());
        } else if (ps.multi && has_successor) {
            std::vector<Tuple> out =
                stageOutputTuples(pool, lowered.exec, stage.op);
            ps.outputTuples.push_back(out.size());
            current = materializeRelation(pool, out);
        } else if (ps.multi) {
            // Final stage: the count is derivable from sizes alone —
            // skip the full-output gather and canonical sort.
            ps.outputTuples.push_back(
                countOutputTuples(lowered.exec, stage.op));
        } else {
            // Degenerate run: nothing consumes the output and no stage
            // record reports it — skip the gather.
            ps.outputTuples.push_back(0);
        }
        ps.execs.push_back(std::move(lowered.exec));
    }
    return ps;
}

void
accumulateStage(RunResult &res, const PreparedScenario &ps, std::size_t i,
                std::vector<PhaseResult> phases, double vaults,
                const EnergyBreakdown &now, EnergyBreakdown &prev)
{
    const ScenarioStage &stage = ps.scenario.stages[i];
    if (ps.multi) {
        StageResult sr;
        sr.stage = stage.spark;
        sr.op = opKindName(stage.op);
        sr.input = stageInputName(stage.input);
        sr.phases = phases;
        sr.energy = energyDelta(now, prev);
        sr.inputTuples = ps.inputTuples[i];
        sr.outputTuples = ps.outputTuples[i];
        sr.scanMatches = ps.execs[i].scanMatches;
        sr.joinMatches = ps.execs[i].joinMatches;
        sr.groupCount = ps.execs[i].groupCount;
        sr.aggChecksum = ps.execs[i].aggChecksum;
        aggregatePhases(phases, vaults, sr.partitionTime, sr.probeTime,
                        sr.totalTime, sr.partitionVaultBWGBps,
                        sr.probeVaultBWGBps);
        res.stages.push_back(std::move(sr));
        // Top-level phases carry their stage token so a flat phase
        // list still reads as a pipeline.
        for (PhaseResult &p : phases)
            p.name = stage.spark + "." + p.name;
    }
    prev = now;

    res.scanMatches += ps.execs[i].scanMatches;
    res.joinMatches += ps.execs[i].joinMatches;
    res.groupCount += ps.execs[i].groupCount;
    res.aggChecksum += ps.execs[i].aggChecksum;
    for (PhaseResult &p : phases)
        res.phases.push_back(std::move(p));
}

void
finishRunResult(RunResult &res, double vaults,
                const EnergyActivity &activity,
                const EnergyBreakdown &energy)
{
    aggregatePhases(res.phases, vaults, res.partitionTime, res.probeTime,
                    res.totalTime, res.partitionVaultBWGBps,
                    res.probeVaultBWGBps);
    res.activity = activity;
    res.energy = energy;
}

RunResult
Runner::run(const SystemConfig &sys, const Scenario &scenario)
{
    MemoryPool pool(sys.geo);
    PreparedScenario ps = prepareScenario(pool, workload_, sys, scenario);

    // Timed replay: one Machine, all stages back-to-back on one event
    // queue, per-stage energy attributed by cumulative deltas.
    Machine machine(sys, pool);
    RunResult res;
    res.system = sys.name;
    res.op = scenario.name;

    const double vaults = static_cast<double>(sys.geo.totalVaults());
    EnergyBreakdown prev_energy;
    for (std::size_t i = 0; i < scenario.stages.size(); ++i) {
        std::vector<PhaseResult> phases = machine.run(ps.execs[i]);
        accumulateStage(res, ps, i, std::move(phases), vaults,
                        machine.energy(), prev_energy);
    }

    finishRunResult(res, vaults, machine.energyActivity(),
                    machine.energy());
    res.simEvents = machine.simEvents();
    return res;
}

} // namespace mondrian
