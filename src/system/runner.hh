/**
 * @file
 * Runner: end-to-end execution of one operator on one system.
 *
 * Builds a fresh memory pool, generates the (seed-deterministic) workload,
 * executes the operator functionally to obtain kernel traces, replays them
 * on a wired Machine, and packages timing + energy + functional results.
 * Fresh state per run keeps systems comparable: every configuration sees
 * the identical input data.
 */

#ifndef MONDRIAN_SYSTEM_RUNNER_HH
#define MONDRIAN_SYSTEM_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "engine/operator.hh"
#include "engine/workload.hh"
#include "system/config.hh"
#include "system/machine.hh"

namespace mondrian {

/** The four basic operators (Table 2). */
enum class OpKind
{
    kScan,
    kSort,
    kGroupBy,
    kJoin
};

const char *opKindName(OpKind op);

/** Parse an operator name ("scan"/"sort"/"groupby"/"join"). */
bool opKindFromName(const std::string &name, OpKind &out);

/** All operators, in evaluation order. */
const std::vector<OpKind> &allOpKinds();

/** Everything measured in one run. */
struct RunResult
{
    std::string system;
    std::string op;

    Tick partitionTime = 0; ///< sum of partition-kind phases
    Tick probeTime = 0;     ///< sum of probe-kind phases
    Tick totalTime = 0;

    std::vector<PhaseResult> phases;
    EnergyBreakdown energy;
    EnergyActivity activity;

    // Functional outputs for verification.
    std::uint64_t scanMatches = 0;
    std::uint64_t joinMatches = 0;
    std::uint64_t groupCount = 0;
    std::uint64_t aggChecksum = 0;

    /** Mean per-vault DRAM bandwidth during partition phases (GB/s). */
    double partitionVaultBWGBps = 0.0;
    /** Mean per-vault DRAM bandwidth during probe phases (GB/s). */
    double probeVaultBWGBps = 0.0;

    double
    seconds() const
    {
        return ticksToSeconds(totalTime);
    }
};

/** Runs operators on configured systems. */
class Runner
{
  public:
    explicit Runner(const WorkloadConfig &workload) : workload_(workload) {}

    /** Run @p op on the preset system @p kind. */
    RunResult run(SystemKind kind, OpKind op);

    /** Run @p op on a fully custom system configuration. */
    RunResult run(const SystemConfig &sys, OpKind op);

    const WorkloadConfig &workload() const { return workload_; }

  private:
    WorkloadConfig workload_;
};

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_RUNNER_HH
