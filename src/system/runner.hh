/**
 * @file
 * Runner: end-to-end execution of one Scenario on one system.
 *
 * A run simulates a whole analytics pipeline, not a single operator: the
 * Runner builds ONE memory pool and ONE wired Machine per run, generates
 * the (seed-deterministic) input workload, then executes the scenario's
 * stages in order. Each stage runs functionally through the simulated
 * address space to obtain kernel traces, and intermediate relations flow
 * stage-to-stage: a stage bound to kPrevOutput consumes its
 * predecessor's output relation, re-materialized in a canonical
 * system-independent layout so every evaluated system sees functionally
 * identical inputs at every stage. The Machine replays all stages
 * back-to-back on one event queue, so cache, DRAM-bank and link state
 * carry across stage boundaries exactly as they would in hardware.
 *
 * RunResult keeps the classic aggregate view at the top level (total /
 * partition / probe time, energy, bandwidth, functional counts over the
 * whole pipeline) and adds one StageResult per stage with the same
 * breakdown scoped to that stage. Degenerate scenarios ("scan", "sort",
 * "groupby", "join") reduce to exactly the historical one-operator run:
 * same bytes in the report, no stage list.
 *
 * Fresh state per run keeps systems comparable: every configuration sees
 * the identical input data and the identical stage-to-stage dataflow.
 */

#ifndef MONDRIAN_SYSTEM_RUNNER_HH
#define MONDRIAN_SYSTEM_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "engine/operator.hh"
#include "engine/workload.hh"
#include "system/config.hh"
#include "system/machine.hh"
#include "system/scenario.hh"

namespace mondrian {

/** Everything measured in one stage of a scenario run. */
struct StageResult
{
    std::string stage; ///< canonical stage token (e.g. "filter")
    std::string op;    ///< basic operator it lowered onto
    std::string input; ///< "generated" or "prev"

    Tick partitionTime = 0;
    Tick probeTime = 0;
    Tick totalTime = 0;

    /** This stage's phases (names unprefixed, stage-local). */
    std::vector<PhaseResult> phases;
    /** Energy attributed to this stage (deltas of the machine's
     *  cumulative breakdown; stage energies sum to the run total). */
    EnergyBreakdown energy;

    double partitionVaultBWGBps = 0.0;
    double probeVaultBWGBps = 0.0;

    /** Tuples of the stage's input relation (the flowing side). */
    std::uint64_t inputTuples = 0;
    /** Tuples the stage hands to its successor. */
    std::uint64_t outputTuples = 0;

    // Stage-local functional outputs.
    std::uint64_t scanMatches = 0;
    std::uint64_t joinMatches = 0;
    std::uint64_t groupCount = 0;
    std::uint64_t aggChecksum = 0;
};

/**
 * Metrics of a served (open-loop traffic) run. Valid only when the run
 * was driven by a non-degenerate TrafficSpec; single-query runs leave it
 * invalid and their report JSON carries no served object at all.
 */
struct ServedMetrics
{
    bool valid = false;

    std::uint64_t offered = 0;   ///< arrivals generated
    std::uint64_t admitted = 0;  ///< arrivals accepted into the system
    std::uint64_t rejected = 0;  ///< arrivals refused by the in-flight cap
    std::uint64_t completed = 0; ///< queries that ran to completion
    /** Completions inside the measurement window (post-warmup). */
    std::uint64_t measuredCompleted = 0;

    /** Measurement window: first measured arrival to last measured
     *  completion. */
    Tick window = 0;
    /** measuredCompleted / window, in queries per second. */
    double sustainedQps = 0.0;

    // Nearest-rank latency percentiles over measured completions.
    Tick latencyP50 = 0;
    Tick latencyP95 = 0;
    Tick latencyP99 = 0;
    Tick latencyMax = 0;
    double latencyMeanPs = 0.0;

    /** Whole-run energy divided by completed queries (J/query). */
    double energyPerQueryJ = 0.0;
};

/** Everything measured in one run. */
struct RunResult
{
    std::string system;
    /** Scenario name; for degenerate scenarios this is the classic
     *  operator label ("scan"/"sort"/"groupby"/"join"). */
    std::string op;

    Tick partitionTime = 0; ///< sum of partition-kind phases
    Tick probeTime = 0;     ///< sum of probe-kind phases
    Tick totalTime = 0;

    /** All phases of the run; multi-stage scenarios prefix each phase
     *  name with its stage token ("filter.probe"). */
    std::vector<PhaseResult> phases;
    EnergyBreakdown energy;
    EnergyActivity activity;

    // Functional outputs for verification (summed across stages).
    std::uint64_t scanMatches = 0;
    std::uint64_t joinMatches = 0;
    std::uint64_t groupCount = 0;
    std::uint64_t aggChecksum = 0;

    /**
     * Per-stage sub-results. Empty for degenerate scenarios (the run IS
     * its single stage); one entry per stage otherwise.
     */
    std::vector<StageResult> stages;

    /** Mean per-vault DRAM bandwidth during partition phases (GB/s). */
    double partitionVaultBWGBps = 0.0;
    /** Mean per-vault DRAM bandwidth during probe phases (GB/s). */
    double probeVaultBWGBps = 0.0;

    /** Open-loop traffic metrics (ServedRunner, non-degenerate only). */
    ServedMetrics served;

    /**
     * Simulated events behind the run: queue pops + coalesced same-tick
     * completions (Machine::simEvents()). Invariant under the perf
     * toggles — the sum counts the logical event stream — which is why
     * it can live in the report without breaking the ablation byte-
     * identity oracle. Runs spliced from pre-PR-8 reports carry 0.
     */
    std::uint64_t simEvents = 0;

    double
    seconds() const
    {
        return ticksToSeconds(totalTime);
    }
};

/**
 * A scenario after its functional half: the workload has been generated,
 * every stage executed functionally (producing kernel traces and the
 * stage-to-stage dataflow), and the tuple counts recorded. What remains
 * is timed replay on a Machine — once (Runner) or once per admitted
 * query instance (ServedRunner, which replays the shared traces).
 */
struct PreparedScenario
{
    Scenario scenario;
    bool multi = false; ///< !scenario.degenerate()
    std::vector<OperatorExecution> execs; ///< one per stage
    std::vector<std::uint64_t> inputTuples;
    std::vector<std::uint64_t> outputTuples;
};

/** Run the functional half of @p scenario inside @p pool. */
PreparedScenario prepareScenario(MemoryPool &pool,
                                 const WorkloadConfig &workload,
                                 const SystemConfig &sys,
                                 const Scenario &scenario);

/**
 * Fold stage @p i's finished phases into @p res: append the stage
 * record (multi-stage scenarios only), prefix and collect the phases,
 * and sum the functional outputs. @p now is the machine's cumulative
 * energy after the stage; @p prev is updated to it.
 */
void accumulateStage(RunResult &res, const PreparedScenario &ps,
                     std::size_t i, std::vector<PhaseResult> phases,
                     double vaults, const EnergyBreakdown &now,
                     EnergyBreakdown &prev);

/** Final aggregation over res.phases plus the machine snapshots. */
void finishRunResult(RunResult &res, double vaults,
                     const EnergyActivity &activity,
                     const EnergyBreakdown &energy);

/** Executes scenarios on configured systems. */
class Runner
{
  public:
    explicit Runner(const WorkloadConfig &workload) : workload_(workload) {}

    /** Run @p scenario on the preset system @p kind. */
    RunResult run(SystemKind kind, const Scenario &scenario);

    /** Run @p scenario on a fully custom system configuration. */
    RunResult run(const SystemConfig &sys, const Scenario &scenario);

    /** Classic single-operator run: the degenerate scenario of @p op. */
    RunResult run(SystemKind kind, OpKind op);
    RunResult run(const SystemConfig &sys, OpKind op);

    const WorkloadConfig &workload() const { return workload_; }

  private:
    WorkloadConfig workload_;
};

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_RUNNER_HH
