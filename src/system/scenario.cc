#include "system/scenario.hh"

#include <cctype>

#include "engine/spark.hh"

namespace mondrian {

const char *
opKindName(OpKind op)
{
    switch (op) {
      case OpKind::kScan:
        return "scan";
      case OpKind::kSort:
        return "sort";
      case OpKind::kGroupBy:
        return "groupby";
      case OpKind::kJoin:
        return "join";
    }
    return "?";
}

bool
opKindFromName(const std::string &name, OpKind &out)
{
    for (OpKind op : allOpKinds()) {
        if (name == opKindName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

const std::vector<OpKind> &
allOpKinds()
{
    static const std::vector<OpKind> ops = {OpKind::kScan, OpKind::kSort,
                                            OpKind::kGroupBy, OpKind::kJoin};
    return ops;
}

const char *
stageInputName(StageInput input)
{
    return input == StageInput::kGenerated ? "generated" : "prev";
}

bool
Scenario::degenerate() const
{
    return stages.size() == 1 &&
           stages.front().input == StageInput::kGenerated &&
           name == opKindName(stages.front().op);
}

Scenario
degenerateScenario(OpKind op)
{
    Scenario sc;
    sc.name = opKindName(op);
    sc.stages.push_back(
        ScenarioStage{opKindName(op), op, StageInput::kGenerated});
    return sc;
}

namespace {

OpKind
basicToOpKind(BasicOp basic)
{
    switch (basic) {
      case BasicOp::kScan:
        return OpKind::kScan;
      case BasicOp::kGroupBy:
        return OpKind::kGroupBy;
      case BasicOp::kJoin:
        return OpKind::kJoin;
      case BasicOp::kSort:
        return OpKind::kSort;
    }
    return OpKind::kScan;
}

/** Table 1 name in canonical stage-token form ("ReduceByKey" ->
 *  "reduceByKey"). */
std::string
tokenOf(const std::string &spark_name)
{
    std::string token = spark_name;
    if (!token.empty())
        token[0] = static_cast<char>(std::tolower(token[0]));
    return token;
}

ScenarioStage
stageOf(const std::string &token, OpKind op, StageInput input)
{
    return ScenarioStage{token, op, input};
}

} // namespace

const std::vector<std::pair<std::string, OpKind>> &
scenarioStageTokens()
{
    static const std::vector<std::pair<std::string, OpKind>> tokens = [] {
        std::vector<std::pair<std::string, OpKind>> out;
        for (const auto &[name, basic] : sparkOperatorTable())
            out.emplace_back(tokenOf(name), basicToOpKind(basic));
        return out;
    }();
    return tokens;
}

const std::vector<Scenario> &
scenarioPresets()
{
    static const std::vector<Scenario> presets = [] {
        std::vector<Scenario> out;
        // Clickstream sessions (the analytics_pipeline example): filter
        // events, join them with the user dimension, aggregate per user,
        // rank the aggregates.
        Scenario sessions;
        sessions.name = "sessions";
        sessions.stages = {
            stageOf("filter", OpKind::kScan, StageInput::kGenerated),
            stageOf("join", OpKind::kJoin, StageInput::kPrevOutput),
            stageOf("reduceByKey", OpKind::kGroupBy, StageInput::kPrevOutput),
            stageOf("sortByKey", OpKind::kSort, StageInput::kPrevOutput),
        };
        out.push_back(std::move(sessions));
        return out;
    }();
    return presets;
}

std::string
scenarioIdentity(const Scenario &scenario)
{
    if (scenario.degenerate())
        return scenario.name;
    std::string id = scenario.name + "{";
    for (std::size_t i = 0; i < scenario.stages.size(); ++i) {
        const ScenarioStage &st = scenario.stages[i];
        if (i > 0)
            id += ",";
        id += st.spark;
        id += ":";
        id += opKindName(st.op);
        id += ":";
        id += stageInputName(st.input);
    }
    return id + "}";
}

bool
scenarioFromSpec(const std::string &spec, Scenario &out, std::string &error)
{
    out = Scenario{};
    if (spec.empty()) {
        error = "empty scenario spec";
        return false;
    }

    // Degenerate single-op scenarios keep today's names byte-for-byte.
    OpKind op;
    if (opKindFromName(spec, op)) {
        out = degenerateScenario(op);
        return true;
    }

    for (const Scenario &preset : scenarioPresets()) {
        if (spec == preset.name) {
            out = preset;
            return true;
        }
    }

    // Chain grammar: ">"-joined stage tokens.
    std::vector<std::string> tokens;
    std::string::size_type pos = 0;
    while (true) {
        std::string::size_type next = spec.find('>', pos);
        tokens.push_back(spec.substr(
            pos, next == std::string::npos ? next : next - pos));
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }

    for (const std::string &token : tokens) {
        if (token.empty()) {
            error = "scenario spec '" + spec +
                    "' has an empty stage (stray '>')";
            return false;
        }
        bool known = false;
        OpKind stage_op = OpKind::kScan;
        for (const auto &[name, kind] : scenarioStageTokens()) {
            if (token == name) {
                known = true;
                stage_op = kind;
                break;
            }
        }
        if (!known) {
            std::string valid;
            for (const auto &[name, kind] : scenarioStageTokens()) {
                (void)kind;
                valid += valid.empty() ? name : " " + name;
            }
            error = "unknown stage '" + token + "' in scenario spec '" +
                    spec + "' (stages: " + valid +
                    "; presets: sessions; single ops: scan sort groupby "
                    "join)";
            return false;
        }
        out.stages.push_back(stageOf(token, stage_op,
                                     out.stages.empty()
                                         ? StageInput::kGenerated
                                         : StageInput::kPrevOutput));
        out.name += out.name.empty() ? token : ">" + token;
    }
    return true;
}

} // namespace mondrian
