/**
 * @file
 * Scenario: a declarative multi-stage analytics pipeline, the unit of
 * execution the Runner simulates.
 *
 * The paper evaluates four basic operators (Table 2), but real analytics
 * queries are *pipelines* of Spark-style dataflow operators (Table 1)
 * that lower onto them. A Scenario is a named, ordered stage list; each
 * stage names the Spark-style operator it models, the basic operator it
 * lowers onto, and where its input relation comes from — freshly
 * generated (first stage) or the previous stage's output, flowing
 * stage-to-stage through the simulated address space.
 *
 * Spec grammar (CLI `--scenario`, campaign axis labels):
 *
 *   scenario   := op-name | preset-name | chain
 *   op-name    := "scan" | "sort" | "groupby" | "join"   (degenerate:
 *                 one generated stage, reproduces the classic single-op
 *                 run byte-for-byte, including its report label)
 *   preset     := "sessions"                             (clickstream:
 *                 filter>join>reduceByKey>sortByKey)
 *   chain      := token (">" token)+  |  token
 *   token      := camelCase Table 1 operator, e.g. "filter",
 *                 "reduceByKey", "sortByKey", "join", "map", ...
 *
 * Chain stage 1 runs on a generated relation; every later stage consumes
 * its predecessor's output. Join stages build against the scenario's
 * dimension relation (the R side of the generated join pair) and probe
 * with the flowing relation.
 */

#ifndef MONDRIAN_SYSTEM_SCENARIO_HH
#define MONDRIAN_SYSTEM_SCENARIO_HH

#include <string>
#include <vector>

namespace mondrian {

/** The four basic operators (Table 2). */
enum class OpKind
{
    kScan,
    kSort,
    kGroupBy,
    kJoin
};

const char *opKindName(OpKind op);

/** Parse an operator name ("scan"/"sort"/"groupby"/"join"). */
bool opKindFromName(const std::string &name, OpKind &out);

/** All operators, in evaluation order. */
const std::vector<OpKind> &allOpKinds();

/** Where a stage's input relation comes from. */
enum class StageInput
{
    kGenerated,  ///< fresh relation from the workload generator
    kPrevOutput  ///< the previous stage's output relation
};

const char *stageInputName(StageInput input);

/** One pipeline stage: a Spark-style operator plus its input binding. */
struct ScenarioStage
{
    /** Canonical stage token (camelCase Table 1 name, e.g. "filter"). */
    std::string spark;
    /** Basic operator the stage lowers onto (Table 1 mapping). */
    OpKind op = OpKind::kScan;
    StageInput input = StageInput::kGenerated;
};

/** A named, declarative stage list — the unit of execution. */
struct Scenario
{
    /** Canonical label: the axis value in campaign reports. */
    std::string name;
    std::vector<ScenarioStage> stages;

    /**
     * True for the four classic single-op scenarios ("scan", "sort",
     * "groupby", "join"): one generated stage whose label is the basic
     * operator's own name. Degenerate scenarios reproduce the
     * pre-scenario Runner byte-for-byte, and campaigns made only of them
     * emit schema mondrian-campaign-v2 reports unchanged.
     */
    bool degenerate() const;
};

/** The degenerate scenario of @p op (name == opKindName(op)). */
Scenario degenerateScenario(OpKind op);

/** Named multi-stage presets ("sessions"), in listing order. */
const std::vector<Scenario> &scenarioPresets();

/** Valid chain tokens with the basic op each lowers onto. */
const std::vector<std::pair<std::string, OpKind>> &scenarioStageTokens();

/**
 * Parse a scenario spec (grammar above) into @p out.
 * @return false with a human-readable @p error on malformed specs.
 */
bool scenarioFromSpec(const std::string &spec, Scenario &out,
                      std::string &error);

/**
 * Canonical resume/cache identity of a scenario: the bare name for
 * degenerate scenarios (so v1/v2 report "op" labels key identically),
 * and name + "{stage:op:input,...}" otherwise — two scenarios sharing a
 * name but differing in stage structure never collide.
 */
std::string scenarioIdentity(const Scenario &scenario);

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_SCENARIO_HH
