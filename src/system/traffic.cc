#include "system/traffic.hh"

#include <cmath>
#include <cstdlib>
#include <deque>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sim/stats.hh"

namespace mondrian {

const char *
arrivalProcessName(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::kPoisson: return "poisson";
      case ArrivalProcess::kFixed: return "fixed";
    }
    return "?";
}

std::string
TrafficSpec::name() const
{
    if (degenerate())
        return "none";
    std::string n = arrivalProcessName(process);
    n += "-l";
    n += JsonWriter::doubleString(lambdaQps);
    n += "-q" + std::to_string(queries);
    if (warmup > 0)
        n += "-w" + std::to_string(warmup);
    if (maxInFlight > 0)
        n += "-i" + std::to_string(maxInFlight);
    n += "-s" + std::to_string(seed);
    if (!mix.empty()) {
        n += "-mix=";
        for (std::size_t i = 0; i < mix.size(); ++i) {
            if (i > 0)
                n += "+";
            n += mix[i].scenario.name + ":" +
                 JsonWriter::doubleString(mix[i].weight);
        }
    }
    if (mixZipfTheta != 0.0) {
        n += "-mz";
        n += JsonWriter::doubleString(mixZipfTheta);
    }
    return n;
}

namespace {

/** Split @p s on @p sep into non-empty trimmed-as-is pieces. */
std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseMix(const std::string &val, std::vector<TrafficMixEntry> &out,
         std::string &error)
{
    for (const std::string &item : splitOn(val, '+')) {
        // name[:weight] — the weight is numeric after the last ':', so
        // mix names themselves may not contain ':' (presets and basic
        // ops never do).
        TrafficMixEntry entry;
        std::string name = item;
        std::size_t colon = item.rfind(':');
        if (colon != std::string::npos) {
            if (!parseF64(item.substr(colon + 1), entry.weight)) {
                error = "traffic mix entry '" + item +
                        "': malformed weight";
                return false;
            }
            name = item.substr(0, colon);
        }
        if (!scenarioFromSpec(name, entry.scenario, error)) {
            error = "traffic mix entry '" + item + "': " + error;
            return false;
        }
        out.push_back(std::move(entry));
    }
    if (out.empty()) {
        error = "traffic mix is empty";
        return false;
    }
    return true;
}

} // namespace

bool
parseTrafficSpec(const std::string &spec, TrafficSpec &out,
                 std::string &error)
{
    out = TrafficSpec{};
    if (spec == "none")
        return true;
    if (spec.empty()) {
        error = "empty traffic spec";
        return false;
    }
    for (const std::string &item : splitOn(spec, ',')) {
        std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            if (item == "poisson") {
                out.process = ArrivalProcess::kPoisson;
            } else if (item == "fixed") {
                out.process = ArrivalProcess::kFixed;
            } else {
                error = "unknown traffic token '" + item +
                        "' (expected poisson, fixed or key=value)";
                return false;
            }
            continue;
        }
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        bool ok = true;
        if (key == "lambda") {
            ok = parseF64(val, out.lambdaQps);
        } else if (key == "queries") {
            ok = parseU64(val, out.queries);
        } else if (key == "warmup") {
            ok = parseU64(val, out.warmup);
        } else if (key == "inflight") {
            ok = parseU64(val, out.maxInFlight);
        } else if (key == "seed") {
            ok = parseU64(val, out.seed);
        } else if (key == "mix") {
            if (!parseMix(val, out.mix, error))
                return false;
        } else if (key == "mix-zipf") {
            ok = parseF64(val, out.mixZipfTheta);
        } else {
            error = "unknown traffic key '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "malformed traffic value '" + item + "'";
            return false;
        }
    }
    error = validateTrafficSpec(out);
    return error.empty();
}

std::string
validateTrafficSpec(const TrafficSpec &traffic)
{
    if (traffic.degenerate()) {
        // The degenerate spec is exactly the default: anything else
        // combined with lambda=0 would silently be ignored.
        if (!traffic.mix.empty() || traffic.warmup != 0 ||
            traffic.maxInFlight != 0 || traffic.mixZipfTheta != 0.0)
            return "traffic without lambda> 0 must be plain 'none'";
        return "";
    }
    if (traffic.lambdaQps < 0.0 || !std::isfinite(traffic.lambdaQps))
        return "traffic lambda must be a finite rate > 0";
    if (traffic.queries == 0)
        return "traffic needs queries >= 1";
    if (traffic.warmup >= traffic.queries)
        return "traffic warmup must leave at least one measured query";
    if (traffic.mixZipfTheta < 0.0 || traffic.mixZipfTheta >= 2.0)
        return "traffic mix-zipf must be in [0, 2)";
    for (const TrafficMixEntry &e : traffic.mix) {
        if (!(e.weight > 0.0) || !std::isfinite(e.weight))
            return "traffic mix weight for '" + e.scenario.name +
                   "' must be > 0";
    }
    return "";
}

std::vector<Arrival>
generateArrivals(const TrafficSpec &traffic)
{
    if (traffic.degenerate())
        return {Arrival{0, 0}};

    const std::size_t num_types =
        traffic.mix.empty() ? 1 : traffic.mix.size();
    // Effective popularity of mix entry r: its weight scaled by the
    // Zipf rank factor 1/(r+1)^theta.
    std::vector<double> weights(num_types, 1.0);
    double total_weight = 0.0;
    for (std::size_t r = 0; r < num_types; ++r) {
        if (!traffic.mix.empty())
            weights[r] = traffic.mix[r].weight;
        weights[r] /= std::pow(static_cast<double>(r + 1),
                               traffic.mixZipfTheta);
        total_weight += weights[r];
    }

    Random rng(traffic.seed);
    std::vector<Arrival> out;
    out.reserve(traffic.queries);
    Tick t = 0;
    for (std::uint64_t i = 0; i < traffic.queries; ++i) {
        double gap_s;
        if (traffic.process == ArrivalProcess::kPoisson) {
            // Exponential gap: -ln(1-u)/lambda, u in [0,1).
            gap_s = -std::log(1.0 - rng.nextDouble()) / traffic.lambdaQps;
        } else {
            gap_s = 1.0 / traffic.lambdaQps;
        }
        t += static_cast<Tick>(
            std::llround(gap_s * static_cast<double>(kSecond)));

        std::size_t type = 0;
        if (num_types > 1) {
            double u = rng.nextDouble() * total_weight;
            while (type + 1 < num_types && u >= weights[type])
                u -= weights[type++];
        }
        out.push_back(Arrival{t, type});
    }
    return out;
}

namespace {

/** One admitted query working through its scenario's phases. */
struct Instance
{
    std::size_t type = 0;     ///< index into the prepared types
    std::uint64_t query = 0;  ///< arrival index (warmup accounting)
    Tick arrivedAt = 0;
    std::size_t stage = 0; ///< next stage to run
    std::size_t phase = 0; ///< next phase within that stage
};

/**
 * Event-driven state of one served run. Lives on ServedRunner::run's
 * stack; event closures capture only its pointer.
 */
struct ServedDriver
{
    Machine &machine;
    const std::vector<PreparedScenario> &prepared;
    const TrafficSpec &traffic;
    std::vector<Arrival> arrivals{};

    std::size_t scheduled = 0; ///< arrivals scheduled so far
    std::size_t processed = 0; ///< arrival events executed
    std::deque<Instance> ready{};
    bool phaseActive = false;
    Instance current{}; ///< valid while phaseActive

    std::uint64_t inFlight = 0;
    ServedMetrics m{};
    LatencySample latency{};
    bool windowOpen = false;
    Tick windowStart = 0;
    Tick windowEnd = 0;

    // Aggregates for the RunResult (served runs keep no phase list).
    Tick partitionBusy = 0, probeBusy = 0;
    std::uint64_t partitionBytes = 0, probeBytes = 0;

    // Degenerate-path state: per-stage phase collection so the single
    // instance assembles a RunResult byte-identical to Runner's.
    bool degenerate = false;
    RunResult *res = nullptr;
    std::vector<PhaseResult> stagePhases{};
    EnergyBreakdown prevEnergy{};
    double vaults = 0.0;

    bool finished = false;
    Tick makespan = 0;
    EnergyActivity finalActivity{};
    EnergyBreakdown finalEnergy{};

    void
    scheduleNextArrival()
    {
        if (scheduled >= arrivals.size())
            return;
        const std::size_t i = scheduled++;
        ServedDriver *d = this;
        auto arrive = [d, i]() { d->onArrival(i); };
        static_assert(EventQueue::Callback::fitsInline<decltype(arrive)>(),
                      "arrival closure must fit the inline buffer");
        machine.eq().schedule(arrivals[i].at, std::move(arrive));
    }

    void
    onArrival(std::size_t i)
    {
        // Chain the next arrival first: arrival ticks are monotone, so
        // scheduling from here never lands in the past.
        scheduleNextArrival();
        ++processed;
        ++m.offered;
        const Tick now = machine.eq().now();
        if (!windowOpen && i >= traffic.warmup) {
            windowOpen = true;
            windowStart = now;
        }
        if (traffic.maxInFlight > 0 && inFlight >= traffic.maxInFlight) {
            ++m.rejected;
            maybeFinish();
            return;
        }
        ++m.admitted;
        ++inFlight;
        Instance inst;
        inst.type = arrivals[i].type;
        inst.query = i;
        inst.arrivedAt = now;
        ready.push_back(inst);
        if (!phaseActive)
            dispatch();
    }

    void
    dispatch()
    {
        sim_assert(!phaseActive && !ready.empty());
        current = ready.front();
        ready.pop_front();
        phaseActive = true;
        const PreparedScenario &ps = prepared[current.type];
        const PhaseExec &phase =
            ps.execs[current.stage].phases[current.phase];
        ServedDriver *d = this;
        machine.beginPhase(
            phase, [d](const PhaseResult &r) { d->onPhaseDone(r); });
    }

    void
    onPhaseDone(const PhaseResult &r)
    {
        phaseActive = false;
        if (r.kind == PhaseKind::kPartition) {
            partitionBusy += r.time;
            partitionBytes += r.dramBytes;
        } else {
            probeBusy += r.time;
            probeBytes += r.dramBytes;
        }

        const PreparedScenario &ps = prepared[current.type];
        if (degenerate)
            stagePhases.push_back(r);
        ++current.phase;
        const bool stage_done =
            current.phase >= ps.execs[current.stage].phases.size();
        if (stage_done) {
            if (degenerate) {
                accumulateStage(*res, ps, current.stage,
                                std::move(stagePhases), vaults,
                                machine.energy(), prevEnergy);
                stagePhases.clear();
            }
            ++current.stage;
            current.phase = 0;
        }

        if (current.stage >= ps.execs.size()) {
            completeInstance();
        } else {
            // Round-robin at phase granularity: the instance rejoins
            // the back of the ready queue after every phase.
            ready.push_back(current);
        }

        if (!ready.empty())
            dispatch();
        else
            maybeFinish();
    }

    void
    completeInstance()
    {
        --inFlight;
        ++m.completed;
        const Tick now = machine.eq().now();
        if (current.query >= traffic.warmup) {
            ++m.measuredCompleted;
            latency.record(now - current.arrivedAt);
            windowEnd = now;
        }
    }

    void
    maybeFinish()
    {
        if (finished || phaseActive || !ready.empty() || inFlight > 0 ||
            processed < arrivals.size())
            return;
        finished = true;
        // Snapshot here, inside the event that completed the run: any
        // trailing permutable-flush completions still pending would
        // otherwise advance now() past the last completion.
        makespan = machine.eq().now();
        finalActivity = machine.energyActivity();
        finalEnergy = machine.energy();
        machine.eq().requestStop();
    }
};

} // namespace

RunResult
ServedRunner::run(const SystemConfig &sys, const Scenario &scenario)
{
    const bool degenerate = traffic_.degenerate();

    // Resolve the scenario types: the mix when given, else every
    // arrival runs the job's own scenario. Degenerate traffic has no
    // mix by construction.
    std::vector<Scenario> types;
    if (traffic_.mix.empty() || degenerate) {
        types.push_back(scenario);
    } else {
        for (const TrafficMixEntry &e : traffic_.mix)
            types.push_back(e.scenario);
    }

    // One pool, each type prepared once; instances replay the shared
    // traces. The prepare order is the mix order, so the functional
    // data layout — and therefore the timing — is spec-deterministic.
    MemoryPool pool(sys.geo);
    std::vector<PreparedScenario> prepared;
    prepared.reserve(types.size());
    for (const Scenario &t : types)
        prepared.push_back(prepareScenario(pool, workload_, sys, t));

    Machine machine(sys, pool);
    RunResult res;
    res.system = sys.name;
    res.op = scenario.name;

    ServedDriver d{machine, prepared, traffic_};
    d.arrivals = generateArrivals(traffic_);
    d.degenerate = degenerate;
    d.res = &res;
    d.vaults = static_cast<double>(sys.geo.totalVaults());

    d.scheduleNextArrival();
    machine.eq().run();

    if (!d.finished)
        panic("served run '%s': deadlock with %llu queries in flight",
              scenario.name.c_str(),
              static_cast<unsigned long long>(d.inFlight));

    if (degenerate) {
        // The single instance flowed through the full served plumbing;
        // its result must be byte-identical to Runner's (the layer's
        // correctness oracle), so it is assembled the same way and no
        // served metrics are attached.
        // sim_events counts machine work only: the driver's arrival
        // events are harness bookkeeping, subtracted so this path stays
        // byte-identical to Runner's (which schedules no arrivals).
        finishRunResult(res, d.vaults, d.finalActivity, d.finalEnergy);
        res.simEvents = machine.simEvents() - d.processed;
        return res;
    }

    // Served runs report the open-loop aggregate: makespan as total
    // time, machine-busy sums per phase kind, and the served metrics.
    // The per-query phase lists are deliberately not retained.
    res.totalTime = d.makespan;
    res.partitionTime = d.partitionBusy;
    res.probeTime = d.probeBusy;
    if (d.partitionBusy > 0) {
        res.partitionVaultBWGBps = bytesPerTickToGBps(
            static_cast<double>(d.partitionBytes) / d.vaults,
            d.partitionBusy);
    }
    if (d.probeBusy > 0) {
        res.probeVaultBWGBps = bytesPerTickToGBps(
            static_cast<double>(d.probeBytes) / d.vaults, d.probeBusy);
    }
    // Functional sums cover each distinct type once (instances replay
    // identical traces; repeating them would just scale the counts).
    for (const PreparedScenario &ps : prepared) {
        for (const OperatorExecution &exec : ps.execs) {
            res.scanMatches += exec.scanMatches;
            res.joinMatches += exec.joinMatches;
            res.groupCount += exec.groupCount;
            res.aggChecksum += exec.aggChecksum;
        }
    }
    res.activity = d.finalActivity;
    res.energy = d.finalEnergy;
    res.simEvents = machine.simEvents() - d.processed;

    ServedMetrics &sm = res.served;
    sm = d.m;
    sm.valid = true;
    if (sm.measuredCompleted > 0) {
        sm.window = d.windowEnd - d.windowStart;
        if (sm.window > 0) {
            sm.sustainedQps =
                static_cast<double>(sm.measuredCompleted) /
                ticksToSeconds(sm.window);
        }
        sm.latencyP50 = d.latency.percentile(50.0);
        sm.latencyP95 = d.latency.percentile(95.0);
        sm.latencyP99 = d.latency.percentile(99.0);
        sm.latencyMax = d.latency.max();
        sm.latencyMeanPs = d.latency.mean();
    }
    if (sm.completed > 0) {
        sm.energyPerQueryJ =
            res.energy.total() / static_cast<double>(sm.completed);
    }
    return res;
}

} // namespace mondrian
