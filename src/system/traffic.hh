/**
 * @file
 * Open-loop traffic simulation: served workloads.
 *
 * A TrafficSpec turns the single-query Runner model into a served
 * system: queries arrive at a configured rate (Poisson or fixed
 * interval), independent of completion — the open-loop model — and the
 * ServedRunner keeps every admitted query in flight on ONE simulated
 * machine and ONE event queue, interleaving instances at phase
 * granularity. The report gains sustained QPS, nearest-rank latency
 * percentiles and energy per query.
 *
 * Spec grammar (CLI `--traffic`, campaign axis labels):
 *
 *   traffic  := "none" | item ("," item)*
 *   item     := "poisson" | "fixed"          (arrival process; default
 *               poisson)
 *             | "lambda=" RATE                (arrivals per second; > 0)
 *             | "queries=" N                  (arrivals to generate)
 *             | "warmup=" N                   (first N queries excluded
 *               from the measurement window)
 *             | "inflight=" N                 (admission cap; arrivals
 *               beyond N concurrent queries are rejected; 0 = unlimited)
 *             | "seed=" N                     (arrival-process RNG seed)
 *             | "mix=" name ":" W ("+" name ":" W)*
 *               (scenario mix with popularity weights; names are
 *               scenario specs without ':' or ',' — presets and basic
 *               ops)
 *             | "mix-zipf=" T                 (skew the mix weights:
 *               entry r's weight is scaled by 1/(r+1)^T)
 *
 * "none" (or lambda absent/0) is the degenerate spec: exactly one query
 * arriving at tick 0. The ServedRunner routes it through the full
 * served plumbing — arrival event, admission, ready queue, phase
 * chain — and still produces a RunResult byte-identical to Runner's,
 * which is the correctness oracle for the whole layer.
 *
 * Determinism: the arrival schedule (ticks AND scenario types) is
 * precomputed from the spec's own seed before simulation starts, so a
 * served run is a pure function of (system, workload, spec) and is
 * identical across --jobs settings.
 */

#ifndef MONDRIAN_SYSTEM_TRAFFIC_HH
#define MONDRIAN_SYSTEM_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "system/runner.hh"
#include "system/scenario.hh"

namespace mondrian {

/** Open-loop arrival process. */
enum class ArrivalProcess
{
    kPoisson, ///< exponential inter-arrival gaps with rate lambda
    kFixed    ///< constant inter-arrival gap of 1/lambda
};

const char *arrivalProcessName(ArrivalProcess p);

/** One scenario type in a traffic mix, with its popularity weight. */
struct TrafficMixEntry
{
    Scenario scenario;
    double weight = 1.0;
};

/** Declarative open-loop traffic configuration — a campaign axis. */
struct TrafficSpec
{
    ArrivalProcess process = ArrivalProcess::kPoisson;
    /** Arrival rate in queries per second; 0 = degenerate (one query). */
    double lambdaQps = 0.0;
    std::uint64_t queries = 64; ///< arrivals to generate
    std::uint64_t warmup = 0;   ///< arrivals excluded from measurement
    /** Admission cap on concurrent queries; 0 = unlimited. */
    std::uint64_t maxInFlight = 0;
    std::uint64_t seed = 1; ///< arrival-process RNG seed
    /** Scenario mix; empty = every arrival runs the job's scenario. */
    std::vector<TrafficMixEntry> mix;
    /** Zipf skew over the mix entries (0 = weights used as given). */
    double mixZipfTheta = 0.0;

    bool degenerate() const { return lambdaQps == 0.0; }

    /**
     * Canonical label: the axis value in campaign reports and the
     * traffic component of the resume identity. "none" for degenerate
     * specs; otherwise injective over CLI-expressible specs (every
     * non-default field appears, doubles in canonical 12-digit form).
     */
    std::string name() const;
};

/**
 * Parse a traffic spec (grammar above) into @p out.
 * @return false with a human-readable @p error on malformed specs.
 */
bool parseTrafficSpec(const std::string &spec, TrafficSpec &out,
                      std::string &error);

/** Validate a parsed spec; empty string when OK. */
std::string validateTrafficSpec(const TrafficSpec &traffic);

/** One precomputed arrival. */
struct Arrival
{
    Tick at = 0;          ///< arrival tick
    std::size_t type = 0; ///< index into the resolved scenario types
};

/**
 * The deterministic arrival schedule of @p traffic: ticks are strictly
 * derived from (process, lambda, seed); types from (mix weights,
 * mix-zipf, seed). Exposed so tests can pin the schedule independently
 * of the simulation. Degenerate specs yield one arrival at tick 0.
 *
 * Draw order per arrival: the inter-arrival gap first (Poisson only —
 * fixed gaps consume no randomness), then the scenario type (only when
 * the mix has two or more entries).
 */
std::vector<Arrival> generateArrivals(const TrafficSpec &traffic);

/**
 * Executes a scenario under open-loop traffic on one simulated machine.
 *
 * Each distinct scenario type is prepared once (functional execution +
 * traces); admitted query instances replay the shared traces with a
 * per-instance (stage, phase) cursor. One phase is active at a time;
 * ready instances round-robin at phase granularity through the
 * machine's single event queue, so cache, DRAM-bank and link state
 * carry across interleaved queries exactly as they would in hardware.
 */
class ServedRunner
{
  public:
    ServedRunner(const WorkloadConfig &workload, const TrafficSpec &traffic)
        : workload_(workload), traffic_(traffic)
    {}

    /** Run @p scenario (the mix's default type) under the traffic. */
    RunResult run(const SystemConfig &sys, const Scenario &scenario);

    const TrafficSpec &traffic() const { return traffic_; }

  private:
    WorkloadConfig workload_;
    TrafficSpec traffic_;
};

} // namespace mondrian

#endif // MONDRIAN_SYSTEM_TRAFFIC_HH
