/**
 * @file
 * Concurrent-abort contract of the campaign CLI: a SIGINT delivered
 * mid-campaign must produce exit code 3, a journal whose every line is
 * complete JSON (no torn writes), and no report file. Exercised on both
 * execution paths — the in-process ThreadPool (--jobs) and the
 * coordinator/worker tree (--workers) — against the real
 * mondrian_campaign binary, the same way test_coordinator drives it.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_parse.hh"

using namespace mondrian;

namespace {

const char *kCampaignBinary = MONDRIAN_BINARY_DIR "/mondrian_campaign";

struct TempPath
{
    std::string path;
    explicit TempPath(const std::string &stem)
    {
        path = stem + "." + std::to_string(::getpid()) + ".tmp";
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
};

/** Spawn mondrian_campaign with @p args; returns the child pid. */
pid_t
spawnCampaign(const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(kCampaignBinary));
    for (const std::string &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
        // Quiet child: progress chatter is irrelevant to the contract.
        ::freopen("/dev/null", "w", stderr);
        ::execv(kCampaignBinary, argv.data());
        _exit(127);
    }
    return pid;
}

std::vector<std::string>
journalLines(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    // getline drops the trailing '\n'; a torn final line (no newline)
    // still surfaces here and fails the JSON completeness check below.
    while (std::getline(in, line))
        lines.push_back(line);
    if (in.gcount() > 0)
        lines.push_back(line); // unterminated tail fragment
    return lines;
}

/**
 * Drive one interrupted campaign: start it, wait for the first journal
 * line (proof it is mid-campaign), SIGINT it, and check the contract.
 */
void
runAbortScenario(const std::vector<std::string> &mode_args)
{
    TempPath journal("abort-journal");
    TempPath out("abort-report");

    std::vector<std::string> args = {
        // A grid long enough that the signal always lands mid-campaign:
        // 8 runs of hundreds of ms each (seconds under sanitizers), and
        // the interrupt fires right after the first journal line, with
        // most of the grid still outstanding.
        "--systems", "cpu,mondrian", "--ops", "scan,sort,groupby,join",
        "--log2-tuples", "15", "--quiet",
        "--journal", journal.path, "--out", out.path};
    args.insert(args.end(), mode_args.begin(), mode_args.end());

    const pid_t pid = spawnCampaign(args);
    ASSERT_GT(pid, 0);

    // Wait until at least one run has been journaled, so the interrupt
    // arrives while later runs are still executing.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (journalLines(journal.path).empty()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "campaign produced no journal line to interrupt";
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, WNOHANG), 0)
            << "campaign exited before it could be interrupted";
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    ASSERT_EQ(::kill(pid, SIGINT), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "campaign did not exit cleanly";
    EXPECT_EQ(WEXITSTATUS(status), 3) << "interrupted campaign must exit 3";

    // No torn journal lines: every line parses as a complete JSON run
    // entry (key + result) through the same reader the resume path uses.
    const std::vector<std::string> lines = journalLines(journal.path);
    ASSERT_FALSE(lines.empty());
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &l = lines[i];
        ASSERT_FALSE(l.empty()) << "journal line " << i << " is empty";
        EXPECT_EQ(l.front(), '{') << "journal line " << i << " is torn";
        EXPECT_EQ(l.back(), '}') << "journal line " << i << " is torn";
        JsonValue doc;
        std::string parse_error;
        ASSERT_TRUE(parseJson(l, doc, parse_error))
            << "journal line " << i
            << " is not complete JSON (" << parse_error << "): " << l;
        const JsonValue *key = doc.find("key");
        const JsonValue *result = doc.find("result");
        EXPECT_NE(key, nullptr) << "journal line " << i << " lacks key";
        EXPECT_NE(result, nullptr)
            << "journal line " << i << " lacks result";
    }

    // Exit code 3 means "no report": the output file must not exist.
    std::ifstream report(out.path, std::ios::binary);
    EXPECT_FALSE(report.good())
        << "aborted campaign must not write a report file";
}

} // namespace

TEST(ConcurrentAbort, ThreadPoolPathExitsThreeWithIntactJournal)
{
    runAbortScenario({"--jobs", "4"});
}

TEST(ConcurrentAbort, CoordinatorPathExitsThreeWithIntactJournal)
{
    runAbortScenario({"--workers", "2", "--heartbeat-timeout", "2"});
}
