/** @file Unit and property tests for the address map. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/address_map.hh"

using namespace mondrian;

namespace {

MemGeometry
smallGeo()
{
    MemGeometry g;
    g.numStacks = 2;
    g.vaultsPerStack = 4;
    g.banksPerVault = 4;
    g.rowBytes = 256;
    g.vaultBytes = 64 * kKiB;
    return g;
}

} // namespace

TEST(AddressMap, GeometryDerived)
{
    MemGeometry g = smallGeo();
    EXPECT_EQ(g.totalVaults(), 8u);
    EXPECT_EQ(g.totalBytes(), 8u * 64 * kKiB);
    EXPECT_EQ(g.rowsPerBank(), 64u * kKiB / (256 * 4));
}

TEST(AddressMap, VaultBasesContiguous)
{
    AddressMap map(smallGeo());
    for (unsigned v = 0; v < 8; ++v)
        EXPECT_EQ(map.vaultBase(v), std::uint64_t{v} * 64 * kKiB);
}

TEST(AddressMap, DecodeFields)
{
    AddressMap map(smallGeo());
    DecodedAddr d = map.decode(0);
    EXPECT_EQ(d.stack, 0u);
    EXPECT_EQ(d.vault, 0u);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 0u);
    EXPECT_EQ(d.column, 0u);

    // Row slots interleave across banks within a vault.
    d = map.decode(256);
    EXPECT_EQ(d.bank, 1u);
    EXPECT_EQ(d.row, 0u);
    d = map.decode(256 * 4);
    EXPECT_EQ(d.bank, 0u);
    EXPECT_EQ(d.row, 1u);
}

TEST(AddressMap, VaultOfAndRowId)
{
    AddressMap map(smallGeo());
    EXPECT_EQ(map.vaultOf(0), 0u);
    EXPECT_EQ(map.vaultOf(64 * kKiB), 1u);
    EXPECT_EQ(map.rowId(0), map.rowId(255));
    EXPECT_NE(map.rowId(255), map.rowId(256));
}

/** Property: encode(decode(a)) == a over random addresses x geometries. */
struct GeoParam
{
    unsigned stacks, vaults, banks;
    std::uint64_t row, cap;
};

class RoundTripTest : public ::testing::TestWithParam<GeoParam> {};

TEST_P(RoundTripTest, EncodeDecodeRoundTrip)
{
    GeoParam p = GetParam();
    MemGeometry g;
    g.numStacks = p.stacks;
    g.vaultsPerStack = p.vaults;
    g.banksPerVault = p.banks;
    g.rowBytes = p.row;
    g.vaultBytes = p.cap;
    AddressMap map(g);
    Random rng(99);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.nextBounded(g.totalBytes());
        DecodedAddr d = map.decode(a);
        EXPECT_EQ(map.encode(d), a);
        EXPECT_LT(d.bank, g.banksPerVault);
        EXPECT_LT(d.row, g.rowsPerBank());
        EXPECT_LT(d.column, g.rowBytes);
        EXPECT_EQ(d.globalVault, map.vaultOf(a));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RoundTripTest,
    ::testing::Values(GeoParam{1, 1, 1, 256, 64 * kKiB},
                      GeoParam{1, 4, 4, 256, 64 * kKiB},
                      GeoParam{2, 4, 8, 256, 256 * kKiB},
                      GeoParam{4, 16, 8, 256, 1 * kMiB},
                      GeoParam{2, 8, 4, 1024, 512 * kKiB},
                      GeoParam{3, 5, 2, 128, 64 * kKiB},
                      // Campaign geometry-axis shapes (design-space sweep):
                      // narrow/wide fan-out, small vaults, DDR-class rows.
                      GeoParam{2, 8, 8, 256, 8 * kMiB},
                      GeoParam{8, 32, 8, 256, 8 * kMiB},
                      GeoParam{4, 16, 4, 256, 256 * kKiB},
                      GeoParam{4, 16, 8, 2 * kKiB, 8 * kMiB}));

/**
 * Vault-count invariants across non-default geometries: every vault owns
 * one contiguous [vaultBase, vaultBase + vaultBytes) region, decode
 * assigns each boundary address to the right (stack, vault), and the
 * regions tile the pool exactly.
 */
TEST(AddressMap, VaultRegionInvariantsAcrossGeometries)
{
    const GeoParam shapes[] = {{2, 8, 8, 256, 8 * kMiB},
                               {8, 32, 8, 256, 8 * kMiB},
                               {4, 16, 4, 256, 256 * kKiB},
                               {4, 16, 8, 2 * kKiB, 8 * kMiB}};
    for (const GeoParam &p : shapes) {
        MemGeometry g;
        g.numStacks = p.stacks;
        g.vaultsPerStack = p.vaults;
        g.banksPerVault = p.banks;
        g.rowBytes = p.row;
        g.vaultBytes = p.cap;
        std::string err;
        ASSERT_TRUE(validateGeometry(g, err)) << err;

        AddressMap map(g);
        EXPECT_EQ(g.totalVaults(), p.stacks * p.vaults);
        for (unsigned v = 0; v < g.totalVaults(); ++v) {
            Addr base = map.vaultBase(v);
            EXPECT_EQ(base, std::uint64_t{v} * g.vaultBytes);
            EXPECT_EQ(map.vaultOf(base), v);
            EXPECT_EQ(map.vaultOf(base + g.vaultBytes - 1), v);
            DecodedAddr d = map.decode(base);
            EXPECT_EQ(d.globalVault, v);
            EXPECT_EQ(d.stack, v / g.vaultsPerStack);
            EXPECT_EQ(d.vault, v % g.vaultsPerStack);
            EXPECT_EQ(d.bank, 0u);
            EXPECT_EQ(d.row, 0u);
            EXPECT_EQ(d.column, 0u);
        }
        // Row ids are unique per (vault, bank, row): counting distinct
        // row-aligned addresses covers the whole pool.
        EXPECT_EQ(map.rowId(g.totalBytes() - 1),
                  g.totalBytes() / g.rowBytes - 1);
    }
}

TEST(AddressMap, ValidateGeometryRejectsInvalidShapes)
{
    auto check = [](auto mutate, const char *expect) {
        MemGeometry g; // default 4x16x8, 8 MiB vaults, 256 B rows
        mutate(g);
        std::string err;
        EXPECT_FALSE(validateGeometry(g, err));
        EXPECT_NE(err.find(expect), std::string::npos) << err;
    };
    check([](MemGeometry &g) { g.numStacks = 3; }, "stacks");
    check([](MemGeometry &g) { g.vaultsPerStack = 5; }, "vaults/stack");
    check([](MemGeometry &g) { g.banksPerVault = 6; }, "banks/vault");
    check([](MemGeometry &g) { g.rowBytes = 300; }, "row size");
    check([](MemGeometry &g) { g.rowBytes = 32; }, "row size");
    check([](MemGeometry &g) { g.vaultBytes = 3 * kMiB; }, "vault capacity");
    check([](MemGeometry &g) { g.vaultBytes = 32 * kKiB; }, "64 KiB");
    check([](MemGeometry &g) { g.numStacks = 0; }, "zero factor");
    check([](MemGeometry &g) {
        g.numStacks = 512;
        g.vaultsPerStack = 16;
    }, "vaults");

    std::string err;
    MemGeometry ok;
    EXPECT_TRUE(validateGeometry(ok, err)) << err;
    ok.vaultsPerStack = 32;
    ok.rowBytes = 2 * kKiB;
    ok.vaultBytes = 256 * kKiB;
    EXPECT_TRUE(validateGeometry(ok, err)) << err;
}

TEST(AddressMapDeath, BadGeometryFatal)
{
    MemGeometry g = smallGeo();
    g.rowBytes = 300; // not a power of two
    EXPECT_DEATH({ AddressMap map(g); }, "power of two");
}

TEST(AddressMapDeath, OutOfRangePanics)
{
    AddressMap map(smallGeo());
    EXPECT_DEATH(map.decode(map.geometry().totalBytes()), "assert");
}
