/** @file Unit tests for vault allocators and permutable regions. */

#include <gtest/gtest.h>

#include "mem/allocator.hh"

using namespace mondrian;

TEST(VaultAllocator, BumpAndAlign)
{
    VaultAllocator a(0x1000, 4096);
    Addr p1 = a.alloc(10, 64);
    Addr p2 = a.alloc(10, 64);
    EXPECT_EQ(p1, 0x1000u);
    EXPECT_EQ(p2, 0x1040u);
    EXPECT_EQ(a.used(), 0x4au); // 0x40 aligned start + 10 bytes
    Addr p3 = a.alloc(1, 256);
    EXPECT_EQ(p3 % 256, 0u);
}

TEST(VaultAllocator, ResetReclaims)
{
    VaultAllocator a(0, 1024);
    a.alloc(512);
    a.reset();
    EXPECT_EQ(a.remaining(), 1024u);
    EXPECT_EQ(a.alloc(1024, 1), 0u);
}

TEST(VaultAllocatorDeath, Exhaustion)
{
    VaultAllocator a(0, 128);
    a.alloc(100);
    EXPECT_DEATH(a.alloc(100), "exhausted");
}

TEST(PermutableRegionTable, ArmDisarmQuery)
{
    PermutableRegionTable t(4);
    EXPECT_FALSE(t.armed(2));
    t.arm(2, PermutableRegion{0x100, 0x80, 16});
    EXPECT_TRUE(t.armed(2));
    EXPECT_TRUE(t.isPermutable(2, 0x100, 16));
    EXPECT_TRUE(t.isPermutable(2, 0x170, 16));
    EXPECT_FALSE(t.isPermutable(2, 0x178, 16)); // would straddle the end
    EXPECT_FALSE(t.isPermutable(2, 0xf0, 16));  // below base
    EXPECT_FALSE(t.isPermutable(1, 0x100, 16)); // different vault
    t.disarm(2);
    EXPECT_FALSE(t.isPermutable(2, 0x100, 16));
    EXPECT_FALSE(t.armed(2));
}

TEST(PermutableRegionTable, RearmReplaces)
{
    PermutableRegionTable t(2);
    t.arm(0, PermutableRegion{0, 64, 16});
    t.arm(0, PermutableRegion{128, 64, 32});
    EXPECT_FALSE(t.isPermutable(0, 0, 16));
    EXPECT_TRUE(t.isPermutable(0, 128, 32));
}
