/** @file Axis-aware analysis: sensitivity tables, report diff, CSV. */

#include <gtest/gtest.h>

#include <cmath>

#include "system/analysis.hh"
#include "system/campaign.hh"
#include "system/report.hh"
#include "system/report_model.hh"

using namespace mondrian;

namespace {

ReportRun
makeRun(const std::string &system, const std::string &op, unsigned log2,
        double theta, Tick total_time, double energy)
{
    ReportRun r;
    r.system = system;
    r.scenario = op;
    r.log2Tuples = log2;
    r.seed = 42;
    r.geometry = "4x16x8-8MiB-r256";
    r.exec = "base";
    r.zipfTheta = theta;
    r.result.system = system;
    r.result.op = op;
    r.result.totalTime = total_time;
    r.result.energy.cores = energy;
    return r;
}

/**
 * Hand-computed two-axis grid: {scale 2^8, 2^9} x {theta 0, 0.5}, one
 * op, systems {cpu, x}. The cpu baseline is 8e6 ticks / 16 J at every
 * point; x's values are chosen so each point's speedup and perf/W are
 * the same round number:
 *
 *   point          x time   x energy   speedup = perf/W
 *   (2^8, 0.0)     4e6      8          2
 *   (2^8, 0.5)     1e6      2          8
 *   (2^9, 0.0)     2e6      4          4
 *   (2^9, 0.5)     5e5      1          16
 *
 * So per-scale geomeans are sqrt(2*8)=4 and sqrt(4*16)=8, per-theta
 * geomeans are sqrt(2*4)=sqrt(8) and sqrt(8*16)=sqrt(128), and the
 * overall geomean is (2*8*4*16)^(1/4) = 2^2.5.
 */
ReportModel
handModel()
{
    ReportModel m;
    m.schemaVersion = 2;
    m.baseline = "cpu";
    m.systems = {"cpu", "x"};
    m.scenarios = {"join"};
    m.log2Tuples = {8, 9};
    m.seeds = {42};
    m.geometries = {"4x16x8-8MiB-r256"};
    m.execs = {"base"};
    m.zipfThetas = {0.0, 0.5};

    const struct
    {
        unsigned log2;
        double theta;
        Tick xTime;
        double xEnergy;
    } points[] = {
        {8, 0.0, 4000000, 8.0},
        {8, 0.5, 1000000, 2.0},
        {9, 0.0, 2000000, 4.0},
        {9, 0.5, 500000, 1.0},
    };
    for (const auto &p : points) {
        m.runs.push_back(makeRun("cpu", "join", p.log2, p.theta, 8000000,
                                 16.0));
        m.runs.push_back(
            makeRun("x", "join", p.log2, p.theta, p.xTime, p.xEnergy));
    }
    for (std::size_t i = 0; i < m.runs.size(); ++i)
        m.runs[i].index = i;

    ReportSummaryRow row;
    row.system = "x";
    row.runs = 4;
    row.geomeanSpeedup = std::pow(2.0, 2.5);
    row.geomeanPerfPerWatt = std::pow(2.0, 2.5);
    m.summaries = {row};
    return m;
}

const SensitivityCell &
onlyCell(const SensitivityRow &row)
{
    EXPECT_EQ(row.cells.size(), 1u);
    return row.cells.front();
}

} // namespace

TEST(Analysis, AxisNamesRoundTrip)
{
    for (Axis axis : allAxes()) {
        Axis parsed;
        ASSERT_TRUE(axisFromName(axisName(axis), parsed));
        EXPECT_EQ(parsed, axis);
    }
    Axis sink;
    EXPECT_FALSE(axisFromName("systems", sink));
    // Legacy alias: "op" still parses, onto the scenario axis.
    ASSERT_TRUE(axisFromName("op", sink));
    EXPECT_EQ(sink, Axis::kScenario);
}

TEST(Analysis, SensitivityHoldsOtherAxesFixed)
{
    ReportModel m = handModel();

    SensitivityTable scale = sensitivity(m, Axis::kScale, "cpu");
    EXPECT_EQ(scale.axis, Axis::kScale);
    ASSERT_EQ(scale.rows.size(), 2u);
    EXPECT_EQ(scale.rows[0].value, "2^8");
    EXPECT_EQ(scale.rows[1].value, "2^9");
    const SensitivityCell &s8 = onlyCell(scale.rows[0]);
    EXPECT_EQ(s8.system, "x");
    EXPECT_EQ(s8.paired, 2u);
    EXPECT_EQ(s8.total, 2u);
    EXPECT_EQ(s8.droppedSpeedups, 0u);
    EXPECT_EQ(s8.droppedPerfPerWatt, 0u);
    EXPECT_NEAR(s8.geomeanSpeedup, 4.0, 4.0 * 1e-12);
    EXPECT_NEAR(s8.geomeanPerfPerWatt, 4.0, 4.0 * 1e-12);
    const SensitivityCell &s9 = onlyCell(scale.rows[1]);
    EXPECT_NEAR(s9.geomeanSpeedup, 8.0, 8.0 * 1e-12);

    SensitivityTable theta = sensitivity(m, Axis::kZipfTheta, "cpu");
    ASSERT_EQ(theta.rows.size(), 2u);
    EXPECT_EQ(theta.rows[0].value, "0");
    EXPECT_EQ(theta.rows[1].value, "0.5");
    EXPECT_NEAR(onlyCell(theta.rows[0]).geomeanSpeedup, std::sqrt(8.0),
                std::sqrt(8.0) * 1e-12);
    EXPECT_NEAR(onlyCell(theta.rows[1]).geomeanSpeedup, std::sqrt(128.0),
                std::sqrt(128.0) * 1e-12);

    // A single-value axis degenerates to the overall rollup.
    SensitivityTable op = sensitivity(m, Axis::kScenario, "cpu");
    ASSERT_EQ(op.rows.size(), 1u);
    EXPECT_NEAR(onlyCell(op.rows[0]).geomeanSpeedup, std::pow(2.0, 2.5),
                std::pow(2.0, 2.5) * 1e-12);

    // ... and matches the recomputed summary.
    AnalysisSummary summary = recomputeSummary(m, "cpu");
    ASSERT_EQ(summary.systems.size(), 1u);
    EXPECT_EQ(summary.systems[0].paired, 4u);
    EXPECT_NEAR(summary.systems[0].geomeanSpeedup, std::pow(2.0, 2.5),
                std::pow(2.0, 2.5) * 1e-12);
}

TEST(Analysis, SensitivityCountsUnpairedAndDroppedRuns)
{
    // Missing baseline at (2^9, 0.5): that x run can't be compared.
    ReportModel m = handModel();
    std::vector<ReportRun> runs;
    for (const ReportRun &r : m.runs)
        if (!(r.system == "cpu" && r.log2Tuples == 9 && r.zipfTheta == 0.5))
            runs.push_back(r);
    m.runs = runs;

    SensitivityTable scale = sensitivity(m, Axis::kScale, "cpu");
    const SensitivityCell &s9 = onlyCell(scale.rows[1]);
    EXPECT_EQ(s9.paired, 1u);
    EXPECT_EQ(s9.total, 2u);
    // The geomean covers only the paired point (speedup 4).
    EXPECT_NEAR(s9.geomeanSpeedup, 4.0, 4.0 * 1e-12);

    // A broken run (zero time -> speedup 0) is dropped and surfaced on
    // the metric it broke — the perf/W geomean (energies intact) keeps
    // both points.
    ReportModel broken = handModel();
    for (ReportRun &r : broken.runs)
        if (r.system == "x" && r.log2Tuples == 8 && r.zipfTheta == 0.0)
            r.result.totalTime = 0;
    SensitivityTable bscale = sensitivity(broken, Axis::kScale, "cpu");
    const SensitivityCell &b8 = onlyCell(bscale.rows[0]);
    EXPECT_EQ(b8.paired, 2u);
    EXPECT_EQ(b8.droppedSpeedups, 1u);
    EXPECT_EQ(b8.droppedPerfPerWatt, 0u);
    EXPECT_NEAR(b8.geomeanSpeedup, 8.0, 8.0 * 1e-12); // the surviving point
    EXPECT_NEAR(b8.geomeanPerfPerWatt, 4.0, 4.0 * 1e-12); // both points
    std::string md = renderSensitivityMarkdown(bscale);
    EXPECT_NE(md.find("8.0000x (1 dropped)"), std::string::npos);
    // The intact perf/W column carries no dropped annotation.
    EXPECT_EQ(md.find("4.0000x (1 dropped)"), std::string::npos);
}

TEST(Analysis, DiffSelfCompareIsEmpty)
{
    ReportModel m = handModel();
    ReportDiff d = diffReports(m, m, 0.0);
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(renderDiff(d), "");
}

TEST(Analysis, DiffFlagsPerturbationsAtTheRightTolerance)
{
    ReportModel a = handModel();

    // A 1e-5 relative perturbation of one run's total time.
    ReportModel b = handModel();
    for (ReportRun &r : b.runs)
        if (r.system == "x" && r.log2Tuples == 8 && r.zipfTheta == 0.0)
            r.result.totalTime += 40; // 4e6 * 1e-5
    ReportDiff tight = diffReports(a, b, 1e-6);
    ASSERT_EQ(tight.numeric.size(), 1u);
    EXPECT_TRUE(tight.structural.empty());
    EXPECT_EQ(tight.numeric[0].field, "total_time_ps");
    EXPECT_NEAR(tight.numeric[0].relErr, 1e-5, 1e-7);
    EXPECT_NE(renderDiff(tight).find("total_time_ps"), std::string::npos);
    // The same perturbation passes at a looser tolerance.
    EXPECT_TRUE(diffReports(a, b, 1e-4).empty());

    // Functional outputs are exact: any difference is flagged no matter
    // how large the values.
    ReportModel c = handModel();
    c.runs[0].result.aggChecksum = 0xdeadbeefdeadbeefull;
    ReportModel c2 = handModel();
    c2.runs[0].result.aggChecksum = 0xdeadbeefdeadbef0ull;
    ReportDiff exact = diffReports(c, c2, 1e-3);
    ASSERT_EQ(exact.numeric.size(), 1u);
    EXPECT_EQ(exact.numeric[0].field, "functional.agg_checksum");

    // A run present on one side only is structural.
    ReportModel missing = handModel();
    missing.runs.pop_back();
    ReportDiff structural = diffReports(a, missing, 1e-6);
    ASSERT_EQ(structural.structural.size(), 1u);
    EXPECT_NE(structural.structural[0].find("only in first report"),
              std::string::npos);

    // A duplicated run (corrupt report, e.g. a broken resume splice) is
    // structural too, on whichever side carries it — a diff against the
    // clean report must not pass.
    ReportModel duped = handModel();
    duped.runs.push_back(duped.runs.back());
    ReportDiff dup_diff = diffReports(a, duped, 1e-6);
    ASSERT_EQ(dup_diff.structural.size(), 1u);
    EXPECT_NE(dup_diff.structural[0].find("appears 2 times in second"),
              std::string::npos);
    EXPECT_FALSE(diffReports(duped, duped, 1e-6).empty());

    // Stored summary geomeans are compared under the same tolerance.
    ReportModel sum = handModel();
    sum.summaries[0].geomeanSpeedup *= 1.0 + 1e-5;
    ReportDiff sdiff = diffReports(a, sum, 1e-6);
    ASSERT_EQ(sdiff.numeric.size(), 1u);
    EXPECT_EQ(sdiff.numeric[0].field, "geomean_speedup");
    EXPECT_EQ(sdiff.numeric[0].where, "summary x");
}

TEST(Analysis, RunsCsvPairsAgainstBaseline)
{
    ReportModel m = handModel();
    std::string csv = runsCsv(m, "cpu");
    // Header + one line per run.
    std::size_t lines = 0;
    for (char ch : csv)
        lines += ch == '\n';
    EXPECT_EQ(lines, 1u + m.runs.size());
    EXPECT_EQ(csv.find("index,system,scenario,"), 0u);
    // x at (2^8, theta 0): speedup 2, perf/W 2.
    EXPECT_NE(csv.find(",2,2\n"), std::string::npos);
    // Baseline rows leave the pairing columns empty.
    EXPECT_NE(csv.find(",,\n"), std::string::npos);

    // Without a baseline the pairing columns are empty everywhere.
    std::string bare = runsCsv(m, "");
    EXPECT_EQ(bare.find(",2,2\n"), std::string::npos);
}

TEST(Analysis, SensitivityCsvAndMarkdownRenderEveryCell)
{
    ReportModel m = handModel();
    SensitivityTable t = sensitivity(m, Axis::kScale, "cpu");

    std::string csv = sensitivityCsv(t);
    EXPECT_EQ(csv.find("axis,value,system,"), 0u);
    EXPECT_NE(csv.find("scale,2^8,x,2,2,0,0,4,4\n"), std::string::npos);
    EXPECT_NE(csv.find("scale,2^9,x,2,2,0,0,8,8\n"), std::string::npos);

    std::string md = renderSensitivityMarkdown(t);
    EXPECT_NE(md.find("| scale | system |"), std::string::npos);
    EXPECT_NE(md.find("| 2^8 | x | 2 | 4.0000x | 4.0000x |"),
              std::string::npos);
}

TEST(Analysis, RecomputedSummaryMatchesCampaignRollupOnARealReport)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp,
                    SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan),
                      degenerateScenario(OpKind::kGroupBy)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    CampaignReport report = CampaignRunner(grid).run(1);

    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportModel(campaignReportJson(report), m, err)) << err;
    AnalysisSummary summary = recomputeSummary(m, m.baseline);
    ASSERT_EQ(summary.systems.size(), report.summaries.size());
    for (std::size_t i = 0; i < summary.systems.size(); ++i) {
        EXPECT_EQ(summary.systems[i].system, report.summaries[i].system);
        EXPECT_EQ(summary.systems[i].paired, report.summaries[i].runs);
        // Values round-trip the 12-digit JSON encoding.
        EXPECT_NEAR(summary.systems[i].geomeanSpeedup,
                    report.summaries[i].geomeanSpeedup,
                    report.summaries[i].geomeanSpeedup * 1e-9);
        EXPECT_NEAR(summary.systems[i].geomeanPerfPerWatt,
                    report.summaries[i].geomeanPerfPerWatt,
                    report.summaries[i].geomeanPerfPerWatt * 1e-9);
    }

    // And the self-diff of a real report is empty at the golden rtol.
    EXPECT_TRUE(diffReports(m, m, 1e-6).empty());
}

TEST(Analysis, GoldenReportGeomeansMatchHandComputedValues)
{
    // The acceptance check: per-axis geomeans on the checked-in nightly
    // report must match values recomputed directly from the same JSON
    // with plain products and roots.
    ReportModel m;
    std::string err;
    ASSERT_TRUE(loadReportFile(std::string(MONDRIAN_SOURCE_DIR) +
                                   "/scripts/golden/paper14-report.json",
                               m, err))
        << err;

    // Hand-compute each system's per-op speedup (there is exactly one
    // comparison per (system, op) cell on the paper grid).
    SensitivityTable per_op = sensitivity(m, Axis::kScenario, "cpu");
    ASSERT_EQ(per_op.rows.size(), 4u);
    for (const SensitivityRow &row : per_op.rows) {
        ASSERT_EQ(row.cells.size(), 6u);
        for (const SensitivityCell &cell : row.cells) {
            const ReportRun *cpu = nullptr, *sys = nullptr;
            for (const ReportRun &r : m.runs) {
                if (r.scenario != row.value)
                    continue;
                if (r.system == "cpu")
                    cpu = &r;
                if (r.system == cell.system)
                    sys = &r;
            }
            ASSERT_NE(cpu, nullptr);
            ASSERT_NE(sys, nullptr);
            EXPECT_EQ(cell.paired, 1u);
            const double speedup =
                static_cast<double>(cpu->result.totalTime) /
                static_cast<double>(sys->result.totalTime);
            EXPECT_NEAR(cell.geomeanSpeedup, speedup, speedup * 1e-12);
            const double ppw = cpu->result.energy.total() /
                               sys->result.energy.total();
            EXPECT_NEAR(cell.geomeanPerfPerWatt, ppw, ppw * 1e-12);
        }
    }

    // The single-value axes (theta, geometry) roll all four ops into one
    // row per system; hand-compute the geomean as a product of the
    // per-op speedups.
    for (Axis axis : {Axis::kZipfTheta, Axis::kGeometry}) {
        SensitivityTable t = sensitivity(m, axis, "cpu");
        ASSERT_EQ(t.rows.size(), 1u);
        ASSERT_EQ(t.rows[0].cells.size(), 6u);
        for (const SensitivityCell &cell : t.rows[0].cells) {
            double prod = 1.0;
            std::size_t n = 0;
            for (const SensitivityRow &row : per_op.rows) {
                for (const SensitivityCell &op_cell : row.cells) {
                    if (op_cell.system == cell.system) {
                        prod *= op_cell.geomeanSpeedup;
                        ++n;
                    }
                }
            }
            ASSERT_EQ(n, 4u);
            EXPECT_EQ(cell.paired, 4u);
            const double expected = std::pow(prod, 1.0 / 4.0);
            EXPECT_NEAR(cell.geomeanSpeedup, expected, expected * 1e-12);
        }
    }

    // The stored summary block agrees with the recomputation.
    AnalysisSummary summary = recomputeSummary(m, "cpu");
    ASSERT_EQ(summary.systems.size(), m.summaries.size());
    for (std::size_t i = 0; i < summary.systems.size(); ++i) {
        EXPECT_EQ(summary.systems[i].system, m.summaries[i].system);
        EXPECT_NEAR(summary.systems[i].geomeanSpeedup,
                    m.summaries[i].geomeanSpeedup,
                    m.summaries[i].geomeanSpeedup * 1e-9);
    }
}
