/** @file Unit tests for the sparse backing store. */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/intmath.hh"
#include "common/random.hh"
#include "mem/backing_store.hh"

using namespace mondrian;

TEST(BackingStore, ZeroFilledByDefault)
{
    BackingStore bs(1 * kMiB);
    EXPECT_EQ(bs.readValue<std::uint64_t>(0), 0u);
    EXPECT_EQ(bs.readValue<std::uint64_t>(512 * kKiB), 0u);
    EXPECT_EQ(bs.chunksAllocated(), 0u);
}

TEST(BackingStore, ReadBackWhatWasWritten)
{
    BackingStore bs(1 * kMiB);
    bs.writeValue<std::uint64_t>(128, 0xdeadbeefcafef00dull);
    EXPECT_EQ(bs.readValue<std::uint64_t>(128), 0xdeadbeefcafef00dull);
    EXPECT_EQ(bs.readValue<std::uint64_t>(136), 0u);
}

TEST(BackingStore, CrossChunkTransfer)
{
    BackingStore bs(1 * kMiB);
    std::vector<std::uint8_t> data(BackingStore::kChunkBytes + 100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    Addr base = BackingStore::kChunkBytes - 50; // straddles the boundary
    bs.write(base, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    bs.read(base, back.data(), back.size());
    EXPECT_EQ(data, back);
    EXPECT_EQ(bs.chunksAllocated(), 3u);
}

TEST(BackingStore, SparseAllocation)
{
    BackingStore bs(256 * kMiB);
    bs.writeValue<std::uint32_t>(200 * kMiB, 7);
    EXPECT_EQ(bs.chunksAllocated(), 1u);
    EXPECT_EQ(bs.readValue<std::uint32_t>(200 * kMiB), 7u);
}

TEST(BackingStore, RandomizedRoundTrip)
{
    BackingStore bs(4 * kMiB);
    Random rng(5);
    std::vector<std::pair<Addr, std::uint64_t>> writes;
    for (int i = 0; i < 500; ++i) {
        Addr a = roundDown(rng.nextBounded(4 * kMiB - 8), 8);
        std::uint64_t v = rng.next();
        bs.writeValue(a, v);
        writes.emplace_back(a, v);
    }
    // Later writes may overwrite earlier ones; verify via replay map.
    std::map<Addr, std::uint64_t> expect;
    for (auto &[a, v] : writes)
        expect[a] = v;
    for (auto &[a, v] : expect)
        EXPECT_EQ(bs.readValue<std::uint64_t>(a), v);
}

TEST(BackingStoreDeath, OutOfBounds)
{
    BackingStore bs(1024);
    EXPECT_DEATH(bs.writeValue<std::uint64_t>(1020, 1), "assert");
}
