/** @file Unit tests for the DRAM bank timing FSM. */

#include <gtest/gtest.h>

#include "dram/bank.hh"

using namespace mondrian;

namespace {
const DramTiming kT{}; // paper defaults
} // namespace

TEST(Bank, ColdAccessActivates)
{
    Bank b(kT);
    auto r = b.access(7, 0, false, 1000);
    EXPECT_TRUE(r.activated);
    EXPECT_FALSE(r.rowHit);
    EXPECT_EQ(r.readyAt, kT.tRCD + kT.tCAS);
    EXPECT_EQ(*b.openRow(), 7u);
}

TEST(Bank, RowHitIsColumnOnly)
{
    Bank b(kT);
    b.access(7, 0, false, 1000);
    Tick busy = b.busyUntil();
    auto r = b.access(7, busy, false, 1000);
    EXPECT_TRUE(r.rowHit);
    EXPECT_FALSE(r.activated);
    EXPECT_EQ(r.readyAt, busy + kT.tCAS);
}

TEST(Bank, ConflictPrechargesRespectingTras)
{
    Bank b(kT);
    b.access(1, 0, false, 1000); // activate at 0
    // Conflict immediately: precharge cannot start before tRAS.
    auto r = b.access(2, 0, false, 1000);
    EXPECT_TRUE(r.activated);
    Tick act = kT.tRAS + kT.tRP;
    EXPECT_EQ(r.readyAt, act + kT.tRCD + kT.tCAS);
    EXPECT_EQ(*b.openRow(), 2u);
}

TEST(Bank, WriteRecoveryDelaysPrecharge)
{
    Bank b(kT);
    auto w = b.access(1, 0, true, 1000);
    Tick wr_end = w.readyAt + 1000 + kT.tWR;
    auto r = b.access(2, wr_end - 1, false, 1000);
    // Precharge start is gated by write recovery.
    EXPECT_GE(r.readyAt, wr_end + kT.tRP + kT.tRCD + kT.tCAS);
}

TEST(Bank, ColumnCommandsPipeline)
{
    // tCAS is latency, not occupancy: consecutive row hits space at
    // max(tCCD, burst), far below tCAS + burst.
    Bank b(kT);
    b.access(3, 0, false, 2000);
    Tick free1 = b.busyUntil();
    auto r2 = b.access(3, free1, false, 2000);
    EXPECT_EQ(b.busyUntil() - free1, std::max(kT.tCCD, Tick{2000}));
    EXPECT_EQ(r2.readyAt - free1, kT.tCAS);
}

TEST(Bank, PrechargeNowClosesRow)
{
    Bank b(kT);
    b.access(5, 0, false, 1000);
    b.prechargeNow(kT.tRAS);
    EXPECT_FALSE(b.openRow().has_value());
}

/** Property sweep: a burst of sequential row-hit accesses sustains the
 *  bus rate while random rows pay the full row cycle. */
class BankPatternTest : public ::testing::TestWithParam<bool> {};

TEST_P(BankPatternTest, SequentialBeatsRandom)
{
    const bool sequential = GetParam();
    Bank b(kT);
    Tick t = 0;
    unsigned activations = 0;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t row = sequential ? 0 : static_cast<std::uint64_t>(i);
        auto r = b.access(row, t, false, 2000);
        t = r.readyAt + 2000;
        activations += r.activated ? 1 : 0;
    }
    if (sequential) {
        EXPECT_EQ(activations, 1u);
        EXPECT_LT(t, Tick{64} * (kT.tCAS + 2000) + kT.tRCD + 1);
    } else {
        EXPECT_EQ(activations, 64u);
        EXPECT_GT(t, Tick{63} * kT.tRC());
    }
}

INSTANTIATE_TEST_SUITE_P(Patterns, BankPatternTest, ::testing::Bool());
