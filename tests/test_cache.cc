/** @file Unit and property tests for the cache model. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/cache.hh"

using namespace mondrian;

namespace {

CacheConfig
smallCache(unsigned prefetch = 0)
{
    CacheConfig c;
    c.sizeBytes = 1 * kKiB;
    c.associativity = 2;
    c.lineBytes = 64;
    c.hitLatency = 2;
    c.prefetchDepth = prefetch;
    return c;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(63, false).hit);  // same line
    EXPECT_FALSE(c.access(64, false).hit); // next line
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(smallCache());
    // 8 sets, 2 ways: lines 0, 8, 16 map to set 0.
    c.access(0 * 64, false);
    c.access(8 * 64, false);
    c.access(0 * 64, false);       // refresh line 0
    c.access(16 * 64, false);      // evicts line 8
    EXPECT_TRUE(c.access(0 * 64, false).hit);
    EXPECT_FALSE(c.access(8 * 64, false).hit);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Cache c(smallCache());
    c.access(0, true); // dirty line 0
    c.access(8 * 64, false);
    auto r = c.access(16 * 64, false); // evicts dirty line 0
    ASSERT_TRUE(r.writebackAddr.has_value());
    EXPECT_EQ(*r.writebackAddr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionSilent)
{
    Cache c(smallCache());
    c.access(0, false);
    c.access(8 * 64, false);
    auto r = c.access(16 * 64, false);
    EXPECT_FALSE(r.writebackAddr.has_value());
}

TEST(Cache, PrefetcherIssuesNextLines)
{
    Cache c(smallCache(3));
    auto r = c.access(0, false);
    ASSERT_EQ(r.prefetchFills.size(), 3u);
    EXPECT_EQ(r.prefetchFills[0], 64u);
    EXPECT_EQ(r.prefetchFills[2], 192u);
}

TEST(Cache, PrefetchHitRearms)
{
    Cache c(smallCache(2));
    auto miss = c.access(0, false);
    for (Addr pf : miss.prefetchFills)
        c.insertPrefetch(pf);
    auto hit = c.access(64, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.prefetchHit);
    EXPECT_EQ(hit.prefetchFills.size(), 2u); // stream keeps rolling
    // Second touch of the same line is a plain hit.
    auto hit2 = c.access(64, false);
    EXPECT_TRUE(hit2.hit);
    EXPECT_FALSE(hit2.prefetchHit);
}

TEST(Cache, InsertPrefetchIdempotent)
{
    Cache c(smallCache(1));
    EXPECT_TRUE(c.insertPrefetch(128));
    EXPECT_FALSE(c.insertPrefetch(128));
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(smallCache());
    c.access(0, false);
    c.flush();
    EXPECT_FALSE(c.access(0, false).hit);
}

TEST(Cache, HitRateTracking)
{
    Cache c(smallCache());
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_NEAR(c.hitRate(), 2.0 / 3.0, 1e-9);
}

/** Property: working sets within capacity hit after warmup; beyond
 *  capacity they thrash. */
struct WsParam
{
    std::uint64_t workingSet;
    bool expectHits;
};

class WorkingSetTest : public ::testing::TestWithParam<WsParam> {};

TEST_P(WorkingSetTest, CapacityBehavior)
{
    auto p = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = 4 * kKiB;
    cfg.associativity = 4;
    cfg.lineBytes = 64;
    Cache c(cfg);
    // Two sweeps: warmup + measure.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < p.workingSet; a += 64)
            c.access(a, false);
    double hr = c.hitRate();
    if (p.expectHits)
        EXPECT_GT(hr, 0.45);
    else
        EXPECT_LT(hr, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    WorkingSets, WorkingSetTest,
    ::testing::Values(WsParam{1 * kKiB, true}, WsParam{2 * kKiB, true},
                      WsParam{4 * kKiB, true}, WsParam{16 * kKiB, false},
                      WsParam{64 * kKiB, false}));

TEST(CacheDeath, BadGeometryFatal)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1000; // not a multiple of line*assoc
    EXPECT_DEATH({ Cache c(cfg); }, "multiple");
}
