/** @file Campaign grid expansion, parallel determinism and JSON output. */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "sim/thread_pool.hh"
#include "system/campaign.hh"
#include "system/report.hh"

#include <atomic>
#include <limits>
#include <set>
#include <stdexcept>

using namespace mondrian;

namespace {

/** Small two-axis grid with a baseline, cheap enough for unit tests. */
CampaignGrid
testGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan), degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8, 9};
    grid.seeds = {42, 7};
    return grid;
}

} // namespace

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsOnSubmit)
{
    ThreadPool pool(0);
    int count = 0;
    pool.submit([&count] { ++count; });
    EXPECT_EQ(count, 1);
    pool.wait(); // no-op, must not hang
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&count, i] {
            if (i == 3)
                throw std::runtime_error("job 3 failed");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 7); // the other jobs still ran
    // The pool stays usable after an error.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(Campaign, GridSizeIsCrossProduct)
{
    CampaignGrid grid = testGrid();
    EXPECT_EQ(grid.size(), 3u * 2u * 2u * 2u);

    grid.scenarios.clear();
    EXPECT_EQ(grid.size(), 0u);
}

TEST(Campaign, ExpandGridCoversEveryPointOnce)
{
    CampaignGrid grid = testGrid();
    auto jobs = expandGrid(grid);
    ASSERT_EQ(jobs.size(), grid.size());

    std::set<std::tuple<int, std::string, unsigned, std::uint64_t>> seen;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i); // index == position, densely numbered
        seen.insert({static_cast<int>(jobs[i].system),
                     jobs[i].scenario.name, jobs[i].log2Tuples,
                     jobs[i].seed});
    }
    EXPECT_EQ(seen.size(), jobs.size()); // no duplicates
}

TEST(Campaign, JobWorkloadReflectsGridPoint)
{
    CampaignGrid grid = testGrid();
    grid.zipfThetas = {0.5};
    auto jobs = expandGrid(grid);
    for (const auto &job : jobs) {
        WorkloadConfig wl = job.workload();
        EXPECT_EQ(wl.tuples, std::uint64_t{1} << job.log2Tuples);
        EXPECT_EQ(wl.seed, job.seed);
        EXPECT_DOUBLE_EQ(wl.zipfTheta, 0.5);
    }
}

TEST(Campaign, AxesExpandAsCrossProduct)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    MemGeometry narrow = defaultGeometry();
    narrow.vaultsPerStack = 8;
    grid.geometries = {defaultGeometry(), narrow};
    ExecOverride radix9;
    radix9.radixBits = 9;
    grid.execOverrides = {ExecOverride{}, radix9};
    grid.zipfThetas = {0.0, 0.75};

    EXPECT_EQ(grid.size(), 2u * 1 * 1 * 1 * 2 * 2 * 2);
    auto jobs = expandGrid(grid);
    ASSERT_EQ(jobs.size(), grid.size());

    std::set<std::string> seen;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        seen.insert(geometryName(jobs[i].geometry) + "|" +
                    jobs[i].exec.name() + "|" +
                    std::to_string(jobs[i].zipfTheta) + "|" +
                    systemKindName(jobs[i].system));
    }
    EXPECT_EQ(seen.size(), jobs.size()); // every axis point hit exactly once

    // Geometries are outermost: the first half of the jobs run the first
    // geometry, and within one geometry systems stay contiguous.
    for (std::size_t i = 0; i < jobs.size() / 2; ++i)
        EXPECT_EQ(geometryName(jobs[i].geometry),
                  geometryName(defaultGeometry()));
    EXPECT_EQ(jobs[0].system, SystemKind::kCpu);
    EXPECT_EQ(jobs[1].system, SystemKind::kMondrian);
}

TEST(Campaign, SystemConfigAppliesGeometryAndOverride)
{
    CampaignJob job;
    job.system = SystemKind::kCpu;
    job.geometry = defaultGeometry();
    job.geometry.vaultsPerStack = 8;
    job.exec.radixBits = 9;
    job.exec.tlbEntries = 16;

    SystemConfig cfg = job.systemConfig();
    EXPECT_EQ(cfg.geo.totalVaults(), 32u);
    EXPECT_EQ(cfg.exec.cpuPartitionBits, 9u);
    EXPECT_EQ(cfg.exec.tlbEntries, 16u);
    // Unset knobs inherit the preset.
    EXPECT_EQ(cfg.exec.readChunkBytes, makeSystem(SystemKind::kCpu).exec.readChunkBytes);
}

TEST(Campaign, ValidateGridNamesTheEmptyAxis)
{
    CampaignGrid grid = testGrid();
    std::string err;
    EXPECT_TRUE(validateGrid(grid, err)) << err;

    CampaignGrid no_geo = grid;
    no_geo.geometries.clear();
    EXPECT_FALSE(validateGrid(no_geo, err));
    EXPECT_NE(err.find("geometry axis"), std::string::npos);

    CampaignGrid no_exec = grid;
    no_exec.execOverrides.clear();
    EXPECT_FALSE(validateGrid(no_exec, err));
    EXPECT_NE(err.find("exec-ablation axis"), std::string::npos);

    CampaignGrid no_theta = grid;
    no_theta.zipfThetas.clear();
    EXPECT_FALSE(validateGrid(no_theta, err));
    EXPECT_NE(err.find("zipf-theta axis"), std::string::npos);

    CampaignGrid bad_geo = grid;
    bad_geo.geometries[0].vaultsPerStack = 5; // not a power of two
    EXPECT_FALSE(validateGrid(bad_geo, err));
    EXPECT_NE(err.find("invalid geometry"), std::string::npos);

    EXPECT_THROW(CampaignRunner(bad_geo).run(1), std::invalid_argument);
}

TEST(Campaign, GeometrySpecsParseAndRoundTrip)
{
    MemGeometry geo;
    std::string err;
    ASSERT_TRUE(parseGeometrySpec("default", geo, err)) << err;
    EXPECT_EQ(geometryName(geo), "4x16x8-8MiB-r256");

    ASSERT_TRUE(parseGeometrySpec("2x8", geo, err)) << err;
    EXPECT_EQ(geo.numStacks, 2u);
    EXPECT_EQ(geo.vaultsPerStack, 8u);
    EXPECT_EQ(geo.banksPerVault, 8u); // inherited from the default
    EXPECT_EQ(geometryName(geo), "2x8x8-8MiB-r256");

    ASSERT_TRUE(parseGeometrySpec("8x32x4:row=2048:vault=256KiB", geo, err))
        << err;
    EXPECT_EQ(geo.banksPerVault, 4u);
    EXPECT_EQ(geo.rowBytes, 2048u);
    EXPECT_EQ(geo.vaultBytes, 256 * kKiB);
    EXPECT_EQ(geometryName(geo), "8x32x4-256KiB-r2048");

    // Size suffixes belong to the row=/vault= knobs only; shape dims are
    // plain integers ("2KiBx2" must not become a 2048-stack machine).
    ASSERT_TRUE(parseGeometrySpec("4x16:row=2KiB", geo, err)) << err;
    EXPECT_EQ(geo.rowBytes, 2048u);
    EXPECT_FALSE(parseGeometrySpec("2KiBx2", geo, err));
    EXPECT_FALSE(parseGeometrySpec("4x2KiB", geo, err));

    // Oversized dimensions are rejected, not truncated into a different
    // (valid-looking) machine.
    EXPECT_FALSE(parseGeometrySpec("4294967298x16", geo, err));
    EXPECT_FALSE(parseGeometrySpec("4x16:vault=99999999MiB", geo, err));

    EXPECT_FALSE(parseGeometrySpec("", geo, err));
    EXPECT_FALSE(parseGeometrySpec("4", geo, err));
    EXPECT_FALSE(parseGeometrySpec("4x", geo, err));
    EXPECT_FALSE(parseGeometrySpec("4x16:bogus=3", geo, err));
    EXPECT_FALSE(parseGeometrySpec("4x16:row=300", geo, err)); // not pow2
    EXPECT_FALSE(parseGeometrySpec("3x16", geo, err));         // not pow2
}

TEST(Campaign, ValidateGridRejectsInfeasibleCombinations)
{
    // A scale that cannot fit the swept pool fails fast instead of
    // aborting mid-campaign in the vault allocator.
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    MemGeometry tiny;
    std::string err;
    ASSERT_TRUE(parseGeometrySpec("1x4:vault=64KiB", tiny, err)) << err;
    grid.geometries = {tiny}; // 256 KiB pool, needs ~4 MiB
    EXPECT_FALSE(validateGrid(grid, err));
    EXPECT_NE(err.find("does not fit"), std::string::npos) << err;

    // A read-chunk override wider than a geometry's row buffer is
    // physically meaningless and rejected.
    CampaignGrid chunky;
    chunky.systems = {SystemKind::kMondrian};
    chunky.scenarios = {degenerateScenario(OpKind::kScan)};
    chunky.log2Tuples = {8};
    chunky.seeds = {42};
    MemGeometry narrow_row;
    ASSERT_TRUE(parseGeometrySpec("4x16:row=64", narrow_row, err)) << err;
    chunky.geometries = {narrow_row};
    ExecOverride big_chunk;
    big_chunk.readChunkBytes = 256;
    chunky.execOverrides = {big_chunk};
    EXPECT_FALSE(validateGrid(chunky, err));
    EXPECT_NE(err.find("row buffer"), std::string::npos) << err;

    // The same chunk on the default 256 B rows is fine.
    chunky.geometries = {defaultGeometry()};
    EXPECT_TRUE(validateGrid(chunky, err)) << err;

    // Overrides built through the library API get the same range checks
    // as CLI-parsed ones (a chunk of 0 would divide by zero mid-run).
    ExecOverride zero_chunk;
    zero_chunk.readChunkBytes = 0;
    chunky.execOverrides = {zero_chunk};
    EXPECT_FALSE(validateGrid(chunky, err));
    EXPECT_NE(err.find("invalid exec-ablation"), std::string::npos) << err;

    ExecOverride wild_radix;
    wild_radix.radixBits = 40;
    chunky.execOverrides = {wild_radix};
    EXPECT_FALSE(validateGrid(chunky, err));
    EXPECT_NE(err.find("radix bits"), std::string::npos) << err;
}

TEST(Resume, ThetaHashMatchesReportEncoding)
{
    // The hash canonicalizes theta at the report writer's 12 significant
    // digits, so a theta parsed back from a report hashes identically to
    // the CLI-parsed original even when the original had more digits.
    const MemGeometry geo = defaultGeometry();
    const ExecOverride base;
    const double cli = 0.1234567890123456;   // what strtod produced
    const double report = 0.123456789012;    // what the report stores
    EXPECT_EQ(ResumeCache::gridPointHash("cpu", "join", 15, 42, cli, geo,
                                         base, "none"),
              ResumeCache::gridPointHash("cpu", "join", 15, 42, report,
                                         geo, base, "none"));
    // ... while thetas that differ within 12 digits still differ.
    EXPECT_NE(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.5, geo,
                                         base, "none"),
              ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.75, geo,
                                         base, "none"));
}

TEST(Campaign, ExecOverrideParseAndCanonicalName)
{
    ExecOverride ov;
    std::string err;
    ASSERT_TRUE(parseExecOverride("base", ov, err)) << err;
    EXPECT_TRUE(ov.isBase());
    EXPECT_EQ(ov.name(), "base");

    ASSERT_TRUE(parseExecOverride("tlb=16+radix=9", ov, err)) << err;
    EXPECT_EQ(ov.radixBits, 9);
    EXPECT_EQ(ov.tlbEntries, 16);
    EXPECT_EQ(ov.readChunkBytes, -1);
    // Canonical name is order-independent (fixed chunk/radix/tlb order).
    EXPECT_EQ(ov.name(), "radix=9+tlb=16");
    ExecOverride ov2;
    ASSERT_TRUE(parseExecOverride("radix=9+tlb=16", ov2, err)) << err;
    EXPECT_EQ(ov.name(), ov2.name());

    ASSERT_TRUE(parseExecOverride("chunk=256", ov, err)) << err;
    EXPECT_EQ(ov.readChunkBytes, 256);
    EXPECT_EQ(ov.name(), "chunk=256");

    EXPECT_FALSE(parseExecOverride("", ov, err));
    EXPECT_FALSE(parseExecOverride("radix", ov, err));
    EXPECT_FALSE(parseExecOverride("radix=0", ov, err));
    EXPECT_FALSE(parseExecOverride("chunk=100", ov, err)); // not pow2
    EXPECT_FALSE(parseExecOverride("turbo=1", ov, err));
    EXPECT_FALSE(parseExecOverride("radix=9+", ov, err));
    // A repeated knob is a typo'd ablation point, not "last wins".
    EXPECT_FALSE(parseExecOverride("chunk=256+chunk=128", ov, err));
    EXPECT_NE(err.find("twice"), std::string::npos) << err;
}

TEST(Campaign, ValidateGridRejectsThetaDuplicates)
{
    CampaignGrid grid = testGrid();
    std::string err;

    grid.zipfThetas = {0.5, 0.5};
    EXPECT_FALSE(validateGrid(grid, err));
    EXPECT_NE(err.find("duplicate zipf-theta"), std::string::npos) << err;

    // Thetas identical at the report's 12-digit precision would share
    // one axis label and resume identity — also rejected.
    grid.zipfThetas = {0.123456789012, 0.1234567890121};
    EXPECT_FALSE(validateGrid(grid, err));
    EXPECT_NE(err.find("12-digit"), std::string::npos) << err;

    grid.zipfThetas = {0.0, 0.5, 0.75};
    EXPECT_TRUE(validateGrid(grid, err)) << err;
}

TEST(Campaign, ParallelMatchesSerialByteForByte)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan), degenerateScenario(OpKind::kGroupBy)};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport serial = CampaignRunner(grid).run(1);
    CampaignReport parallel = CampaignRunner(grid).run(4);

    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].result.totalTime,
                  parallel.runs[i].result.totalTime);
        EXPECT_EQ(serial.runs[i].result.aggChecksum,
                  parallel.runs[i].result.aggChecksum);
    }
    EXPECT_EQ(campaignReportJson(serial), campaignReportJson(parallel));
}

TEST(Campaign, SummaryUsesCpuBaseline)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    EXPECT_EQ(report.baseline, "cpu");
    ASSERT_EQ(report.summaries.size(), 1u);
    EXPECT_EQ(report.summaries[0].system, "mondrian");
    EXPECT_EQ(report.summaries[0].runs, 1u);
    // NMP beats the CPU baseline on every operator in the paper.
    EXPECT_GT(report.summaries[0].geomeanSpeedup, 1.0);
    EXPECT_GT(report.summaries[0].geomeanPerfPerWatt, 1.0);
}

TEST(Campaign, BaselineIndexKeysBySeedScaleOp)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8, 9};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    auto base = baselineIndex(report.runs, SystemKind::kCpu);
    ASSERT_EQ(base.size(), 2u); // one cpu run per scale
    for (const auto &r : report.runs) {
        auto it = base.find(gridGroupKey(r));
        ASSERT_NE(it, base.end());
        // Every run maps to the baseline of its own scale.
        EXPECT_EQ(it->second->job.log2Tuples, r.job.log2Tuples);
        EXPECT_EQ(it->second->job.system, SystemKind::kCpu);
    }
}

TEST(Campaign, SummaryCountsOnlyPairedRuns)
{
    // Regression: `runs` used to count every run of a system even when
    // its grid point had no baseline to compare against, overstating the
    // paired-run count on partial/resumed reports.
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8, 9};
    grid.seeds = {42};
    CampaignReport report = CampaignRunner(grid).run(1);

    // Simulate a partial report: the cpu baseline of the 2^9 grid point
    // is missing.
    std::vector<CampaignRun> runs;
    for (const auto &r : report.runs)
        if (!(r.job.system == SystemKind::kCpu && r.job.log2Tuples == 9))
            runs.push_back(r);

    auto summaries = summarizeRuns(grid, runs, SystemKind::kCpu);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].system, "nmp");
    EXPECT_EQ(summaries[0].runs, 1u);      // only the paired 2^8 point
    EXPECT_EQ(summaries[0].totalRuns, 2u); // both nmp runs exist
    // The geomean is exactly the one paired comparison.
    const CampaignRun *cpu8 = nullptr, *nmp8 = nullptr;
    for (const auto &r : runs) {
        if (r.job.log2Tuples != 8)
            continue;
        (r.job.system == SystemKind::kCpu ? cpu8 : nmp8) = &r;
    }
    ASSERT_NE(cpu8, nullptr);
    ASSERT_NE(nmp8, nullptr);
    const double expected = overallSpeedup(cpu8->result, nmp8->result);
    EXPECT_NEAR(summaries[0].geomeanSpeedup, expected, expected * 1e-12);

    // The partial report's JSON carries the provenance ("runs_total"),
    // while a full grid's summary block stays byte-identical (no
    // conditional members).
    CampaignReport partial = report;
    partial.runs = runs;
    partial.summaries = summaries;
    std::string partial_json = campaignReportJson(partial);
    EXPECT_NE(partial_json.find("\"runs\": 1"), std::string::npos);
    EXPECT_NE(partial_json.find("\"runs_total\": 2"), std::string::npos);
    std::string full_json = campaignReportJson(report);
    EXPECT_EQ(full_json.find("\"runs_total\""), std::string::npos);
    EXPECT_EQ(full_json.find("\"dropped_"), std::string::npos);
}

TEST(Campaign, SummaryTableMarksPartialAndDroppedRollups)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    CampaignReport report = CampaignRunner(grid).run(1);

    SystemSummary partial;
    partial.system = "nmp";
    partial.runs = 1;
    partial.totalRuns = 2;
    partial.droppedSpeedups = 1;
    partial.geomeanSpeedup = 2.0;
    partial.geomeanPerfPerWatt = 3.0;
    report.summaries = {partial};
    std::string table = campaignSummaryTable(report);
    EXPECT_NE(table.find("1/2"), std::string::npos);
    EXPECT_NE(table.find("(1 dropped)"), std::string::npos);
}

TEST(Campaign, NoBaselineMeansNoSummaries)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kNmp, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    EXPECT_EQ(report.baseline, "");
    EXPECT_TRUE(report.summaries.empty());
}

TEST(Campaign, ProgressCallbackSeesEveryRun)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignRunner campaign(grid);
    std::set<std::size_t> indices;
    campaign.onRunDone([&indices](const CampaignRun &r) {
        indices.insert(r.job.index);
    });
    campaign.run(2);
    EXPECT_EQ(indices.size(), grid.size());
}

TEST(CampaignJson, ReportRoundTripsThroughSchema)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    std::string json = campaignReportJson(report);

    // Schema markers and grid echo.
    EXPECT_NE(json.find("\"schema\": \"mondrian-campaign-v2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"total_runs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"baseline\": \"cpu\""), std::string::npos);

    // v2 axis tables and per-run axis labels.
    EXPECT_NE(json.find("\"geometries\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"4x16x8-8MiB-r256\""), std::string::npos);
    EXPECT_NE(json.find("\"exec_overrides\""), std::string::npos);
    EXPECT_NE(json.find("\"zipf_thetas\""), std::string::npos);
    EXPECT_NE(json.find("\"geometry\": \"4x16x8-8MiB-r256\""),
              std::string::npos);
    EXPECT_NE(json.find("\"exec\": \"base\""), std::string::npos);
    EXPECT_NE(json.find("\"zipf_theta\": 0"), std::string::npos);

    // Every run serializes with its grid coordinates and result payload.
    EXPECT_NE(json.find("\"system\": \"mondrian\""), std::string::npos);
    EXPECT_NE(json.find("\"op\": \"join\""), std::string::npos);
    EXPECT_NE(json.find("\"log2_tuples\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"total_time_ps\""), std::string::npos);
    EXPECT_NE(json.find("\"energy_j\""), std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);

    // Identical reports serialize to identical bytes.
    EXPECT_EQ(json, campaignReportJson(report));
}

TEST(CampaignJson, RunResultJsonMatchesRunnerOutput)
{
    WorkloadConfig wl;
    wl.tuples = 1u << 8;
    RunResult r = Runner(wl).run(SystemKind::kNmp, OpKind::kJoin);
    std::string json = runResultJson(r);
    EXPECT_NE(json.find("\"system\": \"nmp\""), std::string::npos);
    EXPECT_NE(json.find("\"op\": \"join\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"partition\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"probe\""), std::string::npos);
}

TEST(JsonWriter, ProducesExpectedDocument)
{
    JsonWriter w;
    w.beginObject();
    w.member("name", "x");
    w.member("count", std::uint64_t{3});
    w.member("ratio", 0.5);
    w.member("flag", true);
    w.key("list").beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.endArray();
    w.key("nested").beginObject();
    w.member("inner", "y");
    w.endObject();
    w.endObject();

    EXPECT_EQ(w.str(), "{\n"
                       "  \"name\": \"x\",\n"
                       "  \"count\": 3,\n"
                       "  \"ratio\": 0.5,\n"
                       "  \"flag\": true,\n"
                       "  \"list\": [\n"
                       "    1,\n"
                       "    2\n"
                       "  ],\n"
                       "  \"nested\": {\n"
                       "    \"inner\": \"y\"\n"
                       "  }\n"
                       "}");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginObject();
    w.member("s", "a\"b\\c\nd");
    w.endObject();
    EXPECT_NE(w.str().find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.endArray();
    EXPECT_EQ(w.str(), "[\n  null,\n  null\n]");
}

TEST(Report, GeomeanIgnoresNonPositive)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 16.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({4.0, 16.0, 0.0, -3.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Report, GeomeanStatsSurfacesDroppedEntries)
{
    // A zero/negative value is a broken run; it must not vanish silently
    // from a rollup.
    GeomeanStats s = geomeanStats({4.0, 16.0, 0.0, -3.0});
    EXPECT_DOUBLE_EQ(s.value, 8.0);
    EXPECT_EQ(s.used, 2u);
    EXPECT_EQ(s.dropped, 2u);

    s = geomeanStats({4.0, 16.0});
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_EQ(s.used, 2u);

    s = geomeanStats({});
    EXPECT_DOUBLE_EQ(s.value, 0.0);
    EXPECT_EQ(s.used, 0u);
    EXPECT_EQ(s.dropped, 0u);
}

TEST(Report, MarkdownTableRendersHeaderSeparator)
{
    std::string md = renderMarkdownTable(
        {{"a", "b"}, {"1", "2"}, {"3", "4"}});
    EXPECT_EQ(md, "| a | b |\n|---|---|\n| 1 | 2 |\n| 3 | 4 |\n");
    EXPECT_EQ(renderMarkdownTable({}), "");
}

TEST(Parsing, NamesRoundTrip)
{
    for (SystemKind k : allSystemKinds()) {
        SystemKind parsed;
        ASSERT_TRUE(systemKindFromName(systemKindName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    for (OpKind op : allOpKinds()) {
        OpKind parsed;
        ASSERT_TRUE(opKindFromName(opKindName(op), parsed));
        EXPECT_EQ(parsed, op);
    }
    SystemKind sink_s;
    OpKind sink_o;
    EXPECT_FALSE(systemKindFromName("gpu", sink_s));
    EXPECT_FALSE(opKindFromName("union", sink_o));
}

// --- Resume cache: incremental reruns skip cached (config, workload)
// grid points and splice their results back byte-identically. ---

namespace {

CampaignGrid
resumeGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan), degenerateScenario(OpKind::kGroupBy)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    return grid;
}

} // namespace

TEST(Resume, GridPointHashIsStableAndDiscriminating)
{
    const MemGeometry geo = defaultGeometry();
    const ExecOverride base;
    std::string h = ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0,
                                               geo, base, "none");
    EXPECT_EQ(h, ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0,
                                            geo, base, "none"));
    // The identity is the injective delimited encoding itself, not a
    // lossy digest: every axis coordinate appears at a fixed position.
    EXPECT_EQ(h, "cpu|join|15|42|0|4|16|8|256|8388608|-1|-1|-1|none");
    std::set<std::string> all{h};
    all.insert(ResumeCache::gridPointHash("nmp", "join", 15, 42, 0.0, geo,
                                          base, "none"));
    all.insert(ResumeCache::gridPointHash("cpu", "scan", 15, 42, 0.0, geo,
                                          base, "none"));
    all.insert(ResumeCache::gridPointHash("cpu", "join", 16, 42, 0.0, geo,
                                          base, "none"));
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 43, 0.0, geo,
                                          base, "none"));
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.8, geo,
                                          base, "none"));
    // Every geometry field is an axis coordinate of its own.
    MemGeometry g2 = geo;
    g2.vaultsPerStack = 8;
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0, g2,
                                          base, "none"));
    g2 = geo;
    g2.rowBytes = 2048;
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0, g2,
                                          base, "none"));
    g2 = geo;
    g2.vaultBytes = 256 * kKiB;
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0, g2,
                                          base, "none"));
    // ... and so is every exec-override knob.
    ExecOverride ov;
    ov.radixBits = 9;
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0, geo,
                                          ov, "none"));
    ov = ExecOverride{};
    ov.readChunkBytes = 256;
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0, geo,
                                          ov, "none"));
    ov = ExecOverride{};
    ov.tlbEntries = 16;
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0, geo,
                                          ov, "none"));
    // ... and the traffic spec is the eighth coordinate.
    all.insert(ResumeCache::gridPointHash(
        "cpu", "join", 15, 42, 0.0, geo, base,
        "poisson-l1000.00000000-q64-s1"));
    EXPECT_EQ(all.size(), 13u); // every coordinate distinguishes
}

TEST(Resume, FullyCachedRerunMatchesFreshReport)
{
    CampaignGrid grid = resumeGrid();
    CampaignReport fresh = CampaignRunner(grid).run(1);
    std::string fresh_json = campaignReportJson(fresh);

    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(fresh_json, err)) << err;
    EXPECT_EQ(cache.size(), grid.size());

    CampaignRunner resumed_runner(grid);
    resumed_runner.setResume(&cache);
    // No run may execute: the progress callback must never fire.
    resumed_runner.onRunDone(
        [](const CampaignRun &) { FAIL() << "cached run executed"; });
    CampaignReport resumed = resumed_runner.run(1);
    EXPECT_EQ(resumed.cachedRuns, grid.size());
    std::string resumed_json = campaignReportJson(resumed);

    // The splice contract: the runs subtree is byte-identical. (The
    // summary section is recomputed from 12-digit round-tripped values
    // and is only numerically — not bit — guaranteed; see campaign.hh.)
    auto runsSpan = [](const std::string &json) {
        JsonValue doc;
        std::string perr;
        EXPECT_TRUE(parseJson(json, doc, perr)) << perr;
        const JsonValue *runs = doc.find("runs");
        EXPECT_NE(runs, nullptr);
        return json.substr(runs->begin, runs->end - runs->begin);
    };
    EXPECT_EQ(runsSpan(resumed_json), runsSpan(fresh_json));

    ASSERT_EQ(resumed.summaries.size(), fresh.summaries.size());
    for (std::size_t i = 0; i < fresh.summaries.size(); ++i) {
        EXPECT_EQ(resumed.summaries[i].system, fresh.summaries[i].system);
        EXPECT_NEAR(resumed.summaries[i].geomeanSpeedup,
                    fresh.summaries[i].geomeanSpeedup,
                    fresh.summaries[i].geomeanSpeedup * 1e-9);
        EXPECT_NEAR(resumed.summaries[i].geomeanPerfPerWatt,
                    fresh.summaries[i].geomeanPerfPerWatt,
                    fresh.summaries[i].geomeanPerfPerWatt * 1e-9);
    }
}

TEST(Resume, SupersetGridRunsOnlyNewPoints)
{
    CampaignGrid small = resumeGrid();
    CampaignReport prior = CampaignRunner(small).run(1);
    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(campaignReportJson(prior), err)) << err;

    CampaignGrid big = small;
    big.systems.push_back(SystemKind::kNmp);
    CampaignRunner runner(big);
    runner.setResume(&cache);
    std::size_t executed = 0;
    runner.onRunDone([&executed](const CampaignRun &r) {
        ++executed;
        EXPECT_EQ(r.job.system, SystemKind::kNmp);
    });
    CampaignReport report = CampaignRunner(big).run(1); // reference
    CampaignReport resumed = runner.run(1);

    EXPECT_EQ(resumed.cachedRuns, small.size());
    EXPECT_EQ(executed, big.size() - small.size());
    // Cached and fresh points agree with an uncached full run.
    ASSERT_EQ(resumed.runs.size(), report.runs.size());
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        EXPECT_EQ(resumed.runs[i].result.totalTime,
                  report.runs[i].result.totalTime);
        EXPECT_EQ(resumed.runs[i].result.aggChecksum,
                  report.runs[i].result.aggChecksum);
    }
}

TEST(Resume, DifferentWorkloadIsNotReused)
{
    CampaignGrid grid = resumeGrid();
    CampaignReport prior = CampaignRunner(grid).run(1);
    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(campaignReportJson(prior), err)) << err;

    CampaignGrid other = grid;
    other.seeds = {7}; // different workload: nothing may be reused
    CampaignRunner runner(other);
    runner.setResume(&cache);
    CampaignReport report = runner.run(1);
    EXPECT_EQ(report.cachedRuns, 0u);

    CampaignGrid skewed = grid;
    skewed.zipfThetas = {0.5}; // same seeds, different keys: no reuse either
    CampaignRunner skew_runner(skewed);
    skew_runner.setResume(&cache);
    EXPECT_EQ(skew_runner.run(1).cachedRuns, 0u);

    CampaignGrid other_geo = grid;
    other_geo.geometries[0].vaultsPerStack = 8; // different machine: no reuse
    CampaignRunner geo_runner(other_geo);
    geo_runner.setResume(&cache);
    EXPECT_EQ(geo_runner.run(1).cachedRuns, 0u);

    CampaignGrid other_exec = grid;
    other_exec.execOverrides[0].readChunkBytes = 128; // ablated: no reuse
    CampaignRunner exec_runner(other_exec);
    exec_runner.setResume(&cache);
    EXPECT_EQ(exec_runner.run(1).cachedRuns, 0u);
}

TEST(Resume, SplicesAcrossAxisValues)
{
    // A partial sweep (one geometry) resumed into a multi-axis sweep must
    // splice the cached points and only run the new geometry's points.
    CampaignGrid one;
    one.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    one.scenarios = {degenerateScenario(OpKind::kScan)};
    one.log2Tuples = {8};
    one.seeds = {42};
    CampaignReport prior = CampaignRunner(one).run(1);
    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(campaignReportJson(prior), err)) << err;

    CampaignGrid sweep = one;
    MemGeometry narrow = defaultGeometry();
    narrow.vaultsPerStack = 8;
    sweep.geometries = {defaultGeometry(), narrow};

    CampaignRunner runner(sweep);
    runner.setResume(&cache);
    std::size_t executed = 0;
    runner.onRunDone([&executed, &narrow](const CampaignRun &r) {
        ++executed;
        EXPECT_EQ(geometryName(r.job.geometry), geometryName(narrow));
    });
    CampaignReport reference = CampaignRunner(sweep).run(1);
    CampaignReport resumed = runner.run(1);

    EXPECT_EQ(resumed.cachedRuns, one.size());
    EXPECT_EQ(executed, sweep.size() - one.size());
    EXPECT_EQ(campaignReportJson(resumed).find("\"cached\""),
              std::string::npos);
    // The spliced report's runs subtree is byte-identical to a fresh
    // full-sweep report.
    auto runsSpan = [](const std::string &json) {
        JsonValue doc;
        std::string perr;
        EXPECT_TRUE(parseJson(json, doc, perr)) << perr;
        const JsonValue *runs = doc.find("runs");
        EXPECT_NE(runs, nullptr);
        return json.substr(runs->begin, runs->end - runs->begin);
    };
    EXPECT_EQ(runsSpan(campaignReportJson(resumed)),
              runsSpan(campaignReportJson(reference)));
}

TEST(Resume, LoadsLegacyV1ReportsAtDefaultAxes)
{
    // Hand-built v1 report (the pre-axis schema): one cpu/scan run at
    // 2^8, seed 42, campaign-wide zipf_theta 0. Its result payload is a
    // real RunResult so the cache can parse it.
    WorkloadConfig wl;
    wl.tuples = 1u << 8;
    RunResult r = Runner(wl).run(SystemKind::kCpu, OpKind::kScan);
    JsonWriter w;
    w.beginObject();
    w.member("schema", "mondrian-campaign-v1");
    w.key("grid").beginObject();
    w.member("zipf_theta", 0.0);
    w.endObject();
    w.key("runs").beginArray();
    w.beginObject();
    w.member("index", std::uint64_t{0});
    w.member("system", "cpu");
    w.member("op", "scan");
    w.member("log2_tuples", std::uint64_t{8});
    w.member("seed", std::uint64_t{42});
    w.key("result");
    writeRunResult(w, r);
    w.endObject();
    w.endArray();
    w.endObject();

    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(w.str(), err)) << err;
    EXPECT_EQ(cache.size(), 1u);

    // The v1 point lands at the default geometry + base exec, so a v2
    // campaign over those axis values reuses it...
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    CampaignRunner runner(grid);
    runner.setResume(&cache);
    CampaignReport report = runner.run(1);
    EXPECT_EQ(report.cachedRuns, 1u);
    EXPECT_EQ(report.runs[0].result.totalTime, r.totalTime);

    // ... and a campaign at any other geometry does not.
    CampaignGrid other = grid;
    other.geometries[0].vaultsPerStack = 8;
    CampaignRunner other_runner(other);
    other_runner.setResume(&cache);
    EXPECT_EQ(other_runner.run(1).cachedRuns, 0u);
}

TEST(Campaign, BaselinePairingIsPerAxisPoint)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.scenarios = {degenerateScenario(OpKind::kScan)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    MemGeometry narrow = defaultGeometry();
    narrow.vaultsPerStack = 8;
    grid.geometries = {defaultGeometry(), narrow};

    CampaignReport report = CampaignRunner(grid).run(1);
    auto base = baselineIndex(report.runs, SystemKind::kCpu);
    ASSERT_EQ(base.size(), 2u); // one cpu baseline per geometry point
    for (const auto &r : report.runs) {
        auto it = base.find(gridGroupKey(r));
        ASSERT_NE(it, base.end());
        EXPECT_EQ(geometryName(it->second->job.geometry),
                  geometryName(r.job.geometry));
    }
    // Summaries geomean across both geometry points.
    ASSERT_EQ(report.summaries.size(), 1u);
    EXPECT_EQ(report.summaries[0].runs, 2u);
}

TEST(Campaign, DryRunListsAxesWithoutSimulating)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    grid.zipfThetas = {0.0, 0.75};

    std::string listing = campaignDryRun(grid);
    EXPECT_NE(listing.find("4 runs"), std::string::npos);
    EXPECT_NE(listing.find("geo=4x16x8-8MiB-r256"), std::string::npos);
    EXPECT_NE(listing.find("exec=base"), std::string::npos);
    EXPECT_NE(listing.find("zipf=0.75"), std::string::npos);
    EXPECT_NE(listing.find("baseline"), std::string::npos);
    EXPECT_NE(listing.find("vs [0]"), std::string::npos);
    EXPECT_NE(listing.find("2 baseline-paired"), std::string::npos);

    CampaignGrid bad = grid;
    bad.scenarios.clear();
    EXPECT_THROW(campaignDryRun(bad), std::invalid_argument);
}

TEST(Resume, RejectsForeignDocuments)
{
    ResumeCache cache;
    std::string err;
    EXPECT_FALSE(cache.load("{\"schema\": \"something-else\"}", err));
    EXPECT_FALSE(cache.load("not json at all", err));
    EXPECT_FALSE(cache.load("", err));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.member("name", "x\"y\\z\n");
    w.member("count", std::uint64_t{18446744073709551615ull});
    w.member("ratio", -0.125);
    w.member("flag", true);
    w.key("list").beginArray();
    w.value(std::uint64_t{1});
    w.value("two");
    w.endArray();
    w.endObject();

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), doc, err)) << err;
    EXPECT_EQ(doc.find("name")->asString(), "x\"y\\z\n");
    EXPECT_EQ(doc.find("count")->asU64(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->asDouble(), -0.125);
    EXPECT_TRUE(doc.find("flag")->boolean);
    ASSERT_TRUE(doc.find("list")->isArray());
    EXPECT_EQ(doc.find("list")->items.size(), 2u);
    // Spans reproduce the source text verbatim.
    const JsonValue *list = doc.find("list");
    EXPECT_EQ(w.str().substr(list->begin, list->end - list->begin),
              "[\n    1,\n    \"two\"\n  ]");
}

TEST(JsonParse, UnescapeDecodesUnicodeEscapes)
{
    std::string out, err;
    // BMP code points become UTF-8 (1/2/3-byte forms).
    ASSERT_TRUE(jsonUnescape("caf\\u00e9", out, err)) << err;
    EXPECT_EQ(out, "caf\xc3\xa9");
    ASSERT_TRUE(jsonUnescape("\\u0041\\u07ff\\uffff", out, err)) << err;
    EXPECT_EQ(out, "A\xdf\xbf\xef\xbf\xbf");
    // A surrogate pair is one supplementary code point (U+1F600).
    ASSERT_TRUE(jsonUnescape("\\ud83d\\ude00", out, err)) << err;
    EXPECT_EQ(out, "\xf0\x9f\x98\x80");

    EXPECT_FALSE(jsonUnescape("\\ud83d", out, err));   // unpaired high
    EXPECT_FALSE(jsonUnescape("\\ude00x", out, err));  // unpaired low
    EXPECT_FALSE(jsonUnescape("\\uZZZZ", out, err));   // bad hex
    EXPECT_FALSE(jsonUnescape("\\u00", out, err));     // short hex
    EXPECT_FALSE(jsonUnescape("\\q", out, err));       // unknown escape
    EXPECT_FALSE(jsonUnescape("\\", out, err));        // dangling
}

TEST(JsonParse, StringsRoundTripTheWriterEscaper)
{
    // Every escape JsonWriter emits — quotes, backslash, \n\t\r, and
    // \u00XX for other control codes — decodes back to the original
    // bytes, so report strings survive a write/parse cycle exactly.
    std::string original = "a\"b\\c\nd\te\rf";
    original += '\x01';
    original += '\x1f';
    JsonWriter w;
    w.beginObject();
    w.member("s", original);
    w.endObject();

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), doc, err)) << err;
    EXPECT_EQ(doc.find("s")->asString(), original);
}

TEST(JsonParse, DocumentsDecodeUnicodeEscapes)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(
        parseJson("{\"k\": \"\\u00e9 \\ud83d\\ude00\"}", doc, err))
        << err;
    EXPECT_EQ(doc.find("k")->asString(), "\xc3\xa9 \xf0\x9f\x98\x80");
    // Malformed escapes now fail the parse instead of mangling bytes.
    EXPECT_FALSE(parseJson("{\"k\": \"\\ud800\"}", doc, err));
    EXPECT_FALSE(parseJson("{\"k\": \"\\uqqqq\"}", doc, err));
}
