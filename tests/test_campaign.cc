/** @file Campaign grid expansion, parallel determinism and JSON output. */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/json_parse.hh"
#include "sim/thread_pool.hh"
#include "system/campaign.hh"
#include "system/report.hh"

#include <atomic>
#include <limits>
#include <set>

using namespace mondrian;

namespace {

/** Small two-axis grid with a baseline, cheap enough for unit tests. */
CampaignGrid
testGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp, SystemKind::kMondrian};
    grid.ops = {OpKind::kScan, OpKind::kJoin};
    grid.log2Tuples = {8, 9};
    grid.seeds = {42, 7};
    return grid;
}

} // namespace

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsOnSubmit)
{
    ThreadPool pool(0);
    int count = 0;
    pool.submit([&count] { ++count; });
    EXPECT_EQ(count, 1);
    pool.wait(); // no-op, must not hang
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&count, i] {
            if (i == 3)
                throw std::runtime_error("job 3 failed");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 7); // the other jobs still ran
    // The pool stays usable after an error.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(Campaign, GridSizeIsCrossProduct)
{
    CampaignGrid grid = testGrid();
    EXPECT_EQ(grid.size(), 3u * 2u * 2u * 2u);

    grid.ops.clear();
    EXPECT_EQ(grid.size(), 0u);
}

TEST(Campaign, ExpandGridCoversEveryPointOnce)
{
    CampaignGrid grid = testGrid();
    auto jobs = expandGrid(grid);
    ASSERT_EQ(jobs.size(), grid.size());

    std::set<std::tuple<int, int, unsigned, std::uint64_t>> seen;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i); // index == position, densely numbered
        seen.insert({static_cast<int>(jobs[i].system),
                     static_cast<int>(jobs[i].op), jobs[i].log2Tuples,
                     jobs[i].seed});
    }
    EXPECT_EQ(seen.size(), jobs.size()); // no duplicates
}

TEST(Campaign, JobWorkloadReflectsGridPoint)
{
    CampaignGrid grid = testGrid();
    grid.zipfTheta = 0.5;
    auto jobs = expandGrid(grid);
    for (const auto &job : jobs) {
        WorkloadConfig wl = job.workload();
        EXPECT_EQ(wl.tuples, std::uint64_t{1} << job.log2Tuples);
        EXPECT_EQ(wl.seed, job.seed);
        EXPECT_DOUBLE_EQ(wl.zipfTheta, 0.5);
    }
}

TEST(Campaign, ParallelMatchesSerialByteForByte)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.ops = {OpKind::kScan, OpKind::kGroupBy};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport serial = CampaignRunner(grid).run(1);
    CampaignReport parallel = CampaignRunner(grid).run(4);

    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].result.totalTime,
                  parallel.runs[i].result.totalTime);
        EXPECT_EQ(serial.runs[i].result.aggChecksum,
                  parallel.runs[i].result.aggChecksum);
    }
    EXPECT_EQ(campaignReportJson(serial), campaignReportJson(parallel));
}

TEST(Campaign, SummaryUsesCpuBaseline)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.ops = {OpKind::kScan};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    EXPECT_EQ(report.baseline, "cpu");
    ASSERT_EQ(report.summaries.size(), 1u);
    EXPECT_EQ(report.summaries[0].system, "mondrian");
    EXPECT_EQ(report.summaries[0].runs, 1u);
    // NMP beats the CPU baseline on every operator in the paper.
    EXPECT_GT(report.summaries[0].geomeanSpeedup, 1.0);
    EXPECT_GT(report.summaries[0].geomeanPerfPerWatt, 1.0);
}

TEST(Campaign, BaselineIndexKeysBySeedScaleOp)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.ops = {OpKind::kScan};
    grid.log2Tuples = {8, 9};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    auto base = baselineIndex(report.runs, SystemKind::kCpu);
    ASSERT_EQ(base.size(), 2u); // one cpu run per scale
    for (const auto &r : report.runs) {
        auto it = base.find(gridGroupKey(r));
        ASSERT_NE(it, base.end());
        // Every run maps to the baseline of its own scale.
        EXPECT_EQ(it->second->job.log2Tuples, r.job.log2Tuples);
        EXPECT_EQ(it->second->job.system, SystemKind::kCpu);
    }
}

TEST(Campaign, NoBaselineMeansNoSummaries)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kNmp, SystemKind::kMondrian};
    grid.ops = {OpKind::kScan};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    EXPECT_EQ(report.baseline, "");
    EXPECT_TRUE(report.summaries.empty());
}

TEST(Campaign, ProgressCallbackSeesEveryRun)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kNmp};
    grid.ops = {OpKind::kScan};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignRunner campaign(grid);
    std::set<std::size_t> indices;
    campaign.onRunDone([&indices](const CampaignRun &r) {
        indices.insert(r.job.index);
    });
    campaign.run(2);
    EXPECT_EQ(indices.size(), grid.size());
}

TEST(CampaignJson, ReportRoundTripsThroughSchema)
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.ops = {OpKind::kJoin};
    grid.log2Tuples = {8};
    grid.seeds = {42};

    CampaignReport report = CampaignRunner(grid).run(1);
    std::string json = campaignReportJson(report);

    // Schema markers and grid echo.
    EXPECT_NE(json.find("\"schema\": \"mondrian-campaign-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"total_runs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"baseline\": \"cpu\""), std::string::npos);

    // Every run serializes with its grid coordinates and result payload.
    EXPECT_NE(json.find("\"system\": \"mondrian\""), std::string::npos);
    EXPECT_NE(json.find("\"op\": \"join\""), std::string::npos);
    EXPECT_NE(json.find("\"log2_tuples\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"total_time_ps\""), std::string::npos);
    EXPECT_NE(json.find("\"energy_j\""), std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);

    // Identical reports serialize to identical bytes.
    EXPECT_EQ(json, campaignReportJson(report));
}

TEST(CampaignJson, RunResultJsonMatchesRunnerOutput)
{
    WorkloadConfig wl;
    wl.tuples = 1u << 8;
    RunResult r = Runner(wl).run(SystemKind::kNmp, OpKind::kJoin);
    std::string json = runResultJson(r);
    EXPECT_NE(json.find("\"system\": \"nmp\""), std::string::npos);
    EXPECT_NE(json.find("\"op\": \"join\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"partition\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"probe\""), std::string::npos);
}

TEST(JsonWriter, ProducesExpectedDocument)
{
    JsonWriter w;
    w.beginObject();
    w.member("name", "x");
    w.member("count", std::uint64_t{3});
    w.member("ratio", 0.5);
    w.member("flag", true);
    w.key("list").beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.endArray();
    w.key("nested").beginObject();
    w.member("inner", "y");
    w.endObject();
    w.endObject();

    EXPECT_EQ(w.str(), "{\n"
                       "  \"name\": \"x\",\n"
                       "  \"count\": 3,\n"
                       "  \"ratio\": 0.5,\n"
                       "  \"flag\": true,\n"
                       "  \"list\": [\n"
                       "    1,\n"
                       "    2\n"
                       "  ],\n"
                       "  \"nested\": {\n"
                       "    \"inner\": \"y\"\n"
                       "  }\n"
                       "}");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginObject();
    w.member("s", "a\"b\\c\nd");
    w.endObject();
    EXPECT_NE(w.str().find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.endArray();
    EXPECT_EQ(w.str(), "[\n  null,\n  null\n]");
}

TEST(Report, GeomeanIgnoresNonPositive)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 16.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({4.0, 16.0, 0.0, -3.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Parsing, NamesRoundTrip)
{
    for (SystemKind k : allSystemKinds()) {
        SystemKind parsed;
        ASSERT_TRUE(systemKindFromName(systemKindName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    for (OpKind op : allOpKinds()) {
        OpKind parsed;
        ASSERT_TRUE(opKindFromName(opKindName(op), parsed));
        EXPECT_EQ(parsed, op);
    }
    SystemKind sink_s;
    OpKind sink_o;
    EXPECT_FALSE(systemKindFromName("gpu", sink_s));
    EXPECT_FALSE(opKindFromName("union", sink_o));
}

// --- Resume cache: incremental reruns skip cached (config, workload)
// grid points and splice their results back byte-identically. ---

namespace {

CampaignGrid
resumeGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.ops = {OpKind::kScan, OpKind::kGroupBy};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    return grid;
}

} // namespace

TEST(Resume, GridPointHashIsStableAndDiscriminating)
{
    std::string h = ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0);
    EXPECT_EQ(h, ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.0));
    EXPECT_EQ(h.size(), 16u);
    std::set<std::string> all{h};
    all.insert(ResumeCache::gridPointHash("nmp", "join", 15, 42, 0.0));
    all.insert(ResumeCache::gridPointHash("cpu", "scan", 15, 42, 0.0));
    all.insert(ResumeCache::gridPointHash("cpu", "join", 16, 42, 0.0));
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 43, 0.0));
    all.insert(ResumeCache::gridPointHash("cpu", "join", 15, 42, 0.8));
    EXPECT_EQ(all.size(), 6u); // every coordinate distinguishes
}

TEST(Resume, FullyCachedRerunMatchesFreshReport)
{
    CampaignGrid grid = resumeGrid();
    CampaignReport fresh = CampaignRunner(grid).run(1);
    std::string fresh_json = campaignReportJson(fresh);

    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(fresh_json, err)) << err;
    EXPECT_EQ(cache.size(), grid.size());

    CampaignRunner resumed_runner(grid);
    resumed_runner.setResume(&cache);
    // No run may execute: the progress callback must never fire.
    resumed_runner.onRunDone(
        [](const CampaignRun &) { FAIL() << "cached run executed"; });
    CampaignReport resumed = resumed_runner.run(1);
    EXPECT_EQ(resumed.cachedRuns, grid.size());
    std::string resumed_json = campaignReportJson(resumed);

    // The splice contract: the runs subtree is byte-identical. (The
    // summary section is recomputed from 12-digit round-tripped values
    // and is only numerically — not bit — guaranteed; see campaign.hh.)
    auto runsSpan = [](const std::string &json) {
        JsonValue doc;
        std::string perr;
        EXPECT_TRUE(parseJson(json, doc, perr)) << perr;
        const JsonValue *runs = doc.find("runs");
        EXPECT_NE(runs, nullptr);
        return json.substr(runs->begin, runs->end - runs->begin);
    };
    EXPECT_EQ(runsSpan(resumed_json), runsSpan(fresh_json));

    ASSERT_EQ(resumed.summaries.size(), fresh.summaries.size());
    for (std::size_t i = 0; i < fresh.summaries.size(); ++i) {
        EXPECT_EQ(resumed.summaries[i].system, fresh.summaries[i].system);
        EXPECT_NEAR(resumed.summaries[i].geomeanSpeedup,
                    fresh.summaries[i].geomeanSpeedup,
                    fresh.summaries[i].geomeanSpeedup * 1e-9);
        EXPECT_NEAR(resumed.summaries[i].geomeanPerfPerWatt,
                    fresh.summaries[i].geomeanPerfPerWatt,
                    fresh.summaries[i].geomeanPerfPerWatt * 1e-9);
    }
}

TEST(Resume, SupersetGridRunsOnlyNewPoints)
{
    CampaignGrid small = resumeGrid();
    CampaignReport prior = CampaignRunner(small).run(1);
    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(campaignReportJson(prior), err)) << err;

    CampaignGrid big = small;
    big.systems.push_back(SystemKind::kNmp);
    CampaignRunner runner(big);
    runner.setResume(&cache);
    std::size_t executed = 0;
    runner.onRunDone([&executed](const CampaignRun &r) {
        ++executed;
        EXPECT_EQ(r.job.system, SystemKind::kNmp);
    });
    CampaignReport report = CampaignRunner(big).run(1); // reference
    CampaignReport resumed = runner.run(1);

    EXPECT_EQ(resumed.cachedRuns, small.size());
    EXPECT_EQ(executed, big.size() - small.size());
    // Cached and fresh points agree with an uncached full run.
    ASSERT_EQ(resumed.runs.size(), report.runs.size());
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        EXPECT_EQ(resumed.runs[i].result.totalTime,
                  report.runs[i].result.totalTime);
        EXPECT_EQ(resumed.runs[i].result.aggChecksum,
                  report.runs[i].result.aggChecksum);
    }
}

TEST(Resume, DifferentWorkloadIsNotReused)
{
    CampaignGrid grid = resumeGrid();
    CampaignReport prior = CampaignRunner(grid).run(1);
    ResumeCache cache;
    std::string err;
    ASSERT_TRUE(cache.load(campaignReportJson(prior), err)) << err;

    CampaignGrid other = grid;
    other.seeds = {7}; // different workload: nothing may be reused
    CampaignRunner runner(other);
    runner.setResume(&cache);
    CampaignReport report = runner.run(1);
    EXPECT_EQ(report.cachedRuns, 0u);

    CampaignGrid skewed = grid;
    skewed.zipfTheta = 0.5; // same seeds, different keys: no reuse either
    CampaignRunner skew_runner(skewed);
    skew_runner.setResume(&cache);
    EXPECT_EQ(skew_runner.run(1).cachedRuns, 0u);
}

TEST(Resume, RejectsForeignDocuments)
{
    ResumeCache cache;
    std::string err;
    EXPECT_FALSE(cache.load("{\"schema\": \"something-else\"}", err));
    EXPECT_FALSE(cache.load("not json at all", err));
    EXPECT_FALSE(cache.load("", err));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.member("name", "x\"y\\z\n");
    w.member("count", std::uint64_t{18446744073709551615ull});
    w.member("ratio", -0.125);
    w.member("flag", true);
    w.key("list").beginArray();
    w.value(std::uint64_t{1});
    w.value("two");
    w.endArray();
    w.endObject();

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), doc, err)) << err;
    EXPECT_EQ(doc.find("name")->asString(), "x\"y\\z\n");
    EXPECT_EQ(doc.find("count")->asU64(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->asDouble(), -0.125);
    EXPECT_TRUE(doc.find("flag")->boolean);
    ASSERT_TRUE(doc.find("list")->isArray());
    EXPECT_EQ(doc.find("list")->items.size(), 2u);
    // Spans reproduce the source text verbatim.
    const JsonValue *list = doc.find("list");
    EXPECT_EQ(w.str().substr(list->begin, list->end - list->begin),
              "[\n    1,\n    \"two\"\n  ]");
}
