/** @file Unit tests for common utilities: intmath, random, units. */

#include <gtest/gtest.h>

#include <set>

#include "common/intmath.hh"
#include "common/random.hh"
#include "common/types.hh"

using namespace mondrian;

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

class Log2Test : public ::testing::TestWithParam<unsigned> {};

TEST_P(Log2Test, FloorCeilConsistent)
{
    unsigned bit = GetParam();
    std::uint64_t v = 1ull << bit;
    EXPECT_EQ(floorLog2(v), bit);
    EXPECT_EQ(ceilLog2(v), bit);
    if (bit > 1) {
        EXPECT_EQ(floorLog2(v + 1), bit);
        EXPECT_EQ(ceilLog2(v + 1), bit + 1);
        EXPECT_EQ(floorLog2(v - 1), bit - 1);
        EXPECT_EQ(ceilLog2(v - 1), bit);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBits, Log2Test,
                         ::testing::Values(1u, 2u, 3u, 7u, 12u, 31u, 47u,
                                           63u));

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(IntMath, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(65, 64), 64u);
}

TEST(IntMath, Bits)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 0, 8), 0u);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
}

TEST(Random, Deterministic)
{
    Random a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    bool differ = false;
    for (int i = 0; i < 10; ++i)
        differ |= a.next() != b.next();
    EXPECT_TRUE(differ);
}

class RandomBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBoundTest, BoundedStaysInRange)
{
    Random r(42);
    std::uint64_t bound = GetParam();
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RandomBoundTest,
                         ::testing::Values(1ull, 2ull, 3ull, 10ull, 64ull,
                                           1000ull, 1ull << 33));

TEST(Random, BoundedCoversRange)
{
    Random r(42);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, DoubleInUnitInterval)
{
    Random r(3);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Units, PeriodsExact)
{
    EXPECT_EQ(periodFromMHz(1000), 1000u); // 1 GHz -> 1000 ps
    EXPECT_EQ(periodFromMHz(2000), 500u);  // 2 GHz -> 500 ps
}

TEST(Units, BandwidthConversion)
{
    // 8 bytes per ns == 8 GB/s.
    EXPECT_DOUBLE_EQ(bytesPerTickToGBps(8.0, 1000), 8.0);
    EXPECT_DOUBLE_EQ(bytesPerTickToGBps(0.0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(bytesPerTickToGBps(100.0, 0), 0.0);
}
