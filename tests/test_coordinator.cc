/**
 * @file
 * Distributed campaign execution: shard planning, fault-injection specs,
 * the campaign.json job-spec round-trip, coordinator/worker byte-identity
 * under injected crash/hang/corrupt faults, retry exhaustion, journal
 * resume and graceful degradation. The worker subprocess is the real
 * mondrian_campaign binary (MONDRIAN_BINARY_DIR), so these tests exercise
 * the actual wire protocol end to end.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "system/campaign.hh"
#include "system/campaign_spec.hh"
#include "system/coordinator.hh"
#include "system/report.hh"
#include "system/traffic.hh"

using namespace mondrian;

namespace {

const char *kWorkerBinary = MONDRIAN_BINARY_DIR "/mondrian_campaign";

/** 2 systems x 2 ops at 2^8: four cheap jobs with a baseline. */
CampaignGrid
smallGrid()
{
    CampaignGrid grid;
    grid.systems = {SystemKind::kCpu, SystemKind::kMondrian};
    grid.scenarios = {degenerateScenario(OpKind::kScan),
                      degenerateScenario(OpKind::kJoin)};
    grid.log2Tuples = {8};
    grid.seeds = {42};
    return grid;
}

/** Reference report: the same grid run in-process, single-threaded. */
std::string
referenceReport(const CampaignGrid &grid)
{
    CampaignRunner runner(grid);
    return campaignReportJson(runner.run(1));
}

CoordinatorConfig
testConfig()
{
    CoordinatorConfig config;
    config.workers = 2;
    config.retryBackoffSec = 0.01; // keep retry tests fast
    config.workerCommand = {kWorkerBinary};
    return config;
}

} // namespace

// ----------------------------------------------------------- shard planning

TEST(PlanShards, RoundRobinDeal)
{
    auto shards = planShards({10, 11, 12, 13, 14}, 2);
    ASSERT_EQ(shards.size(), 2u);
    EXPECT_EQ(shards[0], (std::vector<std::size_t>{10, 12, 14}));
    EXPECT_EQ(shards[1], (std::vector<std::size_t>{11, 13}));
}

TEST(PlanShards, MoreWorkersThanJobs)
{
    auto shards = planShards({0}, 4);
    ASSERT_EQ(shards.size(), 4u);
    EXPECT_EQ(shards[0].size(), 1u);
    EXPECT_TRUE(shards[1].empty());
}

TEST(PlanShards, ListingNamesEveryWorker)
{
    const std::string listing = shardPlanListing(smallGrid(), 3);
    EXPECT_NE(listing.find("3 workers"), std::string::npos);
    EXPECT_NE(listing.find("worker 0"), std::string::npos);
    EXPECT_NE(listing.find("worker 2"), std::string::npos);
    EXPECT_NE(listing.find("4 pending jobs"), std::string::npos);
}

// ----------------------------------------------------- fault-inject grammar

TEST(FaultInject, ParsesKindsAndStickiness)
{
    std::vector<FaultInjection> faults;
    std::string error;
    ASSERT_TRUE(parseFaultInject("crash@2,hang@5,corrupt@1!", faults, error))
        << error;
    ASSERT_EQ(faults.size(), 3u);
    EXPECT_EQ(faults[0].kind, FaultInjection::Kind::kCrash);
    EXPECT_EQ(faults[0].index, 2u);
    EXPECT_FALSE(faults[0].sticky);
    EXPECT_EQ(faults[1].kind, FaultInjection::Kind::kHang);
    EXPECT_EQ(faults[2].kind, FaultInjection::Kind::kCorrupt);
    EXPECT_EQ(faults[2].index, 1u);
    EXPECT_TRUE(faults[2].sticky);
}

TEST(FaultInject, RejectsMalformedSpecs)
{
    std::vector<FaultInjection> faults;
    std::string error;
    EXPECT_FALSE(parseFaultInject("", faults, error));
    EXPECT_FALSE(parseFaultInject("crash", faults, error));
    EXPECT_FALSE(parseFaultInject("explode@3", faults, error));
    EXPECT_FALSE(parseFaultInject("crash@x", faults, error));
    EXPECT_FALSE(parseFaultInject("crash@", faults, error));
}

// ------------------------------------------------------- job-spec round-trip

TEST(CampaignSpec, RoundTripsByteIdentically)
{
    CampaignGrid grid = smallGrid();
    grid.zipfThetas = {0.0, 0.75};
    TrafficSpec traffic;
    traffic.process = ArrivalProcess::kPoisson;
    traffic.lambdaQps = 1500.0;
    traffic.queries = 8;
    grid.traffics.push_back(traffic);

    const std::string spec = campaignSpecJson(grid);
    CampaignGrid parsed;
    std::string error;
    ASSERT_TRUE(parseCampaignSpec(spec, parsed, error)) << error;
    ASSERT_TRUE(validateGrid(parsed, error)) << error;

    // The parsed grid must be the same design space...
    EXPECT_EQ(expandGrid(parsed).size(), expandGrid(grid).size());
    // ...and re-serialize to the identical document (nothing lossy).
    EXPECT_EQ(campaignSpecJson(parsed), spec);
}

TEST(CampaignSpec, RejectsForeignDocuments)
{
    CampaignGrid parsed;
    std::string error;
    EXPECT_FALSE(parseCampaignSpec("{\"schema\": \"other\"}", parsed, error));
    EXPECT_FALSE(parseCampaignSpec("not json", parsed, error));
}

// --------------------------------------------- coordinator byte-identity

TEST(Coordinator, CleanRunMatchesInProcessReport)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CampaignCoordinator coordinator(grid, testConfig());
    std::size_t progressed = 0;
    coordinator.onRunDone([&](const CampaignRun &) { ++progressed; });
    EXPECT_EQ(campaignReportJson(coordinator.run()), expected);
    EXPECT_EQ(progressed, 4u);
}

TEST(Coordinator, CrashedWorkerIsRetriedByteIdentically)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = testConfig();
    std::string error;
    ASSERT_TRUE(parseFaultInject("crash@0,crash@3", config.faults, error));
    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);
}

TEST(Coordinator, HungWorkerIsKilledAndJobReassigned)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = testConfig();
    config.heartbeatTimeoutSec = 0.5; // hang must be detected quickly
    std::string error;
    ASSERT_TRUE(parseFaultInject("hang@1", config.faults, error));
    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);
}

TEST(Coordinator, CorruptResultIsRejectedAndRetried)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = testConfig();
    std::string error;
    ASSERT_TRUE(parseFaultInject("corrupt@2", config.faults, error));
    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);
}

TEST(Coordinator, StickyFaultExhaustsRetriesIntoFailedRuns)
{
    const CampaignGrid grid = smallGrid();

    CoordinatorConfig config = testConfig();
    config.maxRetries = 1;
    std::string error;
    ASSERT_TRUE(parseFaultInject("crash@2!", config.faults, error));
    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();

    ASSERT_EQ(report.failedRuns.size(), 1u);
    EXPECT_EQ(report.failedRuns[0].index, 2u);
    EXPECT_EQ(report.failedRuns[0].attempts, 2u); // 1 + maxRetries
    EXPECT_TRUE(report.runs[2].failed);
    // The other three jobs still completed and the report is writable.
    const std::string json = campaignReportJson(report);
    EXPECT_NE(json.find("\"failed_runs\""), std::string::npos);
    // The failed run must not appear as a result row.
    std::size_t runs_emitted = 0;
    for (const CampaignRun &r : report.runs)
        runs_emitted += r.failed ? 0 : 1;
    EXPECT_EQ(runs_emitted, 3u);
}

TEST(Coordinator, DegradesToInProcessWhenWorkersCannotSpawn)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = testConfig();
    config.workerCommand = {"/nonexistent/mondrian-worker-binary"};
    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);
}

TEST(Coordinator, DegradedPathWithWidePoolStaysByteIdentical)
{
    // Regression for the run_inline data race: the dispatch loop used to
    // keep re-reading the bit-packed `done` vector while pool workers
    // flipped neighboring bits of the same words. The pending set is now
    // snapshotted before anything is submitted; under TSan this test is
    // the tripwire for any reintroduction.
    CampaignGrid grid = smallGrid();
    grid.seeds = {42, 43}; // 8 jobs, so every pool thread gets work
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = testConfig();
    config.workers = 4;
    config.workerCommand = {"/nonexistent/mondrian-worker-binary"};
    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);
}

// ------------------------------------------------------------ journal resume

TEST(Coordinator, ResumesFromJournalByteIdentically)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    // A killed campaign's journal: the first two completed runs.
    std::string journal;
    std::size_t journaled = 0;
    CampaignRunner first(grid);
    first.onRunDone([&](const CampaignRun &r) {
        if (journaled < 2) {
            journal += campaignJournalLine(r.job, r.result);
            ++journaled;
        }
    });
    first.run(1);

    ResumeCache cache;
    EXPECT_EQ(cache.loadJournal(journal), 2u);

    CampaignCoordinator coordinator(grid, testConfig());
    coordinator.setResume(&cache);
    const CampaignReport report = coordinator.run();
    EXPECT_EQ(report.cachedRuns, 2u);
    EXPECT_EQ(campaignReportJson(report), expected);
}

TEST(ResumeCache, JournalToleratesTornLastLine)
{
    const CampaignGrid grid = smallGrid();
    std::string journal;
    CampaignRunner runner(grid);
    runner.onRunDone([&](const CampaignRun &r) {
        journal += campaignJournalLine(r.job, r.result);
    });
    runner.run(1);

    // A coordinator killed mid-append leaves a torn final line.
    const std::size_t last_start = journal.rfind(
        '\n', journal.size() - 2);
    const std::string torn =
        journal.substr(0, last_start + 1 +
                              (journal.size() - last_start) / 2);
    ResumeCache cache;
    EXPECT_EQ(cache.loadJournal(torn), 3u);
}

TEST(ResumeCache, JournalSkipsCorruptLines)
{
    ResumeCache cache;
    EXPECT_EQ(cache.loadJournal("garbage\n{\"key\": 5}\n"), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

// ----------------------------------------------- resume-report hardening

/** smallGrid plus a served-traffic point: reports come out schema v4. */
CampaignGrid
servedGrid()
{
    CampaignGrid grid = smallGrid();
    TrafficSpec traffic;
    traffic.process = ArrivalProcess::kPoisson;
    traffic.lambdaQps = 2000.0;
    traffic.queries = 4;
    grid.traffics = {traffic};
    return grid;
}

TEST(ResumeCache, TruncatedReportFailsLoudlyNotSilently)
{
    const CampaignGrid grid = servedGrid();
    const std::string report = referenceReport(grid);
    ASSERT_NE(report.find("mondrian-campaign-v4"), std::string::npos);

    ResumeCache cache;
    std::string error;
    EXPECT_FALSE(cache.load(report.substr(0, report.size() / 2), error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResumeCache, CorruptRunEntryIsSkippedOthersLoad)
{
    const CampaignGrid grid = servedGrid();
    std::string report = referenceReport(grid);
    ASSERT_NE(report.find("mondrian-campaign-v4"), std::string::npos);

    // Break the first run's result subtree; the other three must still
    // load (satellite: skip with a warning, never crash or mis-splice).
    const std::size_t pos = report.find("\"result\"");
    ASSERT_NE(pos, std::string::npos);
    report.replace(pos, 8, "\"broken\"");

    ResumeCache cache;
    std::string error;
    ASSERT_TRUE(cache.load(report, error)) << error;
    EXPECT_EQ(cache.size(), 3u);
}

// ------------------------------------------------- remote TCP workers

namespace {

/** Exec a real `mondrian_campaign --worker-connect` subprocess. */
pid_t
spawnConnectWorker(std::uint16_t port,
                   const std::vector<std::string> &extra = {})
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        std::vector<std::string> args = {
            kWorkerBinary, "--worker-connect",
            "127.0.0.1:" + std::to_string(port)};
        args.insert(args.end(), extra.begin(), extra.end());
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        std::_Exit(127);
    }
    return pid;
}

int
waitForExit(pid_t pid)
{
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/** Remote-only coordinator config bound to an ephemeral loopback port. */
CoordinatorConfig
tcpConfig()
{
    CoordinatorConfig config;
    config.workers = 0;
    config.listenEndpoint = "127.0.0.1:0";
    config.retryBackoffSec = 0.01;
    return config;
}

/** mkdtemp scratch directory that removes its files on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/mondrian-test-cache-XXXXXX";
        if (::mkdtemp(tmpl))
            path = tmpl;
    }

    ~TempDir()
    {
        if (path.empty())
            return;
        // Entries are flat "<hash>.json" files; no recursion needed.
        const std::string cmd = "rm -rf '" + path + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
};

} // namespace

TEST(TcpCoordinator, RemoteWorkersMatchInProcessReportByteForByte)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CampaignCoordinator coordinator(grid, tcpConfig());
    std::string error;
    ASSERT_TRUE(coordinator.listen(error)) << error;
    const std::uint16_t port = coordinator.listenPort();
    ASSERT_NE(port, 0);

    const pid_t w0 = spawnConnectWorker(port);
    const pid_t w1 = spawnConnectWorker(port);

    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(report.workerCacheHits, 0u);
    EXPECT_EQ(campaignReportJson(report), expected);

    // Orderly shutdown: both workers got the exit message and left 0.
    EXPECT_EQ(waitForExit(w0), 0);
    EXPECT_EQ(waitForExit(w1), 0);
}

TEST(TcpCoordinator, SurvivesCrashDisconnectAndCorruptFaults)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = tcpConfig();
    std::string error;
    ASSERT_TRUE(parseFaultInject("crash@0,disconnect@1,corrupt@2",
                                 config.faults, error));
    CampaignCoordinator coordinator(grid, config);
    ASSERT_TRUE(coordinator.listen(error)) << error;
    const std::uint16_t port = coordinator.listenPort();

    // Two workers; whichever draws the crash dies for good (remote
    // workers are not respawned by the coordinator), the disconnect
    // victim drops mid-job and rejoins as a fresh worker.
    const pid_t w0 = spawnConnectWorker(port);
    const pid_t w1 = spawnConnectWorker(port);

    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);

    // One worker _Exit(70)s on the crash fault; the survivor gets the
    // orderly exit message. (Which is which depends on job scheduling.)
    const int e0 = waitForExit(w0);
    const int e1 = waitForExit(w1);
    EXPECT_TRUE((e0 == 70 && e1 == 0) || (e0 == 0 && e1 == 70) ||
                (e0 == 0 && e1 == 0))
        << "worker exits: " << e0 << ", " << e1;
}

TEST(TcpCoordinator, RejectsWorkersWithWrongHelloToken)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);

    CoordinatorConfig config = tcpConfig();
    config.helloToken = "right-token";
    CampaignCoordinator coordinator(grid, config);
    std::string error;
    ASSERT_TRUE(coordinator.listen(error)) << error;
    const std::uint16_t port = coordinator.listenPort();

    // The impostor is rejected (exit 5, no reconnect); the legitimate
    // worker with the matching token completes the whole campaign.
    const pid_t impostor =
        spawnConnectWorker(port, {"--hello-token", "wrong-token"});
    const pid_t legit =
        spawnConnectWorker(port, {"--hello-token", "right-token"});

    const CampaignReport report = coordinator.run();
    EXPECT_TRUE(report.failedRuns.empty());
    EXPECT_EQ(campaignReportJson(report), expected);

    EXPECT_EQ(waitForExit(impostor), kExitNetwork);
    EXPECT_EQ(waitForExit(legit), 0);
}

// ---------------------------------------------- worker-side result cache

TEST(WorkerCache, LocalWorkersServeRepeatsWithoutResimulation)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);
    TempDir cache_dir;
    ASSERT_FALSE(cache_dir.path.empty());

    // Cold pass: every job simulated, the cache populated.
    CoordinatorConfig config = testConfig();
    config.workerCacheDir = cache_dir.path;
    {
        CampaignCoordinator coordinator(grid, config);
        const CampaignReport report = coordinator.run();
        EXPECT_EQ(report.workerCacheHits, 0u);
        EXPECT_EQ(campaignReportJson(report), expected);
    }

    // Warm pass: a fresh campaign over the same grid; every re-dispatch
    // is answered from the cache, byte-identically.
    {
        CampaignCoordinator coordinator(grid, config);
        const CampaignReport report = coordinator.run();
        EXPECT_EQ(report.workerCacheHits, 4u);
        EXPECT_EQ(campaignReportJson(report), expected);
    }
}

TEST(WorkerCache, CorruptEntryFallsBackToSimulation)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);
    TempDir cache_dir;
    ASSERT_FALSE(cache_dir.path.empty());

    CoordinatorConfig config = testConfig();
    config.workerCacheDir = cache_dir.path;
    {
        CampaignCoordinator coordinator(grid, config);
        coordinator.run();
    }

    // Truncate one entry: the worker must treat it as a miss and
    // re-simulate, never forward garbage upstream.
    std::vector<std::string> entries;
    {
        const std::string cmd =
            "ls '" + cache_dir.path + "' > '" + cache_dir.path + "/ls'";
        ASSERT_EQ(std::system(cmd.c_str()), 0);
        std::ifstream ls(cache_dir.path + "/ls");
        std::string name;
        while (std::getline(ls, name))
            if (name.size() > 5 &&
                name.substr(name.size() - 5) == ".json")
                entries.push_back(name);
    }
    ASSERT_EQ(entries.size(), 4u);
    {
        std::ofstream out(cache_dir.path + "/" + entries[0],
                          std::ios::binary | std::ios::trunc);
        out << "{\"key\": \"torn";
    }

    CampaignCoordinator coordinator(grid, config);
    const CampaignReport report = coordinator.run();
    EXPECT_EQ(report.workerCacheHits, 3u);
    EXPECT_EQ(campaignReportJson(report), expected);
}

TEST(TcpCoordinator, WarmWorkerCacheServesRemoteRedispatch)
{
    const CampaignGrid grid = smallGrid();
    const std::string expected = referenceReport(grid);
    TempDir cache_dir;
    ASSERT_FALSE(cache_dir.path.empty());

    const std::vector<std::string> cache_args = {"--worker-cache",
                                                 cache_dir.path};
    // Cold TCP pass populates the cache.
    {
        CampaignCoordinator coordinator(grid, tcpConfig());
        std::string error;
        ASSERT_TRUE(coordinator.listen(error)) << error;
        const pid_t w =
            spawnConnectWorker(coordinator.listenPort(), cache_args);
        const CampaignReport report = coordinator.run();
        EXPECT_EQ(report.workerCacheHits, 0u);
        EXPECT_EQ(campaignReportJson(report), expected);
        EXPECT_EQ(waitForExit(w), 0);
    }
    // Warm TCP pass: every job a cache hit, bytes identical.
    {
        CampaignCoordinator coordinator(grid, tcpConfig());
        std::string error;
        ASSERT_TRUE(coordinator.listen(error)) << error;
        const pid_t w =
            spawnConnectWorker(coordinator.listenPort(), cache_args);
        const CampaignReport report = coordinator.run();
        EXPECT_EQ(report.workerCacheHits, 4u);
        EXPECT_EQ(campaignReportJson(report), expected);
        EXPECT_EQ(waitForExit(w), 0);
    }
}
